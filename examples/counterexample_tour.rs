//! A tour of the paper's appendix counterexamples, run live.
//!
//! * **Appendix C (Fig. 5)** — two viable schedules giving `a` and `x`
//!   identical `(i, o, path)` but demanding opposite orders at their
//!   shared congestion point: no black-box UPS can replay both. LSTF
//!   replays one case and fails the other.
//! * **Appendix F (Fig. 6)** — the priority cycle: simple priorities
//!   cannot replay a 2-congestion-point schedule that LSTF replays
//!   exactly.
//! * **Appendix G.3 (Fig. 7)** — three congestion points defeat LSTF by
//!   exactly one transmission slot.
//!
//! Run: `cargo run --release --example counterexample_tour`

use ups::core::replay::priorities_from_schedule;
use ups::core::{appendix_c_case, appendix_f_schedule, appendix_g_schedule, HeaderInit};

fn main() {
    println!("== Appendix C (Fig. 5): no universal black-box scheduler ==");
    for case in [1, 2] {
        let sched = appendix_c_case(case);
        let out = sched.replay(HeaderInit::LstfSlack, true);
        println!(
            "  case {case}: LSTF replay {} ({} of {} packets overdue, worst {})",
            if out.report.perfect() {
                "PERFECT"
            } else {
                "FAILS"
            },
            out.report.overdue,
            out.report.total,
            out.report.max_lateness,
        );
    }
    println!("  -> identical (i, o, path) for a and x, contradictory requirements:");
    println!("     any deterministic initialization loses one of the two cases.\n");

    println!("== Appendix F (Fig. 6): the priority cycle ==");
    let sched = appendix_f_schedule();
    let prio = sched.replay(HeaderInit::PriorityOutputTime, false);
    let lstf = sched.replay(HeaderInit::LstfSlack, true);
    println!(
        "  simple priorities (prio = o(p)): {} overdue of {}",
        prio.report.overdue, prio.report.total
    );
    let cyclic = priorities_from_schedule(&sched.net.topo, &sched.original_trace()).is_none();
    println!("  precedence relation cyclic (no assignment exists): {cyclic}");
    println!(
        "  LSTF on the same schedule: {} overdue — 2 congestion points are its safe zone\n",
        lstf.report.overdue
    );

    println!("== Appendix G.3 (Fig. 7): three congestion points defeat LSTF ==");
    let sched = appendix_g_schedule();
    let out = sched.replay(HeaderInit::LstfSlack, true);
    println!(
        "  LSTF replay: {} of {} packets overdue, lateness {} (one full service slot)",
        out.report.overdue, out.report.total, out.report.max_lateness
    );
    // Appendix B's upper bound on the same network: record a schedule on
    // this very topology, replay it with per-hop omniscient headers —
    // perfect, even where LSTF fails.
    {
        use ups::core::replay::{compare, replay_packets, run_schedule};
        use ups::prelude::*;
        let seeded = replay_packets(
            &sched.net.topo,
            &sched.original_trace(),
            &sched.packets,
            HeaderInit::Omniscient,
        );
        let assign = SchedulerAssignment::uniform(SchedulerKind::Omniscient);
        let opts = BuildOptions {
            record: RecordMode::PerHop,
            ..BuildOptions::default()
        };
        let recorded = run_schedule(&sched.net.topo, &assign, seeded, &opts);
        let replay_set = replay_packets(
            &sched.net.topo,
            &recorded,
            &sched.packets,
            HeaderInit::Omniscient,
        );
        let replayed = run_schedule(
            &sched.net.topo,
            &assign,
            replay_set,
            &BuildOptions::default(),
        );
        let report = compare(&recorded, &replayed, Dur::from_ms(1));
        println!(
            "  omniscient replay of a recorded schedule on this network: {} overdue (App. B)",
            report.overdue
        );
    }
}
