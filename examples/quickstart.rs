//! Quickstart: record an arbitrary schedule, replay it with LSTF.
//!
//! Builds a small Internet2 network, drives it with a random scheduler
//! (the paper's hardest original), then replays the recorded schedule
//! using only black-box header initialization — `slack(p) = o(p) − i(p) −
//! tmin(p)` — and reports how many packets met their original exit times.
//!
//! Run: `cargo run --release --example quickstart`

use ups::prelude::*;
use ups::topology::{internet2, Internet2Params};

fn main() {
    // A scaled-down Internet2: 10 core routers, 2 edge routers per core.
    let topo = internet2(Internet2Params {
        edges_per_core: 2,
        ..Internet2Params::default()
    });
    println!(
        "topology: {} ({} nodes, {} hosts)",
        topo.name,
        topo.node_count(),
        topo.hosts().len()
    );

    // The paper's default workload: Poisson flow arrivals at 70% mean
    // core utilization, heavy-tailed (web-search-like) flow sizes,
    // packetized as NIC-paced UDP trains.
    let mut routing = Routing::new(&topo);
    let flows = PoissonWorkload::at_utilization(0.7, Dur::from_ms(10), 1).generate(
        &topo,
        &mut routing,
        &Empirical::web_search(),
    );
    let packets = udp_packet_train(&flows, MTU);
    println!("workload: {} flows, {} packets", flows.len(), packets.len());

    // Original schedule: every port picks uniformly at random among
    // queued packets — "completely arbitrary schedules".
    let experiment = ReplayExperiment {
        topo: &topo,
        original_assign: SchedulerAssignment::uniform(SchedulerKind::Random),
        init: HeaderInit::LstfSlack,
        preemptive: false,
        record: RecordMode::EndToEnd,
        seed: 7,
    };
    let outcome = experiment.run(&packets, Dur::ZERO);

    let r = &outcome.report;
    println!(
        "LSTF replay: {} / {} packets overdue ({:.4}%), {} over T ({:.4}%), worst lateness {}",
        r.overdue,
        r.total,
        r.frac_overdue() * 100.0,
        r.overdue_gt_t,
        r.frac_overdue_gt_t() * 100.0,
        r.max_lateness
    );
    if !r.queueing_ratios.is_empty() {
        // Exact: 1.0 is an edge of the report's quantile sketch.
        println!(
            "queueing delay: {:.1}% of queued packets waited no longer than in the original",
            100.0 * r.queueing_ratios.fraction_le(1.0)
        );
    }
}
