//! §3.1 in miniature: LSTF with `slack = flow_size × D` matches SJF on
//! mean flow completion time, both well ahead of FIFO.
//!
//! TCP flows over a scaled-down Internet2 at 70% utilization with 5 MB
//! router buffers; compares FIFO, SJF, SRPT and LSTF and prints the
//! Figure 2 size-bucket breakdown for LSTF.
//!
//! Run: `cargo run --release --example fct_objectives`

use ups::metrics::{overall_mean_fct, FIG2_BUCKETS, OVERFLOW_EDGE};
use ups::prelude::*;
use ups::topology::{internet2, Internet2Params};

/// One scheme through the shared closed-loop driver — the same code
/// path `sweep --traffic closed-loop` jobs and the Figure 2 bench use.
fn run(topo: &Topology, kind: SchedulerKind, policy: SlackPolicy, seed: u64) -> Vec<FlowSample> {
    let mut routing = Routing::new(topo);
    let flows = PoissonWorkload::at_utilization(0.7, Dur::from_ms(60), seed).generate(
        topo,
        &mut routing,
        &Empirical::web_search(),
    );
    let scenario = TcpScenario {
        topo,
        assign: &SchedulerAssignment::uniform(kind),
        opts: BuildOptions {
            record: RecordMode::Off,
            router_buffer_bytes: Some(5_000_000),
            ..BuildOptions::default()
        },
        flows: &flows,
        config: TcpConfig::default(),
        policy,
        horizon: Dur::from_secs(6),
        max_packets: None,
        goodput_bucket: Dur::from_ms(1),
    };
    let run = run_tcp(&scenario, &mut routing);
    run.stats
        .completions()
        .into_iter()
        .map(|c| FlowSample {
            size: c.bytes,
            fct_secs: c.fct().as_secs_f64(),
        })
        .collect()
}

fn main() {
    let topo = internet2(Internet2Params {
        edges_per_core: 2,
        ..Internet2Params::default()
    });
    let schemes: [(&str, SchedulerKind, SlackPolicy); 4] = [
        ("FIFO", SchedulerKind::Fifo, SlackPolicy::None),
        ("SRPT", SchedulerKind::Srpt, SlackPolicy::None),
        ("SJF", SchedulerKind::Sjf, SlackPolicy::None),
        (
            "LSTF",
            SchedulerKind::Lstf { preemptive: false },
            SlackPolicy::FctSjf,
        ),
    ];
    let mut lstf_samples = Vec::new();
    for (label, kind, policy) in schemes {
        let samples = run(&topo, kind, policy, 3);
        println!(
            "{label:5} mean FCT {:.4}s over {} completed flows",
            overall_mean_fct(&samples),
            samples.len()
        );
        if label == "LSTF" {
            lstf_samples = samples;
        }
    }
    println!("\nLSTF mean FCT by Figure 2 size bucket:");
    for (edge, mean, count) in mean_fct_by_bucket(&lstf_samples, &FIG2_BUCKETS) {
        if count > 0 {
            if edge == OVERFLOW_EDGE {
                println!("  >  largest edge: {mean:.4}s  ({count} flows)");
            } else {
                println!("  ≤ {edge:>9} B: {mean:.4}s  ({count} flows)");
            }
        }
    }
}
