//! §2.3(7) in miniature: LSTF vs the "most intuitive" simple-priority
//! replay (`prio = o(p)`) on the same recorded Random schedule.
//!
//! LSTF carries remaining slack in the header and can make up for lost
//! time at later hops; static priorities can't, so low-priority packets
//! get repeatedly delayed and miss their targets by *milliseconds* while
//! LSTF misses (rarely) by at most one non-preemption slot.
//!
//! Run: `cargo run --release --example replay_comparison`

use ups::prelude::*;
use ups::topology::i2_default;

fn main() {
    let topo = i2_default();
    let mut routing = Routing::new(&topo);
    let flows = PoissonWorkload::at_utilization(0.7, Dur::from_ms(15), 42).generate(
        &topo,
        &mut routing,
        &Empirical::web_search(),
    );
    let packets = udp_packet_train(&flows, MTU);
    println!(
        "{} — {} flows, {} packets at 70% utilization\n",
        topo.name,
        flows.len(),
        packets.len()
    );
    println!(
        "{:<22} {:>10} {:>12} {:>14}",
        "replay", "overdue", "overdue > T", "max lateness"
    );
    for (label, init) in [
        ("LSTF (slack)", HeaderInit::LstfSlack),
        ("Priorities (o(p))", HeaderInit::PriorityOutputTime),
        ("EDF (deadline)", HeaderInit::EdfDeadline),
    ] {
        let outcome = ReplayExperiment {
            topo: &topo,
            original_assign: SchedulerAssignment::uniform(SchedulerKind::Random),
            init,
            preemptive: false,
            record: RecordMode::EndToEnd,
            seed: 42,
        }
        .run(&packets, Dur::ZERO);
        let r = &outcome.report;
        println!(
            "{label:<22} {:>9.4}% {:>11.4}% {:>14}",
            r.frac_overdue() * 100.0,
            r.frac_overdue_gt_t() * 100.0,
            format!("{}", r.max_lateness)
        );
    }
    println!("\n(T = one bottleneck transmission time = 12us; EDF matches LSTF exactly, App. E.)");
}
