//! §3.3 in miniature: LSTF with the Virtual-Clock slack assignment
//! converges to fair shares like fair queueing — even when the rate
//! estimate `r_est` is far below the true fair share.
//!
//! Two long-lived TCP flows share a 1 Gbps bottleneck; flow 2 starts
//! late. We print the per-millisecond Jain index under FIFO, FQ, and
//! LSTF at two different `r_est` values.
//!
//! Run: `cargo run --release --example fairness`

use ups::prelude::*;
use ups::topology::dumbbell;

fn jain_series_for(kind: SchedulerKind, policy: SlackPolicy) -> Vec<f64> {
    let topo = dumbbell(
        2,
        Bandwidth::from_gbps(10),
        Bandwidth::from_gbps(1),
        Dur::from_ms(1),
    );
    let mut routing = Routing::new(&topo);
    let hosts = topo.hosts();
    let mk = |id: u64, s: usize, d: usize, start: SimTime, routing: &mut Routing| FlowSpec {
        id: FlowId(id),
        src: hosts[s],
        dst: hosts[d],
        size: u64::MAX,
        start,
        path: routing.path(hosts[s], hosts[d]),
    };
    let flows = vec![
        mk(0, 0, 2, SimTime::ZERO, &mut routing),
        mk(1, 1, 3, SimTime::from_ms(5), &mut routing),
    ];
    let mut sim = build_simulator(
        &topo,
        &SchedulerAssignment::uniform(kind),
        &BuildOptions {
            record: RecordMode::Off,
            router_buffer_bytes: Some(150_000),
            ..BuildOptions::default()
        },
    );
    let stats = TransportStats::new(Dur::from_ms(5));
    install_tcp(
        &mut sim,
        &topo,
        &mut routing,
        &flows,
        TcpConfig::default(),
        policy,
        &stats,
    );
    sim.run_until(SimTime::from_ms(200));
    jain_series(&stats.goodput_matrix(&[FlowId(0), FlowId(1)]))
}

fn main() {
    let schemes: [(&str, SchedulerKind, SlackPolicy); 4] = [
        ("FIFO", SchedulerKind::Fifo, SlackPolicy::None),
        ("FQ", SchedulerKind::Fq, SlackPolicy::None),
        (
            "LSTF@0.5Gbps",
            SchedulerKind::Lstf { preemptive: false },
            SlackPolicy::Fairness(500_000_000),
        ),
        (
            "LSTF@0.05Gbps",
            SchedulerKind::Lstf { preemptive: false },
            SlackPolicy::Fairness(50_000_000),
        ),
    ];
    println!("Jain fairness index in 5ms buckets (flow 2 joins at 5ms):");
    for (label, kind, policy) in schemes {
        let series = jain_series_for(kind, policy);
        let shown: Vec<String> = series
            .iter()
            .step_by(4)
            .map(|j| format!("{j:.2}"))
            .collect();
        let steady = series.last().copied().unwrap_or(0.0);
        println!("{label:>14}: {}  -> steady {steady:.3}", shown.join(" "));
    }
}
