//! # ups — Universal Packet Scheduling (HotNets 2015), reproduced in Rust
//!
//! A from-scratch reproduction of *"Universal Packet Scheduling"*
//! (Mittal, Agarwal, Ratnasamy, Shenker — HotNets 2015): can one packet
//! scheduling algorithm replay the schedules of all others? The paper
//! answers "almost": **Least Slack Time First** is the closest feasible
//! candidate — perfect up to two congestion points per packet, impossible
//! beyond — and in practice approximately replays FIFO, fair queueing,
//! SJF, LIFO and random schedules while matching specialized schedulers
//! on mean FCT, tail latency and fairness objectives.
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`netsim`] | deterministic discrete-event simulator + all schedulers |
//! | [`topology`] | Internet2 / RocketFuel-like / fat-tree / counterexample graphs, routing, `tmin` |
//! | [`workload`] | Poisson arrivals, heavy-tailed sizes, utilization calibration |
//! | [`transport`] | simplified TCP with §3 slack-stamping policies |
//! | [`core`] | the replay framework, slack heuristics, appendix counterexamples |
//! | [`dynamics`] | link-failure schedules, epoch-based rerouting, churn-robust replay |
//! | [`forensics`] | replay-divergence attribution: mismatch taxonomy, per-hop blame, inversion classes |
//! | [`metrics`] | CDFs, Jain index, FCT buckets, run summaries, table rendering |
//! | [`obs`] | zero-cost-when-off probes, phase timers, time-series, Perfetto export |
//! | [`sweep`] | parallel scenario-sweep engine: grids, work-stealing pool, result store |
//! | [`lint`] | workspace determinism & schema-drift static analysis (`ups-lint`) |
//!
//! ## Quickstart
//!
//! ```
//! use ups::prelude::*;
//!
//! // Record an arbitrary (Random) schedule on a 2-router line, then
//! // replay it with LSTF from black-box header initialization.
//! let topo = ups::topology::line(2, Bandwidth::from_gbps(1), Dur::from_us(10));
//! let mut routing = ups::topology::Routing::new(&topo);
//! let hosts = topo.hosts();
//! let path = routing.path(hosts[0], hosts[1]);
//! let packets: Vec<Packet> = (0..40)
//!     .map(|i| {
//!         PacketBuilder::new(PacketId(i), FlowId(i % 4), 1500, path.clone(),
//!                            SimTime::from_us(3 * i)).build()
//!     })
//!     .collect();
//!
//! let experiment = ReplayExperiment {
//!     topo: &topo,
//!     original_assign: SchedulerAssignment::uniform(SchedulerKind::Random),
//!     init: HeaderInit::LstfSlack,
//!     preemptive: false,
//!     record: RecordMode::PerHop,
//!     seed: 7,
//! };
//! let outcome = experiment.run(&packets, Dur::ZERO);
//! // ≤ 2 congestion points on a line ⇒ LSTF replays (§2.2 Theorem 2).
//! assert!(outcome.report.frac_overdue() < 0.05);
//! ```
//!
//! See `examples/` for the paper's experiments and DESIGN.md for the
//! system inventory.

#![forbid(unsafe_code)]

pub use ups_core as core;
pub use ups_dynamics as dynamics;
pub use ups_forensics as forensics;
pub use ups_lint as lint;
pub use ups_metrics as metrics;
pub use ups_netsim as netsim;
pub use ups_obs as obs;
pub use ups_race as race;
pub use ups_sweep as sweep;
pub use ups_topology as topology;
pub use ups_transport as transport;
pub use ups_workload as workload;

/// Everything needed for typical experiments.
pub mod prelude {
    pub use ups_core::{
        compare, compare_with_tolerance, fct_slack, max_congestion_points, tail_slack,
        FairnessSlackAssigner, HeaderInit, ReplayExperiment, ReplayOutcome, ReplayReport, FCT_D,
    };
    pub use ups_dynamics::{
        churn_replay, run_schedule_with_failures, DynamicRouting, FailureProfile, FailureSchedule,
    };
    pub use ups_forensics::{BlameCollector, ReplayFlavor};
    pub use ups_metrics::{jain_index, jain_series, mean_fct_by_bucket, Cdf, FlowSample};
    pub use ups_netsim::prelude::*;
    pub use ups_sweep::{JobRecord, JobSpec, ScenarioGrid, TrafficMode};
    pub use ups_topology::{
        build_simulator, BuildOptions, NodeRole, Routing, SchedulerAssignment, Topology,
    };
    pub use ups_transport::{
        install_tcp, run_tcp, SlackPolicy, TcpConfig, TcpRun, TcpScenario, TransportStats,
    };
    pub use ups_workload::{
        udp_packet_train, BoundedPareto, Empirical, FlowSpec, PoissonWorkload, SizeDist, MTU,
    };
}
