//! Observation never steers the simulation: a run with `ups-obs`
//! instrumentation live (global gate enabled, time-series probe
//! attached) is **bit-identical** — trace, stats, replay report — to the
//! same seeded run with everything off. This is the determinism half of
//! the zero-cost-when-off contract (`BENCH_obs.json` pins the cost
//! half).
//!
//! The gate is process-global and `cargo test` runs `#[test]`s on
//! threads, so every test that toggles it serializes on one lock —
//! otherwise one test's `disable()` would silently blind another's
//! enabled run (harmless for determinism, fatal for the "counters
//! actually moved" assertions).

use std::sync::Mutex;

use ups::obs::Counter;
use ups::prelude::*;
use ups::topology::{fattree, FatTreeParams};

static GATE: Mutex<()> = Mutex::new(());

fn fattree_workload(window_ms: u64, seed: u64) -> (Topology, Vec<Packet>) {
    let topo = fattree(FatTreeParams::default());
    let mut routing = Routing::new(&topo);
    let flows = PoissonWorkload::at_utilization(0.7, Dur::from_ms(window_ms), seed).generate(
        &topo,
        &mut routing,
        &Empirical::web_search() as &dyn SizeDist,
    );
    let packets = udp_packet_train(&flows, MTU);
    (topo, packets)
}

use proptest::prelude::*;
use proptest::sample;

const SCHEDS: [SchedulerKind; 3] = [
    SchedulerKind::Fifo,
    SchedulerKind::Random,
    SchedulerKind::Lstf { preemptive: false },
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]
    /// The full replay experiment — original run, header init, black-box
    /// LSTF replay, comparison — is bit-identical with the gate on.
    #[test]
    fn replay_experiment_is_identical_with_gate_enabled(
        sched in sample::select(&SCHEDS),
        preemptive in proptest::bool::ANY,
        seed in 0u64..1 << 32,
    ) {
        let _g = GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let (topo, packets) = fattree_workload(2, seed ^ 0xA5A5);
        let exp = ReplayExperiment {
            topo: &topo,
            original_assign: SchedulerAssignment::uniform(sched),
            init: HeaderInit::LstfSlack,
            preemptive,
            record: RecordMode::PerHop,
            seed,
        };
        ups::obs::disable();
        let off = exp.run(&packets, Dur::ZERO);
        ups::obs::reset();
        ups::obs::enable();
        let on = exp.run(&packets, Dur::ZERO);
        ups::obs::disable();
        let gate = ups::obs::snapshot();

        prop_assert!(off.original == on.original, "original traces diverged");
        prop_assert!(off.replay == on.replay, "replay traces diverged");
        prop_assert_eq!(off.report, on.report, "replay reports diverged");
        // The instrumented run must actually have been instrumented.
        prop_assert!(gate.counter(Counter::EventsInject) >= packets.len() as u64);
        prop_assert!(gate.phase_calls(ups::obs::Phase::Dispatch) > 0);
    }
}

/// The streaming/spill trace path under full instrumentation: gate on
/// *and* a sampling probe attached, with spill caps forced tiny so the
/// run round-trips records through the chunk codec while being observed.
#[test]
fn streaming_spill_run_is_identical_with_probes_on() {
    let _g = GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let (topo, packets) = fattree_workload(3, 17);
    let run = |probe: Option<&SharedProbe>| {
        let mut sim = build_simulator(
            &topo,
            &SchedulerAssignment::uniform(SchedulerKind::Fifo),
            &BuildOptions {
                record: RecordMode::Streaming,
                // 64-record chunks, 2 resident: most of the trace spills.
                trace_spill_caps: Some((64, 2)),
                seed: 9,
                ..BuildOptions::default()
            },
        );
        if let Some(p) = probe {
            // 50 µs virtual sampling: hundreds of rows over a 3 ms window.
            sim.set_probe(p.attachment());
        }
        for p in packets.iter().cloned() {
            sim.inject(p);
        }
        sim.run();
        let stats = sim.stats();
        (stats, sim.into_trace())
    };

    ups::obs::disable();
    ups::obs::reset();
    let (stats_off, trace_off) = run(None);

    let probe = SharedProbe::new(50 * PS_PER_US);
    ups::obs::enable();
    let (stats_on, trace_on) = run(Some(&probe));
    ups::obs::disable();
    let gate = ups::obs::snapshot();

    assert_eq!(stats_off, stats_on, "stats diverged under instrumentation");
    assert!(
        trace_off.stream().eq(trace_on.stream()),
        "streamed records diverged under instrumentation"
    );
    let series = probe.take_series();
    assert!(!series.rows.is_empty(), "probe never sampled");
    // The spill path really ran while observed.
    assert!(
        gate.counter(Counter::SpillChunksSealed) > 0,
        "nothing spilled"
    );
    assert!(gate.counter(Counter::SpillBytes) > 0);
    assert!(gate.counter(Counter::TraceRecordsFinalized) > 0);
    assert!(gate.phase_ns(ups::obs::Phase::SpillIo) > 0);
}
