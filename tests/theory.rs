//! Integration tests for the paper's theoretical landmarks, exercised
//! through the public facade (`ups::...`) exactly as a downstream user
//! would.

use ups::core::replay::priorities_from_schedule;
use ups::core::{appendix_c_case, appendix_f_schedule, appendix_g_schedule};
use ups::prelude::*;

/// §2.2's hierarchy on the appendix schedules, through the facade:
/// priorities < LSTF < omniscient.
#[test]
fn the_universality_hierarchy() {
    // Level 1: priorities die at two congestion points (Fig. 6).
    let f = appendix_f_schedule();
    assert!(priorities_from_schedule(&f.net.topo, &f.original_trace()).is_none());
    assert!(f.replay(HeaderInit::LstfSlack, true).report.perfect());

    // Level 2: LSTF dies at three congestion points (Fig. 7)...
    let g = appendix_g_schedule();
    assert!(!g.replay(HeaderInit::LstfSlack, true).report.perfect());
    // ...but priorities *can* be assigned there (it's not a cycle issue).
    assert!(priorities_from_schedule(&g.net.topo, &g.original_trace()).is_some());

    // Level 3: nothing deterministic black-box survives Appendix C.
    let fails = [1u8, 2]
        .iter()
        .filter(|&&c| {
            !appendix_c_case(c)
                .replay(HeaderInit::LstfSlack, true)
                .report
                .perfect()
        })
        .count();
    assert!(fails >= 1);
}

/// Slack accounting is exact: on an uncontended path the recorded slack
/// equals o − i − tmin and survives the trip unspent.
#[test]
fn slack_bookkeeping_is_exact() {
    let topo = ups::topology::line(3, Bandwidth::from_gbps(1), Dur::from_us(10));
    let mut routing = Routing::new(&topo);
    let hosts = topo.hosts();
    let path = routing.path(hosts[0], hosts[1]);
    let tmin = ups::topology::tmin(&topo, &path, 1500);

    let packets =
        vec![PacketBuilder::new(PacketId(0), FlowId(0), 1500, path, SimTime::from_us(100)).build()];
    let outcome = ReplayExperiment {
        topo: &topo,
        original_assign: SchedulerAssignment::uniform(SchedulerKind::Fifo),
        init: HeaderInit::LstfSlack,
        preemptive: false,
        record: RecordMode::PerHop,
        seed: 0,
    }
    .run(&packets, Dur::ZERO);
    let rec = outcome.original.get(PacketId(0)).unwrap();
    // Alone in the network: o = i + tmin exactly, slack would be zero.
    assert_eq!(rec.exited, Some(SimTime::from_us(100) + tmin));
    assert!(outcome.report.perfect());
}

/// The replay threshold `T` matches the paper's 12 µs on every
/// 1 Gbps-bottleneck topology.
#[test]
fn threshold_is_one_bottleneck_transmission() {
    for topo in [
        ups::topology::i2_default(),
        ups::topology::i2_1g_1g(),
        ups::topology::rocketfuel_default(),
    ] {
        let t = topo.bottleneck_bandwidth().tx_time(1500);
        assert!(
            t >= Dur::from_us(12),
            "{}: T = {t} below the paper's 12us",
            topo.name
        );
    }
    assert_eq!(
        ups::topology::i2_default()
            .bottleneck_bandwidth()
            .tx_time(1500),
        Dur::from_us(12)
    );
}

/// The §3 heuristics are exposed and consistent through the facade.
#[test]
fn heuristics_facade() {
    assert_eq!(fct_slack(1, FCT_D), PS_PER_SEC as i128);
    assert_eq!(tail_slack(), PS_PER_SEC as i128);
    let mut f = FairnessSlackAssigner::new(1_000_000_000);
    assert_eq!(f.slack_for(FlowId(9), SimTime::ZERO, 1500), 0);
    assert!(f.slack_for(FlowId(9), SimTime::ZERO, 1500) > 0);
}
