//! The replay methodology's load-bearing invariant, asserted end to end:
//! a simulation run is a pure function of its inputs. Two runs of the
//! same seeded fat-tree workload must produce **bit-identical traces** —
//! every injection, per-hop arrival, transmission start, wait and exit,
//! compared with `Trace == Trace`.
//!
//! This pins the determinism contract across the whole zero-copy hot
//! path: calendar-queue event ordering (`(time, seq)`), arena slot
//! recycling, per-port arrival sequencing, and the seeded `Random`
//! discipline.

use ups::prelude::*;
use ups::topology::{fattree, FatTreeParams};

fn fattree_workload(seed: u64) -> (Topology, Vec<Packet>) {
    let topo = fattree(FatTreeParams::default());
    let mut routing = Routing::new(&topo);
    let flows = PoissonWorkload::at_utilization(0.7, Dur::from_ms(6), seed).generate(
        &topo,
        &mut routing,
        &Empirical::web_search() as &dyn SizeDist,
    );
    let packets = udp_packet_train(&flows, MTU);
    (topo, packets)
}

fn run_once(topo: &Topology, packets: &[Packet], kind: SchedulerKind, seed: u64) -> Trace {
    let mut sim = build_simulator(
        topo,
        &SchedulerAssignment::uniform(kind),
        &BuildOptions {
            record: RecordMode::PerHop,
            seed,
            ..BuildOptions::default()
        },
    );
    for p in packets.iter().cloned() {
        sim.inject(p);
    }
    sim.run();
    assert_eq!(
        sim.stats().delivered,
        packets.len() as u64,
        "unbuffered run must deliver everything"
    );
    sim.into_trace()
}

/// Same seed, same workload ⇒ the full per-hop trace is identical, for a
/// deterministic discipline and for the seeded-random one.
#[test]
fn seeded_fattree_runs_are_bit_identical() {
    let (topo, packets) = fattree_workload(7);
    assert!(packets.len() > 2_000, "workload too small to be convincing");
    for kind in [
        SchedulerKind::Fifo,
        SchedulerKind::Lstf { preemptive: false },
        SchedulerKind::Random,
    ] {
        let a = run_once(&topo, &packets, kind, 13);
        let b = run_once(&topo, &packets, kind, 13);
        assert!(
            a == b,
            "{} trace differs between identical runs",
            kind.name()
        );
    }
}

/// Different port seeds must change a Random schedule (the equality check
/// above is not trivially true).
#[test]
fn random_schedule_depends_on_seed() {
    let (topo, packets) = fattree_workload(7);
    let a = run_once(&topo, &packets, SchedulerKind::Random, 13);
    let b = run_once(&topo, &packets, SchedulerKind::Random, 14);
    assert!(a != b, "distinct seeds should yield distinct schedules");
}

/// The trace survives a full replay round trip deterministically: running
/// the complete LSTF replay experiment twice gives identical replay traces
/// too (original + header init + replay are all pure).
#[test]
fn replay_experiment_is_deterministic_end_to_end() {
    let (topo, packets) = fattree_workload(21);
    let exp = ReplayExperiment {
        topo: &topo,
        original_assign: SchedulerAssignment::uniform(SchedulerKind::Random),
        init: HeaderInit::LstfSlack,
        preemptive: false,
        record: RecordMode::PerHop,
        seed: 5,
    };
    let a = exp.run(&packets, Dur::ZERO);
    let b = exp.run(&packets, Dur::ZERO);
    assert!(a.original == b.original, "original traces differ");
    assert!(a.replay == b.replay, "replay traces differ");
    assert_eq!(a.report.overdue, b.report.overdue);
    assert_eq!(a.report.max_lateness, b.report.max_lateness);
}
