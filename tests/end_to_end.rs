//! Cross-crate integration tests: topology + workload + netsim + core
//! replay + transport + metrics working together, end to end.

use ups::prelude::*;
use ups::topology::{fattree, internet2, FatTreeParams, Internet2Params};

fn small_i2() -> Topology {
    internet2(Internet2Params {
        edges_per_core: 2,
        ..Internet2Params::default()
    })
}

/// The full replay pipeline on a realistic topology: generate → record →
/// re-initialize → replay → compare. The headline property at any scale:
/// almost every packet meets its target and violations are bounded by
/// the non-preemption slot.
#[test]
fn replay_pipeline_end_to_end() {
    let topo = small_i2();
    let mut routing = Routing::new(&topo);
    let flows = PoissonWorkload::at_utilization(0.7, Dur::from_ms(6), 11).generate(
        &topo,
        &mut routing,
        &Empirical::web_search(),
    );
    let packets = udp_packet_train(&flows, MTU);
    assert!(packets.len() > 1_000);

    let outcome = ReplayExperiment {
        topo: &topo,
        original_assign: SchedulerAssignment::uniform(SchedulerKind::Random),
        init: HeaderInit::LstfSlack,
        preemptive: false,
        record: RecordMode::EndToEnd,
        seed: 3,
    }
    .run(&packets, Dur::ZERO);

    assert_eq!(outcome.report.total, packets.len(), "nothing may vanish");
    assert!(
        outcome.report.frac_overdue() < 0.05,
        "overdue {}",
        outcome.report.frac_overdue()
    );
    // Non-preemptive LSTF misses by at most ~one max-size blocking
    // transmission per congestion point; on this topology that is the
    // 12us access-link slot, compounded rarely.
    assert!(
        outcome.report.max_lateness <= Dur::from_us(48),
        "max lateness {}",
        outcome.report.max_lateness
    );
}

/// Replays are bit-deterministic across runs — the property everything
/// else (paper comparisons, CI) rests on.
#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let topo = small_i2();
        let mut routing = Routing::new(&topo);
        let flows = PoissonWorkload::at_utilization(0.5, Dur::from_ms(4), 5).generate(
            &topo,
            &mut routing,
            &Empirical::web_search(),
        );
        let packets = udp_packet_train(&flows, MTU);
        let outcome = ReplayExperiment {
            topo: &topo,
            original_assign: SchedulerAssignment::uniform(SchedulerKind::Random),
            init: HeaderInit::LstfSlack,
            preemptive: false,
            record: RecordMode::EndToEnd,
            seed: 9,
        }
        .run(&packets, Dur::ZERO);
        let exits: Vec<_> = outcome
            .replay
            .delivered()
            .expect("EndToEnd traces are resident")
            .map(|(id, r)| (id, r.exited))
            .collect();
        (outcome.report.overdue, exits)
    };
    let (o1, e1) = run();
    let (o2, e2) = run();
    assert_eq!(o1, o2);
    assert_eq!(e1, e2);
}

/// TCP over the built Internet2 with every §3 scheduler: flows complete
/// under FIFO, SJF, SRPT and LSTF with the FCT slack policy.
#[test]
fn tcp_completes_under_every_objective_scheduler() {
    for (kind, policy) in [
        (SchedulerKind::Fifo, SlackPolicy::None),
        (SchedulerKind::Sjf, SlackPolicy::None),
        (SchedulerKind::Srpt, SlackPolicy::None),
        (
            SchedulerKind::Lstf { preemptive: false },
            SlackPolicy::FctSjf,
        ),
    ] {
        let topo = small_i2();
        let mut routing = Routing::new(&topo);
        let flows = PoissonWorkload::at_utilization(0.4, Dur::from_ms(15), 2).generate(
            &topo,
            &mut routing,
            &Empirical::web_search(),
        );
        let n_flows = flows.len();
        let mut sim = build_simulator(
            &topo,
            &SchedulerAssignment::uniform(kind),
            &BuildOptions {
                record: RecordMode::Off,
                router_buffer_bytes: Some(5_000_000),
                ..BuildOptions::default()
            },
        );
        let stats = TransportStats::new(Dur::from_ms(1));
        install_tcp(
            &mut sim,
            &topo,
            &mut routing,
            &flows,
            TcpConfig::default(),
            policy,
            &stats,
        );
        sim.run_until(SimTime::from_secs(20));
        let done = stats.completions().len();
        assert!(
            done as f64 >= 0.9 * n_flows as f64,
            "{}: only {done}/{n_flows} flows completed",
            kind.name()
        );
    }
}

/// The fat-tree datacenter path: workload calibration, routing and replay
/// all function on the pFabric topology.
#[test]
fn datacenter_replay_works() {
    let topo = fattree(FatTreeParams::default());
    let mut routing = Routing::new(&topo);
    let flows = PoissonWorkload::at_utilization(0.6, Dur::from_ms(4), 8).generate(
        &topo,
        &mut routing,
        &Empirical::data_mining(),
    );
    let packets = udp_packet_train(&flows, MTU);
    assert!(!packets.is_empty());
    let outcome = ReplayExperiment {
        topo: &topo,
        original_assign: SchedulerAssignment::uniform(SchedulerKind::Fifo),
        init: HeaderInit::LstfSlack,
        preemptive: false,
        record: RecordMode::EndToEnd,
        seed: 8,
    }
    .run(&packets, Dur::ZERO);
    assert_eq!(outcome.report.total, packets.len());
    assert!(outcome.report.frac_overdue() < 0.2);
}

/// Acks flow against data through LSTF ports without starving either
/// direction: a bidirectional TCP pair over one bottleneck.
#[test]
fn bidirectional_tcp_over_lstf() {
    let topo = ups::topology::dumbbell(
        2,
        Bandwidth::from_gbps(10),
        Bandwidth::from_gbps(1),
        Dur::from_ms(1),
    );
    let mut routing = Routing::new(&topo);
    let hosts = topo.hosts();
    let flows = vec![
        FlowSpec {
            id: FlowId(0),
            src: hosts[0],
            dst: hosts[2],
            size: 400_000,
            start: SimTime::ZERO,
            path: routing.path(hosts[0], hosts[2]),
        },
        FlowSpec {
            id: FlowId(1),
            src: hosts[3],
            dst: hosts[1],
            size: 400_000,
            start: SimTime::ZERO,
            path: routing.path(hosts[3], hosts[1]),
        },
    ];
    let mut sim = build_simulator(
        &topo,
        &SchedulerAssignment::uniform(SchedulerKind::Lstf { preemptive: false }),
        &BuildOptions {
            record: RecordMode::Off,
            router_buffer_bytes: Some(500_000),
            ..BuildOptions::default()
        },
    );
    let stats = TransportStats::new(Dur::from_ms(1));
    install_tcp(
        &mut sim,
        &topo,
        &mut routing,
        &flows,
        TcpConfig::default(),
        SlackPolicy::FctSjf,
        &stats,
    );
    sim.run_until(SimTime::from_secs(10));
    assert_eq!(stats.completions().len(), 2, "both directions complete");
}

/// Metrics glue: replay queueing ratios feed the report sketch, FCTs feed the
/// bucketing, goodput feeds Jain — types line up and values are sane.
#[test]
fn metrics_integration() {
    let topo = small_i2();
    let mut routing = Routing::new(&topo);
    let flows = PoissonWorkload::at_utilization(0.6, Dur::from_ms(4), 13).generate(
        &topo,
        &mut routing,
        &Empirical::web_search(),
    );
    let packets = udp_packet_train(&flows, MTU);
    let outcome = ReplayExperiment {
        topo: &topo,
        original_assign: SchedulerAssignment::uniform(SchedulerKind::Fifo),
        init: HeaderInit::LstfSlack,
        preemptive: false,
        record: RecordMode::EndToEnd,
        seed: 21,
    }
    .run(&packets, Dur::ZERO);
    let ratios = &outcome.report.queueing_ratios;
    if !ratios.is_empty() {
        // Figure 1's claim: replay queueing mostly no worse than original
        // (exact read: 1.0 is a sketch bucket edge).
        assert!(ratios.fraction_le(1.0) > 0.5);
    }
    let samples: Vec<FlowSample> = flows
        .iter()
        .map(|f| FlowSample {
            size: f.size,
            fct_secs: 0.01,
        })
        .collect();
    let buckets = mean_fct_by_bucket(&samples, &ups::metrics::FIG2_BUCKETS);
    let counted: usize = buckets.iter().map(|&(_, _, c)| c).sum();
    assert_eq!(counted, flows.len());
}
