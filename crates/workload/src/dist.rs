//! Flow-size and inter-arrival distributions.
//!
//! The paper draws flow sizes "from a heavy-tailed distribution [4, 5]"
//! and flow arrivals from a Poisson process (§2.3). We implement the
//! distributions inline (inverse-CDF sampling over a seeded `SmallRng`)
//! rather than pulling in `rand_distr`, keeping the dependency set to the
//! approved list and the sampling fully deterministic per seed.

use rand::rngs::SmallRng;
use rand::Rng;

/// A distribution over flow sizes in bytes.
pub trait SizeDist: std::fmt::Debug {
    /// Draw one flow size.
    fn sample(&self, rng: &mut SmallRng) -> u64;
    /// Expected value, used for utilization calibration.
    fn mean(&self) -> f64;
    /// Name for experiment logs.
    fn name(&self) -> &'static str;
}

/// Every flow has the same size.
#[derive(Debug, Clone, Copy)]
pub struct Fixed(pub u64);

impl SizeDist for Fixed {
    fn sample(&self, _rng: &mut SmallRng) -> u64 {
        self.0
    }
    fn mean(&self) -> f64 {
        self.0 as f64
    }
    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// Bounded Pareto: heavy-tailed with density ∝ x^{-α-1} on [min, max].
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    /// Tail index; the canonical heavy-tailed traffic value is 1.1–1.3.
    pub alpha: f64,
    /// Smallest flow (bytes).
    pub min: u64,
    /// Largest flow (bytes).
    pub max: u64,
}

impl BoundedPareto {
    /// Standard heavy-tailed traffic mix: α = 1.2, 1 packet … 30 MB.
    pub fn traffic_default() -> Self {
        BoundedPareto {
            alpha: 1.2,
            min: 1460,
            max: 30_000_000,
        }
    }
}

impl SizeDist for BoundedPareto {
    fn sample(&self, rng: &mut SmallRng) -> u64 {
        let a = self.alpha;
        let (l, h) = (self.min as f64, self.max as f64);
        let u: f64 = rng.gen_range(0.0..1.0);
        // Inverse CDF of the bounded Pareto.
        let x = (u * h.powf(a) - u * l.powf(a) - h.powf(a)) / (h.powf(a) * l.powf(a));
        let v = (-x).powf(-1.0 / a);
        (v as u64).clamp(self.min, self.max)
    }

    fn mean(&self) -> f64 {
        let a = self.alpha;
        let (l, h) = (self.min as f64, self.max as f64);
        if (a - 1.0).abs() < 1e-9 {
            // α = 1: mean = ln(h/l) · l·h/(h−l)
            (h * l / (h - l)) * (h / l).ln()
        } else {
            (l.powf(a) / (1.0 - (l / h).powf(a)))
                * (a / (a - 1.0))
                * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
        }
    }

    fn name(&self) -> &'static str {
        "bounded-pareto"
    }
}

/// Piecewise-linear empirical CDF over byte sizes — how pFabric-style
/// workloads are normally specified.
#[derive(Debug, Clone)]
pub struct Empirical {
    /// (size, cumulative probability), strictly increasing in both,
    /// last probability = 1.
    points: Vec<(u64, f64)>,
    label: &'static str,
}

impl Empirical {
    /// Build from (size, cumulative-probability) points.
    ///
    /// # Panics
    /// If the points are not strictly increasing or don't end at 1.0.
    pub fn new(points: Vec<(u64, f64)>, label: &'static str) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must increase");
            assert!(w[0].1 < w[1].1, "probabilities must increase");
        }
        assert!(
            (points.last().unwrap().1 - 1.0).abs() < 1e-9,
            "CDF must end at 1.0"
        );
        assert!(points[0].1 >= 0.0);
        Empirical { points, label }
    }

    /// A web-search-like heavy-tailed mix in the spirit of the pFabric
    /// workload the paper's Figure 2 buckets come from: ~60% of *flows*
    /// are short (≤ 10 kB) while most *bytes* sit in multi-megabyte flows.
    /// The support points align with Figure 2's x-axis buckets.
    pub fn web_search() -> Self {
        Empirical::new(
            vec![
                (1_460, 0.15),
                (2_920, 0.28),
                (4_380, 0.39),
                (7_300, 0.50),
                (10_220, 0.60),
                (58_400, 0.71),
                (105_120, 0.78),
                (2_000_020, 0.89),
                (17_330_203, 0.97),
                (30_762_200, 1.0),
            ],
            "web-search",
        )
    }

    /// A datacenter "data-mining"-like mix: even shorter flows, even
    /// heavier tail (used by the fat-tree Table 1 row).
    pub fn data_mining() -> Self {
        Empirical::new(
            vec![
                (100, 0.3),
                (1_460, 0.55),
                (10_000, 0.70),
                (100_000, 0.80),
                (1_000_000, 0.90),
                (10_000_000, 0.96),
                (100_000_000, 1.0),
            ],
            "data-mining",
        )
    }
}

impl SizeDist for Empirical {
    fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        // Find the first point with cdf >= u, interpolate from the prior.
        let mut prev = (0u64, 0.0f64);
        for &(size, cdf) in &self.points {
            if u <= cdf {
                let span = cdf - prev.1;
                let frac = if span > 0.0 { (u - prev.1) / span } else { 1.0 };
                let lo = prev.0 as f64;
                let hi = size as f64;
                return (lo + frac * (hi - lo)).round().max(1.0) as u64;
            }
            prev = (size, cdf);
        }
        self.points.last().unwrap().0
    }

    fn mean(&self) -> f64 {
        // Piecewise-linear CDF ⇒ uniform within segments; the mean is the
        // probability-weighted midpoint sum.
        let mut prev = (0u64, 0.0f64);
        let mut mean = 0.0;
        for &(size, cdf) in &self.points {
            let w = cdf - prev.1;
            mean += w * (prev.0 as f64 + size as f64) / 2.0;
            prev = (size, cdf);
        }
        mean
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

/// Exponential inter-arrival sampler (the Poisson process driver).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    /// Mean inter-arrival time in seconds.
    pub mean_secs: f64,
}

impl Exponential {
    /// Sample one inter-arrival gap in seconds.
    pub fn sample_secs(&self, rng: &mut SmallRng) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -self.mean_secs * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn empirical_mean_of<D: SizeDist>(d: &D, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r) as f64).sum::<f64>() / n as f64
    }

    #[test]
    fn fixed_is_fixed() {
        let d = Fixed(1500);
        assert_eq!(d.sample(&mut rng()), 1500);
        assert_eq!(d.mean(), 1500.0);
    }

    #[test]
    fn bounded_pareto_respects_bounds_and_mean() {
        let d = BoundedPareto::traffic_default();
        let mut r = rng();
        for _ in 0..10_000 {
            let s = d.sample(&mut r);
            assert!((d.min..=d.max).contains(&s), "sample {s} out of bounds");
        }
        let analytic = d.mean();
        let measured = empirical_mean_of(&d, 2_000_000);
        let rel = (measured - analytic).abs() / analytic;
        assert!(
            rel < 0.15,
            "Pareto mean mismatch: analytic {analytic}, measured {measured}"
        );
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        // The top 10% of samples should carry most of the bytes.
        let d = BoundedPareto::traffic_default();
        let mut r = rng();
        let mut v: Vec<u64> = (0..100_000).map(|_| d.sample(&mut r)).collect();
        v.sort_unstable();
        let total: u64 = v.iter().sum();
        let top10: u64 = v[v.len() * 9 / 10..].iter().sum();
        assert!(
            top10 as f64 / total as f64 > 0.5,
            "top decile carries {:.2}",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn empirical_web_search_matches_analytic_mean() {
        let d = Empirical::web_search();
        let analytic = d.mean();
        let measured = empirical_mean_of(&d, 1_000_000);
        let rel = (measured - analytic).abs() / analytic;
        assert!(rel < 0.05, "analytic {analytic}, measured {measured}");
        // Heavy tail sanity: mean far above median (~7 kB).
        assert!(analytic > 1_000_000.0, "web-search mean {analytic}");
    }

    #[test]
    fn empirical_respects_support() {
        let d = Empirical::web_search();
        let mut r = rng();
        for _ in 0..10_000 {
            let s = d.sample(&mut r);
            assert!((1..=30_762_200).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "must increase")]
    fn empirical_rejects_nonmonotonic() {
        let _ = Empirical::new(vec![(100, 0.5), (50, 1.0)], "bad");
    }

    #[test]
    #[should_panic(expected = "end at 1.0")]
    fn empirical_rejects_partial_cdf() {
        let _ = Empirical::new(vec![(100, 0.5), (200, 0.9)], "bad");
    }

    #[test]
    fn exponential_mean() {
        let e = Exponential { mean_secs: 0.01 };
        let mut r = rng();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| e.sample_secs(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 0.01).abs() / 0.01 < 0.02, "measured {mean}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = Empirical::web_search();
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..100).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..100).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
