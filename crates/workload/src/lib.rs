//! # ups-workload — traffic generation for the UPS evaluation
//!
//! The paper's workload model (§2.3): "Each end host generates UDP flows
//! using a Poisson inter-arrival model ... The flow sizes are picked from
//! a heavy-tailed distribution [4, 5]", scaled to a target core-link
//! utilization (10–90% across Table 1).
//!
//! * [`dist`] — flow-size distributions (bounded Pareto, empirical
//!   web-search / data-mining CDFs) and exponential inter-arrivals,
//! * [`flows`] — Poisson flow generation over host pairs with
//!   routing-matrix-based utilization calibration, plus Figure 4's
//!   long-lived flows,
//! * [`udp`] — open-loop packetization (NIC-paced packet trains),
//! * [`registry`] — enumerable named workload profiles + the shared
//!   calibrated-train builders the benches and `ups-sweep` grids use.
//!
//! Everything is seeded and deterministic; the same [`flows::FlowSpec`]
//! list drives both runs of a replay pair.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dist;
pub mod flows;
pub mod registry;
pub mod udp;

pub use dist::{BoundedPareto, Empirical, Exponential, Fixed, SizeDist};
pub use flows::{calibrate_flow_rate, long_lived_flows, FlowSpec, PoissonWorkload};
pub use registry::{profile_by_name, profile_names, CalibratedTrain, WorkloadProfile, PROFILES};
pub use udp::{total_bytes, udp_packet_stream, udp_packet_train, MTU};
