//! Packetizing flows into open-loop UDP packet trains.
//!
//! The replay experiments (§2.3) and the tail-latency experiment (§3.2)
//! "use UDP flows": a flow's packets are handed to the source host's NIC
//! when the flow starts and are paced onto the wire by the host link —
//! exactly the behaviour the paper leans on when explaining the
//! `I2:1Gbps-1Gbps` row ("packets are paced by the endhost link").

use ups_netsim::prelude::{Packet, PacketBuilder, PacketId};

use crate::flows::FlowSpec;

/// Standard MTU used throughout the evaluation.
pub const MTU: u32 = 1500;

/// Expand flows into injectable packets, in flow-start order, with dense
/// packet ids starting at 0.
///
/// Each packet carries `header.flow_size` (for SJF) and
/// `header.remaining` (bytes outstanding *including* this packet, for
/// SRPT) — stamped here because the paper's SJF/SRPT originals rely on
/// source-provided priorities.
pub fn udp_packet_train(flows: &[FlowSpec], mtu: u32) -> Vec<Packet> {
    udp_packet_stream(flows, mtu).collect()
}

/// Lazy form of [`udp_packet_train`]: the same packets, one at a time, so
/// a multi-million-packet train can feed
/// [`Simulator::run_with_injections`](ups_netsim::prelude::Simulator::run_with_injections)
/// without ever existing as a `Vec`.
///
/// The yield order is the canonical stream order `(i(p), id)`: flows are
/// packetized in slice order (the workload generators emit them sorted by
/// start time), every packet of a flow shares the flow's start as its
/// injection time, and ids are dense in yield order.
pub fn udp_packet_stream<'a>(flows: &'a [FlowSpec], mtu: u32) -> impl Iterator<Item = Packet> + 'a {
    assert!(mtu > 0);
    let mut next_id = 0u64;
    flows.iter().flat_map(move |flow| {
        assert!(
            flow.size != u64::MAX,
            "long-lived flows need a closed-loop transport, not a UDP train"
        );
        // Reserve this flow's dense id range up front so the outer
        // counter and the inner lazy iterator don't share state.
        let mut id = next_id;
        next_id += flow.size.div_ceil(mtu as u64);
        let mut remaining = flow.size;
        let mut seq = 0u64;
        std::iter::from_fn(move || {
            if remaining == 0 {
                return None;
            }
            let size = remaining.min(mtu as u64) as u32;
            let p = PacketBuilder::new(PacketId(id), flow.id, size, flow.path.clone(), flow.start)
                .seq(seq)
                .flow_bytes(flow.size, remaining)
                .build();
            id += 1;
            seq += size as u64;
            remaining -= size as u64;
            Some(p)
        })
    })
}

/// Total bytes across a packet list — workload sanity checks.
pub fn total_bytes(packets: &[Packet]) -> u64 {
    packets.iter().map(|p| p.size as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::FlowSpec;
    use std::sync::Arc;
    use ups_netsim::prelude::{FlowId, NodeId, SimTime};

    fn flow(id: u64, size: u64) -> FlowSpec {
        let path: Arc<[NodeId]> = vec![NodeId(0), NodeId(1)].into();
        FlowSpec {
            id: FlowId(id),
            src: NodeId(0),
            dst: NodeId(1),
            size,
            start: SimTime::from_us(id),
            path,
        }
    }

    #[test]
    fn splits_on_mtu_with_remainder() {
        let packets = udp_packet_train(&[flow(0, 3200)], 1500);
        assert_eq!(packets.len(), 3);
        assert_eq!(packets[0].size, 1500);
        assert_eq!(packets[1].size, 1500);
        assert_eq!(packets[2].size, 200);
        assert_eq!(total_bytes(&packets), 3200);
        // Sequence numbers are byte offsets.
        assert_eq!(
            packets.iter().map(|p| p.seq).collect::<Vec<_>>(),
            vec![0, 1500, 3000]
        );
    }

    #[test]
    fn srpt_remaining_decreases_sjf_size_constant() {
        let packets = udp_packet_train(&[flow(0, 4000)], 1500);
        assert_eq!(
            packets
                .iter()
                .map(|p| p.header.remaining)
                .collect::<Vec<_>>(),
            vec![4000, 2500, 1000]
        );
        assert!(packets.iter().all(|p| p.header.flow_size == 4000));
    }

    #[test]
    fn ids_dense_across_flows_and_start_times_kept() {
        let packets = udp_packet_train(&[flow(0, 1500), flow(1, 3000)], 1500);
        assert_eq!(
            packets.iter().map(|p| p.id.0).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(packets[0].injected_at, SimTime::from_us(0));
        assert_eq!(packets[1].injected_at, SimTime::from_us(1));
        assert_eq!(packets[2].injected_at, SimTime::from_us(1));
    }

    #[test]
    fn single_byte_flow() {
        let packets = udp_packet_train(&[flow(0, 1)], 1500);
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].size, 1);
    }

    #[test]
    #[should_panic(expected = "long-lived")]
    fn rejects_infinite_flows() {
        let _ = udp_packet_train(&[flow(0, u64::MAX)], 1500);
    }
}
