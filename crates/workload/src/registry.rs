//! An enumerable registry of named workload profiles, plus the shared
//! calibrated-workload builders the benches and the sweep engine use.
//!
//! A *profile* names a flow-size distribution; combined with a topology,
//! a utilization target, an arrival window and a seed it fully determines
//! a packet set (Poisson arrivals over random host pairs, calibrated
//! against the topology's core links — §2.3 of the paper). Grids in
//! `ups-sweep` reference profiles by name.

use ups_netsim::prelude::{Dur, Packet};
use ups_topology::{Routing, Topology};

use crate::dist::{BoundedPareto, Empirical, Fixed, SizeDist};
use crate::flows::{FlowSpec, PoissonWorkload};
use crate::udp::{udp_packet_train, MTU};

/// One named workload profile.
pub struct WorkloadProfile {
    /// Stable registry name (grids reference this).
    pub name: &'static str,
    /// One-line description for listings.
    pub description: &'static str,
    sizes: fn() -> Box<dyn SizeDist>,
}

/// Every registered profile, in listing order.
pub const PROFILES: &[WorkloadProfile] = &[
    WorkloadProfile {
        name: "web-search",
        description: "empirical web-search flow sizes [4] (paper default)",
        sizes: || Box::new(Empirical::web_search()),
    },
    WorkloadProfile {
        name: "data-mining",
        description: "empirical data-mining flow sizes [5]",
        sizes: || Box::new(Empirical::data_mining()),
    },
    WorkloadProfile {
        name: "pareto",
        description: "bounded-Pareto heavy tail",
        sizes: || Box::new(BoundedPareto::traffic_default()),
    },
    WorkloadProfile {
        name: "fixed-mtu",
        description: "every flow exactly one MTU (pure scheduling stress)",
        sizes: || Box::new(Fixed(MTU as u64)),
    },
];

/// All registered names, in listing order.
pub fn profile_names() -> Vec<&'static str> {
    PROFILES.iter().map(|p| p.name).collect()
}

/// Look a profile up by name.
pub fn profile_by_name(name: &str) -> Option<&'static WorkloadProfile> {
    PROFILES.iter().find(|p| p.name == name)
}

/// A packetized, utilization-calibrated workload.
pub struct CalibratedTrain {
    /// Injectable packets, in flow-start order with dense ids.
    pub packets: Vec<Packet>,
    /// Number of flows the packets came from.
    pub flows: usize,
    /// The arrival window actually used (relevant when grown to a floor).
    pub window: Dur,
}

impl WorkloadProfile {
    /// Instantiate this profile's size distribution.
    pub fn sizes(&self) -> Box<dyn SizeDist> {
        (self.sizes)()
    }

    /// Generate the calibrated Poisson flow list for this profile.
    pub fn flows(
        &self,
        topo: &Topology,
        routing: &mut Routing,
        utilization: f64,
        window: Dur,
        seed: u64,
    ) -> Vec<FlowSpec> {
        let sizes = self.sizes();
        PoissonWorkload::at_utilization(utilization, window, seed).generate(
            topo,
            routing,
            sizes.as_ref(),
        )
    }

    /// Flows + UDP packet train in one step.
    pub fn udp_train(
        &self,
        topo: &Topology,
        utilization: f64,
        window: Dur,
        seed: u64,
    ) -> CalibratedTrain {
        let mut routing = Routing::new(topo);
        let flows = self.flows(topo, &mut routing, utilization, window, seed);
        let packets = udp_packet_train(&flows, MTU);
        CalibratedTrain {
            packets,
            flows: flows.len(),
            window,
        }
    }

    /// Grow the arrival window (doubling from `start_window`) until the
    /// packetized workload clears `min_packets` — the calibration loop the
    /// throughput benchmark and scale experiments share.
    ///
    /// # Panics
    /// If the floor is still unmet at 1024× the starting window.
    pub fn udp_train_with_floor(
        &self,
        topo: &Topology,
        utilization: f64,
        min_packets: usize,
        start_window: Dur,
        seed: u64,
    ) -> CalibratedTrain {
        let mut window = start_window;
        loop {
            let train = self.udp_train(topo, utilization, window, seed);
            if train.packets.len() >= min_packets {
                return train;
            }
            window = window.times(2);
            assert!(
                window <= start_window.times(1024),
                "workload never reached the {min_packets}-packet floor"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_netsim::prelude::Bandwidth;
    use ups_topology::line;

    fn tiny_topo() -> Topology {
        line(2, Bandwidth::from_gbps(1), Dur::from_us(10))
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let names = profile_names();
        for (i, n) in names.iter().enumerate() {
            assert!(!names[i + 1..].contains(n), "duplicate profile {n}");
            assert!(profile_by_name(n).is_some());
        }
        assert!(profile_by_name("bimodal").is_none());
    }

    #[test]
    fn profiles_generate_deterministic_trains() {
        let topo = tiny_topo();
        for p in PROFILES {
            // Window sized for the profile's mean: the empirical mixes
            // have multi-MB means, so a 2-host line needs a long window
            // before the Poisson process emits anything.
            let window = Dur::from_ms(if p.name == "fixed-mtu" { 2 } else { 400 });
            let a = p.udp_train(&topo, 0.5, window, 7);
            let b = p.udp_train(&topo, 0.5, window, 7);
            assert_eq!(a.packets.len(), b.packets.len(), "{}", p.name);
            assert!(!a.packets.is_empty(), "{} generated nothing", p.name);
            assert_eq!(a.flows, b.flows);
        }
    }

    #[test]
    fn floor_growth_reaches_target() {
        let topo = tiny_topo();
        let profile = profile_by_name("fixed-mtu").unwrap();
        let train = profile.udp_train_with_floor(&topo, 0.5, 2_000, Dur::from_ms(1), 3);
        assert!(train.packets.len() >= 2_000);
        assert!(train.window > Dur::from_ms(1), "window must have grown");
    }
}
