//! An enumerable registry of named workload profiles, plus the shared
//! calibrated-workload builders the benches and the sweep engine use.
//!
//! A *profile* names a flow-size distribution; combined with a topology,
//! a utilization target, an arrival window and a seed it fully determines
//! a packet set (Poisson arrivals over random host pairs, calibrated
//! against the topology's core links — §2.3 of the paper). Grids in
//! `ups-sweep` reference profiles by name.

use ups_netsim::prelude::{Dur, Packet};
use ups_topology::{Routing, Topology};

use crate::dist::{BoundedPareto, Empirical, Fixed, SizeDist};
use crate::flows::{long_lived_flows, FlowSpec, PoissonWorkload};
use crate::udp::{udp_packet_train, MTU};

/// How a profile turns (topology, utilization, window, seed) into flows.
enum ProfileKind {
    /// Utilization-calibrated Poisson arrivals with sizes drawn from the
    /// named distribution — realizable open-loop (UDP trains) or
    /// closed-loop (TCP endpoints).
    Poisson(fn() -> Box<dyn SizeDist>),
    /// Persistent (`size == u64::MAX`) flows that never finish — the
    /// Figure 4 regime. Only a closed-loop transport can realize these;
    /// the flow count scales with the utilization axis (see
    /// [`WorkloadProfile::flows`]).
    LongLived,
}

/// One named workload profile.
pub struct WorkloadProfile {
    /// Stable registry name (grids reference this).
    pub name: &'static str,
    /// One-line description for listings.
    pub description: &'static str,
    kind: ProfileKind,
}

/// Every registered profile, in listing order.
pub const PROFILES: &[WorkloadProfile] = &[
    WorkloadProfile {
        name: "web-search",
        description: "empirical web-search flow sizes [4] (paper default)",
        kind: ProfileKind::Poisson(|| Box::new(Empirical::web_search())),
    },
    WorkloadProfile {
        name: "data-mining",
        description: "empirical data-mining flow sizes [5]",
        kind: ProfileKind::Poisson(|| Box::new(Empirical::data_mining())),
    },
    WorkloadProfile {
        name: "pareto",
        description: "bounded-Pareto heavy tail",
        kind: ProfileKind::Poisson(|| Box::new(BoundedPareto::traffic_default())),
    },
    WorkloadProfile {
        name: "fixed-mtu",
        description: "every flow exactly one MTU (pure scheduling stress)",
        kind: ProfileKind::Poisson(|| Box::new(Fixed(MTU as u64))),
    },
    WorkloadProfile {
        name: "long-lived",
        description: "persistent flows, never complete (closed-loop only; Fig. 4 regime)",
        kind: ProfileKind::LongLived,
    },
];

/// All registered names, in listing order.
pub fn profile_names() -> Vec<&'static str> {
    PROFILES.iter().map(|p| p.name).collect()
}

/// Look a profile up by name.
pub fn profile_by_name(name: &str) -> Option<&'static WorkloadProfile> {
    PROFILES.iter().find(|p| p.name == name)
}

/// A packetized, utilization-calibrated workload.
pub struct CalibratedTrain {
    /// Injectable packets, in flow-start order with dense ids.
    pub packets: Vec<Packet>,
    /// Number of flows the packets came from.
    pub flows: usize,
    /// The arrival window actually used (relevant when grown to a floor).
    pub window: Dur,
}

impl WorkloadProfile {
    /// True when only a closed-loop transport can realize this profile
    /// (its flows never complete, so there is no finite packet train).
    /// Grids must reject `open-loop × closed-loop-only` combinations.
    pub fn closed_loop_only(&self) -> bool {
        matches!(self.kind, ProfileKind::LongLived)
    }

    /// Instantiate this profile's size distribution.
    ///
    /// # Panics
    /// For closed-loop-only profiles, which have no size distribution.
    pub fn sizes(&self) -> Box<dyn SizeDist> {
        match self.kind {
            ProfileKind::Poisson(sizes) => sizes(),
            ProfileKind::LongLived => {
                panic!(
                    "profile {:?} has no size distribution (long-lived)",
                    self.name
                )
            }
        }
    }

    /// Generate the flow list for this profile.
    ///
    /// Poisson profiles calibrate the arrival rate so expected mean
    /// core-link utilization hits the target. Long-lived profiles
    /// instead scale the *flow count* with the utilization axis
    /// (`⌈2 · hosts · utilization⌉`, at least 2) and jitter starts over
    /// the window — more "utilization" means more competing persistent
    /// flows, the quantity Figure 4 varies.
    pub fn flows(
        &self,
        topo: &Topology,
        routing: &mut Routing,
        utilization: f64,
        window: Dur,
        seed: u64,
    ) -> Vec<FlowSpec> {
        match self.kind {
            ProfileKind::Poisson(sizes) => {
                let sizes = sizes();
                PoissonWorkload::at_utilization(utilization, window, seed).generate(
                    topo,
                    routing,
                    sizes.as_ref(),
                )
            }
            ProfileKind::LongLived => {
                let n = ((topo.hosts().len() as f64 * 2.0 * utilization).ceil() as usize).max(2);
                long_lived_flows(topo, routing, n, window, seed)
            }
        }
    }

    /// Flows + UDP packet train in one step.
    ///
    /// # Panics
    /// For closed-loop-only profiles (no finite train exists).
    pub fn udp_train(
        &self,
        topo: &Topology,
        utilization: f64,
        window: Dur,
        seed: u64,
    ) -> CalibratedTrain {
        let mut routing = Routing::new(topo);
        let flows = self.flows(topo, &mut routing, utilization, window, seed);
        let packets = udp_packet_train(&flows, MTU);
        CalibratedTrain {
            packets,
            flows: flows.len(),
            window,
        }
    }

    /// Grow the arrival window (doubling from `start_window`) until the
    /// packetized workload clears `min_packets` — the calibration loop the
    /// throughput benchmark and scale experiments share.
    ///
    /// # Panics
    /// If the floor is still unmet at 1024× the starting window.
    pub fn udp_train_with_floor(
        &self,
        topo: &Topology,
        utilization: f64,
        min_packets: usize,
        start_window: Dur,
        seed: u64,
    ) -> CalibratedTrain {
        let mut window = start_window;
        loop {
            let train = self.udp_train(topo, utilization, window, seed);
            if train.packets.len() >= min_packets {
                return train;
            }
            window = window.times(2);
            assert!(
                window <= start_window.times(1024),
                "workload never reached the {min_packets}-packet floor"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_netsim::prelude::{Bandwidth, SimTime};
    use ups_topology::line;

    fn tiny_topo() -> Topology {
        line(2, Bandwidth::from_gbps(1), Dur::from_us(10))
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let names = profile_names();
        for (i, n) in names.iter().enumerate() {
            assert!(!names[i + 1..].contains(n), "duplicate profile {n}");
            assert!(profile_by_name(n).is_some());
        }
        assert!(profile_by_name("bimodal").is_none());
    }

    #[test]
    fn profiles_generate_deterministic_trains() {
        let topo = tiny_topo();
        for p in PROFILES.iter().filter(|p| !p.closed_loop_only()) {
            // Window sized for the profile's mean: the empirical mixes
            // have multi-MB means, so a 2-host line needs a long window
            // before the Poisson process emits anything.
            let window = Dur::from_ms(if p.name == "fixed-mtu" { 2 } else { 400 });
            let a = p.udp_train(&topo, 0.5, window, 7);
            let b = p.udp_train(&topo, 0.5, window, 7);
            assert_eq!(a.packets.len(), b.packets.len(), "{}", p.name);
            assert!(!a.packets.is_empty(), "{} generated nothing", p.name);
            assert_eq!(a.flows, b.flows);
        }
    }

    #[test]
    fn long_lived_profile_is_closed_loop_only_and_scales_with_utilization() {
        let p = profile_by_name("long-lived").unwrap();
        assert!(p.closed_loop_only());
        assert!(!profile_by_name("web-search").unwrap().closed_loop_only());
        let topo = tiny_topo();
        let mut routing = ups_topology::Routing::new(&topo);
        let lo = p.flows(&topo, &mut routing, 0.3, Dur::from_ms(5), 3);
        let hi = p.flows(&topo, &mut routing, 0.9, Dur::from_ms(5), 3);
        assert!(lo.len() >= 2);
        assert!(hi.len() >= lo.len(), "{} vs {}", hi.len(), lo.len());
        for f in lo.iter().chain(&hi) {
            assert_eq!(f.size, u64::MAX, "long-lived flows never complete");
            assert!(f.start <= SimTime::from_ms(5));
        }
        // Deterministic per seed.
        let again = p.flows(&topo, &mut routing, 0.3, Dur::from_ms(5), 3);
        assert_eq!(lo.len(), again.len());
        assert!(lo
            .iter()
            .zip(&again)
            .all(|(a, b)| (a.src, a.dst, a.start) == (b.src, b.dst, b.start)));
    }

    #[test]
    fn floor_growth_reaches_target() {
        let topo = tiny_topo();
        let profile = profile_by_name("fixed-mtu").unwrap();
        let train = profile.udp_train_with_floor(&topo, 0.5, 2_000, Dur::from_ms(1), 3);
        assert!(train.packets.len() >= 2_000);
        assert!(train.window > Dur::from_ms(1), "window must have grown");
    }
}
