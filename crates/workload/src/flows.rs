//! Flow generation: Poisson arrivals between random host pairs, with
//! utilization calibration against the topology's core links (§2.3's
//! experiment setup).

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ups_netsim::prelude::{Dur, FlowId, NodeId, SimTime, PS_PER_SEC};
use ups_topology::{NodeRole, Routing, Topology};

use crate::dist::{Exponential, SizeDist};

/// One application flow to be realized by a transport (UDP packet train or
/// TCP connection).
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Dense flow id.
    pub id: FlowId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Total bytes; `u64::MAX` means long-lived / infinite (Figure 4).
    pub size: u64,
    /// When the application starts the flow.
    pub start: SimTime,
    /// Precomputed route.
    pub path: Arc<[NodeId]>,
}

/// Parameters for the Poisson workload of §2.3.
#[derive(Debug, Clone)]
pub struct PoissonWorkload {
    /// Target mean utilization of the topology's core links, e.g. 0.7.
    pub target_utilization: f64,
    /// How long flows keep arriving.
    pub duration: Dur,
    /// RNG seed (flow arrivals, pair choice and sizes).
    pub seed: u64,
}

impl PoissonWorkload {
    /// The paper's default scenario: 70% utilization.
    pub fn at_utilization(target_utilization: f64, duration: Dur, seed: u64) -> Self {
        assert!(
            target_utilization > 0.0 && target_utilization < 1.5,
            "utilization {target_utilization} out of range"
        );
        PoissonWorkload {
            target_utilization,
            duration,
            seed,
        }
    }

    /// Generate the flow list over `topo`, calibrated so the *expected*
    /// mean core-link utilization equals the target (see
    /// [`calibrate_flow_rate`]).
    pub fn generate(
        &self,
        topo: &Topology,
        routing: &mut Routing,
        sizes: &dyn SizeDist,
    ) -> Vec<FlowSpec> {
        let hosts = topo.hosts();
        assert!(hosts.len() >= 2, "need at least two hosts");
        let rate = calibrate_flow_rate(topo, routing, sizes.mean(), self.target_utilization);
        let exp = Exponential {
            mean_secs: 1.0 / rate,
        };
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut flows = Vec::new();
        let mut t_secs = 0.0f64;
        let horizon = self.duration.as_secs_f64();
        loop {
            t_secs += exp.sample_secs(&mut rng);
            if t_secs >= horizon {
                break;
            }
            let src = hosts[rng.gen_range(0..hosts.len())];
            let dst = loop {
                let d = hosts[rng.gen_range(0..hosts.len())];
                if d != src {
                    break d;
                }
            };
            let size = sizes.sample(&mut rng).max(1);
            let start = SimTime::from_ps((t_secs * PS_PER_SEC as f64) as u64);
            flows.push(FlowSpec {
                id: FlowId(flows.len() as u64),
                src,
                dst,
                size,
                start,
                path: routing.path(src, dst),
            });
        }
        flows
    }
}

/// Flows-per-second so that the expected **mean** utilization over core
/// links equals `target`.
///
/// With hosts picked uniformly, the probability an ordered host pair's
/// path crosses core link `l` is `f_l = |{pairs via l}| / |pairs|`; the
/// expected offered load on `l` is `λ · mean_flow_bits · f_l`, so
///
/// ```text
/// mean_util = (λ·F/L) · Σ_l f_l/bw_l   ⇒   λ = target·L / (F · Σ_l f_l/bw_l)
/// ```
///
/// On irregular meshes the *hottest* core link sits above the mean
/// (≈1.5× on our Internet2 even with ECMP spreading), so high targets
/// transiently overload it — which is the regime the paper's §2.3(2)
/// discussion describes (more queueing ⇒ more slack ⇒ easier replay at
/// 90%). Experiments use finite arrival windows, so queues always drain.
pub fn calibrate_flow_rate(
    topo: &Topology,
    routing: &mut Routing,
    mean_flow_bytes: f64,
    target: f64,
) -> f64 {
    let hosts = topo.hosts();
    let core: Vec<(NodeId, NodeId, f64)> = topo
        .core_links()
        .iter()
        .map(|l| (l.a, l.b, l.bandwidth.as_bps() as f64))
        .collect();
    // Fall back to *all* links if the topology has no core-core links
    // (dumbbells, lines): calibrate on the global bottleneck instead.
    let use_all = core.is_empty();
    let links: Vec<(NodeId, NodeId, f64)> = if use_all {
        topo.links()
            .iter()
            .filter(|l| topo.role(l.a) != NodeRole::Host && topo.role(l.b) != NodeRole::Host)
            .map(|l| (l.a, l.b, l.bandwidth.as_bps() as f64))
            .collect()
    } else {
        core
    };
    assert!(!links.is_empty(), "no router-router links to calibrate on");

    let n_pairs = (hosts.len() * (hosts.len() - 1)) as f64;
    // Count path crossings per link (unordered match on consecutive nodes).
    let mut crossings = vec![0u64; links.len()];
    for &s in &hosts {
        for &d in &hosts {
            if s == d {
                continue;
            }
            let path = routing.path(s, d);
            for w in path.windows(2) {
                for (i, &(a, b, _)) in links.iter().enumerate() {
                    if (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a) {
                        crossings[i] += 1;
                    }
                }
            }
        }
    }
    let sum_f_over_bw: f64 = links
        .iter()
        .zip(&crossings)
        .map(|(&(_, _, bw), &c)| (c as f64 / n_pairs) / bw)
        .sum();
    let mean_flow_bits = mean_flow_bytes * 8.0;
    let lambda = target * links.len() as f64 / (mean_flow_bits * sum_f_over_bw);
    assert!(lambda.is_finite() && lambda > 0.0, "calibration failed");
    lambda
}

/// `n` long-lived flows with uniformly jittered starts in `[0, max_jitter]`
/// — Figure 4's 90 long-lived TCP flows. Hosts are used round-robin as
/// sources with destinations offset by half the host count, giving every
/// core link a deterministic multi-flow load.
pub fn long_lived_flows(
    topo: &Topology,
    routing: &mut Routing,
    n: usize,
    max_jitter: Dur,
    seed: u64,
) -> Vec<FlowSpec> {
    let hosts = topo.hosts();
    assert!(hosts.len() >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let half = hosts.len() / 2;
    (0..n)
        .map(|i| {
            let src = hosts[i % hosts.len()];
            let dst = hosts[(i + half.max(1)) % hosts.len()];
            let jitter = rng.gen_range(0..=max_jitter.as_ps());
            FlowSpec {
                id: FlowId(i as u64),
                src,
                dst,
                size: u64::MAX,
                start: SimTime::from_ps(jitter),
                path: routing.path(src, dst),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Empirical, Fixed};
    use ups_topology::{i2_default, internet2, Internet2Params};

    fn small_i2() -> Topology {
        internet2(Internet2Params {
            edges_per_core: 2,
            ..Internet2Params::default()
        })
    }

    #[test]
    fn poisson_generates_flows_within_horizon() {
        let topo = small_i2();
        let mut routing = Routing::new(&topo);
        let wl = PoissonWorkload::at_utilization(0.7, Dur::from_ms(10), 1);
        let flows = wl.generate(&topo, &mut routing, &Empirical::web_search());
        assert!(!flows.is_empty());
        for f in &flows {
            assert!(f.start < SimTime::from_ms(10));
            assert_ne!(f.src, f.dst);
            assert_eq!(f.path[0], f.src);
            assert_eq!(*f.path.last().unwrap(), f.dst);
            assert!(f.size >= 1);
        }
        // Flow ids dense.
        assert_eq!(flows.last().unwrap().id.0 as usize, flows.len() - 1);
    }

    #[test]
    fn higher_utilization_means_more_flows() {
        let topo = small_i2();
        let mut routing = Routing::new(&topo);
        let lo = PoissonWorkload::at_utilization(0.1, Dur::from_ms(20), 3).generate(
            &topo,
            &mut routing,
            &Fixed(100_000),
        );
        let hi = PoissonWorkload::at_utilization(0.9, Dur::from_ms(20), 3).generate(
            &topo,
            &mut routing,
            &Fixed(100_000),
        );
        assert!(
            hi.len() > lo.len() * 5,
            "10% -> {} flows, 90% -> {} flows",
            lo.len(),
            hi.len()
        );
    }

    #[test]
    fn calibration_scales_inversely_with_flow_size() {
        let topo = small_i2();
        let mut routing = Routing::new(&topo);
        let r1 = calibrate_flow_rate(&topo, &mut routing, 10_000.0, 0.7);
        let r2 = calibrate_flow_rate(&topo, &mut routing, 20_000.0, 0.7);
        assert!((r1 / r2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_pins_the_mean_core_utilization_to_target() {
        // Recompute expected utilization per core link from the
        // calibrated rate: the maximum must equal the target exactly, and
        // no link may exceed it.
        let topo = i2_default();
        let mut routing = Routing::new(&topo);
        let mean_bytes = 50_000.0;
        let target = 0.7;
        let lambda = calibrate_flow_rate(&topo, &mut routing, mean_bytes, target);

        let hosts = topo.hosts();
        let n_pairs = (hosts.len() * (hosts.len() - 1)) as f64;
        let mut utils = Vec::new();
        for l in topo.core_links() {
            let mut crossings = 0u64;
            for &s in &hosts {
                for &d in &hosts {
                    if s == d {
                        continue;
                    }
                    let path = routing.path(s, d);
                    if path
                        .windows(2)
                        .any(|w| (w[0] == l.a && w[1] == l.b) || (w[0] == l.b && w[1] == l.a))
                    {
                        crossings += 1;
                    }
                }
            }
            let load = lambda * mean_bytes * 8.0 * crossings as f64 / n_pairs;
            utils.push(load / l.bandwidth.as_bps() as f64);
        }
        let mean: f64 = utils.iter().sum::<f64>() / utils.len() as f64;
        assert!(
            (mean - target).abs() < 1e-6,
            "mean core utilization expected {target}, got {mean}"
        );
        // ECMP keeps the hot-link overshoot bounded (~2.1x the mean on
        // this mesh; a regression canary for the routing spread).
        let max_util = utils.iter().copied().fold(0.0f64, f64::max);
        assert!(
            max_util < 2.3 * target,
            "hot link {max_util} at mean target {target}: routing too skewed"
        );
    }

    #[test]
    fn long_lived_flows_shape() {
        let topo = small_i2();
        let mut routing = Routing::new(&topo);
        let flows = long_lived_flows(&topo, &mut routing, 90, Dur::from_ms(5), 4);
        assert_eq!(flows.len(), 90);
        for f in &flows {
            assert_eq!(f.size, u64::MAX);
            assert!(f.start <= SimTime::from_ms(5));
            assert_ne!(f.src, f.dst);
        }
        // Starts are jittered, not identical.
        let distinct: std::collections::HashSet<u64> =
            flows.iter().map(|f| f.start.as_ps()).collect();
        assert!(distinct.len() > 50);
    }

    #[test]
    fn generation_is_deterministic() {
        let topo = small_i2();
        let mut routing = Routing::new(&topo);
        let wl = PoissonWorkload::at_utilization(0.5, Dur::from_ms(5), 77);
        let a = wl.generate(&topo, &mut routing, &Empirical::web_search());
        let b = wl.generate(&topo, &mut routing, &Empirical::web_search());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.src, x.dst, x.size, x.start),
                (y.src, y.dst, y.size, y.start)
            );
        }
    }
}
