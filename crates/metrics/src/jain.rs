//! Jain's fairness index (Figure 4's metric, [17]).

/// Jain's fairness index over per-flow allocations:
/// `(Σx)² / (n · Σx²)`. 1.0 = perfectly fair, 1/n = maximally unfair.
/// Zero-allocation flows count (a flow receiving nothing *is* unfairness).
pub fn jain_index(allocations: &[f64]) -> f64 {
    if allocations.is_empty() {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        // All-zero: conventionally fair (nobody got anything).
        return 1.0;
    }
    sum * sum / (allocations.len() as f64 * sum_sq)
}

/// Fairness over time: `per_flow_bytes[f][t]` = bytes flow `f` received in
/// time bucket `t` (Figure 4 computes the index "from the throughput each
/// flow receives per millisecond"). Returns one index per bucket.
pub fn jain_series(per_flow_bytes: &[Vec<u64>]) -> Vec<f64> {
    if per_flow_bytes.is_empty() {
        return Vec::new();
    }
    let buckets = per_flow_bytes.iter().map(|f| f.len()).max().unwrap_or(0);
    (0..buckets)
        .map(|t| {
            let allocs: Vec<f64> = per_flow_bytes
                .iter()
                .map(|f| f.get(t).copied().unwrap_or(0) as f64)
                .collect();
            jain_index(&allocs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_fair() {
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn maximally_unfair() {
        let n = 10;
        let mut allocs = vec![0.0; n];
        allocs[0] = 7.0;
        assert!((jain_index(&allocs) - 1.0 / n as f64).abs() < 1e-12);
    }

    #[test]
    fn known_value() {
        // (1+2+3)²/(3·(1+4+9)) = 36/42.
        assert!((jain_index(&[1.0, 2.0, 3.0]) - 36.0 / 42.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn series_tracks_convergence() {
        // Flow 1 starts late; fairness rises once both are active.
        let f1 = vec![0, 0, 500, 500];
        let f2 = vec![1000, 1000, 500, 500];
        let s = jain_series(&[f1, f2]);
        assert_eq!(s.len(), 4);
        assert!(s[0] < 0.51);
        assert!((s[3] - 1.0).abs() < 1e-12);
        assert!(s.windows(2).all(|w| w[1] >= w[0] - 1e-12));
    }

    #[test]
    fn series_handles_ragged_rows() {
        let s = jain_series(&[vec![10, 10], vec![10]]);
        assert_eq!(s.len(), 2);
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert!(s[1] < 1.0);
    }
}
