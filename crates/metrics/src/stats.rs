//! Basic descriptive statistics, CDFs and CCDFs.

/// Arithmetic mean; 0 for empty input (callers report counts alongside).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Nearest-rank percentile (`q` in `[0, 1]`) over unsorted data.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    assert!(!xs.is_empty(), "percentile of empty data");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
    v[rank - 1]
}

/// An empirical cumulative distribution over `f64` samples.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (any order).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were provided.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P[X ≤ x]`.
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse: the `q`-quantile value.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile(&self.sorted, q)
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        mean(&self.sorted)
    }

    /// Evaluate the CDF at each of `xs` — one (x, P[X ≤ x]) series row per
    /// probe point; how Figure 1's curves are exported.
    pub fn series(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.fraction_le(x))).collect()
    }

    /// Complementary series `P[X > x]` (Figure 3 is a CCDF).
    pub fn ccdf_series(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, 1.0 - self.fraction_le(x))).collect()
    }
}

/// Fraction of items satisfying a predicate; 0 on empty input.
pub fn fraction_where<T>(items: &[T], pred: impl Fn(&T) -> bool) -> f64 {
    if items.is_empty() {
        return 0.0;
    }
    items.iter().filter(|x| pred(x)).count() as f64 / items.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentile() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(mean(&xs), 3.0);
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.99), 5.0);
    }

    #[test]
    fn cdf_fractions() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.fraction_le(0.5), 0.0);
        assert_eq!(c.fraction_le(1.0), 0.25);
        assert_eq!(c.fraction_le(2.5), 0.5);
        assert_eq!(c.fraction_le(10.0), 1.0);
        assert_eq!(c.quantile(0.5), 2.0);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn cdf_and_ccdf_series() {
        let c = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        let s = c.series(&[1.0, 4.0]);
        assert_eq!(s, vec![(1.0, 0.25), (4.0, 1.0)]);
        let cc = c.ccdf_series(&[1.0, 4.0]);
        assert_eq!(cc, vec![(1.0, 0.75), (4.0, 0.0)]);
    }

    #[test]
    fn fraction_where_counts() {
        let xs = [1, 2, 3, 4];
        assert_eq!(fraction_where(&xs, |&x| x > 2), 0.5);
        let empty: [i32; 0] = [];
        assert_eq!(fraction_where(&empty, |_| true), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 0.5);
    }
}
