//! Plain-text table and series rendering for the experiment harness.
//!
//! The bench binaries print paper-style rows (`Table 1`, `Figure N`
//! series) to stdout; these helpers keep the formatting consistent and
//! snapshot-testable.

/// A simple left-aligned ASCII table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                line.push_str(&" ".repeat(width[i] - c.len()));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Render an (x, y) series as `label: x=..., y=...` lines — the bench
/// output format for figure curves.
pub fn render_series(label: &str, series: &[(f64, f64)]) -> String {
    let mut out = String::new();
    for (x, y) in series {
        out.push_str(&format!("{label}\t{x:.6}\t{y:.6}\n"));
    }
    out
}

/// Format a fraction as a paper-style decimal (4 significant places, like
/// Table 1's `0.0021`).
pub fn frac(x: f64) -> String {
    if x == 0.0 {
        "0.0".to_string()
    } else if x < 1e-4 {
        format!("{x:.1e}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["Scenario", "Overdue"]);
        t.row(&["default".into(), "0.0021".into()]);
        t.row(&["long-scenario-name".into(), "0.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Scenario"));
        assert!(lines[2].starts_with("default "));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_wrong_width() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn series_format() {
        let s = render_series("fifo", &[(0.5, 0.25)]);
        assert_eq!(s, "fifo\t0.500000\t0.250000\n");
    }

    #[test]
    fn frac_formats() {
        assert_eq!(frac(0.0), "0.0");
        assert_eq!(frac(0.0021), "0.0021");
        assert_eq!(frac(0.00002), "2.0e-5");
    }
}
