//! A serializable per-run metrics summary — the record type the sweep
//! result store (`ups-sweep`) streams one JSON line of per job.
//!
//! Plain data + hand-rolled JSON emission (the workspace is offline — no
//! serde; see DESIGN.md §6). Emission is deterministic: field order is
//! fixed and numbers use Rust's shortest round-trip formatting, so two
//! runs that computed identical values emit byte-identical JSON.

/// What a closed-loop (TCP) run reports on top of the packet metrics —
/// distilled from `ups_transport::TransportStats` by the sweep runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportSummary {
    /// Flows whose last in-order byte reached the receiver.
    pub completed_flows: usize,
    /// Total in-order bytes delivered across all flows (goodput).
    pub goodput_bytes: u64,
    /// Data segments re-sent (fast retransmit + go-back-N).
    pub retransmits: u64,
    /// Retransmission-timeout events (each shrinks cwnd to one segment).
    pub rto_events: u64,
    /// Out-of-order arrivals the fairness slack assigner clamped — a
    /// warning counter: non-zero means a sender fed the §3.3 recurrence
    /// against arrival order and its flows got conservatively less slack.
    pub slack_ooo: u64,
}

impl TransportSummary {
    /// Compact JSON object.
    // lint:schema(ups-sweep-record/v5)
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                r#"{{"completed_flows":{},"goodput_bytes":{},"#,
                r#""retransmits":{},"rto_events":{},"slack_ooo":{}}}"#
            ),
            self.completed_flows,
            self.goodput_bytes,
            self.retransmits,
            self.rto_events,
            self.slack_ooo
        )
    }
}

/// What a job on a *churning* network (the `--failures` axis) reports —
/// distilled from `ups_netsim::SimStats` and the failure schedule by the
/// sweep runner.
#[derive(Debug, Clone, PartialEq)]
pub struct DisruptionSummary {
    /// Distinct links the failure schedule took down during the run.
    pub links_failed: u64,
    /// Packets rerouted at their current hop by the dynamics layer.
    pub rerouted: u64,
    /// Packets lost at a dead link (flushed under the drop policy, or
    /// unroutable after the failure disconnected their destination).
    pub dropped_at_dead_link: u64,
    /// Match rate of the churn replay: the delivered packets, re-run at
    /// their observed `i(p)` along their observed (as-executed) paths
    /// through black-box LSTF on the intact topology, scored against the
    /// original `o(p)`. `None` when the job skipped the replay or
    /// delivered nothing.
    pub churn_replay_match_rate: Option<f64>,
}

impl DisruptionSummary {
    /// Compact JSON object.
    // lint:schema(ups-sweep-record/v5)
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                r#"{{"links_failed":{},"rerouted":{},"dropped_at_dead_link":{},"#,
                r#""churn_replay_match_rate":{}}}"#
            ),
            self.links_failed,
            self.rerouted,
            self.dropped_at_dead_link,
            json_opt_num(self.churn_replay_match_rate)
        )
    }
}

/// What the replay-divergence forensics pass reports — the per-cause
/// mismatch taxonomy, the first-divergent-hop inversion classes, and the
/// bounded blame aggregates, distilled from `ups_forensics::BlameCollector`
/// by the sweep runner. Carried by sweep records as the `divergence`
/// block; also emitted standalone by the forensics bench.
///
/// Two conservation invariants hold by construction and are enforced by
/// the artifact validator: the five cause counts sum to `mismatches`,
/// and the five inversion counts sum to `mismatches` (every divergent
/// packet is classified exactly once on each axis).
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceSummary {
    /// Total mismatched packets (≡ `ReplayReport::overdue`).
    pub mismatches: u64,
    /// Delivered late by ≤ `T` (the paper's threshold).
    pub overdue_within_t: u64,
    /// Delivered late by > `T`.
    pub overdue_beyond_t: u64,
    /// Never delivered by the replay, no drop recorded.
    pub missing_in_replay: u64,
    /// Dropped by the replay at a dead link.
    pub dead_link_drop: u64,
    /// Dropped by the replay from a full buffer.
    pub buffer_drop: u64,
    /// First divergent hop lost a rank tie the original won.
    pub rank_tie_break: u64,
    /// First divergent hop collided inside a quantization bucket.
    pub bucket_collision: u64,
    /// Replay took a different path (reroute or dead-link diversion).
    pub reroute: u64,
    /// Replay dropped the packet from a full queue.
    pub queue_overflow: u64,
    /// Divergence observable only at the exit (end-to-end records, or a
    /// packet the replay never saw) — no hop to blame.
    pub exit_only: u64,
    /// Top switches by overdue mass: `(node_index, mismatches whose
    /// first divergent hop is at that node)`, descending, capped.
    pub top_nodes: Vec<(u32, u64)>,
    /// Median per-hop lateness at the first divergent hop (seconds);
    /// `None` when no divergence carried hop timelines.
    pub hop_lateness_p50_s: Option<f64>,
    /// 99th-percentile per-hop lateness at the first divergent hop.
    pub hop_lateness_p99_s: Option<f64>,
}

impl DivergenceSummary {
    /// Sum of the five cause counts — must equal [`Self::mismatches`].
    pub fn cause_total(&self) -> u64 {
        self.overdue_within_t
            + self.overdue_beyond_t
            + self.missing_in_replay
            + self.dead_link_drop
            + self.buffer_drop
    }

    /// Sum of the five inversion counts — must equal [`Self::mismatches`].
    pub fn inversion_total(&self) -> u64 {
        self.rank_tie_break
            + self.bucket_collision
            + self.reroute
            + self.queue_overflow
            + self.exit_only
    }

    /// Compact JSON object, schema-tagged.
    // lint:schema(ups-forensics/v1)
    pub fn to_json(&self) -> String {
        let nodes: Vec<String> = self
            .top_nodes
            .iter()
            .map(|&(node, n)| format!(r#"{{"node":{node},"mismatches":{n}}}"#))
            .collect();
        format!(
            concat!(
                r#"{{"schema":"ups-forensics/v1","mismatches":{},"#,
                r#""overdue_within_t":{},"overdue_beyond_t":{},"#,
                r#""missing_in_replay":{},"dead_link_drop":{},"buffer_drop":{},"#,
                r#""rank_tie_break":{},"bucket_collision":{},"reroute":{},"#,
                r#""queue_overflow":{},"exit_only":{},"#,
                r#""hop_lateness_p50_s":{},"hop_lateness_p99_s":{},"#,
                r#""top_nodes":[{}]}}"#
            ),
            self.mismatches,
            self.overdue_within_t,
            self.overdue_beyond_t,
            self.missing_in_replay,
            self.dead_link_drop,
            self.buffer_drop,
            self.rank_tie_break,
            self.bucket_collision,
            self.reroute,
            self.queue_overflow,
            self.exit_only,
            json_opt_num(self.hop_lateness_p50_s),
            json_opt_num(self.hop_lateness_p99_s),
            nodes.join(",")
        )
    }
}

/// Everything one sweep job reports about its run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Flows with at least one delivered packet (under a `max_packets`
    /// cap this is fewer than the workload generator produced).
    pub flows: usize,
    /// Packets injected.
    pub packets: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped from full buffers.
    pub dropped: u64,
    /// Mean end-to-end delay over delivered data packets (seconds).
    pub delay_mean_s: f64,
    /// 99th-percentile end-to-end delay (seconds).
    pub delay_p99_s: f64,
    /// Mean flow completion time (seconds; last delivered packet per flow).
    pub fct_mean_s: f64,
    /// Mean FCT per size bucket: `(bucket_edge_bytes, mean_fct_s, flows)`.
    /// The trailing overflow bucket uses [`crate::fct::OVERFLOW_EDGE`] as
    /// its edge and serializes it as `null`.
    pub fct_buckets: Vec<(u64, f64, usize)>,
    /// Jain fairness index over per-flow mean throughput; `None` when no
    /// flow delivered any bytes (a dead run must not claim perfect
    /// fairness).
    pub jain: Option<f64>,
    /// Fraction of packets the LSTF replay got out on time
    /// (`1 − frac_overdue`); `None` when the job ran without a replay
    /// **or** the comparison covered no packets (an empty comparison
    /// matched nothing and must not read as a perfect score).
    pub replay_match_rate: Option<f64>,
    /// Fraction of packets the replay missed by more than `T`.
    pub replay_frac_gt_t: Option<f64>,
    /// Match rate of the *quantized* LSTF replay (K strict-priority
    /// queues); `None` when the job carried no `--queues` axis value.
    pub quantized_match_rate: Option<f64>,
    /// Fraction the quantized replay missed by more than `T`.
    pub quantized_frac_gt_t: Option<f64>,
    /// Mean-FCT penalty of quantization: quantized-replay mean FCT minus
    /// exact-LSTF-replay mean FCT, in seconds (positive = quantization
    /// made flows slower).
    pub quantized_fct_delta_s: Option<f64>,
    /// Closed-loop transport metrics; `None` for open-loop (UDP) runs.
    pub transport: Option<TransportSummary>,
    /// Network-dynamics metrics; `None` when the job ran on a static
    /// (failure-free) network.
    pub disruption: Option<DisruptionSummary>,
    /// Replay-divergence attribution for the job's most detailed replay
    /// (quantized when the `--queues` axis is present, churn for failure
    /// jobs, exact otherwise); `None` when the job ran no replay.
    pub divergence: Option<DivergenceSummary>,
}

impl RunSummary {
    /// Compact single-line JSON object (JSONL-friendly).
    // lint:schema(ups-sweep-record/v5)
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .fct_buckets
            .iter()
            .map(|&(edge, mean, n)| {
                let edge = if edge == crate::fct::OVERFLOW_EDGE {
                    "null".into() // the overflow bucket has no real edge
                } else {
                    edge.to_string()
                };
                format!(
                    r#"{{"edge_bytes":{edge},"mean_fct_s":{},"flows":{n}}}"#,
                    json_num(mean)
                )
            })
            .collect();
        format!(
            concat!(
                r#"{{"flows":{},"packets":{},"delivered":{},"dropped":{},"#,
                r#""delay_mean_s":{},"delay_p99_s":{},"fct_mean_s":{},"#,
                r#""jain":{},"replay_match_rate":{},"replay_frac_gt_t":{},"#,
                r#""quantized_match_rate":{},"quantized_frac_gt_t":{},"#,
                r#""quantized_fct_delta_s":{},"#,
                r#""transport":{},"disruption":{},"divergence":{},"fct_buckets":[{}]}}"#
            ),
            self.flows,
            self.packets,
            self.delivered,
            self.dropped,
            json_num(self.delay_mean_s),
            json_num(self.delay_p99_s),
            json_num(self.fct_mean_s),
            json_opt_num(self.jain),
            json_opt_num(self.replay_match_rate),
            json_opt_num(self.replay_frac_gt_t),
            json_opt_num(self.quantized_match_rate),
            json_opt_num(self.quantized_frac_gt_t),
            json_opt_num(self.quantized_fct_delta_s),
            match &self.transport {
                Some(t) => t.to_json(),
                None => "null".into(),
            },
            match &self.disruption {
                Some(d) => d.to_json(),
                None => "null".into(),
            },
            match &self.divergence {
                Some(d) => d.to_json(),
                None => "null".into(),
            },
            buckets.join(",")
        )
    }
}

/// A finite `f64` as JSON (shortest round-trip form); non-finite values
/// become `null` — JSON has no NaN/Infinity.
pub fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

/// `Option<f64>` as JSON.
pub fn json_opt_num(x: Option<f64>) -> String {
    match x {
        Some(v) => json_num(v),
        None => "null".into(),
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunSummary {
        RunSummary {
            flows: 3,
            packets: 100,
            delivered: 99,
            dropped: 1,
            delay_mean_s: 0.001,
            delay_p99_s: 0.01,
            fct_mean_s: 0.25,
            fct_buckets: vec![(1460, 0.1, 2), (2920, 0.0, 0), (u64::MAX, 0.9, 1)],
            jain: Some(0.97),
            replay_match_rate: Some(0.9984),
            replay_frac_gt_t: Some(0.0),
            quantized_match_rate: None,
            quantized_frac_gt_t: None,
            quantized_fct_delta_s: None,
            transport: None,
            disruption: None,
            divergence: None,
        }
    }

    #[test]
    fn json_is_single_line_and_stable() {
        let s = sample().to_json();
        assert!(!s.contains('\n'));
        assert!(s.contains(r#""delivered":99"#));
        assert!(s.contains(r#""replay_match_rate":0.9984"#));
        assert!(s.contains(r#""edge_bytes":1460"#));
        assert!(s.contains(r#""transport":null"#));
        assert!(
            s.contains(r#"{"edge_bytes":null,"mean_fct_s":0.9,"flows":1}"#),
            "overflow bucket edge must serialize as null: {s}"
        );
        assert_eq!(s, sample().to_json(), "emission must be deterministic");
    }

    #[test]
    fn none_replay_serializes_as_null() {
        let mut r = sample();
        r.replay_match_rate = None;
        r.replay_frac_gt_t = None;
        assert!(r.to_json().contains(r#""replay_match_rate":null"#));
    }

    #[test]
    fn quantized_fields_serialize_as_numbers_or_null() {
        let mut r = sample();
        assert!(r.to_json().contains(r#""quantized_match_rate":null"#));
        r.quantized_match_rate = Some(0.75);
        r.quantized_frac_gt_t = Some(0.1);
        r.quantized_fct_delta_s = Some(0.0025);
        let s = r.to_json();
        assert!(s.contains(r#""quantized_match_rate":0.75"#));
        assert!(s.contains(r#""quantized_frac_gt_t":0.1"#));
        assert!(s.contains(r#""quantized_fct_delta_s":0.0025"#));
    }

    #[test]
    fn dead_run_jain_is_null_not_one() {
        let mut r = sample();
        r.jain = None;
        assert!(r.to_json().contains(r#""jain":null"#));
    }

    #[test]
    fn transport_block_serializes() {
        let mut r = sample();
        r.transport = Some(TransportSummary {
            completed_flows: 7,
            goodput_bytes: 123_456,
            retransmits: 3,
            rto_events: 1,
            slack_ooo: 2,
        });
        let s = r.to_json();
        assert!(s.contains(concat!(
            r#""transport":{"completed_flows":7,"goodput_bytes":123456,"#,
            r#""retransmits":3,"rto_events":1,"slack_ooo":2}"#
        )));
    }

    #[test]
    fn disruption_block_serializes_with_nullable_match_rate() {
        let mut r = sample();
        assert!(r.to_json().contains(r#""disruption":null"#));
        r.disruption = Some(DisruptionSummary {
            links_failed: 4,
            rerouted: 120,
            dropped_at_dead_link: 7,
            churn_replay_match_rate: Some(0.91),
        });
        let s = r.to_json();
        assert!(s.contains(concat!(
            r#""disruption":{"links_failed":4,"rerouted":120,"#,
            r#""dropped_at_dead_link":7,"churn_replay_match_rate":0.91}"#
        )));
        r.disruption.as_mut().unwrap().churn_replay_match_rate = None;
        assert!(r.to_json().contains(r#""churn_replay_match_rate":null"#));
    }

    #[test]
    fn divergence_block_serializes_with_schema_tag() {
        let mut r = sample();
        assert!(r.to_json().contains(r#""divergence":null"#));
        let d = DivergenceSummary {
            mismatches: 10,
            overdue_within_t: 4,
            overdue_beyond_t: 3,
            missing_in_replay: 1,
            dead_link_drop: 0,
            buffer_drop: 2,
            rank_tie_break: 5,
            bucket_collision: 2,
            reroute: 0,
            queue_overflow: 2,
            exit_only: 1,
            top_nodes: vec![(3, 6), (9, 4)],
            hop_lateness_p50_s: Some(1.5e-6),
            hop_lateness_p99_s: Some(4e-5),
        };
        assert_eq!(d.cause_total(), d.mismatches);
        assert_eq!(d.inversion_total(), d.mismatches);
        r.divergence = Some(d);
        let s = r.to_json();
        assert!(s.contains(r#""divergence":{"schema":"ups-forensics/v1","mismatches":10"#));
        assert!(s.contains(r#""top_nodes":[{"node":3,"mismatches":6},{"node":9,"mismatches":4}]"#));
        assert!(s.contains(r#""hop_lateness_p50_s":0.0000015"#));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_num(0.7), "0.7");
    }

    #[test]
    fn escaping() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny"), r#"x\ny"#);
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
