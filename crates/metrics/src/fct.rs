//! Flow-completion-time bucketing (Figure 2's presentation).

/// One completed flow: its size and its completion time in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSample {
    /// Flow size in bytes.
    pub size: u64,
    /// Flow completion time in seconds.
    pub fct_secs: f64,
}

/// Figure 2's x-axis bucket edges (bytes): a flow lands in the first
/// bucket whose edge is ≥ its size.
pub const FIG2_BUCKETS: [u64; 10] = [
    1_460, 2_920, 4_380, 7_300, 10_220, 58_400, 105_120, 2_000_020, 17_330_203, 30_762_200,
];

/// The synthetic edge of the overflow bucket — flows larger than every
/// real edge land here instead of being silently folded into the last
/// real bucket. Serialized as `null` in JSON (see `RunSummary::to_json`).
pub const OVERFLOW_EDGE: u64 = u64::MAX;

/// Mean FCT per size bucket. Returns `(bucket_edge, mean_fct, count)` for
/// every bucket (NaN-free: empty buckets report 0 mean and 0 count),
/// plus one trailing **overflow bucket** (`edge == OVERFLOW_EDGE`) that
/// collects flows strictly larger than the last edge — the output has
/// `buckets.len() + 1` rows, and every sample is counted exactly once.
pub fn mean_fct_by_bucket(samples: &[FlowSample], buckets: &[u64]) -> Vec<(u64, f64, usize)> {
    let mut sums = vec![0.0f64; buckets.len() + 1];
    let mut counts = vec![0usize; buckets.len() + 1];
    for s in samples {
        let idx = buckets
            .iter()
            .position(|&b| s.size <= b)
            .unwrap_or(buckets.len()); // overflow: larger than every edge
        sums[idx] += s.fct_secs;
        counts[idx] += 1;
    }
    buckets
        .iter()
        .chain(std::iter::once(&OVERFLOW_EDGE))
        .zip(sums.iter().zip(&counts))
        .map(|(&b, (&sum, &c))| (b, if c > 0 { sum / c as f64 } else { 0.0 }, c))
        .collect()
}

/// Overall mean FCT (the number Figure 2's legend reports per scheme).
pub fn overall_mean_fct(samples: &[FlowSample]) -> f64 {
    crate::stats::mean(&samples.iter().map(|s| s.fct_secs).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_first_edge_at_or_above() {
        let samples = [
            FlowSample {
                size: 1_000,
                fct_secs: 0.1,
            },
            FlowSample {
                size: 1_460,
                fct_secs: 0.3,
            },
            FlowSample {
                size: 1_461,
                fct_secs: 0.5,
            },
            FlowSample {
                size: 99_999_999,
                fct_secs: 2.0,
            }, // beyond last edge
        ];
        let out = mean_fct_by_bucket(&samples, &FIG2_BUCKETS);
        assert_eq!(out.len(), FIG2_BUCKETS.len() + 1);
        assert_eq!(out[0].2, 2);
        assert!((out[0].1 - 0.2).abs() < 1e-12);
        assert_eq!(out[1].2, 1);
        assert!((out[1].1 - 0.5).abs() < 1e-12);
        // Oversized flow lands in the overflow bucket, not the last real one.
        assert_eq!(out[9], (30_762_200, 0.0, 0));
        assert_eq!(out[10].0, OVERFLOW_EDGE);
        assert_eq!(out[10].2, 1);
        assert!((out[10].1 - 2.0).abs() < 1e-12);
        // Empty buckets report zero, not NaN.
        assert_eq!(out[5], (58_400, 0.0, 0));
    }

    #[test]
    fn sizes_straddling_the_last_edge_split_cleanly() {
        // Regression: the old code folded > 30,762,200 B flows into the
        // last bucket via `unwrap_or(len - 1)`, contradicting the
        // "first edge ≥ size" doc.
        let samples = [
            FlowSample {
                size: 30_762_199,
                fct_secs: 1.0,
            },
            FlowSample {
                size: 30_762_200, // exactly the last edge: last real bucket
                fct_secs: 2.0,
            },
            FlowSample {
                size: 30_762_201, // one past: overflow bucket
                fct_secs: 8.0,
            },
        ];
        let out = mean_fct_by_bucket(&samples, &FIG2_BUCKETS);
        let last = out[FIG2_BUCKETS.len() - 1];
        let overflow = out[FIG2_BUCKETS.len()];
        assert_eq!(last.0, 30_762_200);
        assert_eq!(last.2, 2);
        assert!((last.1 - 1.5).abs() < 1e-12);
        assert_eq!(overflow, (OVERFLOW_EDGE, 8.0, 1));
        // Every sample counted exactly once.
        assert_eq!(out.iter().map(|&(_, _, c)| c).sum::<usize>(), 3);
    }

    #[test]
    fn overall_mean() {
        let samples = [
            FlowSample {
                size: 1,
                fct_secs: 0.1,
            },
            FlowSample {
                size: 2,
                fct_secs: 0.3,
            },
        ];
        assert!((overall_mean_fct(&samples) - 0.2).abs() < 1e-12);
        assert_eq!(overall_mean_fct(&[]), 0.0);
    }
}
