//! Incremental run-summary accumulation.
//!
//! [`RunAccumulator`] is the streaming replacement for "collect every
//! delay into a `Vec`, then summarize": the sweep runner feeds it one
//! record at a time (in any order — all state is order-insensitive) and
//! never holds a full trace's worth of samples. Delay sums are exact
//! `u128` integer picoseconds, the delay distribution goes through the
//! [`QuantileSketch`], and per-flow state is two dense `u64` arrays —
//! `O(flows)`, not `O(packets)`.

use crate::fct::FlowSample;
use crate::sketch::QuantileSketch;

/// Picoseconds per second, as exactly-representable `f64`.
const PS_PER_SEC: f64 = 1e12;

/// Streaming accumulator for the per-run metrics behind `RunSummary`.
///
/// The caller classifies records (data vs ack, dropped vs delivered) and
/// reports picosecond integers; everything float happens at read-out
/// time, so two traversal orders of the same records produce
/// bit-identical results.
#[derive(Debug, Clone)]
pub struct RunAccumulator {
    delivered: u64,
    dropped: u64,
    delay_sum_ps: u128,
    delays: QuantileSketch,
    flow_bytes: Vec<u64>,
    flow_last_exit_ps: Vec<u64>,
}

impl RunAccumulator {
    /// Accumulator for a run over `flows` known flows (dense flow ids).
    pub fn new(flows: usize) -> Self {
        RunAccumulator {
            delivered: 0,
            dropped: 0,
            delay_sum_ps: 0,
            delays: QuantileSketch::new(),
            flow_bytes: vec![0; flows],
            flow_last_exit_ps: vec![0; flows],
        }
    }

    /// Count one dropped packet (any kind — a drop disqualifies the
    /// drop-free replay regardless of packet kind).
    pub fn on_drop(&mut self) {
        self.dropped += 1;
    }

    /// Account one delivered **data** packet.
    pub fn on_delivery(&mut self, flow: usize, size: u32, delay_ps: u64, exited_ps: u64) {
        self.delivered += 1;
        self.delay_sum_ps += delay_ps as u128;
        self.delays.insert(delay_ps as f64 / PS_PER_SEC);
        self.flow_bytes[flow] += size as u64;
        self.flow_last_exit_ps[flow] = self.flow_last_exit_ps[flow].max(exited_ps);
    }

    /// Delivered data packets seen so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Dropped packets seen so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Mean end-to-end delay in seconds; `0.0` before any delivery
    /// (mirrors [`crate::mean`] on empty input).
    pub fn delay_mean_s(&self) -> f64 {
        if self.delivered == 0 {
            return 0.0;
        }
        (self.delay_sum_ps as f64 / self.delivered as f64) / PS_PER_SEC
    }

    /// p99 end-to-end delay in seconds via the sketch (≤ 2.2% above the
    /// exact nearest-rank p99, never below); `0.0` before any delivery.
    pub fn delay_p99_s(&self) -> f64 {
        if self.delays.is_empty() {
            0.0
        } else {
            self.delays.quantile(0.99)
        }
    }

    /// Per-flow FCT samples and throughput rates, in flow-id order —
    /// the open-loop inputs to Figure 2 bucketing and the Jain index.
    /// `flow_meta[i]` is flow `i`'s `(intended size in bytes, start time
    /// in ps)`; flows with no delivered bytes are skipped, rates only
    /// exist for flows with a positive completion span.
    pub fn flow_samples(&self, flow_meta: &[(u64, u64)]) -> (Vec<FlowSample>, Vec<f64>) {
        assert_eq!(flow_meta.len(), self.flow_bytes.len(), "flow count drift");
        let mut samples = Vec::new();
        let mut rates = Vec::new();
        for (i, &(size, start_ps)) in flow_meta.iter().enumerate() {
            if self.flow_bytes[i] == 0 {
                continue; // flow truncated away or nothing delivered yet
            }
            let span_ps = self.flow_last_exit_ps[i].saturating_sub(start_ps);
            let span = span_ps as f64 / PS_PER_SEC;
            samples.push(FlowSample {
                size,
                fct_secs: span,
            });
            if span > 0.0 {
                rates.push(self.flow_bytes[i] as f64 / span);
            }
        }
        (samples, rates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_independent_of_order() {
        let events = [
            (0usize, 1500u32, 7_000u64, 10_000u64),
            (1, 500, 9_000, 12_000),
            (0, 1500, 5_000, 20_000),
        ];
        let mut fwd = RunAccumulator::new(2);
        let mut rev = RunAccumulator::new(2);
        for &(f, s, d, e) in &events {
            fwd.on_delivery(f, s, d, e);
        }
        for &(f, s, d, e) in events.iter().rev() {
            rev.on_delivery(f, s, d, e);
        }
        fwd.on_drop();
        rev.on_drop();
        assert_eq!(fwd.delivered(), 3);
        assert_eq!(fwd.dropped(), 1);
        assert_eq!(fwd.delay_mean_s(), rev.delay_mean_s());
        assert_eq!(fwd.delay_p99_s(), rev.delay_p99_s());
        let meta = [(3000u64, 1_000u64), (500, 2_000)];
        assert_eq!(fwd.flow_samples(&meta), rev.flow_samples(&meta));
    }

    #[test]
    fn flow_samples_skip_empty_flows_and_zero_spans() {
        let mut a = RunAccumulator::new(3);
        a.on_delivery(0, 1000, 1_000, 5_000);
        // Flow 2 exits exactly at its start: sample kept, rate skipped.
        a.on_delivery(2, 800, 2_000, 7_000);
        let meta = [(1000u64, 1_000u64), (999, 0), (800, 7_000)];
        let (samples, rates) = a.flow_samples(&meta);
        assert_eq!(samples.len(), 2, "flow 1 delivered nothing");
        assert_eq!(samples[0].size, 1000);
        assert!((samples[0].fct_secs - 4e-9).abs() < 1e-18);
        assert_eq!(samples[1].fct_secs, 0.0);
        assert_eq!(rates.len(), 1, "zero-span flow has no rate");
    }

    #[test]
    fn empty_run_reports_zeroes() {
        let a = RunAccumulator::new(0);
        assert_eq!(a.delay_mean_s(), 0.0);
        assert_eq!(a.delay_p99_s(), 0.0);
        assert_eq!(a.flow_samples(&[]), (vec![], vec![]));
    }

    #[test]
    fn mean_is_exact_integer_arithmetic() {
        let mut a = RunAccumulator::new(1);
        for d in [1u64, 2, 4] {
            a.on_delivery(0, 1, d * 1_000_000, d * 1_000_000);
        }
        // (1 + 2 + 4)/3 us exactly.
        let want = (7.0 / 3.0) * 1e-6;
        assert!((a.delay_mean_s() - want).abs() < 1e-18);
    }
}
