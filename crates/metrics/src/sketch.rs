//! A fixed-size logarithmic quantile sketch.
//!
//! The streaming pipeline cannot keep every delay sample (or every
//! Figure 1 queueing ratio) in memory, so distribution metrics go through
//! this sketch instead of [`crate::Cdf`]: values land in logarithmic
//! buckets — `k = 32` subbuckets per octave, bucket `i` covering
//! `(2^((i−1)/k), 2^(i/k)]` — and quantiles read back the bucket **upper
//! bound**. The relative quantile error is therefore one-sided and at
//! most `2^(1/k) − 1 ≈ 2.2%` (never an underestimate, and additionally
//! clamped to the exact observed maximum).
//!
//! Properties the pipeline leans on:
//!
//! * **Order-insensitive**: inserting the same multiset in any order
//!   yields a bit-identical sketch (buckets are integer counters in a
//!   `BTreeMap`, extremes use `f64::min`/`max`), which is what lets the
//!   resident and streaming trace layouts produce `==` summaries.
//! * **Exact at bucket boundaries**: `fraction_le(x)` counts whole
//!   buckets, and powers of two (in particular `x = 1.0 = 2^0`) are
//!   bucket edges — so Figure 1's headline "fraction of ratios ≤ 1" is
//!   exact up to float rounding of `log2` at the boundary itself.
//! * **Fixed size**: memory is `O(occupied buckets)` ≤ a few KB for any
//!   realistic value range, independent of sample count.
//!
//! Values `≤ 0` (a replay that never queues has ratio denominators of
//! zero filtered out upstream; delays are positive) are counted in a
//! dedicated zero bucket that reads back as `0.0`.

use std::collections::BTreeMap;

/// Subbuckets per octave; `2^(1/32) − 1 ≈ 2.2%` relative error.
const SUBBUCKETS: f64 = 32.0;
/// Bucket-index clamp covering the full `f64` exponent range.
const MAX_INDEX: i32 = 40_000;

/// Bucket index for a positive value: the smallest `i` with `2^(i/k) ≥ v`.
fn bucket_of(v: f64) -> i32 {
    let i = (SUBBUCKETS * v.log2()).ceil();
    (i as i32).clamp(-MAX_INDEX, MAX_INDEX)
}

/// Upper bound of bucket `i`.
fn upper_of(i: i32) -> f64 {
    (i as f64 / SUBBUCKETS).exp2()
}

/// Streaming quantile/CDF sketch over positive `f64` samples. See the
/// module docs for the error model.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    buckets: BTreeMap<i32, u64>,
    /// Samples `≤ 0`, kept apart (log buckets only cover positives).
    zero: u64,
    count: u64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            buckets: BTreeMap::new(),
            zero: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Insert one sample. Non-finite samples are rejected.
    pub fn insert(&mut self, v: f64) {
        assert!(v.is_finite(), "non-finite sample {v} in quantile sketch");
        if v <= 0.0 {
            self.zero += 1;
        } else {
            *self.buckets.entry(bucket_of(v)).or_insert(0) += 1;
        }
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True when no samples were inserted.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact smallest sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Exact largest sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Nearest-rank `q`-quantile (`q` in `[0, 1]`), reported as the
    /// containing bucket's upper bound clamped to the observed maximum —
    /// never below the exact quantile, at most `≈2.2%` above it.
    ///
    /// # Panics
    /// On an empty sketch (mirrors [`crate::percentile`]).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        assert!(self.count > 0, "quantile of empty sketch");
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.zero {
            // All non-positive samples read back as the zero bucket; keep
            // the exact minimum so pure-zero sketches report it.
            return self.min.min(0.0);
        }
        let mut seen = self.zero;
        for (&i, &c) in &self.buckets {
            seen += c;
            if rank <= seen {
                return upper_of(i).min(self.max);
            }
        }
        self.max
    }

    /// `P[X ≤ x]`, counting whole buckets whose upper bound is `≤ x` —
    /// exact when `x` is a bucket edge (any power of two, e.g. `1.0`),
    /// otherwise an underestimate by at most one bucket's worth of mass.
    /// `0.0` on an empty sketch, like [`crate::Cdf::fraction_le`].
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut n = if x >= 0.0 { self.zero } else { 0 };
        for (&i, &c) in &self.buckets {
            if upper_of(i) <= x {
                n += c;
            } else {
                break;
            }
        }
        n as f64 / self.count as f64
    }

    /// Evaluate the CDF at each probe — `(x, P[X ≤ x])` rows, the shape
    /// [`crate::render_series`] plots; mirrors [`crate::Cdf::series`].
    pub fn series(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.fraction_le(x))).collect()
    }

    /// Merge another sketch into this one (same bucketing by construction).
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (&i, &c) in &other.buckets {
            *self.buckets.entry(i).or_insert(0) += c;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_error_is_one_sided_and_bounded() {
        let mut s = QuantileSketch::new();
        let xs: Vec<f64> = (1..=10_000).map(|i| i as f64 * 1e-4).collect();
        for &x in &xs {
            s.insert(x);
        }
        let gamma = (1.0f64 / 32.0).exp2();
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = crate::percentile(&xs, q);
            let approx = s.quantile(q);
            assert!(approx >= exact * 0.999_999, "q={q}: {approx} < {exact}");
            assert!(
                approx <= exact * gamma * 1.000_001,
                "q={q}: {approx} vs {exact}"
            );
        }
        assert_eq!(s.quantile(1.0), 1.0, "p100 clamps to the exact max");
    }

    #[test]
    fn fraction_le_exact_at_power_of_two_edges() {
        let mut s = QuantileSketch::new();
        for v in [0.25, 0.5, 0.99, 1.0, 1.01, 2.0, 3.0] {
            s.insert(v);
        }
        assert_eq!(s.fraction_le(1.0), 4.0 / 7.0);
        assert_eq!(s.fraction_le(2.0), 6.0 / 7.0);
        assert_eq!(s.fraction_le(0.2), 0.0);
        assert_eq!(s.fraction_le(1e9), 1.0);
    }

    #[test]
    fn insertion_order_is_irrelevant() {
        let xs = [3.7, 0.0, 1.0, 9e9, 1e-9, 2.0, 3.7];
        let mut fwd = QuantileSketch::new();
        let mut rev = QuantileSketch::new();
        for &x in &xs {
            fwd.insert(x);
        }
        for &x in xs.iter().rev() {
            rev.insert(x);
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    fn zero_and_negative_samples_live_in_the_zero_bucket() {
        let mut s = QuantileSketch::new();
        s.insert(0.0);
        s.insert(-1.5);
        s.insert(4.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.fraction_le(0.0), 2.0 / 3.0);
        assert_eq!(s.fraction_le(-10.0), 0.0);
        assert_eq!(s.quantile(0.5), -1.5, "zero bucket reads back the min");
        assert_eq!(s.quantile(1.0), 4.0);
    }

    #[test]
    fn empty_sketch_behaves_like_empty_cdf() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.fraction_le(1.0), 0.0);
        assert_eq!(s.series(&[0.5, 1.0]), vec![(0.5, 0.0), (1.0, 0.0)]);
    }

    #[test]
    fn merge_matches_bulk_insert() {
        let (a_xs, b_xs) = ([1.0, 2.0, 0.5], [8.0, 0.0, 2.0]);
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut all = QuantileSketch::new();
        for &x in &a_xs {
            a.insert(x);
            all.insert(x);
        }
        for &x in &b_xs {
            b.insert(x);
            all.insert(x);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }
}
