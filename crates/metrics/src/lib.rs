//! # ups-metrics — statistics and reporting for the UPS evaluation
//!
//! Everything Table 1 and Figures 1–4 are expressed in:
//!
//! * [`stats`] — means, percentiles, CDFs/CCDFs (Figures 1 and 3),
//! * [`jain`] — Jain's fairness index and per-millisecond series
//!   (Figure 4),
//! * [`fct`] — flow-completion-time bucketing (Figure 2),
//! * [`sketch`] — a fixed-size logarithmic quantile sketch for streaming
//!   distributions (bounded-memory p99 and CDF fractions),
//! * [`accum`] — the incremental per-run accumulator the sweep runner
//!   feeds one record at a time,
//! * [`summary`] — the serializable per-run [`RunSummary`] the sweep
//!   result store streams as JSON lines,
//! * [`table`] — paper-style plain-text rendering for the bench harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accum;
pub mod fct;
pub mod jain;
pub mod sketch;
pub mod stats;
pub mod summary;
pub mod table;

pub use accum::RunAccumulator;
pub use fct::{mean_fct_by_bucket, overall_mean_fct, FlowSample, FIG2_BUCKETS, OVERFLOW_EDGE};
pub use jain::{jain_index, jain_series};
pub use sketch::QuantileSketch;
pub use stats::{fraction_where, mean, percentile, Cdf};
pub use summary::{
    json_escape, json_num, json_opt_num, DisruptionSummary, DivergenceSummary, RunSummary,
    TransportSummary,
};
pub use table::{frac, render_series, Table};
