//! Instantiating a [`Simulator`] from a [`Topology`].
//!
//! This is where the paper's "collection of scheduling algorithms {Aα}"
//! (§2.1) is expressed: a [`SchedulerAssignment`] maps each node to the
//! discipline its output ports run. The replay methodology swaps only this
//! assignment (and header initialization) between the original run and the
//! replay run — topology and injected packets stay identical.

use std::collections::BTreeMap;

use ups_netsim::prelude::{Link, NodeId, RecordMode, SchedulerKind, SimConfig, Simulator};

use crate::graph::{NodeRole, Topology};

/// Which scheduler each node's output ports run.
#[derive(Debug, Clone)]
pub struct SchedulerAssignment {
    default: SchedulerKind,
    per_node: BTreeMap<NodeId, SchedulerKind>,
}

impl SchedulerAssignment {
    /// Every node runs `kind` — the paper's usual setting ("a UPS must use
    /// the same scheduling logic at every router", and the original
    /// schedules of Table 1 are also uniform except for the FQ/FIFO+ row).
    pub fn uniform(kind: SchedulerKind) -> Self {
        SchedulerAssignment {
            default: kind,
            per_node: BTreeMap::new(),
        }
    }

    /// Override one node's discipline.
    pub fn with(mut self, node: NodeId, kind: SchedulerKind) -> Self {
        self.per_node.insert(node, kind);
        self
    }

    /// Table 1's mixed row: "half of the routers run FIFO+ and the other
    /// half run fair queuing". Routers (edge + core) alternate by id
    /// parity; hosts keep `host_kind` (their NIC is a trivial queue).
    pub fn half_half(
        topo: &Topology,
        even: SchedulerKind,
        odd: SchedulerKind,
        host_kind: SchedulerKind,
    ) -> Self {
        let mut a = SchedulerAssignment::uniform(host_kind);
        for n in topo.nodes() {
            if topo.role(n) != NodeRole::Host {
                a.per_node.insert(n, if n.0 % 2 == 0 { even } else { odd });
            }
        }
        a
    }

    /// The discipline node `n` runs.
    pub fn kind_for(&self, n: NodeId) -> SchedulerKind {
        self.per_node.get(&n).copied().unwrap_or(self.default)
    }
}

/// Options for simulator construction.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Trace detail.
    pub record: RecordMode,
    /// Router port buffer in bytes; `None` = unbounded (§2.3 replay runs
    /// "use large buffer sizes that ensure no packet drops").
    pub router_buffer_bytes: Option<u64>,
    /// Host NIC buffer; usually unbounded (sources self-limit).
    pub host_buffer_bytes: Option<u64>,
    /// Base seed; each port derives an independent deterministic stream
    /// (only `Random` consumes it).
    pub seed: u64,
    /// Streaming-trace spill capacities `(records per chunk, sealed
    /// chunks in memory)`; `None` = defaults. Only read when `record` is
    /// [`RecordMode::Streaming`] — tests use tiny caps to force spill
    /// behaviour on small runs.
    pub trace_spill_caps: Option<(usize, usize)>,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            record: RecordMode::EndToEnd,
            router_buffer_bytes: None,
            host_buffer_bytes: None,
            seed: 1,
            trace_spill_caps: None,
        }
    }
}

/// SplitMix64 — tiny, well-mixed hash for deriving per-port seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Build a simulator whose nodes, links and schedulers mirror `topo`.
pub fn build_simulator(
    topo: &Topology,
    assign: &SchedulerAssignment,
    opts: &BuildOptions,
) -> Simulator {
    let mut sim = Simulator::new(SimConfig {
        record: opts.record,
        trace_spill_caps: opts.trace_spill_caps,
    });
    for _ in topo.nodes() {
        sim.add_node();
    }
    for link in topo.links() {
        for (from, to) in [(link.a, link.b), (link.b, link.a)] {
            let kind = assign.kind_for(from);
            let seed = splitmix64(opts.seed ^ ((from.0 as u64) << 32) ^ (to.0 as u64));
            let buffer = if topo.role(from) == NodeRole::Host {
                opts.host_buffer_bytes
            } else {
                opts.router_buffer_bytes
            };
            sim.add_oneway_link(
                from,
                to,
                Link {
                    bandwidth: link.bandwidth,
                    propagation: link.propagation,
                },
                kind.build(seed),
                buffer,
            );
        }
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::line;
    use crate::routing::Routing;
    use ups_netsim::prelude::*;

    #[test]
    fn builder_mirrors_topology() {
        let topo = line(3, Bandwidth::from_gbps(1), Dur::from_us(10));
        let sim = build_simulator(
            &topo,
            &SchedulerAssignment::uniform(SchedulerKind::Fifo),
            &BuildOptions::default(),
        );
        assert_eq!(sim.node_count(), topo.node_count());
        // Interior router has two ports, hosts one.
        assert_eq!(sim.node(NodeId(0)).ports.len(), 1);
        assert_eq!(sim.node(NodeId(2)).ports.len(), 2);
    }

    #[test]
    fn packets_flow_through_built_network() {
        let topo = line(2, Bandwidth::from_gbps(1), Dur::from_us(10));
        let mut routing = Routing::new(&topo);
        let hosts = topo.hosts();
        let mut sim = build_simulator(
            &topo,
            &SchedulerAssignment::uniform(SchedulerKind::Fifo),
            &BuildOptions::default(),
        );
        let path = routing.path(hosts[0], hosts[1]);
        sim.inject(PacketBuilder::new(PacketId(0), FlowId(0), 1500, path, SimTime::ZERO).build());
        sim.run();
        // 3 links: 3 × (12us + 10us) = 66us.
        assert_eq!(
            sim.trace().get(PacketId(0)).unwrap().exited,
            Some(SimTime::from_us(66))
        );
    }

    #[test]
    fn half_half_alternates_routers_only() {
        let topo = line(4, Bandwidth::from_gbps(1), Dur::ZERO);
        let a = SchedulerAssignment::half_half(
            &topo,
            SchedulerKind::Fq,
            SchedulerKind::FifoPlus,
            SchedulerKind::Fifo,
        );
        // Nodes: 0=host, 1..=4 routers, 5=host.
        assert_eq!(a.kind_for(NodeId(0)), SchedulerKind::Fifo);
        assert_eq!(a.kind_for(NodeId(5)), SchedulerKind::Fifo);
        assert_eq!(a.kind_for(NodeId(1)), SchedulerKind::FifoPlus);
        assert_eq!(a.kind_for(NodeId(2)), SchedulerKind::Fq);
        assert_eq!(a.kind_for(NodeId(3)), SchedulerKind::FifoPlus);
        assert_eq!(a.kind_for(NodeId(4)), SchedulerKind::Fq);
    }

    #[test]
    fn per_node_override() {
        let assign =
            SchedulerAssignment::uniform(SchedulerKind::Fifo).with(NodeId(2), SchedulerKind::Lifo);
        assert_eq!(assign.kind_for(NodeId(1)), SchedulerKind::Fifo);
        assert_eq!(assign.kind_for(NodeId(2)), SchedulerKind::Lifo);
    }

    #[test]
    fn random_ports_get_distinct_streams() {
        // Two different ports must not mirror each other's choices: build
        // a fan topology where host sends through two Random routers and
        // check the seeds differ by construction.
        let s1 = splitmix64(7 ^ (1u64 << 32) ^ 2);
        let s2 = splitmix64(7 ^ (2u64 << 32) ^ 1);
        assert_ne!(s1, s2);
    }

    #[test]
    fn host_vs_router_buffers() {
        let topo = line(1, Bandwidth::from_gbps(1), Dur::ZERO);
        let opts = BuildOptions {
            router_buffer_bytes: Some(3000),
            host_buffer_bytes: None,
            ..BuildOptions::default()
        };
        let mut sim = build_simulator(
            &topo,
            &SchedulerAssignment::uniform(SchedulerKind::Fifo),
            &opts,
        );
        // Host 0 -> router 1 -> host 2. Flood the router port: only 2
        // packets fit its queue (plus 1 in service); host side absorbs all.
        let mut routing = Routing::new(&topo);
        let path = routing.path(NodeId(0), NodeId(2));
        for i in 0..10 {
            sim.inject(
                PacketBuilder::new(PacketId(i), FlowId(0), 1500, path.clone(), SimTime::ZERO)
                    .build(),
            );
        }
        sim.run();
        // Host link and router link are equal speed, so the router queue
        // never builds up — no drops. Now flood via a faster host link
        // would drop; here we just assert the plumbing ran.
        assert_eq!(sim.stats().injected, 10);
        assert_eq!(sim.stats().delivered + sim.stats().dropped, 10);
    }
}
