//! The network graph: nodes with roles, bidirectional links.
//!
//! A [`Topology`] is a pure description — no simulator state. The builder
//! in [`crate::build`] instantiates a `ups_netsim::Simulator` from it, and
//! [`crate::routing`] computes paths and `tmin` tables over it.

use ups_netsim::prelude::{Bandwidth, Dur, NodeId};

/// What a node is. Only hosts source and sink traffic; the distinction
/// between edge and core matters for bandwidth variants and reporting
/// ("core links", "access links" in Table 1's terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRole {
    /// End host (traffic source/sink).
    Host,
    /// Edge/access router.
    Edge,
    /// Core/backbone router.
    Core,
}

/// A bidirectional link; both directions share bandwidth and delay.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// One endpoint.
    pub a: NodeId,
    /// Other endpoint.
    pub b: NodeId,
    /// Serialization bandwidth (each direction).
    pub bandwidth: Bandwidth,
    /// Propagation delay.
    pub propagation: Dur,
}

impl LinkSpec {
    /// True if this link touches `n`.
    pub fn touches(&self, n: NodeId) -> bool {
        self.a == n || self.b == n
    }

    /// The endpoint that isn't `n`; panics if the link doesn't touch `n`.
    pub fn other(&self, n: NodeId) -> NodeId {
        if self.a == n {
            self.b
        } else {
            assert_eq!(self.b, n, "link {}–{} does not touch {n}", self.a, self.b);
            self.a
        }
    }
}

/// An immutable network description.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Human-readable name ("I2:1Gbps-10Gbps", "FatTree(k=4)", ...).
    pub name: String,
    roles: Vec<NodeRole>,
    links: Vec<LinkSpec>,
    /// adjacency[n] = sorted list of (neighbor, link index).
    adjacency: Vec<Vec<(NodeId, usize)>>,
}

impl Topology {
    /// An empty topology with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Topology {
            name: name.into(),
            roles: Vec::new(),
            links: Vec::new(),
            adjacency: Vec::new(),
        }
    }

    /// Add a node with `role`; ids are dense and sequential.
    pub fn add_node(&mut self, role: NodeRole) -> NodeId {
        let id = NodeId(self.roles.len() as u32);
        self.roles.push(role);
        self.adjacency.push(Vec::new());
        id
    }

    /// Connect `a` and `b` bidirectionally. Panics on self-links or
    /// duplicate links (the paper's model has neither).
    pub fn add_link(&mut self, a: NodeId, b: NodeId, bandwidth: Bandwidth, propagation: Dur) {
        assert_ne!(a, b, "self-link at {a}");
        assert!(self.neighbor_link(a, b).is_none(), "duplicate link {a}–{b}");
        let idx = self.links.len();
        self.links.push(LinkSpec {
            a,
            b,
            bandwidth,
            propagation,
        });
        for (from, to) in [(a, b), (b, a)] {
            let adj = &mut self.adjacency[from.index()];
            let pos = adj.binary_search_by_key(&to, |&(n, _)| n).unwrap_err();
            adj.insert(pos, (to, idx));
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.roles.len()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.roles.len()).map(NodeId::from)
    }

    /// Role of `n`.
    pub fn role(&self, n: NodeId) -> NodeRole {
        self.roles[n.index()]
    }

    /// All nodes with a given role, in id order.
    pub fn nodes_with_role(&self, role: NodeRole) -> Vec<NodeId> {
        self.nodes().filter(|&n| self.role(n) == role).collect()
    }

    /// All hosts, in id order.
    pub fn hosts(&self) -> Vec<NodeId> {
        self.nodes_with_role(NodeRole::Host)
    }

    /// All links.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Links whose *both* endpoints are core routers — the "core links"
    /// utilization is calibrated against.
    pub fn core_links(&self) -> Vec<&LinkSpec> {
        self.links
            .iter()
            .filter(|l| self.role(l.a) == NodeRole::Core && self.role(l.b) == NodeRole::Core)
            .collect()
    }

    /// Sorted neighbors of `n`.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency[n.index()].iter().map(|&(m, _)| m)
    }

    /// The link between `a` and `b`, if any.
    pub fn neighbor_link(&self, a: NodeId, b: NodeId) -> Option<&LinkSpec> {
        self.adjacency[a.index()]
            .binary_search_by_key(&b, |&(n, _)| n)
            .ok()
            .map(|i| &self.links[self.adjacency[a.index()][i].1])
    }

    /// Smallest link bandwidth anywhere — defines the paper's overdue
    /// threshold `T` = one transmission time on the bottleneck link (§2.3).
    pub fn bottleneck_bandwidth(&self) -> Bandwidth {
        self.links
            .iter()
            .map(|l| l.bandwidth)
            .min()
            .expect("topology has no links")
    }

    /// Sanity checks: connected, no isolated nodes, hosts have degree 1.
    /// Called by the canned topology constructors.
    pub fn validate(&self) {
        assert!(self.node_count() >= 2, "need at least two nodes");
        assert!(!self.links.is_empty(), "no links");
        // Hosts hang off exactly one router in every paper topology.
        for n in self.nodes() {
            let deg = self.adjacency[n.index()].len();
            assert!(deg > 0, "isolated node {n}");
            if self.role(n) == NodeRole::Host {
                assert_eq!(deg, 1, "host {n} has degree {deg}");
            }
        }
        // Connectivity via BFS from node 0.
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for m in self.neighbors(n) {
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    count += 1;
                    stack.push(m);
                }
            }
        }
        assert_eq!(count, self.node_count(), "topology is disconnected");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw() -> Bandwidth {
        Bandwidth::from_gbps(1)
    }

    #[test]
    fn build_and_query() {
        let mut t = Topology::new("test");
        let h1 = t.add_node(NodeRole::Host);
        let c1 = t.add_node(NodeRole::Core);
        let c2 = t.add_node(NodeRole::Core);
        let h2 = t.add_node(NodeRole::Host);
        t.add_link(h1, c1, bw(), Dur::from_us(1));
        t.add_link(c1, c2, Bandwidth::from_mbps(500), Dur::from_ms(5));
        t.add_link(c2, h2, bw(), Dur::from_us(1));
        t.validate();

        assert_eq!(t.hosts(), vec![h1, h2]);
        assert_eq!(t.core_links().len(), 1);
        assert_eq!(t.bottleneck_bandwidth(), Bandwidth::from_mbps(500));
        assert_eq!(t.neighbors(c1).collect::<Vec<_>>(), vec![h1, c2]);
        let l = t.neighbor_link(c1, c2).unwrap();
        assert_eq!(l.propagation, Dur::from_ms(5));
        assert_eq!(l.other(c1), c2);
        assert!(t.neighbor_link(h1, h2).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_link_rejected() {
        let mut t = Topology::new("dup");
        let a = t.add_node(NodeRole::Core);
        let b = t.add_node(NodeRole::Core);
        t.add_link(a, b, bw(), Dur::ZERO);
        t.add_link(b, a, bw(), Dur::ZERO);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_rejected() {
        let mut t = Topology::new("disc");
        let a = t.add_node(NodeRole::Core);
        let b = t.add_node(NodeRole::Core);
        let c = t.add_node(NodeRole::Core);
        let d = t.add_node(NodeRole::Core);
        t.add_link(a, b, bw(), Dur::ZERO);
        t.add_link(c, d, bw(), Dur::ZERO);
        t.validate();
    }

    #[test]
    #[should_panic(expected = "host")]
    fn host_with_two_links_rejected() {
        let mut t = Topology::new("bad-host");
        let h = t.add_node(NodeRole::Host);
        let a = t.add_node(NodeRole::Core);
        let b = t.add_node(NodeRole::Core);
        t.add_link(h, a, bw(), Dur::ZERO);
        t.add_link(h, b, bw(), Dur::ZERO);
        t.add_link(a, b, bw(), Dur::ZERO);
        t.validate();
    }
}
