//! An enumerable registry of named topologies.
//!
//! The sweep engine (`ups-sweep`) expands declarative scenario grids whose
//! axes name topologies by string; this registry is the single mapping
//! from those names to constructors. Every entry is a zero-argument
//! builder so grids stay fully declarative — parameterized families get
//! one entry per canned parameterization (`FatTree(k=4)`, `FatTree(k=8)`),
//! mirroring how Table 1 names its rows.

use crate::fattree::{fattree, FatTreeParams};
use crate::graph::Topology;
use crate::internet2::{i2_10g_10g, i2_1g_1g, i2_default, internet2, Internet2Params};
use crate::micro::{dumbbell, line};
use crate::rocketfuel::rocketfuel_default;
use ups_netsim::prelude::{Bandwidth, Dur};

/// One named topology: a stable name, a short description for `--list`
/// output, and the builder.
pub struct TopologyEntry {
    /// Stable registry name (grids reference this).
    pub name: &'static str,
    /// One-line description for listings.
    pub description: &'static str,
    build: fn() -> Topology,
}

impl TopologyEntry {
    /// Build a fresh instance of this topology.
    pub fn build(&self) -> Topology {
        (self.build)()
    }
}

fn i2_small() -> Topology {
    internet2(Internet2Params {
        edges_per_core: 2,
        ..Internet2Params::default()
    })
}

fn fattree_k8() -> Topology {
    fattree(FatTreeParams {
        k: 8,
        ..FatTreeParams::default()
    })
}

fn line_3() -> Topology {
    line(3, Bandwidth::from_gbps(1), Dur::from_us(10))
}

fn dumbbell_4() -> Topology {
    dumbbell(
        4,
        Bandwidth::from_gbps(1),
        Bandwidth::from_gbps(1),
        Dur::from_us(10),
    )
}

/// Every registered topology, in listing order. Table 1's five networks
/// first, then scaled variants and micro-topologies for quick sweeps.
pub const TOPOLOGIES: &[TopologyEntry] = &[
    TopologyEntry {
        name: "I2:1Gbps-10Gbps",
        description: "Internet2 backbone, 1G access / 10G core (paper default)",
        build: i2_default,
    },
    TopologyEntry {
        name: "I2:1Gbps-1Gbps",
        description: "Internet2, access and core both 1G (endhost-paced row)",
        build: i2_1g_1g,
    },
    TopologyEntry {
        name: "I2:10Gbps-10Gbps",
        description: "Internet2, access and core both 10G (core-congested row)",
        build: i2_10g_10g,
    },
    TopologyEntry {
        name: "RocketFuel",
        description: "seeded 83-router ISP-like backbone",
        build: rocketfuel_default,
    },
    TopologyEntry {
        name: "FatTree(k=4)",
        description: "pFabric-style datacenter fat-tree, 16 hosts",
        build: || fattree(FatTreeParams::default()),
    },
    TopologyEntry {
        name: "FatTree(k=8)",
        description: "datacenter fat-tree, 128 hosts (paper scale)",
        build: fattree_k8,
    },
    TopologyEntry {
        name: "I2:small",
        description: "Internet2 with 2 edges per core — quick test variant",
        build: i2_small,
    },
    TopologyEntry {
        name: "Line(3)",
        description: "2 hosts through 3 routers in a line — smoke sweeps",
        build: line_3,
    },
    TopologyEntry {
        name: "Dumbbell(4)",
        description: "4 hosts per side of one bottleneck — smoke sweeps",
        build: dumbbell_4,
    },
];

/// All registered names, in listing order.
pub fn topology_names() -> Vec<&'static str> {
    TOPOLOGIES.iter().map(|e| e.name).collect()
}

/// Look an entry up by its registry name.
pub fn topology_entry(name: &str) -> Option<&'static TopologyEntry> {
    TOPOLOGIES.iter().find(|e| e.name == name)
}

/// Build a topology by registry name.
pub fn topology_by_name(name: &str) -> Option<Topology> {
    topology_entry(name).map(|e| e.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_resolvable() {
        let names = topology_names();
        for (i, n) in names.iter().enumerate() {
            assert!(!names[i + 1..].contains(n), "duplicate registry name {n}");
            let topo = topology_by_name(n).expect("registered name builds");
            assert!(topo.node_count() >= 2, "{n} built an empty topology");
        }
        assert!(topology_by_name("NoSuchNetwork").is_none());
    }

    #[test]
    fn table1_topologies_registered() {
        for name in [
            "I2:1Gbps-10Gbps",
            "I2:1Gbps-1Gbps",
            "I2:10Gbps-10Gbps",
            "RocketFuel",
            "FatTree(k=4)",
        ] {
            assert!(topology_entry(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn builders_are_deterministic() {
        // Same name ⇒ structurally identical network (node/link counts).
        for e in TOPOLOGIES {
            let (a, b) = (e.build(), e.build());
            assert_eq!(a.node_count(), b.node_count(), "{}", e.name);
            assert_eq!(a.links().len(), b.links().len(), "{}", e.name);
        }
    }
}
