//! Micro-topologies: test chains, dumbbells, and the paper's appendix
//! counterexample networks (Figures 5, 6 and 7).
//!
//! # Modelling the appendix networks
//!
//! The appendix uses single-server nodes: a congestion point α has *one*
//! transmission resource of time `T` shared by everything passing through
//! it, while white routers forward instantly. Our simulator (like real
//! routers) is output-queued, so a node with two outgoing links would give
//! each its own queue and the appendix contention would vanish. Each
//! congestion point is therefore built as a **node + mux** pair: the α
//! node has a single output link of serialization time `T` to a mux node,
//! and the mux fans out over effectively-instant links (12 Tbps ⇒ 1 ns per
//! 1500 B packet, vs. the 1 ms scheduling unit — five orders of magnitude
//! below anything the counterexamples measure).

use std::collections::BTreeMap;

use ups_netsim::prelude::{Bandwidth, Dur, NodeId};

use crate::graph::{NodeRole, Topology};

/// One appendix "time unit": 1 ms.
pub const UNIT: Dur = Dur::from_ms(1);
/// Packet size used by all appendix scenarios.
pub const UNIT_PKT: u32 = 1500;
/// Effectively-instant link (1 ns per packet).
pub const FAST: Bandwidth = Bandwidth::from_bps(12_000_000_000_000);

/// Bandwidth giving a serialization time of `num/den` UNITs for a
/// [`UNIT_PKT`]-byte packet. `congested_bw(1, 1)` = 12 Mbps ⇒ exactly 1 ms.
pub fn congested_bw(num: u64, den: u64) -> Bandwidth {
    assert!(num > 0 && den > 0);
    // tx = 12000 bits / bw = num/den ms  =>  bw = 12e6 * den / num.
    Bandwidth::from_bps(12_000_000 * den / num)
}

/// A named micro-topology: the graph plus a name → node map so tests can
/// speak the paper's language ("SA", "a0", ...).
pub struct NamedTopology {
    /// The graph.
    pub topo: Topology,
    names: BTreeMap<&'static str, NodeId>,
}

impl NamedTopology {
    /// Node id of `name`. Panics on unknown names — a typo in a
    /// counterexample script should fail loudly.
    pub fn node(&self, name: &str) -> NodeId {
        *self
            .names
            .get(name)
            .unwrap_or_else(|| panic!("unknown node name {name:?}"))
    }

    /// Translate a list of names into a path.
    pub fn path(&self, names: &[&str]) -> Vec<NodeId> {
        names.iter().map(|n| self.node(n)).collect()
    }
}

struct Builder {
    topo: Topology,
    names: BTreeMap<&'static str, NodeId>,
}

impl Builder {
    fn new(name: &str) -> Self {
        Builder {
            topo: Topology::new(name),
            names: BTreeMap::new(),
        }
    }
    fn host(&mut self, name: &'static str) -> NodeId {
        let id = self.topo.add_node(NodeRole::Host);
        self.names.insert(name, id);
        id
    }
    /// Congestion point: node + mux, joined by a `t_num/t_den` UNIT link.
    fn congestion(&mut self, name: &'static str, mux: &'static str, t_num: u64, t_den: u64) {
        let a = self.topo.add_node(NodeRole::Core);
        let m = self.topo.add_node(NodeRole::Edge);
        self.names.insert(name, a);
        self.names.insert(mux, m);
        self.topo
            .add_link(a, m, congested_bw(t_num, t_den), Dur::ZERO);
    }
    fn fast(&mut self, a: &'static str, b: &'static str) {
        self.fast_prop(a, b, Dur::ZERO);
    }
    fn fast_prop(&mut self, a: &'static str, b: &'static str, prop: Dur) {
        let (a, b) = (self.names[a], self.names[b]);
        self.topo.add_link(a, b, FAST, prop);
    }
    fn finish(self) -> NamedTopology {
        self.topo.validate();
        NamedTopology {
            topo: self.topo,
            names: self.names,
        }
    }
}

/// Appendix C, Figure 5: the network showing **no UPS exists under
/// black-box initialization**. Five congestion points `a0..a4` (T = 1
/// each); flows A and X share `a0` and then diverge; flows B, C, Y, Z
/// provide the downstream interactions that make the two cases demand
/// opposite orders at `a0`.
///
/// Paths (paper's notation → ours):
/// * a: SA → a0 → a1 → a2 → DA
/// * x: SX → a0 → a3 → a4 → DX
/// * b: SB → a1 → DB, c: SC → a2 → DC, y: SY → a3 → DY, z: SZ → a4 → DZ
pub fn appendix_c() -> NamedTopology {
    let mut b = Builder::new("AppendixC-Fig5");
    for h in [
        "SA", "SX", "SB", "SC", "SY", "SZ", "DA", "DX", "DB", "DC", "DY", "DZ",
    ] {
        b.host(h);
    }
    b.congestion("a0", "m0", 1, 1);
    b.congestion("a1", "m1", 1, 1);
    b.congestion("a2", "m2", 1, 1);
    b.congestion("a3", "m3", 1, 1);
    b.congestion("a4", "m4", 1, 1);
    b.fast("SA", "a0");
    b.fast("SX", "a0");
    b.fast("m0", "a1");
    b.fast("m0", "a3");
    b.fast("SB", "a1");
    b.fast("m1", "a2");
    b.fast("m1", "DB");
    b.fast("SC", "a2");
    b.fast("m2", "DA");
    b.fast("m2", "DC");
    b.fast("SY", "a3");
    b.fast("m3", "a4");
    b.fast("m3", "DY");
    b.fast("SZ", "a4");
    b.fast("m4", "DX");
    b.fast("m4", "DZ");
    b.finish()
}

/// Appendix F, Figure 6: **simple priorities fail with two congestion
/// points per packet** — the priority cycle `prio(a) < prio(b) < prio(c)
/// < prio(a)`. Congestion points: `a1` (T = 1), `a2` (T = ½), `a3`
/// (T = ⅕); the link `a1 → a3` (the figure's `L`) has a 2-UNIT
/// propagation delay.
///
/// Paths:
/// * a: SA → a1 → a3 → DA (via L)
/// * b: SB → a1 → a2 → DB
/// * c: SC → a2 → a3 → DC
pub fn appendix_f() -> NamedTopology {
    let mut b = Builder::new("AppendixF-Fig6");
    for h in ["SA", "SB", "SC", "DA", "DB", "DC"] {
        b.host(h);
    }
    b.congestion("a1", "m1", 1, 1);
    b.congestion("a2", "m2", 1, 2);
    b.congestion("a3", "m3", 1, 5);
    b.fast("SA", "a1");
    b.fast("SB", "a1");
    b.fast("m1", "a2");
    b.fast_prop("m1", "a3", UNIT.times(2)); // the figure's link L
    b.fast("SC", "a2");
    b.fast("m2", "DB");
    b.fast("m2", "a3");
    b.fast("m3", "DA");
    b.fast("m3", "DC");
    b.finish()
}

/// Appendix G.3, Figure 7: **LSTF replay failure with three congestion
/// points** for flow A. Congestion points `a0`, `a1`, `a2`, all T = 1.
///
/// Paths:
/// * a: SA → a0 → a1 → a2 → DA
/// * b: SB → a0 → DB
/// * c1, c2: SC → a1 → DC
/// * d1, d2: SD → a2 → DD
pub fn appendix_g() -> NamedTopology {
    let mut b = Builder::new("AppendixG-Fig7");
    for h in ["SA", "SB", "SC", "SD", "DA", "DB", "DC", "DD"] {
        b.host(h);
    }
    b.congestion("a0", "m0", 1, 1);
    b.congestion("a1", "m1", 1, 1);
    b.congestion("a2", "m2", 1, 1);
    b.fast("SA", "a0");
    b.fast("SB", "a0");
    b.fast("m0", "a1");
    b.fast("m0", "DB");
    b.fast("SC", "a1");
    b.fast("m1", "a2");
    b.fast("m1", "DC");
    b.fast("SD", "a2");
    b.fast("m2", "DA");
    b.fast("m2", "DD");
    b.finish()
}

/// A chain `host – r1 – r2 – … – rN – host` with uniform links; the
/// workhorse of unit and property tests.
pub fn line(routers: usize, bandwidth: Bandwidth, propagation: Dur) -> Topology {
    assert!(routers >= 1);
    let mut t = Topology::new(format!("Line({routers})"));
    let h1 = t.add_node(NodeRole::Host);
    let mut prev = h1;
    for _ in 0..routers {
        let r = t.add_node(NodeRole::Core);
        t.add_link(prev, r, bandwidth, propagation);
        prev = r;
    }
    let h2 = t.add_node(NodeRole::Host);
    t.add_link(prev, h2, bandwidth, propagation);
    t.validate();
    t
}

/// A dumbbell: `n` hosts on each side of a single bottleneck link —
/// the canonical congestion-control topology.
pub fn dumbbell(
    hosts_per_side: usize,
    access_bw: Bandwidth,
    bottleneck_bw: Bandwidth,
    propagation: Dur,
) -> Topology {
    assert!(hosts_per_side >= 1);
    let mut t = Topology::new(format!("Dumbbell({hosts_per_side})"));
    let left = t.add_node(NodeRole::Core);
    let right = t.add_node(NodeRole::Core);
    t.add_link(left, right, bottleneck_bw, propagation);
    for side in [left, right] {
        for _ in 0..hosts_per_side {
            let h = t.add_node(NodeRole::Host);
            t.add_link(side, h, access_bw, Dur::from_us(5));
        }
    }
    t.validate();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{tmin, Routing};

    #[test]
    fn congested_bw_serialization_times() {
        assert_eq!(congested_bw(1, 1).tx_time(UNIT_PKT), UNIT);
        assert_eq!(congested_bw(1, 2).tx_time(UNIT_PKT), Dur::from_us(500));
        assert_eq!(congested_bw(1, 5).tx_time(UNIT_PKT), Dur::from_us(200));
        assert_eq!(FAST.tx_time(UNIT_PKT), Dur::from_ns(1));
    }

    #[test]
    fn appendix_c_paths_route_as_drawn() {
        let net = appendix_c();
        let mut r = Routing::new(&net.topo);
        let pa = r.path(net.node("SA"), net.node("DA"));
        assert_eq!(
            &*pa,
            &net.path(&["SA", "a0", "m0", "a1", "m1", "a2", "m2", "DA"])[..]
        );
        let px = r.path(net.node("SX"), net.node("DX"));
        assert_eq!(
            &*px,
            &net.path(&["SX", "a0", "m0", "a3", "m3", "a4", "m4", "DX"])[..]
        );
        // a's uncongested transit: 3 congested hops of 1 UNIT each plus
        // nanosecond noise from the fast hops.
        let t = tmin(&net.topo, &pa, UNIT_PKT);
        let lo = UNIT.times(3);
        assert!(t >= lo && t < lo + Dur::from_us(1), "tmin(a) = {t}");
    }

    #[test]
    fn appendix_f_l_link_has_two_unit_delay() {
        let net = appendix_f();
        let l = net
            .topo
            .neighbor_link(net.node("m1"), net.node("a3"))
            .unwrap();
        assert_eq!(l.propagation, UNIT.times(2));
        // b's path goes a1 then a2.
        let mut r = Routing::new(&net.topo);
        let pb = r.path(net.node("SB"), net.node("DB"));
        assert_eq!(&*pb, &net.path(&["SB", "a1", "m1", "a2", "m2", "DB"])[..]);
    }

    #[test]
    fn appendix_g_flow_a_sees_three_congestion_points() {
        let net = appendix_g();
        let mut r = Routing::new(&net.topo);
        let pa = r.path(net.node("SA"), net.node("DA"));
        let congested: Vec<NodeId> = ["a0", "a1", "a2"].iter().map(|n| net.node(n)).collect();
        let crossed = pa.iter().filter(|n| congested.contains(n)).count();
        assert_eq!(crossed, 3);
    }

    #[test]
    fn line_and_dumbbell_shapes() {
        let l = line(3, Bandwidth::from_gbps(1), Dur::from_us(10));
        assert_eq!(l.node_count(), 5);
        assert_eq!(l.hosts().len(), 2);

        let d = dumbbell(
            4,
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(1),
            Dur::from_ms(1),
        );
        assert_eq!(d.hosts().len(), 8);
        assert_eq!(d.bottleneck_bandwidth(), Bandwidth::from_gbps(1));
        let mut r = Routing::new(&d);
        let hosts = d.hosts();
        assert_eq!(r.hop_count(hosts[0], hosts[4]), 3);
    }
}
