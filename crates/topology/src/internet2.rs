//! The simplified Internet2 topology of the paper's evaluation (§2.3).
//!
//! "We use a simplified Internet-2 topology, identical to the one used in
//! [21] (consisting of 10 routers and 16 links in the core). We connect
//! each core router to 10 edge routers using 1Gbps links and each edge
//! router is attached to an end host via a 10Gbps link."
//!
//! The core is an Abilene-like 10-city backbone with geographically
//! plausible propagation delays (the exact link map of [21] is not
//! published; hop counts per packet land in the paper's 4–7 range —
//! asserted by tests). Core links default to 10 Gbps — the real
//! Internet2 backbone rate — which is what gives the evaluation its
//! congestion structure: at 70% mean core utilization the workload
//! calibrates to thousands of flows per second, so core ports see many
//! concurrent access-paced streams and packets hit congestion at
//! *multiple* hops (the regime where replay is non-trivial). The three
//! bandwidth variants of Table 1:
//!
//! * `1Gbps-10Gbps` (default): access (edge→core) links slower than the
//!   core — packets are paced at the edge before aggregating.
//! * `1Gbps-1Gbps`: host links slowest — packets paced at the host,
//!   fewest congestion points, best replay.
//! * `10Gbps-10Gbps`: access and edge at core rate — bursts reach the
//!   core unpaced and one overdue packet cascades into followers, worst
//!   replay.

use ups_netsim::prelude::{Bandwidth, Dur, NodeId};

use crate::graph::{NodeRole, Topology};

/// Tunable parameters for the Internet2 family.
#[derive(Debug, Clone, Copy)]
pub struct Internet2Params {
    /// Host ↔ edge-router bandwidth (paper default 10 Gbps).
    pub host_bw: Bandwidth,
    /// Edge-router ↔ core bandwidth — the "access" links (default 1 Gbps).
    pub edge_bw: Bandwidth,
    /// Core ↔ core bandwidth (default 10 Gbps; see module docs).
    pub core_bw: Bandwidth,
    /// Edge routers per core router (paper: 10).
    pub edges_per_core: usize,
    /// Hosts per edge router (paper: 1).
    pub hosts_per_edge: usize,
    /// Host ↔ edge propagation delay.
    pub host_prop: Dur,
    /// Edge ↔ core propagation delay.
    pub edge_prop: Dur,
    /// Divide the geographic core delays by this (Figure 4 "reduce[s] the
    /// propagation delay to make the experiment more scalable").
    pub core_prop_divisor: u64,
}

impl Default for Internet2Params {
    fn default() -> Self {
        Internet2Params {
            host_bw: Bandwidth::from_gbps(10),
            edge_bw: Bandwidth::from_gbps(1),
            core_bw: Bandwidth::from_gbps(10),
            edges_per_core: 10,
            hosts_per_edge: 1,
            host_prop: Dur::from_us(5),
            edge_prop: Dur::from_us(100),
            core_prop_divisor: 1,
        }
    }
}

/// The 10 backbone cities, in node-id order.
pub const I2_CITIES: [&str; 10] = [
    "Seattle",
    "Sunnyvale",
    "LosAngeles",
    "Denver",
    "KansasCity",
    "Houston",
    "Chicago",
    "Indianapolis",
    "Atlanta",
    "WashingtonDC",
];

/// The 16 core links as (city index, city index, propagation in µs) —
/// one-way fiber delays at ~5 µs/km over approximate route miles.
const I2_CORE_LINKS: [(u32, u32, u64); 16] = [
    (0, 1, 4100), // Seattle–Sunnyvale
    (0, 3, 6600), // Seattle–Denver
    (1, 2, 1800), // Sunnyvale–LosAngeles
    (1, 3, 5100), // Sunnyvale–Denver
    (2, 3, 4200), // LosAngeles–Denver
    (2, 5, 7100), // LosAngeles–Houston
    (3, 4, 3100), // Denver–KansasCity
    (3, 5, 4400), // Denver–Houston
    (4, 5, 3700), // KansasCity–Houston
    (4, 6, 2700), // KansasCity–Chicago
    (4, 7, 2200), // KansasCity–Indianapolis
    (5, 8, 4000), // Houston–Atlanta
    (6, 7, 1000), // Chicago–Indianapolis
    (6, 9, 3500), // Chicago–WashingtonDC
    (7, 8, 2700), // Indianapolis–Atlanta
    (8, 9, 3100), // Atlanta–WashingtonDC
];

/// Build an Internet2 topology with the given parameters.
pub fn internet2(params: Internet2Params) -> Topology {
    let mut t = Topology::new(format!("I2:{}-{}", params.edge_bw, params.host_bw));
    // Core routers first: ids 0..10 match I2_CITIES.
    let cores: Vec<NodeId> = (0..10).map(|_| t.add_node(NodeRole::Core)).collect();
    for &(a, b, us) in &I2_CORE_LINKS {
        t.add_link(
            cores[a as usize],
            cores[b as usize],
            params.core_bw,
            Dur::from_us(us / params.core_prop_divisor.max(1)),
        );
    }
    // Edge routers and hosts.
    for &core in &cores {
        for _ in 0..params.edges_per_core {
            let edge = t.add_node(NodeRole::Edge);
            t.add_link(core, edge, params.edge_bw, params.edge_prop);
            for _ in 0..params.hosts_per_edge {
                let host = t.add_node(NodeRole::Host);
                t.add_link(edge, host, params.host_bw, params.host_prop);
            }
        }
    }
    t.validate();
    t
}

/// The paper's default: `I2:1Gbps-10Gbps`.
pub fn i2_default() -> Topology {
    internet2(Internet2Params::default())
}

/// `I2:1Gbps-1Gbps` — host links reduced to 1 Gbps (Table 1 row 3a).
pub fn i2_1g_1g() -> Topology {
    internet2(Internet2Params {
        host_bw: Bandwidth::from_gbps(1),
        ..Internet2Params::default()
    })
}

/// `I2:10Gbps-10Gbps` — access links raised to 10 Gbps (Table 1 row 3b).
pub fn i2_10g_10g() -> Topology {
    internet2(Internet2Params {
        edge_bw: Bandwidth::from_gbps(10),
        ..Internet2Params::default()
    })
}

/// The Figure 4 fairness variant: 10 Gbps edges and hosts so "all the
/// congestion is happening at the core", 13 Gbps core links so the fair
/// share of a core link carrying ~13 flows is ≈ 1 Gbps, and core
/// propagation shrunk 100× for experiment scalability.
pub fn i2_fairness() -> Topology {
    let mut t = internet2(Internet2Params {
        host_bw: Bandwidth::from_gbps(10),
        edge_bw: Bandwidth::from_gbps(10),
        core_bw: Bandwidth::from_gbps(13),
        core_prop_divisor: 100,
        host_prop: Dur::from_us(1),
        edge_prop: Dur::from_us(2),
        ..Internet2Params::default()
    });
    t.name = "I2:fairness".into();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::Routing;

    #[test]
    fn default_shape_matches_paper() {
        let t = i2_default();
        // 10 core + 100 edge + 100 hosts.
        assert_eq!(t.node_count(), 210);
        assert_eq!(t.hosts().len(), 100);
        assert_eq!(t.core_links().len(), 16);
        assert_eq!(t.nodes_with_role(NodeRole::Core).len(), 10);
        assert_eq!(t.nodes_with_role(NodeRole::Edge).len(), 100);
        // Bottleneck is the 1G access link → T = 12us for 1500B.
        assert_eq!(t.bottleneck_bandwidth(), Bandwidth::from_gbps(1));
    }

    #[test]
    fn hop_counts_match_paper_range() {
        // "The number of hops per packet is in the range of 4 to 7,
        // excluding the end hosts" — i.e. host-to-host paths have 4..=7
        // router hops = 5..=8 links.
        let t = i2_default();
        let mut r = Routing::new(&t);
        let hosts = t.hosts();
        let mut min_routers = usize::MAX;
        let mut max_routers = 0;
        for (i, &a) in hosts.iter().enumerate() {
            for &b in hosts.iter().skip(i + 1).step_by(7) {
                let links = r.hop_count(a, b);
                let routers = links - 1; // nodes excluding the two hosts
                min_routers = min_routers.min(routers);
                max_routers = max_routers.max(routers);
            }
        }
        assert!(min_routers >= 2, "min router hops {min_routers}");
        assert!(
            (4..=7).contains(&max_routers),
            "max router hops {max_routers} outside the paper's 4–7"
        );
    }

    #[test]
    fn variants_set_expected_bandwidths() {
        let v11 = i2_1g_1g();
        assert_eq!(v11.bottleneck_bandwidth(), Bandwidth::from_gbps(1));
        let host_link = v11
            .neighbor_link(
                v11.hosts()[0],
                v11.neighbors(v11.hosts()[0]).next().unwrap(),
            )
            .unwrap();
        assert_eq!(host_link.bandwidth, Bandwidth::from_gbps(1));

        let v1010 = i2_10g_10g();
        // Everything runs at the core rate: zero headroom anywhere.
        assert_eq!(v1010.bottleneck_bandwidth(), Bandwidth::from_gbps(10));

        let fair = i2_fairness();
        assert_eq!(fair.core_links()[0].bandwidth, Bandwidth::from_gbps(13));
        // Core propagation shrunk 100x: Seattle–Sunnyvale 4100us -> 41us.
        assert_eq!(fair.core_links()[0].propagation, Dur::from_us(41));
    }

    #[test]
    fn scaled_down_variant_for_tests() {
        let t = internet2(Internet2Params {
            edges_per_core: 2,
            ..Internet2Params::default()
        });
        assert_eq!(t.node_count(), 10 + 20 + 20);
        t.validate();
    }
}
