//! Full-bisection-bandwidth k-ary fat-tree (the pFabric datacenter
//! topology of Table 1's last row, [3]).

use ups_netsim::prelude::{Bandwidth, Dur, NodeId};

use crate::graph::{NodeRole, Topology};

/// Parameters for the fat-tree family.
#[derive(Debug, Clone, Copy)]
pub struct FatTreeParams {
    /// Pod fan-out; must be even. k pods, (k/2)² core switches, k²/2
    /// aggregation + edge switches, k³/4 hosts.
    pub k: usize,
    /// Uniform link bandwidth (paper: 10 Gbps).
    pub bandwidth: Bandwidth,
    /// Uniform per-link propagation delay (datacenter scale).
    pub propagation: Dur,
}

impl Default for FatTreeParams {
    fn default() -> Self {
        FatTreeParams {
            k: 4,
            bandwidth: Bandwidth::from_gbps(10),
            propagation: Dur::from_us(1),
        }
    }
}

/// Build a k-ary fat-tree.
///
/// Node layout (dense ids): core switches, then per pod: aggregation
/// switches, edge switches, hosts. Aggregation switch `a` of each pod
/// connects to core switches `a·(k/2) .. a·(k/2)+k/2`; every edge switch
/// connects to every aggregation switch in its pod and to k/2 hosts. This
/// is the standard Al-Fares construction with full bisection bandwidth.
///
/// Routing (hop-count BFS, deterministic tie-break) yields the canonical
/// host–edge–agg–core–agg–edge–host paths; there is no ECMP spreading —
/// a substitution recorded in DESIGN.md (the paper's claims don't depend
/// on multipath).
pub fn fattree(params: FatTreeParams) -> Topology {
    let k = params.k;
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree k must be even, got {k}"
    );
    let half = k / 2;
    let mut t = Topology::new(format!("FatTree(k={k})"));

    let cores: Vec<NodeId> = (0..half * half)
        .map(|_| t.add_node(NodeRole::Core))
        .collect();
    for _pod in 0..k {
        let aggs: Vec<NodeId> = (0..half).map(|_| t.add_node(NodeRole::Core)).collect();
        let edges: Vec<NodeId> = (0..half).map(|_| t.add_node(NodeRole::Edge)).collect();
        for (a, &agg) in aggs.iter().enumerate() {
            for j in 0..half {
                t.add_link(
                    agg,
                    cores[a * half + j],
                    params.bandwidth,
                    params.propagation,
                );
            }
            for &edge in &edges {
                t.add_link(agg, edge, params.bandwidth, params.propagation);
            }
        }
        for &edge in &edges {
            for _ in 0..half {
                let host = t.add_node(NodeRole::Host);
                t.add_link(edge, host, params.bandwidth, params.propagation);
            }
        }
    }
    t.validate();
    t
}

/// The default datacenter topology used by the Table 1 bench (k = 4 for
/// test scale; the bench harness can request larger k).
pub fn fattree_default() -> Topology {
    fattree(FatTreeParams::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::Routing;

    #[test]
    fn k4_shape() {
        let t = fattree_default();
        // 4 core, 8 agg, 8 edge, 16 hosts.
        assert_eq!(t.hosts().len(), 16);
        assert_eq!(t.node_count(), 4 + 8 + 8 + 16);
        // Links: core-agg 4*... each agg connects to 2 cores (8*2=16), each
        // edge to 2 aggs (8*2=16), each host to 1 edge (16).
        assert_eq!(t.links().len(), 16 + 16 + 16);
        assert_eq!(t.bottleneck_bandwidth(), Bandwidth::from_gbps(10));
    }

    #[test]
    fn k8_scales() {
        let t = fattree(FatTreeParams {
            k: 8,
            ..FatTreeParams::default()
        });
        assert_eq!(t.hosts().len(), 8 * 8 * 8 / 4);
        t.validate();
    }

    #[test]
    fn path_lengths_are_canonical() {
        let t = fattree_default();
        let mut r = Routing::new(&t);
        let hosts = t.hosts();
        // Same edge switch: host-edge-host = 2 links.
        // (hosts under one edge are consecutive ids in this construction)
        let same_edge = r.hop_count(hosts[0], hosts[1]);
        assert_eq!(same_edge, 2);
        // Cross-pod: host-edge-agg-core-agg-edge-host = 6 links.
        let cross_pod = r.hop_count(hosts[0], *hosts.last().unwrap());
        assert_eq!(cross_pod, 6);
        // Same pod, different edge: 4 links.
        let same_pod = r.hop_count(hosts[0], hosts[2]);
        assert_eq!(same_pod, 4);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_k_rejected() {
        let _ = fattree(FatTreeParams {
            k: 3,
            ..FatTreeParams::default()
        });
    }
}
