//! # ups-topology — network graphs, routing and `tmin` for the UPS paper
//!
//! Every topology the paper's evaluation touches:
//!
//! * [`internet2`] — the simplified 10-router/16-link Internet2 backbone
//!   with the three bandwidth variants of Table 1 and the Figure 4
//!   fairness variant,
//! * [`rocketfuel`] — a seeded 83-router/131-link ISP-like backbone
//!   (substitution for the unredistributable RocketFuel map; DESIGN.md §4),
//! * [`fattree`] — the full-bisection datacenter fat-tree of pFabric,
//! * [`micro`] — chains, dumbbells and the exact counterexample networks
//!   of Appendix C (Fig. 5), F (Fig. 6) and G.3 (Fig. 7),
//!
//! plus hop-count [`routing`] with deterministic tie-breaks and the
//! `tmin(p, α, β)` minimum-transit computation that LSTF slack
//! initialization and EDF local deadlines are built on, [`build`] to
//! stamp a `ups_netsim::Simulator` out of any topology + scheduler
//! assignment, and the enumerable [`registry`] of named topologies the
//! `ups-sweep` grids reference.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod build;
pub mod fattree;
pub mod graph;
pub mod internet2;
pub mod micro;
pub mod registry;
pub mod rocketfuel;
pub mod routing;

pub use build::{build_simulator, BuildOptions, SchedulerAssignment};
pub use fattree::{fattree, fattree_default, FatTreeParams};
pub use graph::{LinkSpec, NodeRole, Topology};
pub use internet2::{i2_10g_10g, i2_1g_1g, i2_default, i2_fairness, internet2, Internet2Params};
pub use micro::{appendix_c, appendix_f, appendix_g, dumbbell, line, NamedTopology};
pub use registry::{topology_by_name, topology_entry, topology_names, TopologyEntry, TOPOLOGIES};
pub use rocketfuel::{rocketfuel, rocketfuel_default, RocketFuelParams};
pub use routing::{
    attach_tmin, bfs_dist_avoiding, shortest_path_avoiding, shortest_path_from_dist, tmin,
    tmin_rem_table, tmin_suffix, Routing, RoutingCore,
};
