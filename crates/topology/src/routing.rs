//! Shortest-path routing and minimum-transit (`tmin`) computation.
//!
//! The paper's model fixes `path(p)` per packet (§2.1); we derive paths by
//! hop-count BFS. Among equal-cost shortest paths the choice is a
//! **deterministic hash of (src, dst)** — ECMP-style spreading without
//! randomness, so every run (and both runs of a replay pair) routes
//! identically while offered load spreads across the mesh instead of
//! piling onto the lowest-numbered links. A (src, dst) pair always maps
//! to exactly one path.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;

use ups_netsim::packet::Packet;
use ups_netsim::prelude::{Dur, NodeId};

use crate::graph::Topology;

/// The immutable, shareable part of [`Routing`]: per-source BFS distance
/// fields and a sorted adjacency copy. Computing this is the O(V·(V+E))
/// cost of routing; the sweep engine builds it **once per distinct
/// topology** and shares it across jobs behind an `Arc` (every job then
/// carries only its own cheap path cache).
pub struct RoutingCore {
    /// `dist[s][n]` = hop distance from source `s` to `n`.
    dist: Vec<Vec<u32>>,
    /// Sorted adjacency copy (path reconstruction needs neighbor sets
    /// without borrowing the topology).
    adjacency: Vec<Vec<NodeId>>,
}

impl RoutingCore {
    /// All-pairs BFS over `topo`.
    pub fn new(topo: &Topology) -> Self {
        let n = topo.node_count();
        let mut dist = Vec::with_capacity(n);
        for s in topo.nodes() {
            dist.push(bfs_dist(topo, s, &alive_all));
        }
        let adjacency = topo.nodes().map(|u| topo.neighbors(u).collect()).collect();
        RoutingCore { dist, adjacency }
    }
}

/// All-pairs routing over a topology: a shared [`RoutingCore`] plus
/// hash-spread path reconstruction cached per (src, dst).
pub struct Routing {
    core: Arc<RoutingCore>,
    cache: BTreeMap<(NodeId, NodeId), Arc<[NodeId]>>,
}

/// SplitMix64 — deterministic tie-break hash for equal-cost choices.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// The trivial link filter: everything is alive.
fn alive_all(_a: NodeId, _b: NodeId) -> bool {
    true
}

/// Walk backwards from `dst` along a BFS distance field rooted at `src`:
/// at every step the candidates are the (alive) neighbors one hop closer
/// to `src`, picked by the (src, dst)-seeded hash. This single function
/// is the tie-break rule — static [`Routing`] and the dynamics layer's
/// failover routing both call it, so a zero-failure dynamic table is the
/// static table by construction.
///
/// `neighbors_of(cur, out)` must fill `out` with `cur`'s neighbors whose
/// link to `cur` is alive, in ascending-id order.
fn walk_back(
    dist: &[u32],
    src: NodeId,
    dst: NodeId,
    mut neighbors_of: impl FnMut(NodeId, &mut Vec<NodeId>),
) -> Vec<NodeId> {
    let seed = mix(((src.0 as u64) << 32) | dst.0 as u64);
    let mut rev = vec![dst];
    let mut cur = dst;
    let mut candidates = Vec::new();
    while cur != src {
        let want = dist[cur.index()] - 1;
        candidates.clear();
        neighbors_of(cur, &mut candidates);
        candidates.retain(|n| dist[n.index()] == want);
        debug_assert!(!candidates.is_empty(), "broken BFS field");
        let pick = mix(seed ^ cur.0 as u64) as usize % candidates.len();
        cur = candidates[pick];
        rev.push(cur);
    }
    rev.reverse();
    rev
}

impl Routing {
    /// Compute routing for `topo`. O(V·(V+E)); instantaneous at the
    /// paper's scales (≤ a few thousand nodes).
    pub fn new(topo: &Topology) -> Self {
        Routing::from_core(Arc::new(RoutingCore::new(topo)))
    }

    /// Wrap an already-computed (typically shared) core. The path cache
    /// starts empty and is private to this instance.
    pub fn from_core(core: Arc<RoutingCore>) -> Self {
        Routing {
            core,
            cache: BTreeMap::new(),
        }
    }

    /// The unique deterministic path from `src` to `dst`, inclusive.
    ///
    /// # Panics
    /// If `dst` is unreachable (canned topologies are validated connected).
    pub fn path(&mut self, src: NodeId, dst: NodeId) -> Arc<[NodeId]> {
        assert_ne!(src, dst, "degenerate path {src} -> {src}");
        if let Some(p) = self.cache.get(&(src, dst)) {
            return p.clone();
        }
        let dist = &self.core.dist[src.index()];
        assert_ne!(dist[dst.index()], u32::MAX, "{dst} unreachable from {src}");
        let adjacency = &self.core.adjacency;
        let rev = walk_back(dist, src, dst, |cur, out| {
            out.extend_from_slice(&adjacency[cur.index()]);
        });
        let path: Arc<[NodeId]> = rev.into();
        self.cache.insert((src, dst), path.clone());
        path
    }

    /// Hop count (number of links) between two nodes.
    pub fn hop_count(&mut self, src: NodeId, dst: NodeId) -> usize {
        self.path(src, dst).len() - 1
    }
}

/// Hash-spread shortest path from `src` to `dst` over the links `alive`
/// admits, or `None` when the surviving graph disconnects them — the
/// primitive behind the dynamics layer's per-epoch failover routing.
/// With an all-true filter this returns exactly [`Routing::path`]'s
/// answer (same BFS, same [`walk_back`] tie-break).
pub fn shortest_path_avoiding(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    alive: &dyn Fn(NodeId, NodeId) -> bool,
) -> Option<Arc<[NodeId]>> {
    shortest_path_from_dist(topo, &bfs_dist_avoiding(topo, src, alive), src, dst, alive)
}

/// The BFS half of [`shortest_path_avoiding`]: hop distances from `src`
/// over the links `alive` admits. The field depends only on the source
/// and the alive set, so callers answering many destinations per source
/// (the dynamics layer's burst reroutes) compute it once and reconstruct
/// per destination with [`shortest_path_from_dist`].
pub fn bfs_dist_avoiding(
    topo: &Topology,
    src: NodeId,
    alive: &dyn Fn(NodeId, NodeId) -> bool,
) -> Vec<u32> {
    bfs_dist(topo, src, alive)
}

/// The reconstruction half of [`shortest_path_avoiding`]: walk a
/// precomputed distance field (from [`bfs_dist_avoiding`] with the same
/// `src` and `alive`) back from `dst` with the hash-spread tie-break.
pub fn shortest_path_from_dist(
    topo: &Topology,
    dist: &[u32],
    src: NodeId,
    dst: NodeId,
    alive: &dyn Fn(NodeId, NodeId) -> bool,
) -> Option<Arc<[NodeId]>> {
    assert_ne!(src, dst, "degenerate path {src} -> {src}");
    if dist[dst.index()] == u32::MAX {
        return None;
    }
    let rev = walk_back(dist, src, dst, |cur, out| {
        out.extend(topo.neighbors(cur).filter(|&n| alive(n, cur)));
    });
    Some(rev.into())
}

/// BFS hop distances from `s` over the links `alive` admits.
fn bfs_dist(topo: &Topology, s: NodeId, alive: &dyn Fn(NodeId, NodeId) -> bool) -> Vec<u32> {
    let n = topo.node_count();
    let mut dist: Vec<u32> = vec![u32::MAX; n];
    dist[s.index()] = 0;
    let mut q = VecDeque::new();
    q.push_back(s);
    while let Some(u) = q.pop_front() {
        for v in topo.neighbors(u) {
            if dist[v.index()] == u32::MAX && alive(u, v) {
                dist[v.index()] = dist[u.index()] + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// `tmin(p, path[from], dst)` for a packet of `size` bytes along `path`
/// (paper App. A): the empty-network transit time — every hop's
/// serialization plus every link's propagation, store-and-forward.
pub fn tmin_suffix(topo: &Topology, path: &[NodeId], size: u32, from: usize) -> Dur {
    assert!(from < path.len());
    let mut total = Dur::ZERO;
    for w in path.windows(2).skip(from) {
        let link = topo
            .neighbor_link(w[0], w[1])
            .unwrap_or_else(|| panic!("path uses missing link {}–{}", w[0], w[1]));
        total += link.bandwidth.tx_time(size) + link.propagation;
    }
    total
}

/// Full-path `tmin(p, src, dst)`.
pub fn tmin(topo: &Topology, path: &[NodeId], size: u32) -> Dur {
    tmin_suffix(topo, path, size, 0)
}

/// The per-hop remaining-transit table `tmin_rem[i] = tmin(p, path[i],
/// dst)` that EDF needs (App. E). `tmin_rem[last] = 0`.
pub fn tmin_rem_table(topo: &Topology, path: &[NodeId], size: u32) -> Arc<[Dur]> {
    let n = path.len();
    let mut out = vec![Dur::ZERO; n];
    // Suffix sums from the back.
    for i in (0..n - 1).rev() {
        let link = topo
            .neighbor_link(path[i], path[i + 1])
            .unwrap_or_else(|| panic!("path uses missing link {}–{}", path[i], path[i + 1]));
        out[i] = out[i + 1] + link.bandwidth.tx_time(size) + link.propagation;
    }
    out.into()
}

/// Attach a `tmin_rem` table to a packet in place (needed before running
/// it through EDF ports).
pub fn attach_tmin(topo: &Topology, packet: &mut Packet) {
    packet.tmin_rem = Some(tmin_rem_table(topo, &packet.path, packet.size));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeRole;
    use ups_netsim::prelude::Bandwidth;

    /// Diamond: 0 - {1,2} - 3, plus a slow detour 0-4-3.
    fn diamond() -> Topology {
        let mut t = Topology::new("diamond");
        for _ in 0..5 {
            t.add_node(NodeRole::Core);
        }
        let bw = Bandwidth::from_gbps(1);
        t.add_link(NodeId(0), NodeId(1), bw, Dur::from_us(10));
        t.add_link(NodeId(0), NodeId(2), bw, Dur::from_us(10));
        t.add_link(NodeId(1), NodeId(3), bw, Dur::from_us(10));
        t.add_link(NodeId(2), NodeId(3), bw, Dur::from_us(10));
        t.add_link(NodeId(0), NodeId(4), bw, Dur::from_us(10));
        t.add_link(NodeId(4), NodeId(3), bw, Dur::from_us(10));
        t
    }

    #[test]
    fn picks_a_shortest_path_deterministically() {
        let mut r = Routing::new(&diamond());
        // 0->3 has three 2-hop options via 1, 2 or 4.
        let p = r.path(NodeId(0), NodeId(3));
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], NodeId(0));
        assert_eq!(p[2], NodeId(3));
        assert!([NodeId(1), NodeId(2), NodeId(4)].contains(&p[1]));
        assert_eq!(r.hop_count(NodeId(0), NodeId(3)), 2);
        // Cached path is identical.
        assert!(Arc::ptr_eq(&p, &r.path(NodeId(0), NodeId(3))));
        // A fresh Routing instance picks the same path (pure hash).
        let mut r2 = Routing::new(&diamond());
        assert_eq!(&*r2.path(NodeId(0), NodeId(3)), &*p);
    }

    #[test]
    fn ecmp_spreads_over_equal_cost_paths() {
        // Fan topology: many (src, dst) pairs across the 0–3 diamond must
        // not all pick the same middle node.
        let mut t = diamond();
        let bw = Bandwidth::from_gbps(1);
        // Hang leaf nodes off 0 and 3 to create distinct pairs.
        let leaves_a: Vec<NodeId> = (0..6)
            .map(|_| {
                let l = t.add_node(NodeRole::Core);
                t.add_link(l, NodeId(0), bw, Dur::from_us(1));
                l
            })
            .collect();
        let leaves_b: Vec<NodeId> = (0..6)
            .map(|_| {
                let l = t.add_node(NodeRole::Core);
                t.add_link(l, NodeId(3), bw, Dur::from_us(1));
                l
            })
            .collect();
        let mut r = Routing::new(&t);
        let mut middles = std::collections::HashSet::new();
        for &a in &leaves_a {
            for &b in &leaves_b {
                let p = r.path(a, b);
                middles.insert(p[2]);
            }
        }
        assert!(
            middles.len() >= 2,
            "36 pairs should spread over ≥2 of the 3 equal-cost middles, got {middles:?}"
        );
    }

    #[test]
    fn tmin_adds_tx_and_propagation_per_hop() {
        let t = diamond();
        let path = [NodeId(0), NodeId(1), NodeId(3)];
        // Two hops: 2 × (12us tx @1G for 1500B + 10us prop) = 44us.
        assert_eq!(tmin(&t, &path, 1500), Dur::from_us(44));
        assert_eq!(tmin_suffix(&t, &path, 1500, 1), Dur::from_us(22));
    }

    #[test]
    fn tmin_rem_table_is_suffix_sums() {
        let t = diamond();
        let path = [NodeId(0), NodeId(1), NodeId(3)];
        let table = tmin_rem_table(&t, &path, 1500);
        assert_eq!(&*table, &[Dur::from_us(44), Dur::from_us(22), Dur::ZERO]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_self_path() {
        let mut r = Routing::new(&diamond());
        let _ = r.path(NodeId(1), NodeId(1));
    }

    #[test]
    fn filtered_path_with_everything_alive_matches_static_routing() {
        let t = diamond();
        let mut r = Routing::new(&t);
        for (src, dst) in [(0u32, 3u32), (3, 0), (1, 4), (4, 2), (0, 1)] {
            let (src, dst) = (NodeId(src), NodeId(dst));
            let filtered = shortest_path_avoiding(&t, src, dst, &|_, _| true).expect("connected");
            assert_eq!(&*filtered, &*r.path(src, dst), "{src}->{dst}");
        }
    }

    #[test]
    fn filtered_path_detours_around_dead_links() {
        let t = diamond();
        let mut r = Routing::new(&t);
        let via = r.path(NodeId(0), NodeId(3))[1];
        // Kill the first hop of the chosen path: the detour must avoid it
        // and still be a 2-hop shortest path through another middle node.
        let dead = (NodeId(0), via);
        let alive = move |a: NodeId, b: NodeId| !((a, b) == dead || (b, a) == dead);
        let p = shortest_path_avoiding(&t, NodeId(0), NodeId(3), &alive).expect("still connected");
        assert_eq!(p.len(), 3);
        assert_ne!(p[1], via, "detour must not use the dead link");
    }

    #[test]
    fn filtered_path_reports_disconnection() {
        // Line 0-1-2: killing 1-2 cuts 0 off from 2.
        let mut t = Topology::new("cut");
        for _ in 0..3 {
            t.add_node(NodeRole::Core);
        }
        let bw = Bandwidth::from_gbps(1);
        t.add_link(NodeId(0), NodeId(1), bw, Dur::from_us(1));
        t.add_link(NodeId(1), NodeId(2), bw, Dur::from_us(1));
        let alive = |a: NodeId, b: NodeId| {
            !((a, b) == (NodeId(1), NodeId(2)) || (a, b) == (NodeId(2), NodeId(1)))
        };
        assert!(shortest_path_avoiding(&t, NodeId(0), NodeId(2), &alive).is_none());
        assert!(shortest_path_avoiding(&t, NodeId(0), NodeId(1), &alive).is_some());
    }

    #[test]
    fn shared_core_yields_identical_paths() {
        let t = diamond();
        let core = Arc::new(RoutingCore::new(&t));
        let mut a = Routing::from_core(core.clone());
        let mut b = Routing::from_core(core);
        let mut fresh = Routing::new(&t);
        assert_eq!(
            &*a.path(NodeId(0), NodeId(3)),
            &*fresh.path(NodeId(0), NodeId(3))
        );
        assert_eq!(
            &*b.path(NodeId(4), NodeId(1)),
            &*fresh.path(NodeId(4), NodeId(1))
        );
    }
}
