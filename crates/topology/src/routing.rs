//! Shortest-path routing and minimum-transit (`tmin`) computation.
//!
//! The paper's model fixes `path(p)` per packet (§2.1); we derive paths by
//! hop-count BFS. Among equal-cost shortest paths the choice is a
//! **deterministic hash of (src, dst)** — ECMP-style spreading without
//! randomness, so every run (and both runs of a replay pair) routes
//! identically while offered load spreads across the mesh instead of
//! piling onto the lowest-numbered links. A (src, dst) pair always maps
//! to exactly one path.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use ups_netsim::packet::Packet;
use ups_netsim::prelude::{Dur, NodeId};

use crate::graph::Topology;

/// All-pairs routing over a topology: BFS distance fields per source,
/// with hash-spread path reconstruction cached per (src, dst).
pub struct Routing {
    /// `dist[s][n]` = hop distance from source `s` to `n`.
    dist: Vec<Vec<u32>>,
    /// Sorted adjacency copy (path reconstruction needs neighbor sets
    /// without borrowing the topology).
    adjacency: Vec<Vec<NodeId>>,
    cache: HashMap<(NodeId, NodeId), Arc<[NodeId]>>,
}

/// SplitMix64 — deterministic tie-break hash for equal-cost choices.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl Routing {
    /// Compute routing for `topo`. O(V·(V+E)); instantaneous at the
    /// paper's scales (≤ a few thousand nodes).
    pub fn new(topo: &Topology) -> Self {
        let n = topo.node_count();
        let mut dist = Vec::with_capacity(n);
        for s in topo.nodes() {
            dist.push(bfs_dist(topo, s));
        }
        let adjacency = topo.nodes().map(|u| topo.neighbors(u).collect()).collect();
        Routing {
            dist,
            adjacency,
            cache: HashMap::new(),
        }
    }

    /// The unique deterministic path from `src` to `dst`, inclusive.
    ///
    /// # Panics
    /// If `dst` is unreachable (canned topologies are validated connected).
    pub fn path(&mut self, src: NodeId, dst: NodeId) -> Arc<[NodeId]> {
        assert_ne!(src, dst, "degenerate path {src} -> {src}");
        if let Some(p) = self.cache.get(&(src, dst)) {
            return p.clone();
        }
        let dist = &self.dist[src.index()];
        assert_ne!(dist[dst.index()], u32::MAX, "{dst} unreachable from {src}");
        // Walk backwards from dst: at every step the candidates are the
        // neighbors one hop closer to src; pick by pair-seeded hash.
        let seed = mix(((src.0 as u64) << 32) | dst.0 as u64);
        let mut rev = vec![dst];
        let mut cur = dst;
        while cur != src {
            let want = dist[cur.index()] - 1;
            let candidates: Vec<NodeId> = self.adjacency[cur.index()]
                .iter()
                .copied()
                .filter(|n| dist[n.index()] == want)
                .collect();
            debug_assert!(!candidates.is_empty(), "broken BFS field");
            let pick = mix(seed ^ cur.0 as u64) as usize % candidates.len();
            cur = candidates[pick];
            rev.push(cur);
        }
        rev.reverse();
        let path: Arc<[NodeId]> = rev.into();
        self.cache.insert((src, dst), path.clone());
        path
    }

    /// Hop count (number of links) between two nodes.
    pub fn hop_count(&mut self, src: NodeId, dst: NodeId) -> usize {
        self.path(src, dst).len() - 1
    }
}

/// BFS hop distances from `s`.
fn bfs_dist(topo: &Topology, s: NodeId) -> Vec<u32> {
    let n = topo.node_count();
    let mut dist: Vec<u32> = vec![u32::MAX; n];
    dist[s.index()] = 0;
    let mut q = VecDeque::new();
    q.push_back(s);
    while let Some(u) = q.pop_front() {
        for v in topo.neighbors(u) {
            if dist[v.index()] == u32::MAX {
                dist[v.index()] = dist[u.index()] + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// `tmin(p, path[from], dst)` for a packet of `size` bytes along `path`
/// (paper App. A): the empty-network transit time — every hop's
/// serialization plus every link's propagation, store-and-forward.
pub fn tmin_suffix(topo: &Topology, path: &[NodeId], size: u32, from: usize) -> Dur {
    assert!(from < path.len());
    let mut total = Dur::ZERO;
    for w in path.windows(2).skip(from) {
        let link = topo
            .neighbor_link(w[0], w[1])
            .unwrap_or_else(|| panic!("path uses missing link {}–{}", w[0], w[1]));
        total += link.bandwidth.tx_time(size) + link.propagation;
    }
    total
}

/// Full-path `tmin(p, src, dst)`.
pub fn tmin(topo: &Topology, path: &[NodeId], size: u32) -> Dur {
    tmin_suffix(topo, path, size, 0)
}

/// The per-hop remaining-transit table `tmin_rem[i] = tmin(p, path[i],
/// dst)` that EDF needs (App. E). `tmin_rem[last] = 0`.
pub fn tmin_rem_table(topo: &Topology, path: &[NodeId], size: u32) -> Arc<[Dur]> {
    let n = path.len();
    let mut out = vec![Dur::ZERO; n];
    // Suffix sums from the back.
    for i in (0..n - 1).rev() {
        let link = topo
            .neighbor_link(path[i], path[i + 1])
            .unwrap_or_else(|| panic!("path uses missing link {}–{}", path[i], path[i + 1]));
        out[i] = out[i + 1] + link.bandwidth.tx_time(size) + link.propagation;
    }
    out.into()
}

/// Attach a `tmin_rem` table to a packet in place (needed before running
/// it through EDF ports).
pub fn attach_tmin(topo: &Topology, packet: &mut Packet) {
    packet.tmin_rem = Some(tmin_rem_table(topo, &packet.path, packet.size));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeRole;
    use ups_netsim::prelude::Bandwidth;

    /// Diamond: 0 - {1,2} - 3, plus a slow detour 0-4-3.
    fn diamond() -> Topology {
        let mut t = Topology::new("diamond");
        for _ in 0..5 {
            t.add_node(NodeRole::Core);
        }
        let bw = Bandwidth::from_gbps(1);
        t.add_link(NodeId(0), NodeId(1), bw, Dur::from_us(10));
        t.add_link(NodeId(0), NodeId(2), bw, Dur::from_us(10));
        t.add_link(NodeId(1), NodeId(3), bw, Dur::from_us(10));
        t.add_link(NodeId(2), NodeId(3), bw, Dur::from_us(10));
        t.add_link(NodeId(0), NodeId(4), bw, Dur::from_us(10));
        t.add_link(NodeId(4), NodeId(3), bw, Dur::from_us(10));
        t
    }

    #[test]
    fn picks_a_shortest_path_deterministically() {
        let mut r = Routing::new(&diamond());
        // 0->3 has three 2-hop options via 1, 2 or 4.
        let p = r.path(NodeId(0), NodeId(3));
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], NodeId(0));
        assert_eq!(p[2], NodeId(3));
        assert!([NodeId(1), NodeId(2), NodeId(4)].contains(&p[1]));
        assert_eq!(r.hop_count(NodeId(0), NodeId(3)), 2);
        // Cached path is identical.
        assert!(Arc::ptr_eq(&p, &r.path(NodeId(0), NodeId(3))));
        // A fresh Routing instance picks the same path (pure hash).
        let mut r2 = Routing::new(&diamond());
        assert_eq!(&*r2.path(NodeId(0), NodeId(3)), &*p);
    }

    #[test]
    fn ecmp_spreads_over_equal_cost_paths() {
        // Fan topology: many (src, dst) pairs across the 0–3 diamond must
        // not all pick the same middle node.
        let mut t = diamond();
        let bw = Bandwidth::from_gbps(1);
        // Hang leaf nodes off 0 and 3 to create distinct pairs.
        let leaves_a: Vec<NodeId> = (0..6)
            .map(|_| {
                let l = t.add_node(NodeRole::Core);
                t.add_link(l, NodeId(0), bw, Dur::from_us(1));
                l
            })
            .collect();
        let leaves_b: Vec<NodeId> = (0..6)
            .map(|_| {
                let l = t.add_node(NodeRole::Core);
                t.add_link(l, NodeId(3), bw, Dur::from_us(1));
                l
            })
            .collect();
        let mut r = Routing::new(&t);
        let mut middles = std::collections::HashSet::new();
        for &a in &leaves_a {
            for &b in &leaves_b {
                let p = r.path(a, b);
                middles.insert(p[2]);
            }
        }
        assert!(
            middles.len() >= 2,
            "36 pairs should spread over ≥2 of the 3 equal-cost middles, got {middles:?}"
        );
    }

    #[test]
    fn tmin_adds_tx_and_propagation_per_hop() {
        let t = diamond();
        let path = [NodeId(0), NodeId(1), NodeId(3)];
        // Two hops: 2 × (12us tx @1G for 1500B + 10us prop) = 44us.
        assert_eq!(tmin(&t, &path, 1500), Dur::from_us(44));
        assert_eq!(tmin_suffix(&t, &path, 1500, 1), Dur::from_us(22));
    }

    #[test]
    fn tmin_rem_table_is_suffix_sums() {
        let t = diamond();
        let path = [NodeId(0), NodeId(1), NodeId(3)];
        let table = tmin_rem_table(&t, &path, 1500);
        assert_eq!(&*table, &[Dur::from_us(44), Dur::from_us(22), Dur::ZERO]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_self_path() {
        let mut r = Routing::new(&diamond());
        let _ = r.path(NodeId(1), NodeId(1));
    }
}
