//! A RocketFuel-like ISP backbone (Table 1 row 4).
//!
//! The paper uses "a bigger Rocketfuel topology (with 83 routers and 131
//! links in the core)" measured by [29]. Raw RocketFuel maps are not
//! redistributable, so this module synthesizes a **seeded, deterministic**
//! graph with exactly 83 core routers and 131 core links via preferential
//! attachment — reproducing the two properties the evaluation actually
//! exercises (DESIGN.md §4):
//!
//! 1. *scale*: more routers/links ⇒ longer paths ⇒ more potential
//!    congestion points per packet, and
//! 2. *bandwidth skew*: "half of the core links in the Rocketfuel topology
//!    are set to have bandwidths smaller than the access links", which is
//!    what degrades replay relative to the Internet2 default.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ups_netsim::prelude::{Bandwidth, Dur, NodeId};

use crate::graph::{NodeRole, Topology};

/// Parameters for the synthetic RocketFuel-like backbone.
#[derive(Debug, Clone, Copy)]
pub struct RocketFuelParams {
    /// Core routers (paper: 83).
    pub core_routers: usize,
    /// Core links (paper: 131).
    pub core_links: usize,
    /// Edge routers hung off each core router. The paper reuses its
    /// default access pattern; we default to 2 per core (166 hosts total)
    /// to keep bench runtimes sane — the replay behaviour is driven by the
    /// core, not by host count.
    pub edges_per_core: usize,
    /// Host ↔ edge bandwidth.
    pub host_bw: Bandwidth,
    /// Edge ↔ core ("access") bandwidth.
    pub edge_bw: Bandwidth,
    /// Fast core links (the other half are `slow_core_bw`).
    pub fast_core_bw: Bandwidth,
    /// Slow core links — *below* `edge_bw` per the paper's description.
    pub slow_core_bw: Bandwidth,
    /// RNG seed for the graph structure, delays and bandwidth placement.
    pub seed: u64,
}

impl Default for RocketFuelParams {
    fn default() -> Self {
        RocketFuelParams {
            core_routers: 83,
            core_links: 131,
            edges_per_core: 2,
            host_bw: Bandwidth::from_gbps(10),
            edge_bw: Bandwidth::from_gbps(1),
            fast_core_bw: Bandwidth::from_gbps(3),
            slow_core_bw: Bandwidth::from_mbps(500),
            seed: 0x20C4E7F,
        }
    }
}

/// Build the synthetic backbone.
pub fn rocketfuel(params: RocketFuelParams) -> Topology {
    let n = params.core_routers;
    let m = params.core_links;
    assert!(n >= 3, "need at least a triangle");
    assert!(
        m >= n - 1,
        "need at least a spanning tree: {m} links for {n} routers"
    );
    assert!(
        m <= n * (n - 1) / 2,
        "more links than node pairs: {m} for {n}"
    );
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut t = Topology::new(format!("RocketFuel({n}r/{m}l)"));
    let cores: Vec<NodeId> = (0..n).map(|_| t.add_node(NodeRole::Core)).collect();

    // Preferential-attachment spanning structure: node i attaches to an
    // existing node chosen with probability ∝ (degree + 1), giving the
    // heavy-tailed degree distribution characteristic of measured ISP maps.
    let mut degree = vec![0usize; n];
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(m);
    let connected = |a: usize, b: usize, pairs: &[(usize, usize)]| {
        pairs.iter().any(|&(x, y)| (x, y) == (a.min(b), a.max(b)))
    };
    for i in 1..n {
        let total: usize = degree[..i].iter().map(|d| d + 1).sum();
        let mut pick = rng.gen_range(0..total);
        let mut j = 0;
        while pick > degree[j] {
            pick -= degree[j] + 1;
            j += 1;
        }
        pairs.push((j.min(i), j.max(i)));
        degree[i] += 1;
        degree[j] += 1;
    }
    // Extra links up to m, still degree-biased, no duplicates.
    while pairs.len() < m {
        let total: usize = degree.iter().map(|d| d + 1).sum();
        let pick_node = |rng: &mut SmallRng, degree: &[usize]| {
            let mut pick = rng.gen_range(0..total);
            let mut j = 0;
            while pick > degree[j] {
                pick -= degree[j] + 1;
                j += 1;
            }
            j
        };
        let a = pick_node(&mut rng, &degree);
        let b = pick_node(&mut rng, &degree);
        if a == b || connected(a, b, &pairs) {
            continue;
        }
        pairs.push((a.min(b), a.max(b)));
        degree[a] += 1;
        degree[b] += 1;
    }

    // Half the core links slow, half fast, placed by seeded shuffle.
    let mut slow = vec![false; m];
    for s in slow.iter_mut().take(m / 2) {
        *s = true;
    }
    for i in (1..m).rev() {
        let j = rng.gen_range(0..=i);
        slow.swap(i, j);
    }
    for (idx, &(a, b)) in pairs.iter().enumerate() {
        let bw = if slow[idx] {
            params.slow_core_bw
        } else {
            params.fast_core_bw
        };
        // ISP-scale one-way delays: 0.5–7 ms.
        let prop = Dur::from_us(rng.gen_range(500..7000));
        t.add_link(cores[a], cores[b], bw, prop);
    }

    // Access trees, as in the Internet2 default.
    for &core in &cores {
        for _ in 0..params.edges_per_core {
            let edge = t.add_node(NodeRole::Edge);
            t.add_link(core, edge, params.edge_bw, Dur::from_us(100));
            let host = t.add_node(NodeRole::Host);
            t.add_link(edge, host, params.host_bw, Dur::from_us(5));
        }
    }
    t.validate();
    t
}

/// The default 83-router / 131-link backbone.
pub fn rocketfuel_default() -> Topology {
    rocketfuel(RocketFuelParams::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_shape() {
        let t = rocketfuel_default();
        assert_eq!(t.nodes_with_role(NodeRole::Core).len(), 83);
        assert_eq!(t.core_links().len(), 131);
        assert_eq!(t.hosts().len(), 166);
        t.validate();
    }

    #[test]
    fn half_the_core_links_are_slower_than_access() {
        let t = rocketfuel_default();
        let access = Bandwidth::from_gbps(1);
        let slow = t
            .core_links()
            .iter()
            .filter(|l| l.bandwidth < access)
            .count();
        assert_eq!(slow, 131 / 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = rocketfuel_default();
        let b = rocketfuel_default();
        assert_eq!(a.links().len(), b.links().len());
        for (la, lb) in a.links().iter().zip(b.links()) {
            assert_eq!((la.a, la.b, la.bandwidth), (lb.a, lb.b, lb.bandwidth));
            assert_eq!(la.propagation, lb.propagation);
        }
    }

    #[test]
    fn different_seed_different_graph() {
        let a = rocketfuel_default();
        let b = rocketfuel(RocketFuelParams {
            seed: 99,
            ..RocketFuelParams::default()
        });
        let differs = a
            .links()
            .iter()
            .zip(b.links())
            .any(|(la, lb)| (la.a, la.b) != (lb.a, lb.b) || la.propagation != lb.propagation);
        assert!(differs);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // Preferential attachment should create at least one hub with
        // degree well above the mean (~3.2).
        let t = rocketfuel_default();
        let max_degree = t
            .nodes_with_role(NodeRole::Core)
            .iter()
            .map(|&n| {
                t.neighbors(n)
                    .filter(|&m| t.role(m) == NodeRole::Core)
                    .count()
            })
            .max()
            .unwrap();
        assert!(max_degree >= 8, "expected a hub, max degree {max_degree}");
    }
}
