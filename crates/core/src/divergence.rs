//! The divergence taxonomy and the pluggable sink the comparison
//! reports through.
//!
//! [`compare_streams_with_sink`](crate::compare_streams_with_sink)
//! classifies every packet that misses its `o′(p) ≤ o(p)` target into
//! exactly one [`DivergenceCause`] and hands the full record pair to a
//! [`DivergenceSink`] as it streams past the merge-join cursor. The sink
//! sees each divergent packet exactly once, so the per-cause counts it
//! accumulates are conserved against the aggregate
//! [`ReplayReport`](crate::ReplayReport): the sum over all five causes
//! equals `report.overdue` (the total mismatch count). The attribution
//! layer on top — per-hop blame, inversion classification, bounded blame
//! tables — lives in `ups-forensics`; this module owns only the taxonomy
//! and the observer seam, so the comparison core stays free of any
//! aggregation policy.

use ups_netsim::prelude::{Dur, PacketId, PacketRecord};

/// Why one packet missed its replay target — every mismatched packet is
/// classified into exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DivergenceCause {
    /// Delivered late, but within the paper's threshold `T` (one
    /// bottleneck MTU transmission): `tolerance < lateness ≤ T +
    /// tolerance`.
    OverdueWithinT,
    /// Delivered late by more than `T` (Table 1's "> T" column):
    /// `lateness > T + tolerance`.
    OverdueBeyondT,
    /// The original delivered the packet but the replay never got it out
    /// and recorded no drop — it was never injected, or was still in
    /// flight when the replay run ended.
    MissingInReplay,
    /// The replay dropped the packet at a dead link (network-dynamics
    /// runs under the drop policy, or an unroutable destination).
    DeadLinkDrop,
    /// The replay dropped the packet from a full buffer.
    BufferDrop,
}

impl DivergenceCause {
    /// Every cause, in serialization order.
    pub const ALL: [DivergenceCause; 5] = [
        DivergenceCause::OverdueWithinT,
        DivergenceCause::OverdueBeyondT,
        DivergenceCause::MissingInReplay,
        DivergenceCause::DeadLinkDrop,
        DivergenceCause::BufferDrop,
    ];

    /// Stable snake_case name (table rows, JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            DivergenceCause::OverdueWithinT => "overdue_within_t",
            DivergenceCause::OverdueBeyondT => "overdue_beyond_t",
            DivergenceCause::MissingInReplay => "missing_in_replay",
            DivergenceCause::DeadLinkDrop => "dead_link_drop",
            DivergenceCause::BufferDrop => "buffer_drop",
        }
    }
}

impl std::fmt::Display for DivergenceCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One divergent packet, observed at the moment the comparison scored
/// it. Borrowed from the merge-join's working set — a sink that needs
/// the data past the callback must copy what it keeps.
#[derive(Debug)]
pub struct Divergence<'a> {
    /// The packet (ids are shared between original and replay).
    pub id: PacketId,
    /// The original run's record (always delivered — only
    /// originally-delivered packets participate in the comparison).
    pub original: &'a PacketRecord,
    /// The replay run's record: present for late deliveries and recorded
    /// drops, `None` when the replay never saw the packet at all.
    pub replay: Option<&'a PacketRecord>,
    /// The classification.
    pub cause: DivergenceCause,
    /// `o′(p) − o(p)` for late deliveries; [`Dur::ZERO`] for packets the
    /// replay never delivered (their lateness is unbounded, not zero —
    /// consumers must branch on `cause`, not on this field).
    pub lateness: Dur,
}

/// Observer of divergent packets, invoked by
/// [`compare_streams_with_sink`](crate::compare_streams_with_sink) once
/// per mismatch, in canonical `(i(p), id)` stream order.
pub trait DivergenceSink {
    /// One mismatched packet.
    fn divergence(&mut self, d: &Divergence<'_>);
}

/// The no-op sink — [`compare_streams`](crate::compare_streams) is the
/// sink-free comparison running through `()`.
impl DivergenceSink for () {
    fn divergence(&mut self, _d: &Divergence<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_unique() {
        let mut names: Vec<&str> = DivergenceCause::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 5);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5, "duplicate cause names");
        assert_eq!(format!("{}", DivergenceCause::BufferDrop), "buffer_drop");
    }
}
