//! Practical slack-initialization heuristics (§3).
//!
//! When LSTF is used to pursue a network-wide *objective* rather than to
//! replay a known schedule, the ingress assigns slacks heuristically:
//!
//! | objective | heuristic | paper |
//! |---|---|---|
//! | mean FCT | `slack = flow_size × D`, `D` ≫ any network delay | §3.1 |
//! | tail packet delay | constant slack (LSTF ≡ FIFO+) | §3.2 |
//! | fairness | Virtual-Clock-style accumulation per flow | §3.3 |

use std::collections::BTreeMap;

use ups_netsim::prelude::{Dur, FlowId, SimTime, PS_PER_SEC};

/// §3.1: `slack(p) = fs(p) · D` where `fs` is the flow size in bytes and
/// `D` is "a value much larger than the delay seen by any packet" (1 s in
/// the paper and here). Packets of smaller flows get less slack and are
/// served earlier — SJF-like behaviour emerges end-to-end.
///
/// The product is a *rank*, not a meaningful time; it needs the full
/// `i128` range (30 MB × 1 s ≈ 2.4 × 10¹⁹ ps > `i64::MAX`).
pub fn fct_slack(flow_size_bytes: u64, d: Dur) -> i128 {
    flow_size_bytes as i128 * d.as_ps() as i128
}

/// The paper's `D` (1 second).
pub const FCT_D: Dur = Dur::from_secs(1);

/// §3.2: every packet gets the same large slack — LSTF then reduces to
/// FIFO+ (packets that already waited longer upstream have less remaining
/// slack and are served earlier). 1 s, as in the paper.
pub fn tail_slack() -> i128 {
    PS_PER_SEC as i128
}

/// §3.3: the Virtual-Clock-inspired fairness assignment
///
/// ```text
/// slack(p₀) = 0
/// slack(pᵢ) = max(0, slack(pᵢ₋₁) + bits(pᵢ)/r_est − (i(pᵢ) − i(pᵢ₋₁)))
/// ```
///
/// which converges to the fair share asymptotically for any `r_est ≤ r*`
/// as long as all flows use the same value. The paper states the formula
/// with `1/r_est` per packet (uniform sizes); we scale by packet size so
/// mixed sizes stay fair.
///
/// **Weighted fairness** (the §3.3 extension — "using different values
/// of r_est for different flows, in proportion to the desired weights"):
/// [`Self::set_weight`] scales a flow's effective `r_est` so it
/// accumulates slack proportionally slower, receiving a
/// weight-proportional share.
#[derive(Debug)]
pub struct FairnessSlackAssigner {
    rest_bps: u64,
    state: BTreeMap<FlowId, (i128, SimTime)>,
    /// Per-flow weight ×1000 (integer to keep slack arithmetic exact).
    weights_milli: BTreeMap<FlowId, u64>,
    /// Out-of-order arrivals seen (and clamped) so far — see
    /// [`Self::out_of_order_arrivals`].
    out_of_order: u64,
}

impl FairnessSlackAssigner {
    /// Create an assigner with the fair-rate estimate `r_est` in bits/s.
    pub fn new(rest_bps: u64) -> Self {
        assert!(rest_bps > 0, "r_est must be positive");
        FairnessSlackAssigner {
            rest_bps,
            state: BTreeMap::new(),
            weights_milli: BTreeMap::new(),
            out_of_order: 0,
        }
    }

    /// The `r_est` this assigner uses (for weight-1 flows).
    pub fn rest_bps(&self) -> u64 {
        self.rest_bps
    }

    /// Give `flow` a bandwidth weight (default 1.0): its effective
    /// `r_est` becomes `weight × r_est`, so it earns `weight ×` the base
    /// share. Must be set before the flow's first packet to match the
    /// paper's formulation (later changes simply apply from that packet
    /// on).
    pub fn set_weight(&mut self, flow: FlowId, weight: f64) {
        assert!(weight > 0.0, "weights must be positive");
        self.weights_milli
            .insert(flow, (weight * 1000.0).round() as u64);
    }

    /// Effective rate estimate for `flow`.
    fn rest_for(&self, flow: FlowId) -> u128 {
        let milli = self.weights_milli.get(&flow).copied().unwrap_or(1000);
        (self.rest_bps as u128 * milli as u128) / 1000
    }

    /// Slack for the next packet of `flow`, `size` bytes, entering at
    /// `arrival`. Should be called in per-flow arrival order: the §3.3
    /// recurrence charges each packet the gap since its predecessor.
    ///
    /// An out-of-order call (arrival before the flow's previous one) is
    /// clamped to a zero gap — the packet is charged its full service
    /// time, the conservative direction — and counted in
    /// [`Self::out_of_order_arrivals`] instead of silently over-granting
    /// slack in release builds.
    pub fn slack_for(&mut self, flow: FlowId, arrival: SimTime, size: u32) -> i128 {
        let rest = self.rest_for(flow).max(1);
        let service_ps = (size as u128 * 8 * PS_PER_SEC as u128 / rest) as i128;
        // `anchor` keeps the later of the two timestamps so one
        // misordered packet does not shrink the gap charged to its
        // successors.
        let (slack, anchor) = match self.state.get(&flow) {
            None => (0, arrival),
            Some(&(prev_slack, prev_arrival)) => {
                if arrival < prev_arrival {
                    self.out_of_order += 1;
                }
                let gap = arrival.saturating_since(prev_arrival).as_ps() as i128;
                (
                    (prev_slack + service_ps - gap).max(0),
                    prev_arrival.max(arrival),
                )
            }
        };
        self.state.insert(flow, (slack, anchor));
        slack
    }

    /// How many packets arrived out of per-flow order and had their gap
    /// clamped to zero. The closed-loop driver forwards this into
    /// `TransportStats` so a misbehaving caller is visible in run
    /// reports rather than silently over-granting slack.
    pub fn out_of_order_arrivals(&self) -> u64 {
        self.out_of_order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fct_slack_scales_with_flow_size() {
        let small = fct_slack(1_460, FCT_D);
        let big = fct_slack(30_000_000, FCT_D);
        assert!(small < big);
        assert_eq!(small, 1_460i128 * PS_PER_SEC as i128);
        // The big product exceeds i64 — the reason slack is i128.
        assert!(big > i64::MAX as i128);
    }

    #[test]
    fn tail_slack_is_constant_one_second() {
        assert_eq!(tail_slack(), PS_PER_SEC as i128);
    }

    #[test]
    fn fairness_first_packet_gets_zero() {
        let mut a = FairnessSlackAssigner::new(1_000_000_000);
        assert_eq!(a.slack_for(FlowId(1), SimTime::from_ms(3), 1500), 0);
    }

    #[test]
    fn fairness_fast_sender_accumulates_slack() {
        // A flow sending 1500B packets back-to-back while r_est admits one
        // per 12us (1 Gbps): each packet accrues service-time minus gap.
        let mut a = FairnessSlackAssigner::new(1_000_000_000);
        let t = SimTime::ZERO; // back-to-back burst: all at one instant
        let mut last = 0;
        for i in 0..5 {
            last = a.slack_for(FlowId(1), t, 1500);
            // With zero inter-arrival gap, slack grows by one 12us service
            // time per packet after the first.
            assert_eq!(last, i as i128 * Dur::from_us(12).as_ps() as i128);
        }
        assert!(last > 0);
    }

    #[test]
    fn fairness_slow_sender_stays_at_zero() {
        // Sending slower than r_est: gap exceeds service, slack pinned at 0.
        let mut a = FairnessSlackAssigner::new(1_000_000_000);
        let mut t = SimTime::ZERO;
        for _ in 0..5 {
            let s = a.slack_for(FlowId(2), t, 1500);
            assert_eq!(s, 0);
            t += Dur::from_us(100); // 100us ≫ 12us service at r_est
        }
    }

    #[test]
    fn fairness_flows_are_independent() {
        let mut a = FairnessSlackAssigner::new(1_000_000_000);
        let s1 = a.slack_for(FlowId(1), SimTime::ZERO, 1500);
        let s2 = a.slack_for(FlowId(1), SimTime::ZERO, 1500);
        let other = a.slack_for(FlowId(2), SimTime::ZERO, 1500);
        assert_eq!(s1, 0);
        assert!(s2 > 0);
        assert_eq!(other, 0, "a new flow starts from zero slack");
    }

    #[test]
    fn weighted_flow_accrues_slack_proportionally_slower() {
        // Weight 2 halves the per-packet service charge, so a 2x-weighted
        // flow bursting at the same rate earns half the slack — i.e. it
        // is entitled to twice the rate before being deprioritized.
        let mut a = FairnessSlackAssigner::new(1_000_000_000);
        a.set_weight(FlowId(2), 2.0);
        let t = SimTime::ZERO;
        for _ in 0..4 {
            a.slack_for(FlowId(1), t, 1500);
            a.slack_for(FlowId(2), t, 1500);
        }
        let s1 = a.slack_for(FlowId(1), t, 1500);
        let s2 = a.slack_for(FlowId(2), t, 1500);
        assert_eq!(s1, 2 * s2, "weight-2 flow accrues half the slack");
    }

    #[test]
    fn fractional_weights_round_to_milli() {
        let mut a = FairnessSlackAssigner::new(1_000_000_000);
        a.set_weight(FlowId(1), 0.5);
        a.slack_for(FlowId(1), SimTime::ZERO, 1500);
        a.slack_for(FlowId(9), SimTime::ZERO, 1500);
        let half = a.slack_for(FlowId(1), SimTime::ZERO, 1500);
        let unit = a.slack_for(FlowId(9), SimTime::ZERO, 1500);
        assert_eq!(half, 2 * unit, "half weight doubles the slack charge");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        FairnessSlackAssigner::new(1).set_weight(FlowId(0), 0.0);
    }

    /// Regression (accounting bug 3): an out-of-order arrival used to
    /// saturate the gap to 0 silently (release builds) or abort (debug
    /// builds). It must now clamp, count, and leave the flow's time
    /// anchor at the later arrival — in every build profile.
    #[test]
    fn out_of_order_arrival_is_clamped_and_counted() {
        let mut a = FairnessSlackAssigner::new(1_000_000_000);
        assert_eq!(a.slack_for(FlowId(1), SimTime::from_us(100), 1500), 0);
        assert_eq!(a.out_of_order_arrivals(), 0);
        // Arrives "before" its predecessor: zero gap ⇒ full 12us service
        // charge, and the misorder is counted.
        let s = a.slack_for(FlowId(1), SimTime::from_us(40), 1500);
        assert_eq!(s, Dur::from_us(12).as_ps() as i128);
        assert_eq!(a.out_of_order_arrivals(), 1);
        // The anchor stayed at 100us: a packet at 106us is charged the
        // 6us gap since the *latest* arrival, not 66us since the stale
        // one.
        let s = a.slack_for(FlowId(1), SimTime::from_us(106), 1500);
        assert_eq!(s, Dur::from_us(12 + 12 - 6).as_ps() as i128);
        assert_eq!(a.out_of_order_arrivals(), 1, "in-order call not counted");
        // Other flows are unaffected.
        assert_eq!(a.slack_for(FlowId(2), SimTime::ZERO, 1500), 0);
    }

    #[test]
    fn fairness_smaller_rest_means_more_slack_per_packet() {
        let mut fast = FairnessSlackAssigner::new(1_000_000_000);
        let mut slow = FairnessSlackAssigner::new(10_000_000); // 100x smaller
        fast.slack_for(FlowId(1), SimTime::ZERO, 1500);
        slow.slack_for(FlowId(1), SimTime::ZERO, 1500);
        let f = fast.slack_for(FlowId(1), SimTime::ZERO, 1500);
        let s = slow.slack_for(FlowId(1), SimTime::ZERO, 1500);
        assert!(s > f * 50, "slack {s} vs {f}");
    }
}
