//! The replay framework — §2 of the paper.
//!
//! A *replay experiment* is:
//!
//! 1. run an **original schedule**: arbitrary per-router disciplines
//!    `{Aα}` over a fixed packet set `{(p, i(p), path(p))}`, recording
//!    output times `{o(p)}`;
//! 2. re-run the *identical* packet set with the candidate UPS at every
//!    router, initializing headers only from `(i(p), o(p), path(p))`
//!    (black-box) or from per-hop times (omniscient, App. B);
//! 3. compare: the replay succeeds for packet `p` iff `o′(p) ≤ o(p)`.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::divergence::DivergenceSink;
use ups_metrics::QuantileSketch;
use ups_netsim::prelude::{
    Dur, Header, Packet, PacketId, PacketRecord, RecordMode, SchedulerKind, SimTime, Trace,
};
use ups_topology::{
    attach_tmin, build_simulator, tmin, BuildOptions, SchedulerAssignment, Topology,
};

/// How the replay initializes packet headers at the ingress (§2.1
/// constraint 3: only `i(p)`, `o(p)`, `path(p)` for black-box variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderInit {
    /// LSTF: `slack(p) = o(p) − i(p) − tmin(p, src, dest)` (§2.2).
    LstfSlack,
    /// Simple priorities with the paper's "most intuitive" assignment
    /// `prio(p) = o(p)` (§2.3(7)).
    PriorityOutputTime,
    /// Simple priorities constructed from the original schedule's
    /// precedence relation (see [`priorities_from_schedule`]) — the
    /// constructive content of Theorem 1 (App. F): an assignment exists
    /// and replays perfectly whenever no packet waits at more than one
    /// hop; the construction fails (a priority *cycle*) exactly in
    /// situations like Figure 6. Requires a `PerHop` original trace.
    ///
    /// (The paper's footnote 15 gives the closed form `prio(p) = o(p) −
    /// tmin(p, αₚ, dest) + T(p, αₚ)` for the single congestion point
    /// `αₚ`; that form presumes the congestion point is the only
    /// scheduling decision on the path, which randomized scenarios
    /// violate — a packet can *win* a contention it never waited at, and
    /// the closed form may order it behind its competitor there. The
    /// precedence order repairs this while using only the same
    /// information.)
    PriorityFromSchedule,
    /// EDF static-header formulation: `deadline = o(p)`, routers compute
    /// local deadlines from `tmin` tables (App. E). Equivalent to LSTF.
    EdfDeadline,
    /// Omniscient: the full per-hop vector `[o(p, α₁), …]` (App. B).
    /// Requires the original trace to be recorded in `PerHop` mode.
    Omniscient,
}

impl HeaderInit {
    /// The scheduler the replay network runs under this initialization.
    pub fn scheduler(self, preemptive: bool) -> SchedulerKind {
        match self {
            HeaderInit::LstfSlack => SchedulerKind::Lstf { preemptive },
            HeaderInit::PriorityOutputTime | HeaderInit::PriorityFromSchedule => {
                SchedulerKind::Priority { preemptive }
            }
            HeaderInit::EdfDeadline => SchedulerKind::Edf { preemptive },
            HeaderInit::Omniscient => SchedulerKind::Omniscient,
        }
    }
}

/// Run a packet set through `topo` under `assign`, to completion, and
/// return the recorded schedule. Used for both original and replay runs.
///
/// Takes any packet iterator so callers can feed an owned set (the replay
/// run) or clone-on-the-fly from a borrowed slice (the original run)
/// without materializing an intermediate `Vec` per run.
pub fn run_schedule(
    topo: &Topology,
    assign: &SchedulerAssignment,
    packets: impl IntoIterator<Item = Packet>,
    opts: &BuildOptions,
) -> Trace {
    let mut sim = build_simulator(topo, assign, opts);
    let mut n = 0u64;
    for p in packets {
        n += 1;
        sim.inject(p);
    }
    sim.run();
    debug_assert_eq!(
        sim.stats().delivered + sim.stats().dropped,
        n,
        "packets vanished"
    );
    sim.into_trace()
}

/// Build the replay packet set: identical `(i, path, size, id)`, headers
/// re-initialized from the original trace per `init`.
///
/// # Panics
/// If a packet is missing from the original trace or was never delivered
/// (replay experiments run drop-free), or if `Omniscient` is requested
/// without a `PerHop` original trace.
pub fn replay_packets(
    topo: &Topology,
    original: &Trace,
    packets: &[Packet],
    init: HeaderInit,
) -> Vec<Packet> {
    let mut prio_map: Option<PriorityAssignment> = None;
    packets
        .iter()
        .map(|p| {
            let rec = original
                .get(p.id)
                .unwrap_or_else(|e| panic!("packet {} unavailable in original trace: {e}", p.id)); // lint:allow(panic-path): replay precondition: the trace was recorded over this packet set
            let o = rec
                .exited
                .unwrap_or_else(|| panic!("packet {} undelivered in original", p.id)); // lint:allow(panic-path): undelivered originals make the replay target undefined; fail loud
            let mut q = p.clone();
            q.hop = 0;
            q.cum_wait = Dur::ZERO;
            q.remaining_tx = None;
            q.header = Header::default();
            match init {
                HeaderInit::LstfSlack => {
                    let t = tmin(topo, &q.path, q.size);
                    q.header.slack =
                        o.as_ps() as i128 - q.injected_at.as_ps() as i128 - t.as_ps() as i128;
                }
                HeaderInit::PriorityOutputTime => {
                    q.header.prio = o.as_ps() as i128;
                }
                HeaderInit::PriorityFromSchedule => {
                    let prios = prio_map.get_or_insert_with(|| {
                        priorities_from_schedule(topo, original).unwrap_or_else(|| {
                            // lint:allow(panic-path): App. F: >2 congestion points has no priority assignment; diagnostic
                            panic!(
                                "original schedule has a priority cycle \
                                 (≥2 congestion points per packet, App. F)"
                            )
                        })
                    });
                    // lint:allow(panic-path): the topological sort above ranked every delivered packet
                    q.header.prio = prios.get(q.id).expect("every packet ordered");
                }
                HeaderInit::EdfDeadline => {
                    q.header.deadline = o;
                    attach_tmin(topo, &mut q);
                }
                HeaderInit::Omniscient => {
                    assert_eq!(
                        original.mode(),
                        RecordMode::PerHop,
                        "omniscient replay needs a PerHop original trace"
                    );
                    assert_eq!(
                        rec.hops.len(),
                        q.path.len() - 1,
                        "per-hop record incomplete for packet {}",
                        p.id
                    );
                    // The destination never schedules; pad for 1:1 indexing.
                    let v: Arc<[SimTime]> = rec
                        .hop_tx_starts()
                        .chain(std::iter::once(SimTime::MAX))
                        .collect();
                    q.header.omniscient = Some(v);
                }
            }
            q
        })
        .collect()
}

/// Rebuild the injectable packet set a recorded schedule **actually
/// executed** — identical `(id, flow, size, kind, i(p))` and the
/// *as-executed* path, headers clean — restricted to delivered packets.
///
/// This is what keeps the §2 replay well-defined when the original run
/// broke the fixed-input premise: closed-loop transports decide the
/// packet set as they run, and the dynamics layer reroutes or drops
/// packets mid-flight. In both regimes the delivered packets' recorded
/// `(i(p), o(p), path(p))` triples form a complete, replayable schedule
/// — packets still in flight at a horizon or lost at a dead link have no
/// `o(p)` and are excluded.
pub fn as_executed_packets(trace: &Trace) -> Vec<Packet> {
    use ups_netsim::prelude::{PacketBuilder, PacketKind};
    trace
        .iter()
        .expect("as_executed_packets needs a resident trace; use as_executed_stream") // lint:allow(panic-path): documented API precondition; the streaming form is as_executed_stream
        .filter(|(_, r)| r.exited.is_some())
        .map(|(id, r)| {
            let mut b = PacketBuilder::new(id, r.flow, r.size, r.path.clone(), r.injected);
            if r.kind == PacketKind::Ack {
                b = b.ack();
            }
            b.build()
        })
        .collect()
}

/// Lazy form of [`as_executed_packets`]: the same delivered packet set,
/// yielded in the canonical stream order `(i(p), id)` — exactly what
/// [`ups_netsim::prelude::Simulator::run_with_injections`] wants — one
/// packet at a time, so a spilled streaming trace replays without ever
/// materializing the set.
pub fn as_executed_stream(trace: &Trace) -> impl Iterator<Item = Packet> + '_ {
    use ups_netsim::prelude::{PacketBuilder, PacketKind};
    trace.stream().filter_map(|(id, r)| {
        r.exited?;
        let mut b = PacketBuilder::new(id, r.flow, r.size, r.path, r.injected);
        if r.kind == PacketKind::Ack {
            b = b.ack();
        }
        Some(b.build())
    })
}

/// Lazy LSTF replay set straight from a recorded schedule: delivered
/// packets in canonical `(i(p), id)` stream order with clean headers and
/// `slack(p) = o(p) − i(p) − tmin(p)` attached — the streaming-pipeline
/// fusion of [`as_executed_stream`] and
/// [`replay_packets`]`(…, HeaderInit::LstfSlack)`, sidestepping the
/// random-access `Trace::get` that a spilled trace no longer offers.
pub fn lstf_replay_stream<'a>(
    topo: &'a Topology,
    original: &'a Trace,
) -> impl Iterator<Item = Packet> + 'a {
    use ups_netsim::prelude::{PacketBuilder, PacketKind};
    original.stream().filter_map(move |(id, r)| {
        let o = r.exited?;
        let t = tmin(topo, &r.path, r.size);
        let slack = o.as_ps() as i128 - r.injected.as_ps() as i128 - t.as_ps() as i128;
        let mut b = PacketBuilder::new(id, r.flow, r.size, r.path, r.injected).slack(slack);
        if r.kind == PacketKind::Ack {
            b = b.ack();
        }
        Some(b.build())
    })
}

/// Outcome of comparing a replay trace against its original.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Packets compared: every packet the original delivered, whether or
    /// not the replay delivered it too.
    pub total: usize,
    /// Packets with `o′(p) > o(p) + tolerance`, plus every missing packet
    /// (a packet the replay never got out is late by any measure).
    pub overdue: usize,
    /// Packets with `o′(p) > o(p) + T + tolerance` (Table 1's second
    /// column; `T` = one bottleneck transmission time), plus every
    /// missing packet.
    pub overdue_gt_t: usize,
    /// Packets delivered in the original but dropped or never delivered
    /// in the replay. A lossy replay must score *worse*, not better —
    /// these count in `total`, `overdue` and `overdue_gt_t`.
    pub missing: usize,
    /// The `T` used.
    pub threshold: Dur,
    /// Largest lateness seen among packets delivered in both runs.
    pub max_lateness: Dur,
    /// Per-packet queueing-delay ratios `wait′(p) / wait(p)` over packets
    /// with nonzero original queueing (Figure 1's CDF), held as a
    /// fixed-size [`QuantileSketch`] so the comparison never stores a
    /// per-packet sample vector.
    pub queueing_ratios: QuantileSketch,
}

impl ReplayReport {
    /// Fraction of packets overdue (Table 1, column "Total").
    pub fn frac_overdue(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.overdue as f64 / self.total as f64
        }
    }

    /// Fraction overdue by more than `T` (Table 1, column "> T").
    pub fn frac_overdue_gt_t(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.overdue_gt_t as f64 / self.total as f64
        }
    }

    /// Fraction of packets the replay got out on time
    /// (`1 − frac_overdue`), or `None` when the comparison covered no
    /// packets — an empty comparison matched nothing and must not be
    /// reported as a perfect score.
    pub fn match_rate(&self) -> Option<f64> {
        (self.total > 0).then(|| 1.0 - self.frac_overdue())
    }

    /// `frac_overdue_gt_t` as an `Option`, `None` on the empty
    /// comparison (mirrors [`Self::match_rate`]).
    pub fn frac_gt_t_rate(&self) -> Option<f64> {
        (self.total > 0).then(|| self.frac_overdue_gt_t())
    }

    /// True when the replay met every target (a *perfect* replay). A
    /// comparison that covered no packets is vacuous, not perfect.
    pub fn perfect(&self) -> bool {
        self.total > 0 && self.overdue == 0
    }
}

/// Compare a replay trace against the original. `tolerance` absorbs
/// sub-threshold noise in micro-topologies (the appendix networks model
/// "instant" links as 12 Tbps, i.e. nanosecond residuals); the paper-scale
/// experiments use zero tolerance.
///
/// Every packet the original delivered participates: one the replay
/// dropped (or never finished) counts as `missing` *and* overdue in both
/// columns, so a lossy replay scores strictly worse than a late one.
pub fn compare_with_tolerance(
    original: &Trace,
    replay: &Trace,
    threshold: Dur,
    tolerance: Dur,
) -> ReplayReport {
    compare_streams(original.stream(), replay.stream(), threshold, tolerance)
}

/// [`compare_with_tolerance`] with a [`DivergenceSink`] observing every
/// mismatch — the entry point the forensics layer attaches through.
pub fn compare_with_sink(
    original: &Trace,
    replay: &Trace,
    threshold: Dur,
    tolerance: Dur,
    sink: &mut dyn DivergenceSink,
) -> ReplayReport {
    compare_streams_with_sink(
        original.stream(),
        replay.stream(),
        threshold,
        tolerance,
        sink,
    )
}

/// Streaming form of [`compare_with_tolerance`]: a merge-join over two
/// record streams sorted by the canonical `(i(p), id)` key — exactly what
/// [`Trace::stream`] yields in both layouts — so neither trace is ever
/// held as a dense id-indexed map.
///
/// Replay records are buffered in a small reorder window only while their
/// key is `≤` the original cursor's key; once the original cursor passes a
/// key, unmatched window entries can never match (keys strictly increase)
/// and are evicted. The window is therefore bounded by the key-skew
/// between the two streams — zero for a faithful replay, which preserves
/// every `(i(p), id)` — and is asserted to stay under
/// [`REORDER_WINDOW`] as a misuse guard against unsorted inputs.
pub fn compare_streams(
    original: impl IntoIterator<Item = (PacketId, PacketRecord)>,
    replay: impl IntoIterator<Item = (PacketId, PacketRecord)>,
    threshold: Dur,
    tolerance: Dur,
) -> ReplayReport {
    compare_streams_with_sink(original, replay, threshold, tolerance, &mut ())
}

/// [`compare_streams`] with a [`DivergenceSink`] observing every
/// mismatch. Each mismatched packet is reported to `sink` exactly once,
/// under exactly one [`DivergenceCause`](crate::DivergenceCause), so the
/// sink's per-cause counts sum to the returned report's `overdue` field
/// (the conservation invariant the forensics layer property-tests).
///
/// The sink never influences the report: running with `&mut ()` is
/// bit-identical to running with any other sink.
pub fn compare_streams_with_sink(
    original: impl IntoIterator<Item = (PacketId, PacketRecord)>,
    replay: impl IntoIterator<Item = (PacketId, PacketRecord)>,
    threshold: Dur,
    tolerance: Dur,
    sink: &mut dyn DivergenceSink,
) -> ReplayReport {
    use crate::divergence::{Divergence, DivergenceCause};
    use ups_netsim::prelude::DropCause;
    let mut report = ReplayReport {
        total: 0,
        overdue: 0,
        overdue_gt_t: 0,
        missing: 0,
        threshold,
        max_lateness: Dur::ZERO,
        queueing_ratios: QuantileSketch::new(),
    };
    // Reorder window: replay records pulled up to the original cursor,
    // keyed by the canonical stream key. Whole records are kept (moved in
    // from the owned stream, never cloned) so the sink can attribute a
    // mismatch from the replay side's hop timeline and drop cause; the
    // window stays bounded by REORDER_WINDOW entries regardless.
    let mut window: BTreeMap<(SimTime, PacketId), PacketRecord> = BTreeMap::new();
    let mut rep = replay.into_iter().peekable();
    for (id, orig) in original {
        let Some(o_orig) = orig.exited else {
            continue; // only originally-delivered packets participate
        };
        let key = (orig.injected, id);
        // Evict entries the original cursor has passed: their original
        // twin (same key) was either matched already or never delivered.
        while let Some((&k, _)) = window.first_key_value() {
            if k < key {
                window.pop_first();
            } else {
                break;
            }
        }
        while rep.peek().is_some_and(|(rid, r)| (r.injected, *rid) <= key) {
            let (rid, r) = rep.next().expect("peeked"); // lint:allow(panic-path): peek on the same iterator returned Some
            window.insert((r.injected, rid), r);
            assert!(
                window.len() <= REORDER_WINDOW,
                "replay stream diverged from the original by more than \
                 {REORDER_WINDOW} records; are both streams (i(p), id)-sorted?"
            );
            ups_obs::count_max(ups_obs::Counter::CompareWindow, window.len() as u64);
        }
        report.total += 1;
        let entry = window.remove(&key);
        let Some((o_replay, rep_wait)) = entry
            .as_ref()
            .and_then(|r| r.exited.map(|o| (o, r.total_wait)))
        else {
            // Delivered originally, missing/dropped in the replay: late by
            // any measure.
            report.missing += 1;
            report.overdue += 1;
            report.overdue_gt_t += 1;
            let cause = match entry.as_ref().and_then(|r| r.drop_cause) {
                Some(DropCause::DeadLink) => DivergenceCause::DeadLinkDrop,
                Some(DropCause::Buffer) => DivergenceCause::BufferDrop,
                None => DivergenceCause::MissingInReplay,
            };
            sink.divergence(&Divergence {
                id,
                original: &orig,
                replay: entry.as_ref(),
                cause,
                lateness: Dur::ZERO,
            });
            continue;
        };
        let lateness = o_replay.saturating_since(o_orig);
        report.max_lateness = report.max_lateness.max(lateness);
        if lateness > tolerance {
            report.overdue += 1;
            let cause = if lateness > threshold + tolerance {
                DivergenceCause::OverdueBeyondT
            } else {
                DivergenceCause::OverdueWithinT
            };
            sink.divergence(&Divergence {
                id,
                original: &orig,
                replay: entry.as_ref(),
                cause,
                lateness,
            });
        }
        if lateness > threshold + tolerance {
            report.overdue_gt_t += 1;
        }
        if orig.total_wait > Dur::ZERO {
            // lint:allow(ps-narrowing): a dimensionless wait ratio — f64
            // rounding of either operand shifts the ratio by ~1e-16,
            // far below the bucket resolution it feeds.
            let ratio = rep_wait.as_ps() as f64 / orig.total_wait.as_ps() as f64;
            report.queueing_ratios.insert(ratio);
        }
    }
    report
}

/// Upper bound on the [`compare_streams`] reorder window — a guard rail,
/// not a working size: two streams over the same packet set share every
/// `(i(p), id)` key, so the window holds at most the records of one key
/// pulled ahead of the join cursor.
pub const REORDER_WINDOW: usize = 4096;

/// [`compare_with_tolerance`] with zero tolerance — the paper-scale form.
pub fn compare(original: &Trace, replay: &Trace, threshold: Dur) -> ReplayReport {
    compare_with_tolerance(original, replay, threshold, Dur::ZERO)
}

/// End-to-end convenience: original run → header init → replay run →
/// report. `preemptive` applies to the LSTF variant only (§2.3(5)).
pub struct ReplayExperiment<'a> {
    /// Network.
    pub topo: &'a Topology,
    /// The original schedule's per-router disciplines.
    pub original_assign: SchedulerAssignment,
    /// Header initialization / replay discipline.
    pub init: HeaderInit,
    /// Preemptive replay (LSTF only).
    pub preemptive: bool,
    /// Record mode for the original run (`PerHop` required for
    /// omniscient replay and congestion-point analysis).
    pub record: RecordMode,
    /// Seed for stochastic original disciplines.
    pub seed: u64,
}

/// The result of [`ReplayExperiment::run`].
pub struct ReplayOutcome {
    /// Original schedule.
    pub original: Trace,
    /// Replay schedule.
    pub replay: Trace,
    /// Comparison.
    pub report: ReplayReport,
}

impl ReplayExperiment<'_> {
    /// Execute both runs over `packets` and compare with `tolerance`.
    pub fn run(&self, packets: &[Packet], tolerance: Dur) -> ReplayOutcome {
        let opts = BuildOptions {
            record: self.record,
            seed: self.seed,
            ..BuildOptions::default()
        };
        let original = run_schedule(
            self.topo,
            &self.original_assign,
            packets.iter().cloned(),
            &opts,
        );
        let replay_set = replay_packets(self.topo, &original, packets, self.init);
        let replay_assign = SchedulerAssignment::uniform(self.init.scheduler(self.preemptive));
        let replay_opts = BuildOptions {
            record: RecordMode::EndToEnd,
            seed: self.seed,
            ..BuildOptions::default()
        };
        let replay = run_schedule(self.topo, &replay_assign, replay_set, &replay_opts);
        let threshold = self.topo.bottleneck_bandwidth().tx_time(1500);
        let report = compare_with_tolerance(&original, &replay, threshold, tolerance);
        ReplayOutcome {
            original,
            replay,
            report,
        }
    }
}

/// A static priority per packet, stored densely: packet ids are dense
/// across a run (the workload layer allocates them sequentially), so the
/// table is a flat `Vec` indexed by id — no hashing on the replay path.
#[derive(Debug, Clone)]
pub struct PriorityAssignment {
    ranks: Vec<Option<i128>>,
}

impl PriorityAssignment {
    /// The priority assigned to `id`, if that packet was in the schedule.
    #[inline]
    pub fn get(&self, id: PacketId) -> Option<i128> {
        self.ranks.get(id.index()).copied().flatten()
    }

    /// Number of packets with an assigned priority.
    pub fn len(&self) -> usize {
        self.ranks.iter().filter(|r| r.is_some()).count()
    }

    /// True when no packet has a priority.
    pub fn is_empty(&self) -> bool {
        self.ranks.iter().all(|r| r.is_none())
    }
}

/// Construct a static priority assignment that replays `original`
/// (Theorem 1's constructive content), or `None` if the required
/// precedence relation is cyclic — which is exactly the Appendix F
/// "priority cycle" obstruction that arises once packets wait at two or
/// more hops.
///
/// The relation: at every output port, if packet `q` was scheduled while
/// packet `p` was already present (arrived before `q`'s transmission
/// ended), then `q` must outrank `p` everywhere. Priorities are the
/// topological order of that relation (deterministic: ties broken by
/// packet id).
///
/// All working state is dense: per-port sequences live in a flat
/// `node × node` table and the precedence graph is `Vec`-keyed on the
/// dense packet ids.
///
/// Requires a `PerHop` trace. Intended for analysis and property tests;
/// the per-port pair scan is quadratic in the worst case.
pub fn priorities_from_schedule(topo: &Topology, original: &Trace) -> Option<PriorityAssignment> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    assert_eq!(
        original.mode(),
        RecordMode::PerHop,
        "priorities_from_schedule needs a PerHop original trace"
    );
    let bound = original.id_bound();
    let n_nodes = topo.node_count();
    // Single pass over the delivered records: gather per-port service
    // sequences (keyed by the dense directed-pair index `here * n + next`)
    // and mark schedule membership as we go.
    let mut ports: Vec<Vec<(SimTime, SimTime, SimTime, PacketId)>> =
        vec![Vec::new(); n_nodes * n_nodes];
    let mut in_schedule: Vec<bool> = vec![false; bound];
    let mut scheduled = 0usize;
    let delivered = original
        .delivered()
        .expect("PerHop traces are resident (asserted above)"); // lint:allow(panic-path): the PerHop assertion above excludes the streaming layout
    for (id, rec) in delivered {
        in_schedule[id.index()] = true; // lint:allow(panic-path): ids are dense; bound is sized from this trace above
        scheduled += 1;
        for (i, h) in rec.hops.iter().enumerate() {
            let next = rec.path[i + 1]; // lint:allow(panic-path): recorder invariant: one hop record per path edge, so i+1 < path.len()
            let link = topo
                .neighbor_link(h.node, next)
                .expect("trace hop uses a topology link"); // lint:allow(panic-path): the trace was recorded on this same topology
            let tx_end = h.tx_start + link.bandwidth.tx_time(rec.size);
            ports[h.node.index() * n_nodes + next.index()] // lint:allow(panic-path): node indices are < n_nodes; the port table is sized n_nodes^2
                .push((h.tx_start, h.arrived, tx_end, id));
        }
    }
    // Precedence edges q -> p, dense on packet id.
    let mut succ: Vec<Vec<PacketId>> = vec![Vec::new(); bound];
    let mut indegree: Vec<u32> = vec![0; bound];
    for seq in ports.iter_mut().filter(|s| !s.is_empty()) {
        seq.sort_by_key(|&(tx_start, _, _, id)| (tx_start, id));
        for k in 1..seq.len() {
            let (_, arrived_k, _, id_k) = seq[k];
            for j in (0..k).rev() {
                let (_, _, tx_end_j, id_j) = seq[j];
                if arrived_k < tx_end_j {
                    succ[id_j.index()].push(id_k); // lint:allow(panic-path): packet ids are < bound; the succ table is sized to bound
                    indegree[id_k.index()] += 1; // lint:allow(panic-path): packet ids are < bound; the indegree table is sized to bound
                } else {
                    // Sequential service: earlier packets ended even
                    // sooner; no more overlaps possible.
                    break;
                }
            }
        }
    }
    // Kahn's algorithm; min-heap on id gives the same deterministic
    // tie-breaking as ordered-set iteration.
    let mut ready: BinaryHeap<Reverse<usize>> = (0..bound)
        .filter(|&i| in_schedule[i] && indegree[i] == 0)
        .map(Reverse)
        .collect();
    let mut ranks: Vec<Option<i128>> = vec![None; bound];
    let mut assigned = 0usize;
    let mut next_rank: i128 = 0;
    while let Some(Reverse(i)) = ready.pop() {
        ranks[i] = Some(next_rank);
        next_rank += 1;
        assigned += 1;
        for f in std::mem::take(&mut succ[i]) {
            let d = &mut indegree[f.index()]; // lint:allow(panic-path): successor ids come from the same bounded dense id space
            *d -= 1;
            if *d == 0 {
                ready.push(Reverse(f.index()));
            }
        }
    }
    if assigned == scheduled {
        Some(PriorityAssignment { ranks })
    } else {
        None // cycle: some packets never reached indegree 0
    }
}

/// Largest number of congestion points any packet saw in a `PerHop`
/// trace — the quantity the paper's theorems are parameterized by (§2.2).
pub fn max_congestion_points(trace: &Trace) -> usize {
    trace
        .delivered()
        .expect("congestion points need a resident PerHop trace") // lint:allow(panic-path): documented API precondition; streaming traces carry no hop detail anyway
        .map(|(_, r)| r.congestion_points())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_netsim::prelude::*;
    use ups_topology::{line, Routing};

    /// 30 packets through a 2-router line under FIFO; LSTF replay must be
    /// perfect (≤ 2 congestion points by construction).
    fn line_packets(topo: &Topology, n: u64, gap_us: u64) -> Vec<Packet> {
        let mut routing = Routing::new(topo);
        let hosts = topo.hosts();
        let path = routing.path(hosts[0], hosts[1]);
        (0..n)
            .map(|i| {
                PacketBuilder::new(
                    PacketId(i),
                    FlowId(i % 3),
                    1500,
                    path.clone(),
                    SimTime::from_us(i * gap_us),
                )
                .build()
            })
            .collect()
    }

    #[test]
    fn lstf_replays_fifo_line_perfectly() {
        let topo = line(2, Bandwidth::from_gbps(1), Dur::from_us(10));
        let packets = line_packets(&topo, 30, 3);
        let exp = ReplayExperiment {
            topo: &topo,
            original_assign: SchedulerAssignment::uniform(SchedulerKind::Fifo),
            init: HeaderInit::LstfSlack,
            preemptive: false,
            record: RecordMode::PerHop,
            seed: 1,
        };
        let out = exp.run(&packets, Dur::ZERO);
        assert_eq!(out.report.total, 30);
        assert!(
            out.report.perfect(),
            "overdue {} max lateness {}",
            out.report.overdue,
            out.report.max_lateness
        );
    }

    #[test]
    fn lstf_replays_lifo_line_with_enough_spacing() {
        // On a single bottleneck (one congestion point) even LIFO replays
        // perfectly under LSTF (Theorem: ≤ 2 congestion points).
        let topo = line(1, Bandwidth::from_gbps(1), Dur::from_us(10));
        let packets = line_packets(&topo, 40, 2);
        let exp = ReplayExperiment {
            topo: &topo,
            original_assign: SchedulerAssignment::uniform(SchedulerKind::Lifo),
            init: HeaderInit::LstfSlack,
            preemptive: true,
            record: RecordMode::PerHop,
            seed: 1,
        };
        let out = exp.run(&packets, Dur::ZERO);
        assert!(
            max_congestion_points(&out.original) <= 2,
            "line(1) can impose at most 2 waits"
        );
        assert!(out.report.perfect(), "overdue {}", out.report.overdue);
    }

    #[test]
    fn omniscient_replays_random_schedule_perfectly() {
        let topo = line(3, Bandwidth::from_gbps(1), Dur::from_us(10));
        let packets = line_packets(&topo, 50, 1);
        let exp = ReplayExperiment {
            topo: &topo,
            original_assign: SchedulerAssignment::uniform(SchedulerKind::Random),
            init: HeaderInit::Omniscient,
            preemptive: false,
            record: RecordMode::PerHop,
            seed: 42,
        };
        let out = exp.run(&packets, Dur::ZERO);
        assert_eq!(out.report.total, 50);
        assert!(
            out.report.perfect(),
            "App. B guarantees exact replay; overdue {}",
            out.report.overdue
        );
    }

    #[test]
    fn slack_is_nonnegative_for_viable_schedules() {
        let topo = line(2, Bandwidth::from_gbps(1), Dur::from_us(10));
        let packets = line_packets(&topo, 20, 1);
        let opts = BuildOptions {
            record: RecordMode::EndToEnd,
            ..BuildOptions::default()
        };
        let original = run_schedule(
            &topo,
            &SchedulerAssignment::uniform(SchedulerKind::Fifo),
            packets.clone(),
            &opts,
        );
        let replayed = replay_packets(&topo, &original, &packets, HeaderInit::LstfSlack);
        for p in &replayed {
            assert!(
                p.header.slack >= 0,
                "viable schedule implies o ≥ i + tmin; slack {}",
                p.header.slack
            );
        }
    }

    #[test]
    fn report_fractions() {
        let r = ReplayReport {
            total: 200,
            overdue: 10,
            overdue_gt_t: 2,
            missing: 0,
            threshold: Dur::from_us(12),
            max_lateness: Dur::from_us(50),
            queueing_ratios: QuantileSketch::new(),
        };
        assert!((r.frac_overdue() - 0.05).abs() < 1e-12);
        assert!((r.frac_overdue_gt_t() - 0.01).abs() < 1e-12);
        assert_eq!(r.match_rate(), Some(0.95));
        assert!(!r.perfect());
    }

    /// Helper for the accounting regressions: a synthetic delivered
    /// record with the given exit time.
    fn delivered_rec(exit_us: u64) -> PacketRecord {
        PacketRecord {
            flow: FlowId(0),
            size: 1500,
            kind: PacketKind::Data,
            path: vec![NodeId(0), NodeId(1)].into(),
            injected: SimTime::ZERO,
            exited: Some(SimTime::from_us(exit_us)),
            total_wait: Dur::ZERO,
            dropped: false,
            drop_cause: None,
            hops: Vec::new(),
        }
    }

    /// Regression (accounting bug 1): a replay that drops a packet the
    /// original delivered must lower the match rate — the packet counts
    /// in `total`, as `missing`, and as overdue in both columns.
    #[test]
    fn missing_replay_packet_lowers_match_rate() {
        let original = Trace::synthetic(
            RecordMode::EndToEnd,
            [
                (PacketId(0), delivered_rec(100)),
                (PacketId(1), delivered_rec(200)),
            ],
        );
        // The replay delivered packet 0 on time and *lost* packet 1.
        let mut lost = delivered_rec(0);
        lost.exited = None;
        lost.dropped = true;
        let replay = Trace::synthetic(
            RecordMode::EndToEnd,
            [(PacketId(0), delivered_rec(100)), (PacketId(1), lost)],
        );
        let r = compare(&original, &replay, Dur::from_us(12));
        assert_eq!(r.total, 2, "the lost packet still counts");
        assert_eq!(r.missing, 1);
        assert_eq!(r.overdue, 1);
        assert_eq!(r.overdue_gt_t, 1);
        assert_eq!(r.match_rate(), Some(0.5));
        assert!(!r.perfect());
        // A replay record that is absent entirely counts the same way.
        let replay = Trace::synthetic(RecordMode::EndToEnd, [(PacketId(0), delivered_rec(100))]);
        let r = compare(&original, &replay, Dur::from_us(12));
        assert_eq!((r.total, r.missing, r.overdue), (2, 1, 1));
    }

    /// The streamed comparison is the comparison: feeding the two streams
    /// to `compare_streams` by hand matches `compare`, lazy replay-set
    /// construction matches the eager one, and comparing a trace against
    /// itself is perfect with every queueing ratio exactly 1.
    #[test]
    fn compare_streams_matches_compare() {
        let topo = line(2, Bandwidth::from_gbps(1), Dur::from_us(10));
        let packets = line_packets(&topo, 30, 1);
        let exp = ReplayExperiment {
            topo: &topo,
            original_assign: SchedulerAssignment::uniform(SchedulerKind::Lifo),
            init: HeaderInit::LstfSlack,
            preemptive: false,
            record: RecordMode::PerHop,
            seed: 7,
        };
        let out = exp.run(&packets, Dur::ZERO);
        let threshold = topo.bottleneck_bandwidth().tx_time(1500);
        let streamed = compare_streams(
            out.original.stream(),
            out.replay.stream(),
            threshold,
            Dur::ZERO,
        );
        assert_eq!(streamed, out.report);

        let lazy: Vec<Packet> = as_executed_stream(&out.original).collect();
        let mut eager = as_executed_packets(&out.original);
        eager.sort_by_key(|p| (p.injected_at, p.id));
        assert_eq!(lazy.len(), eager.len());
        for (l, e) in lazy.iter().zip(&eager) {
            assert_eq!(
                (l.id, l.flow, l.size, l.kind, &l.path, l.injected_at),
                (e.id, e.flow, e.size, e.kind, &e.path, e.injected_at),
                "lazy stream is the eager set, key-sorted"
            );
        }

        let self_cmp = compare(&out.original, &out.original, threshold);
        assert!(self_cmp.perfect());
        assert_eq!(self_cmp.max_lateness, Dur::ZERO);
        if !self_cmp.queueing_ratios.is_empty() {
            assert_eq!(self_cmp.queueing_ratios.fraction_le(1.0), 1.0);
            assert_eq!(self_cmp.queueing_ratios.min(), 1.0);
        }
    }

    /// `lstf_replay_stream` attaches the same slacks `replay_packets`
    /// computes, in canonical stream order.
    #[test]
    fn lstf_replay_stream_matches_replay_packets() {
        let topo = line(2, Bandwidth::from_gbps(1), Dur::from_us(10));
        let packets = line_packets(&topo, 25, 2);
        let original = run_schedule(
            &topo,
            &SchedulerAssignment::uniform(SchedulerKind::Lifo),
            packets.iter().cloned(),
            &BuildOptions::default(),
        );
        let mut eager = replay_packets(&topo, &original, &packets, HeaderInit::LstfSlack);
        eager.sort_by_key(|p| (p.injected_at, p.id));
        let streamed: Vec<Packet> = lstf_replay_stream(&topo, &original).collect();
        assert_eq!(streamed.len(), eager.len());
        for (s, e) in streamed.iter().zip(&eager) {
            assert_eq!(s.id, e.id);
            assert_eq!(s.header.slack, e.header.slack);
            assert_eq!(s.injected_at, e.injected_at);
            assert_eq!(s.path, e.path);
        }
    }

    /// Regression (accounting bug 2): a comparison that covered no
    /// packets must not read as a perfect replay.
    #[test]
    fn empty_comparison_is_not_perfect() {
        let original = Trace::synthetic(RecordMode::EndToEnd, []);
        let replay = Trace::synthetic(RecordMode::EndToEnd, []);
        let r = compare(&original, &replay, Dur::from_us(12));
        assert_eq!(r.total, 0);
        assert!(!r.perfect(), "vacuous comparison must not be perfect");
        assert_eq!(r.match_rate(), None, "no packets ⇒ no match rate");
        assert_eq!(r.frac_gt_t_rate(), None);
    }

    #[test]
    fn replay_packet_headers_are_clean() {
        let topo = line(1, Bandwidth::from_gbps(1), Dur::ZERO);
        let mut packets = line_packets(&topo, 3, 1);
        // Pollute original headers the way SJF/SRPT originals would.
        for p in &mut packets {
            p.header.flow_size = 999;
            p.header.remaining = 999;
        }
        let opts = BuildOptions::default();
        let original = run_schedule(
            &topo,
            &SchedulerAssignment::uniform(SchedulerKind::Sjf),
            packets.clone(),
            &opts,
        );
        let rep = replay_packets(&topo, &original, &packets, HeaderInit::LstfSlack);
        for p in &rep {
            assert_eq!(
                p.header.flow_size, 0,
                "replay header must be re-initialized"
            );
            assert_eq!(p.hop, 0);
            assert_eq!(p.cum_wait, Dur::ZERO);
        }
    }

    #[test]
    fn priority_replay_uses_output_time() {
        let topo = line(1, Bandwidth::from_gbps(1), Dur::ZERO);
        let packets = line_packets(&topo, 2, 0);
        let original = run_schedule(
            &topo,
            &SchedulerAssignment::uniform(SchedulerKind::Fifo),
            packets.clone(),
            &BuildOptions::default(),
        );
        let rep = replay_packets(&topo, &original, &packets, HeaderInit::PriorityOutputTime);
        let o0 = original.get(PacketId(0)).unwrap().exited.unwrap();
        assert_eq!(rep[0].header.prio, o0.as_ps() as i128);
        assert!(rep[0].header.prio < rep[1].header.prio);
    }
}
