//! The paper's appendix counterexamples as executable schedules.
//!
//! Each function reproduces one appendix figure: the exact micro-topology
//! (from `ups_topology::micro`) plus the packet set and per-hop schedule
//! table. The *original* schedule is **constructed from the table** (the
//! appendix fully specifies every arrival and scheduling time) as a
//! synthetic [`Trace`]; only the replay is simulated. This keeps the
//! original exact while the replay — where serving a packet *early* is
//! legal (`o′(p) ≤ o(p)`) — tolerates the nanosecond serialization noise
//! of the "instant" 12 Tbps links.
//!
//! Timing convention: 1 appendix unit = 1 ms ([`ups_topology::micro::UNIT`]);
//! table times are expressed in tenths of a unit (Fig. 6 uses 2.5 and 3.2).
//! Replay comparisons use a 1 µs tolerance — five orders of magnitude
//! below the unit, three above the noise.

use std::collections::BTreeMap;
use std::sync::Arc;

use ups_netsim::prelude::{
    Dur, FlowId, HopRecord, Packet, PacketBuilder, PacketId, PacketKind, PacketRecord, RecordMode,
    SimTime, Trace,
};
use ups_topology::micro::{appendix_c, appendix_f, appendix_g, NamedTopology, UNIT, UNIT_PKT};
use ups_topology::{BuildOptions, SchedulerAssignment};

use crate::replay::{
    compare_with_tolerance, replay_packets, run_schedule, HeaderInit, ReplayOutcome,
};

/// Comparison tolerance for unit-scale schedules (see module docs).
pub const TOLERANCE: Dur = Dur::from_us(1);

/// A link is a "congestion point" in the appendix sense when its
/// serialization time is macroscopic (≥ 0.1 unit); the 12 Tbps fan-out
/// links serialize in 1 ns.
const CONGESTED_TX_MIN: Dur = Dur::from_us(100);

/// One appendix scenario: topology, packets, and the table-derived
/// original schedule.
pub struct CounterexampleSchedule {
    /// The micro-topology.
    pub net: NamedTopology,
    /// Packets to inject (replay runs re-initialize their headers).
    pub packets: Vec<Packet>,
    /// Human label ("Appendix C case 1", ...).
    pub label: &'static str,
    names: BTreeMap<&'static str, PacketId>,
    original: Vec<(PacketId, PacketRecord)>,
}

/// Tenths-of-a-unit → simulation time.
fn tenths(t: u64) -> SimTime {
    SimTime::from_ps(t * UNIT.as_ps() / 10)
}

impl CounterexampleSchedule {
    /// Id of the packet the paper calls `name`.
    pub fn packet_id(&self, name: &str) -> PacketId {
        *self
            .names
            .get(name)
            .unwrap_or_else(|| panic!("unknown packet {name:?}")) // lint:allow(panic-path): unknown name is a caller bug against a hand-built paper table
    }

    /// The table-specified original schedule, as a `PerHop` trace.
    pub fn original_trace(&self) -> Trace {
        Trace::synthetic(RecordMode::PerHop, self.original.iter().cloned())
    }

    /// Replay this schedule under `init` and compare against the table.
    pub fn replay(&self, init: HeaderInit, preemptive: bool) -> ReplayOutcome {
        let original = self.original_trace();
        let replay_set = replay_packets(&self.net.topo, &original, &self.packets, init);
        let replay = run_schedule(
            &self.net.topo,
            &SchedulerAssignment::uniform(init.scheduler(preemptive)),
            replay_set,
            &BuildOptions::default(),
        );
        let threshold = UNIT; // T = one congestion-point transmission time
        let report = compare_with_tolerance(&original, &replay, threshold, TOLERANCE);
        ReplayOutcome {
            original,
            replay,
            report,
        }
    }
}

/// Packet descriptor: name, path (node names), injection time (tenths),
/// per-congestion-node scheduling times (tenths), expected `o` (tenths) —
/// cross-checked against the walk of the path.
struct Row {
    name: &'static str,
    path: &'static [&'static str],
    inject_tenths: u64,
    scheds: &'static [(&'static str, u64)],
    o_tenths: u64,
}

/// Walk a packet's path through the table, producing its exact per-hop
/// record and verifying the declared `o`.
fn walk(net: &NamedTopology, row: &Row) -> (Vec<HopRecord>, SimTime, Dur) {
    let path = net.path(row.path);
    let mut t = tenths(row.inject_tenths);
    let mut hops = Vec::with_capacity(path.len() - 1);
    let mut total_wait = Dur::ZERO;
    for w in path.windows(2) {
        let link = net
            .topo
            .neighbor_link(w[0], w[1])
            .unwrap_or_else(|| panic!("missing link on {}", row.name)); // lint:allow(panic-path): paper-table paths only name links the builder just created
        let tx = link.bandwidth.tx_time(UNIT_PKT);
        if tx >= CONGESTED_TX_MIN {
            let sched = row
                .scheds
                .iter()
                .find(|&&(n, _)| net.node(n) == w[0])
                .map(|&(_, s)| tenths(s))
                .unwrap_or_else(|| panic!("{}: no sched time at congested hop", row.name)); // lint:allow(panic-path): a hand-built table row missing a congested-hop time is a table authoring bug
            assert!(sched >= t, "{}: scheduled before arrival", row.name);
            let waited = sched - t;
            hops.push(HopRecord {
                node: w[0],
                arrived: t,
                tx_start: sched,
                waited,
            });
            total_wait += waited;
            t = sched + tx + link.propagation;
        } else {
            // Instant hop: modeled as zero time in the table.
            hops.push(HopRecord {
                node: w[0],
                arrived: t,
                tx_start: t,
                waited: Dur::ZERO,
            });
            t += link.propagation;
        }
    }
    assert_eq!(
        t,
        tenths(row.o_tenths),
        "{}: table walk gives o = {t}, declared {}",
        row.name,
        tenths(row.o_tenths)
    );
    (hops, t, total_wait)
}

fn build(net: NamedTopology, label: &'static str, rows: &[Row]) -> CounterexampleSchedule {
    let mut packets = Vec::new();
    let mut names = BTreeMap::new();
    let mut original = Vec::new();
    for (idx, row) in rows.iter().enumerate() {
        let path: Arc<[ups_netsim::prelude::NodeId]> = net.path(row.path).into();
        let (hops, exited, total_wait) = walk(&net, row);
        let inject = tenths(row.inject_tenths);
        let id = PacketId(idx as u64);
        packets.push(
            PacketBuilder::new(id, FlowId(idx as u64), UNIT_PKT, path.clone(), inject).build(),
        );
        names.insert(row.name, id);
        original.push((
            id,
            PacketRecord {
                flow: FlowId(idx as u64),
                size: UNIT_PKT,
                kind: PacketKind::Data,
                path,
                injected: inject,
                exited: Some(exited),
                total_wait,
                dropped: false,
                drop_cause: None,
                hops,
            },
        ));
    }
    CounterexampleSchedule {
        net,
        packets,
        label,
        names,
        original,
    }
}

/// Appendix C (Figure 5), Case 1 or Case 2. Both cases have identical
/// `(i(p), o(p), path(p))` for the critical packets `a` and `x` but
/// require opposite orders at their shared first congestion point `a0` —
/// the non-existence argument for black-box UPSes.
pub fn appendix_c_case(case: u8) -> CounterexampleSchedule {
    const PATH_A: &[&str] = &["SA", "a0", "m0", "a1", "m1", "a2", "m2", "DA"];
    const PATH_X: &[&str] = &["SX", "a0", "m0", "a3", "m3", "a4", "m4", "DX"];
    const PATH_B: &[&str] = &["SB", "a1", "m1", "DB"];
    const PATH_C: &[&str] = &["SC", "a2", "m2", "DC"];
    const PATH_Y: &[&str] = &["SY", "a3", "m3", "DY"];
    const PATH_Z: &[&str] = &["SZ", "a4", "m4", "DZ"];
    let rows_case1 = [
        Row {
            name: "a",
            path: PATH_A,
            inject_tenths: 0,
            scheds: &[("a0", 0), ("a1", 10), ("a2", 40)],
            o_tenths: 50,
        },
        Row {
            name: "x",
            path: PATH_X,
            inject_tenths: 0,
            scheds: &[("a0", 10), ("a3", 20), ("a4", 30)],
            o_tenths: 40,
        },
        Row {
            name: "b1",
            path: PATH_B,
            inject_tenths: 20,
            scheds: &[("a1", 20)],
            o_tenths: 30,
        },
        Row {
            name: "b2",
            path: PATH_B,
            inject_tenths: 30,
            scheds: &[("a1", 30)],
            o_tenths: 40,
        },
        Row {
            name: "b3",
            path: PATH_B,
            inject_tenths: 40,
            scheds: &[("a1", 40)],
            o_tenths: 50,
        },
        Row {
            name: "c1",
            path: PATH_C,
            inject_tenths: 20,
            scheds: &[("a2", 20)],
            o_tenths: 30,
        },
        Row {
            name: "c2",
            path: PATH_C,
            inject_tenths: 30,
            scheds: &[("a2", 30)],
            o_tenths: 40,
        },
        Row {
            name: "y1",
            path: PATH_Y,
            inject_tenths: 20,
            scheds: &[("a3", 30)],
            o_tenths: 40,
        },
        Row {
            name: "y2",
            path: PATH_Y,
            inject_tenths: 30,
            scheds: &[("a3", 40)],
            o_tenths: 50,
        },
        Row {
            name: "z",
            path: PATH_Z,
            inject_tenths: 20,
            scheds: &[("a4", 20)],
            o_tenths: 30,
        },
    ];
    let rows_case2 = [
        Row {
            name: "a",
            path: PATH_A,
            inject_tenths: 0,
            scheds: &[("a0", 10), ("a1", 20), ("a2", 40)],
            o_tenths: 50,
        },
        Row {
            name: "x",
            path: PATH_X,
            inject_tenths: 0,
            scheds: &[("a0", 0), ("a3", 10), ("a4", 30)],
            o_tenths: 40,
        },
        Row {
            name: "b1",
            path: PATH_B,
            inject_tenths: 20,
            scheds: &[("a1", 30)],
            o_tenths: 40,
        },
        Row {
            name: "b2",
            path: PATH_B,
            inject_tenths: 30,
            scheds: &[("a1", 40)],
            o_tenths: 50,
        },
        Row {
            name: "b3",
            path: PATH_B,
            inject_tenths: 40,
            scheds: &[("a1", 50)],
            o_tenths: 60,
        },
        Row {
            name: "c1",
            path: PATH_C,
            inject_tenths: 20,
            scheds: &[("a2", 20)],
            o_tenths: 30,
        },
        Row {
            name: "c2",
            path: PATH_C,
            inject_tenths: 30,
            scheds: &[("a2", 30)],
            o_tenths: 40,
        },
        Row {
            name: "y1",
            path: PATH_Y,
            inject_tenths: 20,
            scheds: &[("a3", 20)],
            o_tenths: 30,
        },
        Row {
            name: "y2",
            path: PATH_Y,
            inject_tenths: 30,
            scheds: &[("a3", 30)],
            o_tenths: 40,
        },
        Row {
            name: "z",
            path: PATH_Z,
            inject_tenths: 20,
            scheds: &[("a4", 20)],
            o_tenths: 30,
        },
    ];
    match case {
        1 => build(appendix_c(), "Appendix C case 1", &rows_case1),
        2 => build(appendix_c(), "Appendix C case 2", &rows_case2),
        _ => panic!("Appendix C has cases 1 and 2, not {case}"), // lint:allow(panic-path): API contract: Appendix C defines exactly cases 1 and 2
    }
}

/// Appendix F (Figure 6): the priority cycle. Viable schedule with two
/// congestion points per packet that **simple priorities cannot replay**
/// (`prio(a) < prio(b) < prio(c) < prio(a)` is unsatisfiable) while LSTF
/// replays it exactly.
pub fn appendix_f_schedule() -> CounterexampleSchedule {
    let rows = [
        Row {
            name: "a",
            path: &["SA", "a1", "m1", "a3", "m3", "DA"],
            inject_tenths: 0,
            scheds: &[("a1", 0), ("a3", 32)],
            o_tenths: 34,
        },
        Row {
            name: "b",
            path: &["SB", "a1", "m1", "a2", "m2", "DB"],
            inject_tenths: 0,
            scheds: &[("a1", 10), ("a2", 20)],
            o_tenths: 25,
        },
        Row {
            name: "c",
            path: &["SC", "a2", "m2", "a3", "m3", "DC"],
            inject_tenths: 20,
            scheds: &[("a2", 25), ("a3", 30)],
            o_tenths: 32,
        },
    ];
    build(appendix_f(), "Appendix F (Fig. 6)", &rows)
}

/// Appendix G.3 (Figure 7): flow A crosses **three** congestion points
/// and LSTF provably fails — whichever way the final contention between
/// `a` and `c2` resolves, exactly one of them is overdue by one unit.
pub fn appendix_g_schedule() -> CounterexampleSchedule {
    const PATH_C: &[&str] = &["SC", "a1", "m1", "DC"];
    const PATH_D: &[&str] = &["SD", "a2", "m2", "DD"];
    let rows = [
        Row {
            name: "a",
            path: &["SA", "a0", "m0", "a1", "m1", "a2", "m2", "DA"],
            inject_tenths: 0,
            scheds: &[("a0", 0), ("a1", 10), ("a2", 40)],
            o_tenths: 50,
        },
        Row {
            name: "b",
            path: &["SB", "a0", "m0", "DB"],
            inject_tenths: 0,
            scheds: &[("a0", 10)],
            o_tenths: 20,
        },
        Row {
            name: "c1",
            path: PATH_C,
            inject_tenths: 20,
            scheds: &[("a1", 20)],
            o_tenths: 30,
        },
        Row {
            name: "c2",
            path: PATH_C,
            inject_tenths: 30,
            scheds: &[("a1", 30)],
            o_tenths: 40,
        },
        Row {
            name: "d1",
            path: PATH_D,
            inject_tenths: 20,
            scheds: &[("a2", 20)],
            o_tenths: 30,
        },
        Row {
            name: "d2",
            path: PATH_D,
            inject_tenths: 30,
            scheds: &[("a2", 30)],
            o_tenths: 40,
        },
    ];
    build(appendix_g(), "Appendix G.3 (Fig. 7)", &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::max_congestion_points;
    use ups_netsim::prelude::SchedulerKind;

    /// The table walks are internally consistent and carry the appendix's
    /// congestion-point structure.
    #[test]
    fn originals_match_appendix_tables() {
        let g = appendix_g_schedule();
        let trace = g.original_trace();
        // Flow a waits... congestion-point count per the §2.2 definition
        // (hops where the packet waited): a is scheduled on arrival at a0
        // and a1 but waits 2 units at a2.
        let a = trace.get(g.packet_id("a")).unwrap();
        assert_eq!(a.exited, Some(tenths(50)));
        assert_eq!(a.congestion_points(), 1);
        // But a *crosses* three nodes with macroscopic service — the
        // theorem's bound is about crossings where waiting can occur.
        assert_eq!(a.hops.len(), 7);
        // b waited one unit at a0.
        let b = trace.get(g.packet_id("b")).unwrap();
        assert_eq!(b.total_wait, UNIT);
        // Appendix C: both cases walk cleanly.
        let _ = appendix_c_case(1).original_trace();
        let _ = appendix_c_case(2).original_trace();
        let f = appendix_f_schedule().original_trace();
        assert_eq!(max_congestion_points(&f), 1);
    }

    /// Appendix B upper bound on the counterexample networks: record an
    /// *actual* schedule on each micro-topology (driven by the table's
    /// per-hop priorities through the omniscient scheduler), then replay
    /// that recorded schedule omnisciently — perfect replay, including on
    /// the networks that defeat LSTF.
    ///
    /// (The idealized tables themselves have zero-time white nodes, which
    /// a simulator with positive serialization cannot share exactly; the
    /// App. B theorem is about replaying a schedule *of the same
    /// network*, which is what this asserts. The table-exact schedules
    /// are exercised analytically via [`CounterexampleSchedule::original_trace`].)
    #[test]
    fn omniscient_replays_every_counterexample_network() {
        for sched in [
            appendix_c_case(1),
            appendix_c_case(2),
            appendix_f_schedule(),
            appendix_g_schedule(),
        ] {
            // Drive an original run with the table's per-hop times as
            // priorities; whatever schedule comes out is viable on this
            // (noise-included) network.
            let table = sched.original_trace();
            let seeded = replay_packets(
                &sched.net.topo,
                &table,
                &sched.packets,
                HeaderInit::Omniscient,
            );
            let original = run_schedule(
                &sched.net.topo,
                &SchedulerAssignment::uniform(SchedulerKind::Omniscient),
                seeded,
                &BuildOptions {
                    record: RecordMode::PerHop,
                    ..BuildOptions::default()
                },
            );
            // Now the real assertion: omniscient replay of the *recorded*
            // schedule is perfect, with zero tolerance.
            let replay_set = replay_packets(
                &sched.net.topo,
                &original,
                &sched.packets,
                HeaderInit::Omniscient,
            );
            let replay = run_schedule(
                &sched.net.topo,
                &SchedulerAssignment::uniform(SchedulerKind::Omniscient),
                replay_set,
                &BuildOptions::default(),
            );
            let report = compare_with_tolerance(&original, &replay, UNIT, Dur::ZERO);
            assert_eq!(report.total, sched.packets.len());
            assert!(
                report.perfect(),
                "{}: omniscient replay overdue {} (max late {})",
                sched.label,
                report.overdue,
                report.max_lateness
            );
        }
    }

    /// Appendix C: `a` and `x` have identical (i, o, path) in both cases,
    /// yet no deterministic black-box initialization can replay both —
    /// LSTF replays case 2 and fails case 1.
    #[test]
    fn appendix_c_defeats_blackbox_lstf() {
        let case1 = appendix_c_case(1);
        let case2 = appendix_c_case(2);
        let t1 = case1.original_trace();
        let t2 = case2.original_trace();
        for name in ["a", "x"] {
            let r1 = t1.get(case1.packet_id(name)).unwrap();
            let r2 = t2.get(case2.packet_id(name)).unwrap();
            assert_eq!(r1.exited, r2.exited, "{name}: o must match across cases");
            assert_eq!(
                r1.injected, r2.injected,
                "{name}: i must match across cases"
            );
            assert_eq!(r1.path, r2.path, "{name}: path must match across cases");
        }
        let out1 = case1.replay(HeaderInit::LstfSlack, true);
        let out2 = case2.replay(HeaderInit::LstfSlack, true);
        let failures = [&out1, &out2]
            .iter()
            .filter(|o| !o.report.perfect())
            .count();
        assert!(
            failures >= 1,
            "a deterministic replay cannot satisfy both cases"
        );
        // With our deterministic LSTF it is exactly case 1 that fails
        // (LSTF orders x before a at a0; case 1 needed a first).
        assert!(!out1.report.perfect(), "case 1 must fail under LSTF");
        assert!(out2.report.perfect(), "case 2 replays cleanly under LSTF");
    }

    /// Appendix F: priorities hit the cycle and fail; LSTF (2 congestion
    /// points per packet) replays perfectly — Theorem 2's boundary.
    #[test]
    fn appendix_f_priority_cycle() {
        let sched = appendix_f_schedule();
        let prio = sched.replay(HeaderInit::PriorityOutputTime, false);
        assert!(
            !prio.report.perfect(),
            "o(p)-priorities must fail the Fig. 6 cycle"
        );
        let lstf = sched.replay(HeaderInit::LstfSlack, true);
        assert!(
            lstf.report.perfect(),
            "LSTF handles 2 congestion points; overdue {} max late {}",
            lstf.report.overdue,
            lstf.report.max_lateness
        );
    }

    /// The Figure 6 cycle is detected structurally: *no* static priority
    /// assignment is consistent with the schedule's precedence relation
    /// (`prio(a) < prio(b) < prio(c) < prio(a)`), so the constructive
    /// assignment of Theorem 1 reports failure.
    #[test]
    fn appendix_f_precedence_relation_is_cyclic() {
        let sched = appendix_f_schedule();
        let original = sched.original_trace();
        assert!(
            crate::replay::priorities_from_schedule(&sched.net.topo, &original).is_none(),
            "Fig. 6's precedence relation must contain a cycle"
        );
        // While Appendix G's (which defeats LSTF for *slack* reasons, not
        // priority-cycle reasons) is acyclic.
        let g = appendix_g_schedule();
        assert!(
            crate::replay::priorities_from_schedule(&g.net.topo, &g.original_trace()).is_some()
        );
    }

    /// Appendix G.3: three congestion points defeat LSTF — exactly one
    /// packet (a or c2) misses by ~1 unit.
    #[test]
    fn appendix_g_lstf_fails_at_three_congestion_points() {
        let sched = appendix_g_schedule();
        let out = sched.replay(HeaderInit::LstfSlack, true);
        assert_eq!(out.report.overdue, 1, "exactly one packet misses");
        // Overdue by about one unit (the final transmission slot).
        assert!(
            out.report.max_lateness > UNIT - TOLERANCE && out.report.max_lateness < UNIT + UNIT,
            "lateness {}",
            out.report.max_lateness
        );
        // The victim is one of the two final contenders.
        let late = ["a", "c2"]
            .iter()
            .filter(|n| {
                let id = sched.packet_id(n);
                let o = out.original.get(id).unwrap().exited.unwrap();
                let o2 = out.replay.get(id).unwrap().exited.unwrap();
                o2 > o + TOLERANCE
            })
            .count();
        assert_eq!(late, 1);
    }

    /// EDF ≡ LSTF on the counterexamples too (App. E).
    #[test]
    fn edf_matches_lstf_on_counterexamples() {
        for sched in [appendix_f_schedule(), appendix_g_schedule()] {
            let lstf = sched.replay(HeaderInit::LstfSlack, false);
            let edf = sched.replay(HeaderInit::EdfDeadline, false);
            for (id, r) in lstf.replay.delivered().expect("resident trace") {
                let e = edf.replay.get(id).unwrap();
                assert_eq!(
                    r.exited, e.exited,
                    "{}: packet {id} exits differ between LSTF and EDF",
                    sched.label
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "cases 1 and 2")]
    fn invalid_case_rejected() {
        let _ = appendix_c_case(3);
    }
}
