//! # ups-core — Universal Packet Scheduling: replay and objectives
//!
//! The paper's contribution, on top of `ups-netsim`/`ups-topology`:
//!
//! * [`replay`] — the §2 methodology: record an original schedule,
//!   re-initialize headers from `(i(p), o(p), path(p))` (black-box LSTF /
//!   priorities / EDF) or per-hop times (omniscient, App. B), re-run, and
//!   score `o′(p) ≤ o(p)`.
//! * [`heuristics`] — the §3 slack initializations for mean FCT
//!   (`flow_size × D`), tail delay (constant ⇒ FIFO+), and fairness
//!   (Virtual-Clock accumulation).
//! * [`counterexamples`] — Appendix C/F/G.3 as executable schedules, with
//!   tests reproducing each impossibility/boundary result.
//!
//! The property-test suite (in `tests/`) checks the theorems themselves on
//! randomized scenarios: omniscient replay is always perfect; preemptive
//! LSTF is perfect whenever no packet crosses more than two congestion
//! points; EDF and LSTF produce identical replays.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod counterexamples;
pub mod divergence;
pub mod heuristics;
pub mod replay;

pub use counterexamples::{
    appendix_c_case, appendix_f_schedule, appendix_g_schedule, CounterexampleSchedule,
};
pub use divergence::{Divergence, DivergenceCause, DivergenceSink};
pub use heuristics::{fct_slack, tail_slack, FairnessSlackAssigner, FCT_D};
pub use replay::{
    as_executed_packets, as_executed_stream, compare, compare_streams, compare_streams_with_sink,
    compare_with_sink, compare_with_tolerance, lstf_replay_stream, max_congestion_points,
    priorities_from_schedule, replay_packets, run_schedule, HeaderInit, PriorityAssignment,
    ReplayExperiment, ReplayOutcome, ReplayReport, REORDER_WINDOW,
};
