//! Property tests for the paper's theorems (§2.2), on randomized
//! scenarios instead of hand-picked examples:
//!
//! 1. **Appendix B** — omniscient per-hop initialization replays *any*
//!    recorded schedule perfectly.
//! 2. **Theorem 2 / Appendix G** — preemptive LSTF replays perfectly
//!    whenever no packet waits at more than two hops.
//! 3. **Theorem 1 / Appendix F** — congestion-aware priorities replay
//!    perfectly whenever no packet waits at more than one hop.
//! 4. **Appendix E** — EDF and LSTF produce identical replays, including
//!    with mixed packet sizes.
//! 5. Determinism: a replay experiment is a pure function of its inputs.

use proptest::prelude::*;

use ups_core::replay::{max_congestion_points, HeaderInit, ReplayExperiment};
use ups_netsim::prelude::*;
use ups_topology::{dumbbell, line, BuildOptions, Routing, SchedulerAssignment, Topology};

/// A randomized replay scenario.
#[derive(Debug, Clone)]
struct Scenario {
    topo_kind: TopoKind,
    /// (src_host_idx, dst_host_idx, inject_us, size) per packet.
    packets: Vec<(usize, usize, u64, u32)>,
    discipline: Disc,
    seed: u64,
}

#[derive(Debug, Clone, Copy)]
enum TopoKind {
    Line(usize),
    Dumbbell(usize),
}

#[derive(Debug, Clone, Copy)]
enum Disc {
    Fifo,
    Lifo,
    Random,
    Fq,
    FifoPlus,
}

impl Disc {
    fn kind(self) -> SchedulerKind {
        match self {
            Disc::Fifo => SchedulerKind::Fifo,
            Disc::Lifo => SchedulerKind::Lifo,
            Disc::Random => SchedulerKind::Random,
            Disc::Fq => SchedulerKind::Fq,
            Disc::FifoPlus => SchedulerKind::FifoPlus,
        }
    }
}

impl TopoKind {
    fn build(self) -> Topology {
        match self {
            TopoKind::Line(r) => line(r, Bandwidth::from_gbps(1), Dur::from_us(10)),
            TopoKind::Dumbbell(h) => dumbbell(
                h,
                Bandwidth::from_gbps(1),
                Bandwidth::from_gbps(1),
                Dur::from_us(20),
            ),
        }
    }
}

impl Scenario {
    fn materialize(&self) -> (Topology, Vec<Packet>) {
        let topo = self.topo_kind.build();
        let mut routing = Routing::new(&topo);
        let hosts = topo.hosts();
        let packets = self
            .packets
            .iter()
            .enumerate()
            .filter_map(|(i, &(s, d, at_us, size))| {
                let src = hosts[s % hosts.len()];
                let dst = hosts[d % hosts.len()];
                if src == dst {
                    return None;
                }
                let path = routing.path(src, dst);
                Some(
                    PacketBuilder::new(
                        PacketId(i as u64),
                        FlowId(i as u64 % 5),
                        size,
                        path,
                        SimTime::from_us(at_us),
                    )
                    .build(),
                )
            })
            .collect();
        (topo, packets)
    }

    fn experiment<'a>(
        &self,
        topo: &'a Topology,
        init: HeaderInit,
        preemptive: bool,
    ) -> ReplayExperiment<'a> {
        ReplayExperiment {
            topo,
            original_assign: SchedulerAssignment::uniform(self.discipline.kind()),
            init,
            preemptive,
            record: RecordMode::PerHop,
            seed: self.seed,
        }
    }
}

fn disc_strategy() -> impl Strategy<Value = Disc> {
    prop_oneof![
        Just(Disc::Fifo),
        Just(Disc::Lifo),
        Just(Disc::Random),
        Just(Disc::Fq),
        Just(Disc::FifoPlus),
    ]
}

fn scenario_strategy(
    max_routers: usize,
    max_packets: usize,
    sizes: &'static [u32],
) -> impl Strategy<Value = Scenario> {
    let topo = prop_oneof![
        (1..=max_routers).prop_map(TopoKind::Line),
        (2..=3usize).prop_map(TopoKind::Dumbbell),
    ];
    let packet = (
        0..8usize,
        0..8usize,
        0u64..400,
        proptest::sample::select(sizes),
    );
    (
        topo,
        proptest::collection::vec(packet, 2..=max_packets),
        disc_strategy(),
        0u64..1000,
    )
        .prop_map(|(topo_kind, packets, discipline, seed)| Scenario {
            topo_kind,
            packets,
            discipline,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64, ..ProptestConfig::default()
    })]

    /// Appendix B: omniscient initialization replays any viable recorded
    /// schedule exactly — zero overdue packets, zero tolerance.
    #[test]
    fn omniscient_replay_is_always_perfect(
        scenario in scenario_strategy(3, 30, &[1500])
    ) {
        let (topo, packets) = scenario.materialize();
        prop_assume!(packets.len() >= 2);
        let exp = scenario.experiment(&topo, HeaderInit::Omniscient, false);
        let out = exp.run(&packets, Dur::ZERO);
        prop_assert_eq!(out.report.total, packets.len());
        prop_assert!(
            out.report.perfect(),
            "overdue {} / {} under {:?}, max late {}",
            out.report.overdue, out.report.total,
            scenario.discipline, out.report.max_lateness
        );
    }

    /// Theorem 2: preemptive LSTF replays perfectly when no packet waits
    /// at more than two hops in the original schedule.
    #[test]
    fn lstf_perfect_up_to_two_congestion_points(
        scenario in scenario_strategy(3, 25, &[1500])
    ) {
        let (topo, packets) = scenario.materialize();
        prop_assume!(packets.len() >= 2);
        let exp = scenario.experiment(&topo, HeaderInit::LstfSlack, true);
        let out = exp.run(&packets, Dur::ZERO);
        prop_assume!(max_congestion_points(&out.original) <= 2);
        prop_assert!(
            out.report.perfect(),
            "LSTF failed a ≤2-congestion-point schedule: overdue {} / {} under {:?}, max late {}",
            out.report.overdue, out.report.total,
            scenario.discipline, out.report.max_lateness
        );
    }

    /// Theorem 1: congestion-aware priorities replay perfectly when no
    /// packet waits at more than one hop.
    #[test]
    fn priorities_perfect_up_to_one_congestion_point(
        scenario in scenario_strategy(2, 15, &[1500])
    ) {
        let (topo, packets) = scenario.materialize();
        prop_assume!(packets.len() >= 2);
        let exp = scenario.experiment(&topo, HeaderInit::PriorityFromSchedule, true);
        let out = exp.run(&packets, Dur::ZERO);
        prop_assume!(max_congestion_points(&out.original) <= 1);
        prop_assert!(
            out.report.perfect(),
            "priorities failed a ≤1-congestion-point schedule: overdue {} / {} under {:?}",
            out.report.overdue, out.report.total, scenario.discipline
        );
    }

    /// Appendix E: the EDF formulation and LSTF produce byte-identical
    /// replays — same exit time for every packet — even with mixed
    /// packet sizes.
    #[test]
    fn edf_and_lstf_replays_are_identical(
        scenario in scenario_strategy(3, 25, &[400, 1000, 1500])
    ) {
        let (topo, packets) = scenario.materialize();
        prop_assume!(packets.len() >= 2);
        for preemptive in [false, true] {
            let lstf = scenario
                .experiment(&topo, HeaderInit::LstfSlack, preemptive)
                .run(&packets, Dur::ZERO);
            let edf = scenario
                .experiment(&topo, HeaderInit::EdfDeadline, preemptive)
                .run(&packets, Dur::ZERO);
            for (id, r) in lstf.replay.delivered().expect("resident trace") {
                let e = edf.replay.get(id).expect("EDF delivered the same packets");
                prop_assert_eq!(
                    r.exited, e.exited,
                    "packet {} exits at {:?} under LSTF but {:?} under EDF (preemptive={})",
                    id, r.exited, e.exited, preemptive
                );
            }
        }
    }

    /// Finite-priority-queue layer: `Quantized{inner: LSTF}` under the
    /// dynamic (queue-remapping) mapper is **bit-identical** to exact
    /// LSTF — the full replay trace compares equal — whenever K is at
    /// least the number of distinct ranks in the run (K = packet count
    /// bounds that from above). Randomized topologies, arrivals and
    /// original disciplines.
    #[test]
    fn quantized_lstf_replay_is_bit_identical_when_k_covers_ranks(
        scenario in scenario_strategy(3, 25, &[400, 1000, 1500])
    ) {
        use ups_core::replay::{compare, replay_packets, run_schedule};
        let (topo, packets) = scenario.materialize();
        prop_assume!(packets.len() >= 2);
        let opts = BuildOptions {
            record: RecordMode::EndToEnd,
            seed: scenario.seed,
            ..BuildOptions::default()
        };
        let original = run_schedule(
            &topo,
            &SchedulerAssignment::uniform(scenario.discipline.kind()),
            packets.iter().cloned(),
            &opts,
        );
        let replay_set = replay_packets(&topo, &original, &packets, HeaderInit::LstfSlack);
        let exact = run_schedule(
            &topo,
            &SchedulerAssignment::uniform(SchedulerKind::Lstf { preemptive: false }),
            replay_set.iter().cloned(),
            &opts,
        );
        let k = packets.len() as u32; // ≥ #distinct ranks, trivially
        let quant = run_schedule(
            &topo,
            &SchedulerAssignment::uniform(SchedulerKind::quantized_lstf(k, MapperKind::Dynamic)),
            replay_set.iter().cloned(),
            &opts,
        );
        prop_assert_eq!(
            &quant, &exact,
            "quantized K={} trace diverged from exact LSTF under {:?}",
            k, scenario.discipline
        );
        // And the reports agree, trivially, since the traces do.
        let threshold = topo.bottleneck_bandwidth().tx_time(1500);
        let a = compare(&original, &exact, threshold);
        let b = compare(&original, &quant, threshold);
        prop_assert_eq!(a.match_rate(), b.match_rate());
        prop_assert_eq!(a.missing, b.missing);
    }

    /// Replay experiments are deterministic: running twice gives
    /// identical reports and identical per-packet exits.
    #[test]
    fn replay_is_deterministic(
        scenario in scenario_strategy(3, 20, &[1500])
    ) {
        let (topo, packets) = scenario.materialize();
        prop_assume!(packets.len() >= 2);
        let a = scenario
            .experiment(&topo, HeaderInit::LstfSlack, false)
            .run(&packets, Dur::ZERO);
        let b = scenario
            .experiment(&topo, HeaderInit::LstfSlack, false)
            .run(&packets, Dur::ZERO);
        prop_assert_eq!(a.report.overdue, b.report.overdue);
        for (id, r) in a.replay.delivered().expect("resident trace") {
            prop_assert_eq!(r.exited, b.replay.get(id).unwrap().exited);
        }
    }

    /// Liveness: every injected packet is delivered in both runs (replay
    /// networks are unbuffered, so nothing may vanish).
    #[test]
    fn replay_delivers_everything(
        scenario in scenario_strategy(3, 25, &[1500])
    ) {
        let (topo, packets) = scenario.materialize();
        prop_assume!(packets.len() >= 2);
        let out = scenario
            .experiment(&topo, HeaderInit::LstfSlack, false)
            .run(&packets, Dur::ZERO);
        prop_assert_eq!(out.original.delivered().expect("resident trace").count(), packets.len());
        prop_assert_eq!(out.replay.delivered().expect("resident trace").count(), packets.len());
        prop_assert_eq!(out.report.total, packets.len());
    }
}
