//! Model fixtures: a scaled-down mirror of `ups_sweep::pool` +
//! `ups_sweep::telemetry::Heartbeat`, written against the
//! [`crate::model`] primitives, with the five built-in checks inlined
//! as assertions.
//!
//! The mirror keeps the production structure move for move — jobs
//! dealt round-robin up front, workers pop their own queue's front and
//! steal a victim's back, `catch_unwind` around each job with all
//! telemetry updates *after* the catch, thief-side `steals` and
//! victim-side `stolen_from` attributed at the steal site, heartbeat
//! loop `park_timeout` → stop-check → emit with an unconditional final
//! completion tick — but shrinks the scale (2–3 workers, 4–8 jobs) so
//! bounded-preemption DFS is exhaustive in seconds. What it checks:
//!
//! 1. **Deadlock freedom** — implicit: the runtime fails any execution
//!    where unfinished threads can't run.
//! 2. **Exactly-once** — every dealt job executed exactly once.
//! 3. **Telemetry conservation** — Σ per-worker `jobs` == `done` ==
//!    total, and Σ `steals` (thief-side) == Σ `stolen_from`
//!    (victim-side).
//! 4. **Heartbeat completion tick** — the final tick is emitted on
//!    every path, exactly once.
//! 5. **Panic isolation** — a panicking job loses only its own slot:
//!    workers survive, queues stay unpoisoned, every other job still
//!    runs, and conservation still holds (the panicking job *counts*:
//!    the production pool bills `jobs`/`busy_ns`/`done` after the
//!    `catch_unwind`, panic or not — this fixture pins that ordering).
//!
//! The `inject-lost-job` feature compiles
//! [`check_pool_concurrent_deal`], a deliberately broken variant that
//! deals jobs concurrently with the workers and lets workers exit on
//! "all queues empty" without checking that dealing finished — the
//! classic lost-wakeup-shaped termination race. `tests/lost_job.rs`
//! proves the explorer catches it and commits the counterexample
//! schedule.

use crate::model::sync::{AtomicBool, AtomicU64, Mutex};
use crate::model::thread;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::Duration;

/// Configuration for one model-pool execution. Keep `workers * jobs`
/// small: DFS cost is exponential in schedule length.
#[derive(Debug, Clone, Copy)]
pub struct ModelPoolCfg {
    pub workers: usize,
    pub jobs: usize,
    /// Index of a job that panics, for the panic-isolation check.
    pub panic_job: Option<usize>,
    /// Run a mirrored heartbeat thread alongside the workers.
    pub heartbeat: bool,
}

impl Default for ModelPoolCfg {
    fn default() -> Self {
        ModelPoolCfg {
            workers: 2,
            jobs: 4,
            panic_job: None,
            heartbeat: false,
        }
    }
}

/// Mirror of `PoolTelemetry`: per-worker `[jobs, busy, steals,
/// stolen_from]` plus a global `done`. Busy time is 1 unit per job
/// (the model has no clock).
struct ModelTelemetry {
    cells: Vec<[AtomicU64; 4]>,
    done: AtomicU64,
}

const JOBS: usize = 0;
const BUSY: usize = 1;
const STEALS: usize = 2;
const STOLEN_FROM: usize = 3;

impl ModelTelemetry {
    fn new(workers: usize) -> Self {
        ModelTelemetry {
            cells: (0..workers)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
            done: AtomicU64::new(0),
        }
    }

    fn sum(&self, idx: usize) -> u64 {
        self.cells.iter().map(|c| c[idx].load(Relaxed)).sum()
    }
}

/// What one worker does with a claimed job. Mirrors the production
/// ordering exactly: run under `catch_unwind`, then bill telemetry.
fn run_job(
    j: usize,
    w: usize,
    cfg: &ModelPoolCfg,
    telemetry: &ModelTelemetry,
    results: &Mutex<Vec<Option<usize>>>,
) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if cfg.panic_job == Some(j) {
            panic!("model job {j} panicked");
        }
        2 * j + 1
    }));
    if let Ok(v) = outcome {
        match results.lock() {
            Ok(mut r) => r[j] = Some(v),
            Err(p) => p.into_inner()[j] = Some(v),
        }
    }
    telemetry.cells[w][JOBS].fetch_add(1, Relaxed);
    telemetry.cells[w][BUSY].fetch_add(1, Relaxed);
    telemetry.done.fetch_add(1, Relaxed);
}

/// Pop a job the way a production worker does: own front, else steal a
/// victim's back (attributing thief/victim at the steal site).
fn claim_job(
    w: usize,
    queues: &[Arc<Mutex<VecDeque<usize>>>],
    telemetry: &ModelTelemetry,
) -> Option<usize> {
    if let Some(j) = lock_queue(&queues[w]).pop_front() {
        return Some(j);
    }
    for off in 1..queues.len() {
        let victim = (w + off) % queues.len();
        if let Some(j) = lock_queue(&queues[victim]).pop_back() {
            telemetry.cells[w][STEALS].fetch_add(1, Relaxed);
            telemetry.cells[victim][STOLEN_FROM].fetch_add(1, Relaxed);
            return Some(j);
        }
    }
    None
}

fn lock_queue(
    q: &Arc<Mutex<VecDeque<usize>>>,
) -> crate::model::sync::MutexGuard<'_, VecDeque<usize>> {
    match q.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Shared post-run verification: checks 2–5.
fn verify(
    cfg: &ModelPoolCfg,
    telemetry: &ModelTelemetry,
    results: &Mutex<Vec<Option<usize>>>,
    queues: &[Arc<Mutex<VecDeque<usize>>>],
    heartbeat_final: Option<u64>,
) {
    let total = cfg.jobs as u64;
    // Check 3: conservation.
    let jobs = telemetry.sum(JOBS);
    let done = telemetry.done.load(Relaxed);
    assert!(
        jobs == total && done == total,
        "telemetry conservation violated: per-worker jobs sum {jobs}, done {done}, dealt {total}"
    );
    let steals = telemetry.sum(STEALS);
    let stolen = telemetry.sum(STOLEN_FROM);
    assert!(
        steals == stolen,
        "steal attribution violated: thief-side steals {steals} != victim-side stolen_from {stolen}"
    );
    // Check 2 + 5: exactly-once, panic isolation.
    let r = match results.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    for j in 0..cfg.jobs {
        if cfg.panic_job == Some(j) {
            assert!(
                r[j].is_none(),
                "panicking job {j} produced a result {:?}",
                r[j]
            );
        } else {
            assert!(
                r[j] == Some(2 * j + 1),
                "job {j} executed wrongly: expected Some({}), got {:?}",
                2 * j + 1,
                r[j]
            );
        }
    }
    // Check 5 continued: no queue mutex poisoned by a job panic.
    for (i, q) in queues.iter().enumerate() {
        assert!(q.lock().is_ok(), "worker queue {i} poisoned by a job panic");
    }
    // Check 4: the completion tick fired exactly once.
    if let Some(fin) = heartbeat_final {
        assert!(
            fin == 1,
            "heartbeat completion tick emitted {fin} times (want exactly 1)"
        );
    }
}

/// The closure-under-test mirroring the production pool: deal up
/// front, spawn workers, drain, join, verify. Panics (failing the
/// execution) if any check is violated under the explored schedule.
pub fn check_pool(cfg: ModelPoolCfg) {
    assert!(cfg.workers >= 1 && cfg.jobs >= 1, "degenerate model config");
    let telemetry = Arc::new(ModelTelemetry::new(cfg.workers));
    let results = Arc::new(Mutex::new(vec![None; cfg.jobs]));
    let queues: Vec<Arc<Mutex<VecDeque<usize>>>> = (0..cfg.workers)
        .map(|_| Arc::new(Mutex::new(VecDeque::new())))
        .collect();
    for j in 0..cfg.jobs {
        lock_queue(&queues[j % cfg.workers]).push_back(j);
    }
    let heartbeat = cfg.heartbeat.then(|| {
        let stop = Arc::new(AtomicBool::new(false));
        let ticks = Arc::new(AtomicU64::new(0));
        let fin = Arc::new(AtomicU64::new(0));
        let (stop2, ticks2, fin2) = (Arc::clone(&stop), Arc::clone(&ticks), Arc::clone(&fin));
        let handle = thread::spawn(move || {
            while !stop2.load(Relaxed) {
                thread::park_timeout(Duration::from_millis(1));
                if stop2.load(Relaxed) {
                    break;
                }
                ticks2.fetch_add(1, Relaxed);
            }
            fin2.fetch_add(1, Relaxed);
        });
        (stop, fin, handle)
    });
    let workers: Vec<_> = (0..cfg.workers)
        .map(|w| {
            let telemetry = Arc::clone(&telemetry);
            let results = Arc::clone(&results);
            let queues = queues.clone();
            thread::spawn(move || {
                while let Some(j) = claim_job(w, &queues, &telemetry) {
                    run_job(j, w, &cfg, &telemetry, &results);
                }
            })
        })
        .collect();
    for (w, h) in workers.into_iter().enumerate() {
        h.join()
            .unwrap_or_else(|_| panic!("worker {w} panicked (jobs must not poison workers)"));
    }
    let heartbeat_final = heartbeat.map(|(stop, fin, handle)| {
        stop.store(true, Relaxed);
        handle.thread().unpark();
        handle.join().expect("heartbeat thread never panics");
        fin.load(Relaxed)
    });
    verify(&cfg, &telemetry, &results, &queues, heartbeat_final);
}

/// A textbook lock-order inversion, as a positive control for the
/// runtime's deadlock detection: thread 1 takes `a` then `b`, the
/// root takes `b` then `a`. Some schedule interleaves the first locks
/// and the explorer must report a deadlock with both holders blocked.
pub fn deadlock_demo() {
    let a = Arc::new(Mutex::new(0u64));
    let b = Arc::new(Mutex::new(0u64));
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let t = thread::spawn(move || {
        let ga = a2.lock().expect("model mutex a");
        let mut gb = b2.lock().expect("model mutex b");
        *gb += *ga;
    });
    {
        let gb = b.lock().expect("model mutex b");
        let mut ga = a.lock().expect("model mutex a");
        *ga += *gb;
    }
    t.join().expect("inversion thread");
}

/// The deliberately broken pool: jobs are dealt *concurrently* with
/// the workers, and a worker exits when every queue is empty — without
/// checking that dealing has finished. A schedule where the workers
/// get ahead of the dealer strands undealt jobs forever, which the
/// exactly-once check turns into a failure. Compiled only under the
/// `inject-lost-job` feature so the bug can't leak into real suites.
#[cfg(feature = "inject-lost-job")]
pub fn check_pool_concurrent_deal(cfg: ModelPoolCfg) {
    assert!(cfg.workers >= 1 && cfg.jobs >= 1, "degenerate model config");
    assert!(
        cfg.panic_job.is_none() && !cfg.heartbeat,
        "bug fixture keeps the minimal shape"
    );
    let telemetry = Arc::new(ModelTelemetry::new(cfg.workers));
    let results = Arc::new(Mutex::new(vec![None; cfg.jobs]));
    let queues: Vec<Arc<Mutex<VecDeque<usize>>>> = (0..cfg.workers)
        .map(|_| Arc::new(Mutex::new(VecDeque::new())))
        .collect();
    let workers: Vec<_> = (0..cfg.workers)
        .map(|w| {
            let telemetry = Arc::clone(&telemetry);
            let results = Arc::clone(&results);
            let queues = queues.clone();
            thread::spawn(move || loop {
                match claim_job(w, &queues, &telemetry) {
                    Some(j) => run_job(j, w, &cfg, &telemetry, &results),
                    // BUG: "all queues empty" is not "no more work" —
                    // the dealer may still be dealing.
                    None => break,
                }
            })
        })
        .collect();
    for j in 0..cfg.jobs {
        lock_queue(&queues[j % cfg.workers]).push_back(j);
    }
    for (w, h) in workers.into_iter().enumerate() {
        h.join().unwrap_or_else(|_| panic!("worker {w} panicked"));
    }
    verify(&cfg, &telemetry, &results, &queues, None);
}
