//! `ups-race` — a deterministic interleaving model checker for the
//! workspace's concurrency layer, plus the sync shim that keeps the
//! checked surface honest.
//!
//! The sweep engine's correctness claims (cross-worker byte-identical
//! records, telemetry conservation, the heartbeat's guaranteed
//! completion tick) rest on a hand-rolled work-stealing pool and a set
//! of relaxed atomic counters. Before this crate, those claims were
//! only as strong as "the tests passed under this machine's scheduler".
//! `ups-race` closes that gap with two pieces:
//!
//! 1. **The shim** ([`sync`] / [`thread`]): re-exports of the exact
//!    `std::sync` / `std::thread` surface the workspace's concurrent
//!    code is allowed to touch. In production builds these are plain
//!    `pub use` passthroughs — zero cost, bit-identical behavior —
//!    but they give the `ups-lint` `raw-sync` rule a boundary to
//!    police: concurrency primitives used outside the shim in the
//!    pool/obs crates are findings, so the model-checked surface can
//!    never silently grow stale.
//!
//! 2. **The model** ([`model`] / [`explore`]): mirrored `Mutex` /
//!    atomic / thread types whose every operation is a *scheduling
//!    decision* owned by a controlled scheduler, and an explorer that
//!    drives a closure-under-test across interleavings — exhaustive
//!    bounded-preemption DFS plus seeded random schedules. Failures
//!    print a replayable schedule string, so a counterexample
//!    interleaving becomes a committed regression fixture.
//!
//! [`fixtures`] holds the scaled-down model of the sweep pool +
//! heartbeat (same deal/steal/exit/panic structure as
//! `ups_sweep::pool`, shrunk to 2–3 workers and 4–8 jobs) and the five
//! built-in checks: deadlock freedom, every-job-executed-exactly-once,
//! telemetry conservation, heartbeat completion tick, and panic
//! isolation.
//!
//! **What the model does and does not check.** The scheduler owns every
//! context switch, so all interleavings of *operations* (up to the
//! preemption bound) are explored, including the ones a real scheduler
//! would need days of load to hit. It does **not** simulate weak-memory
//! reordering: model atomics are sequentially consistent between
//! scheduling points. That is the right fidelity for this workspace —
//! every atomic here is a monotone counter or a flag whose protocol is
//! mutex/park-based, a property `ups-lint`'s `atomic-ordering` rule
//! (Relaxed-only) independently enforces.

#![forbid(unsafe_code)]

pub mod explore;
pub mod fixtures;
pub mod model;
pub mod sync;
pub mod thread;

pub use explore::{explore, explore_random, replay, Config, Failure, Outcome, Schedule};
