//! The model runtime: a controlled scheduler that owns every context
//! switch of an execution-under-test.
//!
//! Modeled code runs on real OS threads, but only **one modeled thread
//! executes at a time**: each holds a token granted by the runtime, and
//! every operation on a model primitive ([`sync::Mutex`],
//! [`sync::atomic`], [`thread::spawn`], park/unpark/join) first reaches
//! a *decision point* where the scheduler picks which thread performs
//! the next operation. Between decision points a thread runs ordinary
//! sequential Rust, so an execution is a pure function of the decision
//! sequence — which is what makes schedules recordable, replayable and
//! enumerable.
//!
//! Blocking is modeled, not real: a thread that would block (contended
//! lock, park, join on a live thread) parks itself in the runtime and
//! the scheduler must pick someone else. If no thread can run while
//! some are still unfinished, that is a **deadlock** and the execution
//! fails with its schedule attached.
//!
//! `park_timeout` gets special treatment so heartbeat-style loops stay
//! explorable without livelocking the explorer: a timed-parked thread
//! is a schedulable candidate ("the timeout fires now") a bounded
//! number of times per thread ([`RuntimeConfig::max_timeout_fires`]);
//! past the budget it only wakes by `unpark` — unless *nothing else*
//! can run, in which case the oldest timed-parked thread is force-fired
//! (real time would pass), which never counts as a deadlock. Firing a
//! timeout is always an *alternative*, never the default continuation,
//! and never costs preemption budget.
//!
//! Aborting an execution (deadlock found, budget exceeded) unwinds the
//! running thread with [`AbortMarker`] while it holds the scheduler
//! lock, so every runtime lock is poison-tolerant by construction and
//! the recorded state stays readable afterwards.
//!
//! Memory model fidelity: operations interleave at decision-point
//! granularity; weak-memory reordering is *not* simulated (see the
//! crate docs for why that is the honest trade for this workspace).

pub mod sync;
pub mod thread;

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdGuard, PoisonError};

/// Marker payload used to unwind modeled threads when an execution
/// aborts (deadlock found, budget exceeded). Filtered by the panic
/// hook, never reported as a thread panic.
pub(crate) struct AbortMarker;

/// Runtime knobs copied from the explorer's `Config` into each
/// execution.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Abort the execution after this many decision points (livelock
    /// guard; surfaced as a failure, never silently).
    pub max_steps: usize,
    /// Times each thread's `park_timeout` may fire without an `unpark`
    /// while other threads could still run.
    pub max_timeout_fires: usize,
    /// Whether atomic operations are decision points.
    pub preempt_atomics: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            max_steps: 20_000,
            max_timeout_fires: 2,
            preempt_atomics: false,
        }
    }
}

/// How the scheduler resolves decision points.
pub(crate) enum Script {
    /// Follow these choices, then fall back to the default policy
    /// (keep running the current thread; else lowest-tid candidate).
    Fixed(Vec<usize>),
    /// Seeded uniform choice among the candidates.
    Random(SplitMix64),
}

/// One scheduling decision, as recorded for the explorer.
#[derive(Debug, Clone)]
pub(crate) struct Decision {
    /// Schedulable candidates (sorted by tid) at this point.
    pub enabled: Vec<usize>,
    /// The tid that was granted the next operation.
    pub chosen: usize,
    /// The thread that hit the decision point.
    pub current: usize,
    /// Whether `current` could simply have continued (if so, choosing
    /// another candidate is a *preemption*). False at blocking
    /// decisions — switching away from a blocked thread is forced and
    /// free, even when the blocked thread is itself a wake-by-timeout
    /// candidate.
    pub current_enabled: bool,
    /// Preemptions already spent strictly before this decision.
    pub preemptions_before: usize,
}

/// Everything the explorer learns from one finished execution.
pub(crate) struct RunResult {
    /// Chosen tid at every decision point, in order.
    pub schedule: Vec<usize>,
    /// Full decision records (same length as `schedule`).
    pub decisions: Vec<Decision>,
    /// The first failure, if the execution failed.
    pub failure: Option<String>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TState {
    Runnable,
    /// Blocked on the mutex whose stable in-execution key this is.
    BlockedMutex(usize),
    /// Blocked joining this tid.
    BlockedJoin(usize),
    /// Parked. `timed` distinguishes `park_timeout` (timeout may fire)
    /// from bare `park` (only `unpark` wakes it).
    Parked {
        timed: bool,
    },
    Finished,
}

struct Slot {
    state: TState,
    /// Pending `unpark` token (std semantics: at most one).
    token: bool,
    /// Remaining voluntary timeout fires for `park_timeout`.
    timeout_budget: usize,
    /// Panic message if the thread's closure panicked.
    panic: Option<String>,
    /// Whether a `join` consumed that panic (it becomes the joiner's
    /// problem, exactly as with `std::thread`).
    panic_consumed: bool,
}

struct ExecState {
    threads: Vec<Slot>,
    /// Which tid currently holds the run token (`None` once everything
    /// finished).
    running: Option<usize>,
    aborted: bool,
    failure: Option<String>,
    schedule: Vec<usize>,
    decisions: Vec<Decision>,
    script: Script,
    script_pos: usize,
    preemptions: usize,
    cfg: RuntimeConfig,
}

/// One execution's shared runtime. Modeled threads hold an `Arc` to it
/// through their thread-local context.
pub(crate) struct Exec {
    state: StdMutex<ExecState>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
}

/// Run `op` with the calling thread's execution context, or panic with
/// a usable message — model primitives only work under [`Exec::run`].
pub(crate) fn with_ctx<R>(op: impl FnOnce(&Arc<Exec>, usize) -> R) -> R {
    CURRENT.with(|c| {
        let b = c.borrow();
        let (exec, tid) = b
            .as_ref()
            .expect("ups-race model primitive used outside explore()/replay()");
        op(exec, *tid)
    })
}

/// Ensure the process panic hook swallows [`AbortMarker`] unwinds
/// (they are control flow, not failures) and defers everything else to
/// the previously installed hook.
fn install_abort_filter() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<AbortMarker>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

/// Render a panic payload the way the sweep pool does.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".into()
    }
}

impl Exec {
    /// Run `f` as the root modeled thread (tid 0) under `script`,
    /// driving every spawned thread to completion, and report the
    /// recorded schedule plus any failure.
    pub(crate) fn run(cfg: RuntimeConfig, script: Script, f: &(dyn Fn() + Sync)) -> RunResult {
        install_abort_filter();
        let exec = Arc::new(Exec {
            state: StdMutex::new(ExecState {
                threads: Vec::new(),
                running: Some(0),
                aborted: false,
                failure: None,
                schedule: Vec::new(),
                decisions: Vec::new(),
                script,
                script_pos: 0,
                preemptions: 0,
                cfg,
            }),
            cv: Condvar::new(),
        });
        let root = exec.register_thread();
        debug_assert_eq!(root, 0);
        std::thread::scope(|s| {
            let exec_for_root = Arc::clone(&exec);
            let h = s.spawn(move || {
                // enter_thread sits inside the catch: an abort while
                // waiting for the first grant must still unwind into
                // exit_thread, or the harness would hang.
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    enter_thread(Arc::clone(&exec_for_root), 0);
                    f()
                }));
                let panic = match &r {
                    Ok(()) => None,
                    Err(p) if p.downcast_ref::<AbortMarker>().is_some() => None,
                    Err(p) => Some(panic_message(p.as_ref())),
                };
                exec_for_root.exit_thread(0, panic);
            });
            exec.wait_all_finished();
            h.join().expect("root wrapper catches all panics");
        });
        let st = exec.lock_state();
        let mut failure = st.failure.clone();
        if failure.is_none() {
            for (tid, slot) in st.threads.iter().enumerate() {
                if let Some(msg) = &slot.panic {
                    if !slot.panic_consumed {
                        failure = Some(if tid == 0 {
                            format!("root thread panicked: {msg}")
                        } else {
                            format!("thread {tid} panicked (never joined): {msg}")
                        });
                        break;
                    }
                }
            }
        }
        RunResult {
            schedule: st.schedule.clone(),
            decisions: st.decisions.clone(),
            failure,
        }
    }

    /// Poison-tolerant state lock: aborts unwind while holding it, and
    /// the state they leave behind is exactly what we want to read.
    fn lock_state(&self) -> StdGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait_cv<'a>(&self, st: StdGuard<'a, ExecState>) -> StdGuard<'a, ExecState> {
        self.cv.wait(st).unwrap_or_else(PoisonError::into_inner)
    }

    /// Register a new modeled thread; returns its tid. The thread
    /// starts `Runnable` and runs when first scheduled.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        let tid = st.threads.len();
        let timeout_budget = st.cfg.max_timeout_fires;
        st.threads.push(Slot {
            state: TState::Runnable,
            token: false,
            timeout_budget,
            panic: None,
            panic_consumed: false,
        });
        tid
    }

    fn wait_all_finished(&self) {
        let mut st = self.lock_state();
        while !st.threads.iter().all(|t| t.state == TState::Finished) {
            st = self.wait_cv(st);
        }
    }

    /// A non-blocking decision point: the running `tid` is about to
    /// perform an operation; the scheduler may hand the token to
    /// someone else first. Returns once `tid` may proceed.
    pub(crate) fn yield_point(&self, tid: usize) {
        let mut st = self.lock_state();
        self.abort_check(&st);
        debug_assert_eq!(st.running, Some(tid), "yield by a thread without the token");
        let chosen = self.decide(&mut st, tid, true);
        if chosen != tid {
            st.running = Some(chosen);
            self.wake_if_parked(&mut st, chosen);
            self.cv.notify_all();
            self.wait_for_turn(st, tid);
        }
    }

    /// A blocking decision point: `tid` transitions to `blocked` and
    /// someone else runs. Returns once `tid` is runnable *and*
    /// scheduled again (for a timed park, possibly immediately: the
    /// scheduler may elect to fire the timeout on the spot).
    fn block_point(&self, tid: usize, blocked: TState) {
        let mut st = self.lock_state();
        self.abort_check(&st);
        debug_assert_eq!(st.running, Some(tid));
        st.threads[tid].state = blocked;
        let chosen = self.decide(&mut st, tid, false);
        if chosen == tid {
            self.wake_if_parked(&mut st, tid);
            debug_assert_eq!(st.threads[tid].state, TState::Runnable);
            return;
        }
        st.running = Some(chosen);
        self.wake_if_parked(&mut st, chosen);
        self.cv.notify_all();
        self.wait_for_turn(st, tid);
    }

    /// Wait until `tid` holds the token again; panics with
    /// [`AbortMarker`] if the execution aborted meanwhile.
    fn wait_for_turn(&self, mut st: StdGuard<'_, ExecState>, tid: usize) {
        while !st.aborted && st.running != Some(tid) {
            st = self.wait_cv(st);
        }
        self.abort_check(&st);
        debug_assert_eq!(st.threads[tid].state, TState::Runnable);
    }

    fn abort_check(&self, st: &ExecState) {
        if st.aborted {
            abort_unwind();
        }
    }

    /// If the scheduler picked a parked thread, that *is* its wakeup:
    /// a pending unpark token is consumed, otherwise the timeout fires
    /// and spends budget.
    fn wake_if_parked(&self, st: &mut ExecState, tid: usize) {
        if let TState::Parked { timed } = st.threads[tid].state {
            if st.threads[tid].token {
                st.threads[tid].token = false;
            } else {
                debug_assert!(timed, "bare park() only wakes by unpark");
                st.threads[tid].timeout_budget = st.threads[tid].timeout_budget.saturating_sub(1);
            }
            st.threads[tid].state = TState::Runnable;
        }
    }

    /// The scheduler: record a decision point and pick the next tid.
    /// `may_continue` is false at blocking decisions — there the
    /// switch is forced, costs no preemption budget, and `current` is
    /// never the default even if it is a wake-by-timeout candidate.
    fn decide(&self, st: &mut ExecState, current: usize, may_continue: bool) -> usize {
        if st.schedule.len() >= st.cfg.max_steps {
            let max = st.cfg.max_steps;
            self.fail(
                st,
                format!("step budget exceeded ({max} decision points) — livelock or runaway loop"),
            );
        }
        let mut enabled: Vec<usize> = Vec::new();
        for (tid, slot) in st.threads.iter().enumerate() {
            let ok = match slot.state {
                TState::Runnable => true,
                TState::Parked { timed } => slot.token || (timed && slot.timeout_budget > 0),
                _ => false,
            };
            if ok {
                enabled.push(tid);
            }
        }
        if enabled.is_empty() {
            // Past-budget timed parks are still wakeable by real time;
            // force-fire the lowest tid before calling it a deadlock.
            if let Some(tid) = st
                .threads
                .iter()
                .position(|t| matches!(t.state, TState::Parked { timed: true }))
            {
                st.threads[tid].state = TState::Runnable;
                enabled.push(tid);
            } else {
                let held: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.state != TState::Finished)
                    .map(|(tid, t)| format!("thread {tid} {}", describe_state(&t.state)))
                    .collect();
                self.fail(st, format!("deadlock: {}", held.join(", ")));
            }
        }
        let current_enabled = may_continue && enabled.contains(&current);
        let chosen = if st.script_pos < fixed_len(&st.script) {
            let c = fixed_at(&st.script, st.script_pos);
            if !enabled.contains(&c) {
                let pos = st.script_pos;
                self.fail(
                    st,
                    format!(
                        "schedule replay diverged at step {pos}: thread {c} not schedulable \
                         (candidates {enabled:?})"
                    ),
                );
            }
            c
        } else {
            match &mut st.script {
                Script::Random(rng) => enabled[(rng.next() % enabled.len() as u64) as usize],
                Script::Fixed(_) if current_enabled => current,
                Script::Fixed(_) => enabled[0],
            }
        };
        st.script_pos += 1;
        let preemptions_before = st.preemptions;
        if current_enabled && chosen != current {
            st.preemptions += 1;
        }
        st.schedule.push(chosen);
        st.decisions.push(Decision {
            enabled,
            chosen,
            current,
            current_enabled,
            preemptions_before,
        });
        chosen
    }

    /// Record the execution's first failure, abort every thread, and
    /// unwind the caller.
    fn fail(&self, st: &mut ExecState, msg: String) -> ! {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.aborted = true;
        self.cv.notify_all();
        abort_unwind()
    }

    /// The running thread is about to finish (closure returned or
    /// panicked): release join-waiters, hand the token onward.
    pub(crate) fn exit_thread(&self, tid: usize, panic: Option<String>) {
        let mut st = self.lock_state();
        st.threads[tid].panic = panic;
        st.threads[tid].state = TState::Finished;
        for t in st.threads.iter_mut() {
            if t.state == TState::BlockedJoin(tid) {
                t.state = TState::Runnable;
            }
        }
        if st.aborted {
            self.cv.notify_all();
            return;
        }
        if st.threads.iter().all(|t| t.state == TState::Finished) {
            st.running = None;
            self.cv.notify_all();
            return;
        }
        // Hand off; if this deadlocks or exhausts the step budget the
        // unwind is caught right here — the thread is already exiting.
        let handoff = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.decide(&mut st, tid, false)
        }));
        if let Ok(chosen) = handoff {
            debug_assert_ne!(chosen, tid, "finished thread cannot be scheduled");
            st.running = Some(chosen);
            self.wake_if_parked(&mut st, chosen);
        }
        self.cv.notify_all();
    }

    // --- Primitive protocols (called from model/sync.rs, model/thread.rs) ---

    /// Decision point for an atomic op (no-op unless configured).
    pub(crate) fn atomic_op(&self, tid: usize) {
        let preempt = {
            let st = self.lock_state();
            self.abort_check(&st);
            st.cfg.preempt_atomics
        };
        if preempt {
            self.yield_point(tid);
        }
    }

    /// `tid` failed to acquire the mutex keyed `key`: block until an
    /// unlock makes it runnable again.
    pub(crate) fn block_on_mutex(&self, tid: usize, key: usize) {
        self.block_point(tid, TState::BlockedMutex(key));
    }

    /// An unlock of `key`: every blocked waiter becomes runnable and
    /// re-contends; then a decision point. Called from the guard's
    /// `Drop`, so it must never panic while the thread is unwinding.
    pub(crate) fn mutex_unlocked(&self, tid: usize, key: usize) {
        {
            let mut st = self.lock_state();
            if st.aborted {
                return;
            }
            for t in st.threads.iter_mut() {
                if t.state == TState::BlockedMutex(key) {
                    t.state = TState::Runnable;
                }
            }
        }
        if std::thread::panicking() {
            // Poisoning unwind: waiters are runnable; the token moves
            // on when this thread reaches exit_thread.
            return;
        }
        self.yield_point(tid);
    }

    /// `park` / `park_timeout`.
    pub(crate) fn park(&self, tid: usize, timed: bool) {
        {
            let mut st = self.lock_state();
            self.abort_check(&st);
            if st.threads[tid].token {
                st.threads[tid].token = false;
                drop(st);
                self.yield_point(tid);
                return;
            }
        }
        self.block_point(tid, TState::Parked { timed });
    }

    /// `unpark(target)`: deposit the token; a parked target becomes
    /// runnable (it consumes the token on wake).
    pub(crate) fn unpark(&self, tid: usize, target: usize) {
        self.yield_point(tid);
        let mut st = self.lock_state();
        self.abort_check(&st);
        match st.threads[target].state {
            TState::Parked { .. } => {
                st.threads[target].state = TState::Runnable;
            }
            TState::Finished => {}
            _ => st.threads[target].token = true,
        }
    }

    /// `join(target)`: block until it finishes; marks its panic (if
    /// any) consumed — the caller receives it as `Err`, std-style.
    pub(crate) fn join(&self, tid: usize, target: usize) {
        loop {
            {
                let mut st = self.lock_state();
                self.abort_check(&st);
                if st.threads[target].state == TState::Finished {
                    st.threads[target].panic_consumed = true;
                    return;
                }
            }
            self.block_point(tid, TState::BlockedJoin(target));
        }
    }
}

/// Set up the thread-local context and wait for the first grant.
pub(crate) fn enter_thread(exec: Arc<Exec>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
    let st = exec.lock_state();
    exec.wait_for_turn(st, tid);
}

/// Unwind the modeled thread with the abort marker. Callers guarantee
/// they are not inside a `Drop` of an unwinding thread.
fn abort_unwind() -> ! {
    std::panic::panic_any(AbortMarker)
}

fn describe_state(s: &TState) -> String {
    match s {
        TState::Runnable => "runnable (scheduler invariant violated)".into(),
        TState::BlockedMutex(_) => "blocked on a mutex".into(),
        TState::BlockedJoin(t) => format!("blocked joining thread {t}"),
        TState::Parked { timed: false } => "parked (no unpark coming)".into(),
        TState::Parked { timed: true } => "parked with timeout".into(),
        TState::Finished => "finished".into(),
    }
}

fn fixed_len(s: &Script) -> usize {
    match s {
        Script::Fixed(v) => v.len(),
        Script::Random(_) => 0,
    }
}

fn fixed_at(s: &Script, i: usize) -> usize {
    match s {
        Script::Fixed(v) => v[i],
        Script::Random(_) => unreachable!("fixed_at under Random script"),
    }
}

/// The crate's only RNG: SplitMix64, for seeded random schedules.
/// (Vendored `rand` is not used — this crate stays dependency-free.)
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
