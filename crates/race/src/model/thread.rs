//! Model threads: spawn/join/park/unpark as scheduling decisions.
//!
//! Spawned closures run on real OS threads, but each waits for the
//! scheduler's token before executing anything, so creation order and
//! OS scheduling never leak into an execution. `park_timeout` ignores
//! the duration — in the model, "the timeout fires" is a scheduling
//! *choice* (budgeted per thread), not a clock event; see the runtime
//! docs for the forced-fire rule that keeps heartbeat loops live.

use super::{enter_thread, panic_message, with_ctx, AbortMarker, Exec};
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

/// Handle to a model thread, mirroring `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    thread: Thread,
    result: Arc<StdMutex<Option<std::thread::Result<T>>>>,
}

/// Mirror of `std::thread::Thread` — just enough to `unpark`.
#[derive(Debug, Clone)]
pub struct Thread {
    tid: usize,
}

impl Thread {
    pub fn unpark(&self) {
        let target = self.tid;
        with_ctx(|exec, tid| exec.unpark(tid, target));
    }
}

impl<T> JoinHandle<T> {
    pub fn thread(&self) -> &Thread {
        &self.thread
    }

    /// Block until the thread finishes; a panic in its closure comes
    /// back as `Err(payload)`, exactly like `std::thread`.
    pub fn join(self) -> std::thread::Result<T> {
        let target = self.thread.tid;
        with_ctx(|exec, tid| exec.join(tid, target));
        self.result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
            .expect("model thread stored its result before finishing")
    }
}

/// Spawn a model thread. The decision point *after* registration lets
/// the explorer run the child before the parent's next operation.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, child) = with_ctx(|exec, _| {
        let child = exec.register_thread();
        (Arc::clone(exec), child)
    });
    let result: Arc<StdMutex<Option<std::thread::Result<T>>>> = Arc::new(StdMutex::new(None));
    let slot = Arc::clone(&result);
    let exec_for_child = Arc::clone(&exec);
    std::thread::Builder::new()
        .name(format!("ups-race-{child}"))
        .spawn(move || {
            // enter_thread inside the catch: an abort while waiting
            // for the first grant must still reach exit_thread.
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                enter_thread(Arc::clone(&exec_for_child), child);
                f()
            }));
            let panic = match &r {
                Ok(_) => None,
                Err(p) if p.downcast_ref::<AbortMarker>().is_some() => None,
                Err(p) => Some(panic_message(p.as_ref())),
            };
            *slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
            exec_for_child.exit_thread(child, panic);
        })
        .expect("spawn OS thread for model execution");
    with_ctx(|exec: &Arc<Exec>, tid| exec.yield_point(tid));
    JoinHandle {
        thread: Thread { tid: child },
        result,
    }
}

/// Model `park`: blocks until an `unpark` (no timeout choice).
pub fn park() {
    with_ctx(|exec, tid| exec.park(tid, false));
}

/// Model `park_timeout`: the duration is ignored; waking by timeout is
/// a budgeted scheduling choice.
pub fn park_timeout(_dur: Duration) {
    with_ctx(|exec, tid| exec.park(tid, true));
}

/// Model `sleep`: time does not exist in the model; a sleep is just a
/// decision point (any other thread may run "during" it).
pub fn sleep(_dur: Duration) {
    with_ctx(|exec, tid| exec.yield_point(tid));
}

/// Model `yield_now`: a plain decision point.
pub fn yield_now() {
    with_ctx(|exec, tid| exec.yield_point(tid));
}
