//! Model `Mutex` and atomics: API-compatible with the [`crate::sync`]
//! shim, but every operation is a scheduling decision.
//!
//! The mutex wraps a `std::sync::Mutex` and only ever calls
//! `try_lock` while holding the scheduler token, so the real lock is
//! never contended — contention is *modeled*: a failed try blocks the
//! thread in the runtime until an unlock makes it runnable, and the
//! waiter re-contends (so unfair handoff interleavings are explored
//! too). Poisoning is inherited from std: a panic while holding the
//! guard poisons the inner mutex during unwind, and later lockers see
//! the same `LockResult` surface production code handles.

use super::with_ctx;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;
use std::sync::{LockResult, PoisonError, TryLockError};

/// A mutex whose lock/unlock are decision points.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Stable within one execution: model state is keyed by address.
    fn key(&self) -> usize {
        self as *const Self as usize
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let key = self.key();
        loop {
            with_ctx(|exec, tid| exec.yield_point(tid));
            match self.inner.try_lock() {
                Ok(g) => {
                    return Ok(MutexGuard {
                        inner: Some(g),
                        key,
                    })
                }
                Err(TryLockError::Poisoned(p)) => {
                    // Acquired, but poisoned — mirror std's lock().
                    return Err(PoisonError::new(MutexGuard {
                        inner: Some(p.into_inner()),
                        key,
                    }));
                }
                Err(TryLockError::WouldBlock) => {
                    with_ctx(|exec, tid| exec.block_on_mutex(tid, key));
                }
            }
        }
    }
}

/// Guard for the model mutex; the unlock on drop is a decision point
/// (after waking blocked contenders).
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    key: usize,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live until drop")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first so a woken waiter's try_lock
        // succeeds, then tell the runtime.
        drop(self.inner.take());
        let key = self.key;
        with_ctx(|exec, tid| exec.mutex_unlocked(tid, key));
    }
}

/// Model `AtomicU64`: operations optionally interleave
/// ([`super::RuntimeConfig::preempt_atomics`]). The cell itself uses
/// the requested ordering on a std atomic; since only one modeled
/// thread runs at a time and the scheduler handoff is a mutex (a
/// happens-before edge), `Relaxed` here is as strong as `SeqCst`.
#[derive(Debug, Default)]
pub struct AtomicU64 {
    cell: std::sync::atomic::AtomicU64,
}

impl AtomicU64 {
    pub const fn new(v: u64) -> Self {
        AtomicU64 {
            cell: std::sync::atomic::AtomicU64::new(v),
        }
    }

    pub fn load(&self, order: Ordering) -> u64 {
        with_ctx(|exec, tid| exec.atomic_op(tid));
        self.cell.load(order)
    }

    pub fn store(&self, v: u64, order: Ordering) {
        with_ctx(|exec, tid| exec.atomic_op(tid));
        self.cell.store(v, order)
    }

    pub fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
        with_ctx(|exec, tid| exec.atomic_op(tid));
        self.cell.fetch_add(v, order)
    }

    pub fn fetch_max(&self, v: u64, order: Ordering) -> u64 {
        with_ctx(|exec, tid| exec.atomic_op(tid));
        self.cell.fetch_max(v, order)
    }
}

/// Model `AtomicBool`, same contract as [`AtomicU64`].
#[derive(Debug, Default)]
pub struct AtomicBool {
    cell: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        AtomicBool {
            cell: std::sync::atomic::AtomicBool::new(v),
        }
    }

    pub fn load(&self, order: Ordering) -> bool {
        with_ctx(|exec, tid| exec.atomic_op(tid));
        self.cell.load(order)
    }

    pub fn store(&self, v: bool, order: Ordering) {
        with_ctx(|exec, tid| exec.atomic_op(tid));
        self.cell.store(v, order)
    }
}
