//! The explorer: drives a closure-under-test across interleavings.
//!
//! Two strategies share one runtime ([`crate::model`]):
//!
//! * [`explore`] — **bounded-preemption DFS**. The search tree's nodes
//!   are decision points; edges are schedulable threads. The first
//!   execution follows the default policy (keep running the current
//!   thread, else the lowest tid); each later execution replays a
//!   recorded prefix and deviates at the deepest decision with an
//!   untried alternative. Alternatives that *preempt* (switch away
//!   from a thread that could have continued) are only explored while
//!   the execution's preemption count is under
//!   [`Config::preemption_bound`] — the classic CHESS result: almost
//!   all real concurrency bugs need only a couple of preemptions, and
//!   the bound turns an intractable tree into seconds of work.
//!   Forced switches (the current thread blocked) are free.
//!
//! * [`explore_random`] — seeded uniform schedules for the tail the
//!   bound excludes. Same runtime, same recording, so a failing random
//!   schedule replays exactly like a DFS one.
//!
//! Every failure carries a [`Schedule`]: a run-length-encoded string
//! (`ups-race/v1:0x12,1x3,0`) of chosen tids, printable in a panic
//! message and parseable back — a counterexample interleaving becomes
//! a one-line committed regression fixture replayed with [`replay`].
//!
//! Determinism: executions are pure functions of the schedule; the
//! only RNG is in-crate SplitMix64 under a caller-supplied seed. Two
//! runs of the same suite explore identical executions in identical
//! order.

use crate::model::{Decision, Exec, RunResult, RuntimeConfig, Script, SplitMix64};

/// Explorer + runtime configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum preemptive context switches per execution in DFS
    /// (forced switches are free). 2 catches the overwhelming
    /// majority of schedule-sensitive bugs.
    pub preemption_bound: usize,
    /// Hard cap on executions explored; hitting it makes the
    /// [`Outcome`] incomplete rather than silently passing.
    pub max_executions: u64,
    /// Decision points per execution before the run fails as a
    /// livelock.
    pub max_steps: usize,
    /// Times each thread's `park_timeout` may fire by scheduler choice
    /// while others could run (forced fires when nothing else is
    /// schedulable are always allowed and free).
    pub max_timeout_fires: usize,
    /// Make atomic operations decision points too. Off by default:
    /// this workspace's atomics are monotone counters whose final
    /// values are interleaving-independent, and modeling them inflates
    /// schedules severalfold.
    pub preempt_atomics: bool,
    /// Restrict DFS to the subtree under this schedule prefix: the
    /// first execution replays it, and backtracking never rises above
    /// it. Lets a long search be split or resumed across runs.
    pub resume_from: Option<Schedule>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            max_executions: 1_000_000,
            max_steps: 20_000,
            max_timeout_fires: 2,
            preempt_atomics: false,
            resume_from: None,
        }
    }
}

impl Config {
    fn runtime(&self) -> RuntimeConfig {
        RuntimeConfig {
            max_steps: self.max_steps,
            max_timeout_fires: self.max_timeout_fires,
            preempt_atomics: self.preempt_atomics,
        }
    }
}

/// A recorded interleaving: the chosen tid at every decision point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    choices: Vec<usize>,
}

const SCHEDULE_PREFIX: &str = "ups-race/v1:";

impl Schedule {
    pub fn new(choices: Vec<usize>) -> Self {
        Schedule { choices }
    }

    pub fn choices(&self) -> &[usize] {
        &self.choices
    }

    pub fn len(&self) -> usize {
        self.choices.len()
    }

    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Parse the `ups-race/v1:` run-length format printed by
    /// [`std::fmt::Display`]. Accepts `tid` and `tidxcount` items.
    pub fn parse(s: &str) -> Result<Schedule, String> {
        let body = s
            .trim()
            .strip_prefix(SCHEDULE_PREFIX)
            .ok_or_else(|| format!("schedule must start with {SCHEDULE_PREFIX:?}"))?;
        let mut choices = Vec::new();
        if body.is_empty() {
            return Ok(Schedule { choices });
        }
        for item in body.split(',') {
            let (tid, count) = match item.split_once('x') {
                Some((t, c)) => (t, c),
                None => (item, "1"),
            };
            let tid: usize = tid
                .parse()
                .map_err(|_| format!("bad tid in schedule item {item:?}"))?;
            let count: usize = count
                .parse()
                .map_err(|_| format!("bad count in schedule item {item:?}"))?;
            if count == 0 {
                return Err(format!("zero count in schedule item {item:?}"));
            }
            choices.extend(std::iter::repeat_n(tid, count));
        }
        Ok(Schedule { choices })
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{SCHEDULE_PREFIX}")?;
        let mut i = 0;
        let mut first = true;
        while i < self.choices.len() {
            let tid = self.choices[i];
            let mut run = 1;
            while i + run < self.choices.len() && self.choices[i + run] == tid {
                run += 1;
            }
            if !first {
                write!(f, ",")?;
            }
            first = false;
            if run == 1 {
                write!(f, "{tid}")?;
            } else {
                write!(f, "{tid}x{run}")?;
            }
            i += run;
        }
        Ok(())
    }
}

impl std::str::FromStr for Schedule {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Schedule::parse(s)
    }
}

/// A failing execution: what went wrong and the exact interleaving
/// that triggers it.
#[derive(Debug, Clone)]
pub struct Failure {
    pub message: String,
    pub schedule: Schedule,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}\n  failing schedule: {}\n  replay with ups_race::replay(&cfg, &schedule.parse().unwrap(), f)",
            self.message, self.schedule
        )
    }
}

/// Result of an exploration.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Executions actually run.
    pub executions: u64,
    /// First failure found (exploration stops at the first).
    pub failure: Option<Failure>,
    /// False iff [`Config::max_executions`] was exhausted before the
    /// search space — a pass with `complete == false` proves less.
    pub complete: bool,
}

impl Outcome {
    /// Panic with the failure (message + replayable schedule) if the
    /// exploration found one. The one-liner test suites want.
    pub fn assert_pass(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "model check failed after {} executions: {f}",
                self.executions
            );
        }
    }
}

/// One DFS node: the choice taken and the untried alternatives.
struct Frame {
    chosen: usize,
    alts: Vec<usize>,
}

/// Alternatives at `d` that the preemption bound permits exploring.
fn allowed_alts(d: &Decision, bound: usize) -> Vec<usize> {
    d.enabled
        .iter()
        .copied()
        .filter(|&alt| {
            if alt == d.chosen {
                return false;
            }
            let preemptive = d.current_enabled && alt != d.current;
            !preemptive || d.preemptions_before < bound
        })
        .collect()
}

fn run_once(cfg: &Config, script: Script, f: &(dyn Fn() + Sync)) -> RunResult {
    Exec::run(cfg.runtime(), script, f)
}

fn failure_of(run: RunResult) -> Option<Failure> {
    run.failure.map(|message| Failure {
        message,
        schedule: Schedule::new(run.schedule),
    })
}

/// Exhaustive bounded-preemption DFS over `f`'s interleavings.
/// Deterministic; stops at the first failure.
pub fn explore(cfg: &Config, f: impl Fn() + Sync) -> Outcome {
    let pinned = cfg
        .resume_from
        .as_ref()
        .map(|s| s.choices().to_vec())
        .unwrap_or_default();
    let mut frames: Vec<Frame> = pinned
        .iter()
        .map(|&c| Frame {
            chosen: c,
            alts: Vec::new(),
        })
        .collect();
    let pinned_len = frames.len();
    let mut executions: u64 = 0;
    loop {
        let script: Vec<usize> = frames.iter().map(|fr| fr.chosen).collect();
        let run = run_once(cfg, Script::Fixed(script), &f);
        executions += 1;
        if run.failure.is_some() {
            return Outcome {
                executions,
                failure: failure_of(run),
                complete: true,
            };
        }
        for d in run.decisions.iter().skip(frames.len()) {
            frames.push(Frame {
                chosen: d.chosen,
                alts: allowed_alts(d, cfg.preemption_bound),
            });
        }
        if executions >= cfg.max_executions {
            return Outcome {
                executions,
                failure: None,
                complete: false,
            };
        }
        // Backtrack to the deepest frame with an untried alternative,
        // never rising into the pinned resume prefix.
        loop {
            if frames.len() <= pinned_len {
                return Outcome {
                    executions,
                    failure: None,
                    complete: true,
                };
            }
            let fr = frames.last_mut().expect("len checked above");
            if let Some(alt) = fr.alts.pop() {
                fr.chosen = alt;
                break;
            }
            frames.pop();
        }
    }
}

/// `schedules` seeded uniform-random interleavings of `f`.
/// Deterministic in `seed`; stops at the first failure.
pub fn explore_random(cfg: &Config, seed: u64, schedules: u64, f: impl Fn() + Sync) -> Outcome {
    let mut master = SplitMix64(seed);
    let mut executions = 0;
    for _ in 0..schedules.min(cfg.max_executions) {
        let run = run_once(cfg, Script::Random(SplitMix64(master.next())), &f);
        executions += 1;
        if run.failure.is_some() {
            return Outcome {
                executions,
                failure: failure_of(run),
                complete: true,
            };
        }
    }
    Outcome {
        executions,
        failure: None,
        complete: schedules <= cfg.max_executions,
    }
}

/// Replay one exact interleaving (a committed counterexample, say).
/// `Err` carries the reproduced failure; `Ok` means it no longer
/// fails under this schedule.
pub fn replay(cfg: &Config, schedule: &Schedule, f: impl Fn() + Sync) -> Result<(), Failure> {
    let run = run_once(cfg, Script::Fixed(schedule.choices().to_vec()), &f);
    match failure_of(run) {
        Some(fail) => Err(fail),
        None => Ok(()),
    }
}

/// Read a `u64` knob from the environment (for CI-tunable test
/// depth, e.g. `UPS_RACE_RANDOM_SCHEDULES`).
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
