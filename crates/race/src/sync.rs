//! The production sync shim: a zero-cost passthrough to `std::sync`.
//!
//! Concurrent code in the pool/obs crates imports its primitives from
//! here instead of `std::sync` directly (enforced by the `ups-lint`
//! `raw-sync` rule). Every item is a plain re-export, so the compiled
//! artifact is bit-for-bit the code it replaced — the existing
//! determinism and obs-determinism suites pin that. The point of the
//! indirection is the *inventory*: this module is the closed list of
//! primitives the [`crate::model`] backend mirrors, so "is this
//! primitive covered by the model checker?" is answered by whether it
//! compiles.
//!
//! `Arc`/`Weak` are deliberately *not* gated behind the shim: they are
//! ownership, not synchronization — no scheduling decision ever hinges
//! on one — so `raw-sync` allows them from `std::sync` directly.

pub use std::sync::{Condvar, LockResult, Mutex, MutexGuard, PoisonError, TryLockError};

/// Atomic cells and orderings, passthrough.
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}
