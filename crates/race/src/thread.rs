//! The production thread shim: a zero-cost passthrough to
//! `std::thread`, the spawn/park half of the [`crate::sync`] boundary.

pub use std::thread::{
    available_parallelism, park, park_timeout, scope, sleep, spawn, JoinHandle, Scope,
    ScopedJoinHandle, Thread,
};
