//! Proof that the explorer catches a real injected concurrency bug.
//!
//! `--features inject-lost-job` compiles a deliberately broken pool
//! variant (`check_pool_concurrent_deal`): jobs are dealt concurrently
//! with the workers, and workers exit on "all queues empty" without
//! checking that dealing finished. Under the right interleaving the
//! workers get ahead of the dealer, exit, and strand a job — which the
//! exactly-once/conservation checks turn into a failure with a
//! printed, replayable schedule.
//!
//! These tests are compiled out of normal builds: the bug exists only
//! to prove the checker's teeth. CI runs them via
//! `cargo test -p ups-race --features inject-lost-job`.
#![cfg(feature = "inject-lost-job")]

use ups_race::fixtures::{check_pool_concurrent_deal, ModelPoolCfg};
use ups_race::{explore, replay, Config, Schedule};

fn bug_cfg() -> ModelPoolCfg {
    ModelPoolCfg {
        workers: 2,
        jobs: 2,
        ..ModelPoolCfg::default()
    }
}

/// The committed counterexample: found once by [`dfs_finds_lost_job`],
/// then pinned here as a regression fixture. The root (0) spawns both
/// workers; worker 2 then worker 1 each drain their empty queues and
/// exit before the root deals a single job — both jobs are stranded.
const LOST_JOB_SCHEDULE: &str = "ups-race/v1:0x4,2x11,1x5,0x2";

/// Bounded DFS must find the lost-job race and hand back a schedule
/// that parses and replays.
#[test]
fn dfs_finds_lost_job() {
    let out = explore(&Config::default(), || check_pool_concurrent_deal(bug_cfg()));
    let failure = out
        .failure
        .expect("the injected lost-job race must be found");
    assert!(
        failure.message.contains("conservation") || failure.message.contains("executed"),
        "failure should come from the exactly-once/conservation checks, got: {}",
        failure.message
    );
    // The schedule string is the whole point: print it the way a
    // developer would see it, then prove it replays.
    let text = failure.schedule.to_string();
    println!("lost-job counterexample: {text}");
    let parsed: Schedule = text.parse().expect("printed schedule parses");
    replay(&Config::default(), &parsed, || {
        check_pool_concurrent_deal(bug_cfg())
    })
    .expect_err("replaying the counterexample must reproduce the failure");
}

/// The committed schedule keeps reproducing the bug — a regression
/// fixture for both the fixture pool and the replay machinery.
#[test]
fn committed_counterexample_still_reproduces() {
    let schedule: Schedule = LOST_JOB_SCHEDULE
        .parse()
        .expect("committed schedule parses");
    let failure = replay(&Config::default(), &schedule, || {
        check_pool_concurrent_deal(bug_cfg())
    })
    .expect_err("committed counterexample must still fail");
    assert!(
        failure.message.contains("conservation") || failure.message.contains("executed"),
        "got: {}",
        failure.message
    );
}

/// Same bug, found without DFS: seeded random schedules also catch it
/// (the race has many witnesses).
#[test]
fn random_schedules_find_lost_job() {
    let out = ups_race::explore_random(&Config::default(), 7, 512, || {
        check_pool_concurrent_deal(bug_cfg())
    });
    assert!(
        out.failure.is_some(),
        "512 random schedules should witness the lost-job race"
    );
}
