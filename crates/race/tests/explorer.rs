//! Explorer mechanics: schedule round-trips, determinism and
//! resumability of DFS, deadlock detection as a positive control, and
//! replay of recorded counterexamples.

use ups_race::fixtures::deadlock_demo;
use ups_race::model::sync::Mutex;
use ups_race::model::thread;
use ups_race::{explore, explore_random, replay, Config, Schedule};

use std::sync::Arc;

#[test]
fn schedule_display_parse_round_trip() {
    let cases: &[&[usize]] = &[
        &[],
        &[0],
        &[0, 0, 0],
        &[0, 1, 0, 1],
        &[0, 0, 0, 1, 1, 2, 0],
        &[3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3],
    ];
    for c in cases {
        let s = Schedule::new(c.to_vec());
        let text = s.to_string();
        assert!(
            text.starts_with("ups-race/v1:"),
            "schedule string {text:?} missing version prefix"
        );
        let back = Schedule::parse(&text).expect("round trip parse");
        assert_eq!(back, s, "round trip through {text:?}");
    }
    // Spot-check the run-length encoding itself.
    assert_eq!(
        Schedule::new(vec![0, 0, 0, 1, 2, 2]).to_string(),
        "ups-race/v1:0x3,1,2x2"
    );
    assert_eq!(
        Schedule::parse("ups-race/v1:0x3,1,2x2")
            .expect("parse literal")
            .choices(),
        &[0, 0, 0, 1, 2, 2]
    );
    assert!(Schedule::parse("0,1,2").is_err(), "prefix is mandatory");
    assert!(Schedule::parse("ups-race/v1:0x0").is_err(), "zero count");
    assert!(Schedule::parse("ups-race/v1:zebra").is_err(), "bad tid");
}

/// Two threads increment a counter under a model mutex: exhaustive DFS
/// must pass (no bug to find) and visit more than one interleaving.
#[test]
fn dfs_explores_mutex_counter_and_passes() {
    let cfg = Config::default();
    let out = explore(&cfg, || {
        let n = Arc::new(Mutex::new(0u64));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            *n2.lock().expect("model mutex") += 1;
        });
        *n.lock().expect("model mutex") += 1;
        t.join().expect("model thread");
        assert_eq!(*n.lock().expect("model mutex"), 2);
    });
    assert!(out.complete, "search space must be exhausted");
    assert!(
        out.failure.is_none(),
        "unexpected failure: {:?}",
        out.failure
    );
    assert!(
        out.executions > 1,
        "spawn/lock interleavings must branch (got {} executions)",
        out.executions
    );
}

/// The same exploration twice is execution-for-execution identical.
#[test]
fn dfs_is_deterministic() {
    let run = || {
        let trace = Arc::new(std::sync::Mutex::new(Vec::new()));
        let trace2 = Arc::clone(&trace);
        let out = explore(&Config::default(), move || {
            let n = Arc::new(Mutex::new(0u64));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                *n2.lock().expect("model mutex") += 10;
            });
            let mine = {
                let mut g = n.lock().expect("model mutex");
                *g += 1;
                *g
            };
            t.join().expect("model thread");
            trace2.lock().expect("trace").push(mine);
        });
        let t = trace.lock().expect("trace").clone();
        (out.executions, t)
    };
    let (e1, t1) = run();
    let (e2, t2) = run();
    assert_eq!(e1, e2, "execution counts differ between identical runs");
    assert_eq!(
        t1, t2,
        "observed interleavings differ between identical runs"
    );
}

/// Random exploration is deterministic in the seed and differs across
/// seeds (on a fixture with enough schedule entropy).
#[test]
fn random_schedules_are_seed_deterministic() {
    let observe = |seed: u64| {
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let order2 = Arc::clone(&order);
        let out = explore_random(&Config::default(), seed, 8, move || {
            let n = Arc::new(Mutex::new(Vec::new()));
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || n.lock().expect("model mutex").push(i))
                })
                .collect();
            for h in handles {
                h.join().expect("model thread");
            }
            let got = n.lock().expect("model mutex").clone();
            order2.lock().expect("order").push(got);
        });
        assert!(
            out.failure.is_none(),
            "unexpected failure: {:?}",
            out.failure
        );
        assert_eq!(out.executions, 8);
        let o = order.lock().expect("order").clone();
        o
    };
    let a1 = observe(42);
    let a2 = observe(42);
    assert_eq!(a1, a2, "same seed must reproduce the same schedules");
    let b = observe(1337);
    assert_ne!(a1, b, "different seeds should explore differently");
}

/// Positive control: the runtime must *detect* deadlocks, not hang.
/// `deadlock_demo` is a textbook lock-order inversion; DFS must find
/// the interleaving where both threads hold one lock and want the
/// other, and the failure must replay from its schedule string.
#[test]
fn dfs_finds_lock_order_inversion_deadlock() {
    let cfg = Config::default();
    let out = explore(&cfg, deadlock_demo);
    let failure = out.failure.expect("lock-order inversion must deadlock");
    assert!(
        failure.message.contains("deadlock"),
        "failure should be a deadlock, got: {}",
        failure.message
    );
    assert!(
        failure.message.contains("blocked on a mutex"),
        "deadlock report should describe the blocked threads, got: {}",
        failure.message
    );
    // The printed schedule is a replayable counterexample.
    let text = failure.schedule.to_string();
    let parsed: Schedule = text.parse().expect("schedule string parses");
    let replayed = replay(&cfg, &parsed, deadlock_demo)
        .expect_err("replaying the counterexample must reproduce the deadlock");
    assert!(
        replayed.message.contains("deadlock"),
        "replay reproduced a different failure: {}",
        replayed.message
    );
}

/// A failing assertion inside the closure surfaces as a failure with
/// the panic message and a schedule.
#[test]
fn root_assertion_failure_is_reported_with_schedule() {
    let out = explore(&Config::default(), || {
        let n = Arc::new(Mutex::new(0u64));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            *n2.lock().expect("model mutex") += 1;
        });
        t.join().expect("model thread");
        // Deliberately wrong on every interleaving.
        assert_eq!(*n.lock().expect("model mutex"), 2, "wrong on purpose");
    });
    let failure = out.failure.expect("assertion must fail");
    assert!(
        failure.message.contains("wrong on purpose"),
        "panic message must reach the failure report, got: {}",
        failure.message
    );
    assert!(!failure.schedule.is_empty(), "failure carries its schedule");
}

/// resume_from pins a schedule prefix: exploration stays in that
/// subtree and (for a full-length schedule) runs exactly one
/// execution.
#[test]
fn resume_from_pins_the_subtree() {
    let body = || {
        let n = Arc::new(Mutex::new(0u64));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            *n2.lock().expect("model mutex") += 1;
        });
        *n.lock().expect("model mutex") += 1;
        t.join().expect("model thread");
    };
    let full = explore(&Config::default(), body);
    assert!(full.complete && full.failure.is_none());
    // Re-run pinned to the very first execution's complete schedule:
    // the subtree under a leaf is just that leaf.
    let probe = ups_race::replay(&Config::default(), &Schedule::new(vec![]), body);
    assert!(probe.is_ok(), "empty-script default run passes");
    // Capture the default run's schedule by exploring with a budget of
    // one execution.
    let first = explore(
        &Config {
            max_executions: 1,
            ..Config::default()
        },
        body,
    );
    assert!(!first.complete, "budget of one cannot exhaust the tree");
    let resumed = explore(
        &Config {
            resume_from: Some(Schedule::new(
                // Default policy first execution: re-derive by replay
                // recording is internal, so pin a one-choice prefix
                // instead: thread 0 keeps running at the first
                // decision.
                vec![0],
            )),
            ..Config::default()
        },
        body,
    );
    assert!(resumed.complete && resumed.failure.is_none());
    assert!(
        resumed.executions < full.executions,
        "pinning a prefix must shrink the search ({} vs {})",
        resumed.executions,
        full.executions
    );
}

/// The livelock guard: a spin loop that never terminates under the
/// model must fail the step budget, not hang the suite.
#[test]
fn step_budget_catches_livelock() {
    let cfg = Config {
        max_steps: 200,
        max_executions: 4,
        ..Config::default()
    };
    let out = explore(&cfg, || {
        // Spin on a model yield forever: no modeled wake will come.
        loop {
            thread::yield_now();
        }
    });
    let failure = out.failure.expect("livelock must trip the step budget");
    assert!(
        failure.message.contains("step budget exceeded"),
        "got: {}",
        failure.message
    );
}
