//! Model checks on the mirrored sweep pool + heartbeat: exhaustive
//! bounded-preemption DFS on small configs, plus seeded random
//! schedules for the tail beyond the bound.
//!
//! Depth is CI-tunable without editing code:
//! `UPS_RACE_PREEMPTION_BOUND` (default 2) and
//! `UPS_RACE_RANDOM_SCHEDULES` (default 64).

use ups_race::explore::env_u64;
use ups_race::fixtures::{check_pool, ModelPoolCfg};
use ups_race::{explore, explore_random, Config};

fn cfg() -> Config {
    Config {
        preemption_bound: env_u64("UPS_RACE_PREEMPTION_BOUND", 2) as usize,
        ..Config::default()
    }
}

fn random_schedules() -> u64 {
    env_u64("UPS_RACE_RANDOM_SCHEDULES", 64)
}

/// The acceptance-criteria config: 2 workers, 4 jobs, exhaustive DFS.
/// Covers deadlock freedom, exactly-once, and telemetry conservation
/// on every interleaving within the bound.
#[test]
fn dfs_pool_2_workers_4_jobs() {
    let out = explore(&cfg(), || {
        check_pool(ModelPoolCfg {
            workers: 2,
            jobs: 4,
            ..ModelPoolCfg::default()
        })
    });
    out.assert_pass();
    assert!(out.complete, "DFS must exhaust the bounded search space");
    assert!(
        out.executions > 10,
        "pool schedules must branch (got {})",
        out.executions
    );
}

/// Wider pool, exercising multi-victim steal attribution.
#[test]
fn dfs_pool_3_workers_2_jobs() {
    let out = explore(&cfg(), || {
        check_pool(ModelPoolCfg {
            workers: 3,
            jobs: 2,
            ..ModelPoolCfg::default()
        })
    });
    out.assert_pass();
    assert!(out.complete, "DFS must exhaust the bounded search space");
}

/// Panic isolation: job 1 panics on every interleaving; workers must
/// survive, queues must stay unpoisoned, other jobs must still run,
/// and the panicking job still counts toward jobs/done conservation.
#[test]
fn dfs_pool_panic_isolation() {
    let out = explore(&cfg(), || {
        check_pool(ModelPoolCfg {
            workers: 2,
            jobs: 3,
            panic_job: Some(1),
            ..ModelPoolCfg::default()
        })
    });
    out.assert_pass();
    assert!(out.complete, "DFS must exhaust the bounded search space");
}

/// Heartbeat alongside the pool: the completion tick must be emitted
/// exactly once on every interleaving, including schedules where the
/// park timeout fires early, late, or not at all.
#[test]
fn dfs_pool_with_heartbeat() {
    // One voluntary timeout fire keeps the branching tractable; the
    // forced-fire path (nothing else runnable) is exercised regardless.
    let out = explore(
        &Config {
            max_timeout_fires: 1,
            ..cfg()
        },
        || {
            check_pool(ModelPoolCfg {
                workers: 2,
                jobs: 2,
                heartbeat: true,
                ..ModelPoolCfg::default()
            })
        },
    );
    out.assert_pass();
    assert!(out.complete, "DFS must exhaust the bounded search space");
}

/// Atomic operations as decision points too (schedules get several
/// times longer, so the config shrinks): telemetry increments
/// interleave every which way and conservation must still hold.
#[test]
fn dfs_pool_preempt_atomics() {
    let out = explore(
        &Config {
            preempt_atomics: true,
            ..cfg()
        },
        || {
            check_pool(ModelPoolCfg {
                workers: 2,
                jobs: 2,
                ..ModelPoolCfg::default()
            })
        },
    );
    out.assert_pass();
    assert!(out.complete, "DFS must exhaust the bounded search space");
}

/// Seeded random schedules over a config larger than DFS could
/// exhaust, covering interleavings beyond the preemption bound.
#[test]
fn random_pool_3_workers_8_jobs() {
    let out = explore_random(&cfg(), 0x5eed, random_schedules(), || {
        check_pool(ModelPoolCfg {
            workers: 3,
            jobs: 8,
            heartbeat: true,
            ..ModelPoolCfg::default()
        })
    });
    out.assert_pass();
}

/// Random schedules with a panicking job and atomics preempted — the
/// adversarial end of the fixture space.
#[test]
fn random_pool_panic_and_atomics() {
    let out = explore_random(
        &Config {
            preempt_atomics: true,
            ..cfg()
        },
        0xdead,
        random_schedules(),
        || {
            check_pool(ModelPoolCfg {
                workers: 2,
                jobs: 6,
                panic_job: Some(3),
                heartbeat: true,
            })
        },
    );
    out.assert_pass();
}
