//! Minimal stand-in for the `proptest` property-testing crate.
//!
//! The build environment is offline, so the real proptest cannot be
//! fetched. This crate implements the subset the workspace's property
//! tests use: the `proptest!` macro, range/tuple/`Just`/`prop_oneof!`
//! strategies, `prop_map`, `collection::vec`, `sample::select`,
//! `bool::ANY`, `prop_assert*!`, `prop_assume!` and `ProptestConfig`.
//!
//! Differences from the real thing, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its inputs (via `Debug`
//!   in the assertion message) and the deterministic case index instead
//!   of a minimized counterexample.
//! * **Deterministic generation** — cases are derived from a fixed
//!   per-test seed (a hash of the test name) plus the case index, so a
//!   failure reproduces exactly on every run and platform. This is a
//!   feature for this repository: the simulator's own guarantees are
//!   deterministic, and flaky CI from random seeds would be worse than
//!   reduced input diversity.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Run-count configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections per accepted case before the
    /// property fails as vacuous (the stand-in for proptest's
    /// `max_global_rejects`).
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a property case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Result alias used by generated property bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic RNG driving generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// FNV-1a over a test name — the per-test base seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Box the strategy (for heterogeneous `prop_oneof!` arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternatives — built by `prop_oneof!`.
pub struct Union<T> {
    /// The alternatives.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_strategy {
    ($($t:ty as $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
    )*};
}

impl_signed_strategy!(i32 as u32, i64 as u64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end);
            self.start + rng.index(self.end - self.start)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            *self.start() + rng.index(*self.end() - *self.start() + 1)
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed slice.
    pub fn select<T: Clone + 'static>(options: &'static [T]) -> Select<T> {
        assert!(!options.is_empty());
        Select { options }
    }

    /// Strategy returned by [`select`].
    pub struct Select<T: 'static> {
        options: &'static [T],
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.index(self.options.len())].clone()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform `true`/`false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Drive one property: generate `cases` inputs, run the body, panic on the
/// first failure, tolerate `prop_assume!` rejections (up to a global cap).
pub fn run_property<S, F>(name: &str, config: &ProptestConfig, strategy: S, body: F)
where
    S: Strategy,
    S::Value: Debug + Clone,
    F: Fn(S::Value) -> TestCaseResult,
{
    let base = seed_for(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.max_global_rejects.max(1024);
    let mut case = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::new(base ^ case.wrapping_mul(0x9E3779B97F4A7C15));
        let input = strategy.generate(&mut rng);
        match body(input.clone()) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "property {name}: too many prop_assume! rejections \
                         ({rejected}) before reaching {} cases",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property {name} failed at case #{case} (deterministic seed):\n\
                     {msg}\ninput: {input:#?}"
                );
            }
        }
        case += 1;
    }
}

/// Assert inside a property body; on failure the case's inputs are reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Reject a case whose inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategy arms (all yielding the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union {
            options: vec![$($crate::Strategy::boxed($strategy)),+],
        }
    };
}

/// Declares deterministic property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn my_property(x in 0u64..10, ys in collection::vec(0u32..5, 1..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategy = ($($strategy,)+);
                $crate::run_property(
                    stringify!($name),
                    &config,
                    strategy,
                    |($($arg,)+)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u32..100, 2..=9)) {
            prop_assert!(v.len() >= 2 && v.len() <= 9);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn oneof_and_map_and_assume(x in prop_oneof![Just(1u32), Just(2u32)].prop_map(|v| v * 10)) {
            prop_assume!(x != 0);
            prop_assert!(x == 10 || x == 20);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = (0u64..1000, crate::collection::vec(0u32..7, 1..5));
        let mut r1 = crate::TestRng::new(crate::seed_for("t"));
        let mut r2 = crate::TestRng::new(crate::seed_for("t"));
        for _ in 0..50 {
            assert_eq!(
                crate::Strategy::generate(&s, &mut r1),
                crate::Strategy::generate(&s, &mut r2)
            );
        }
    }
}
