//! Declarative scenario grids.
//!
//! A [`ScenarioGrid`] is the cartesian product of six axes — topology ×
//! workload profile × scheduler discipline × **traffic mode** ×
//! utilization × seed (plus a sweepable `r_est` sub-axis for closed-loop
//! LSTF) — plus filters. `expand` validates every axis value against the
//! registries (`ups_topology::registry`, `ups_workload::registry`,
//! `SchedulerKind::from_name`, [`TrafficMode::from_name`]) and
//! materializes the independent [`JobSpec`]s the pool executes. Job ids
//! are assigned in expansion order, so a grid fully determines its job
//! list — the sweep result record for job *k* is a pure function of the
//! grid, never of worker scheduling.

use ups_metrics::json_escape;
use ups_netsim::prelude::{Dur, MapperKind, SchedulerKind};
use ups_netsim::sched::MAX_FIXED_QUEUES;

/// The mixed Table 1 row — half the routers FQ, half FIFO+ — is the one
/// non-uniform assignment grids can name.
pub const MIXED_FQ_FIFOPLUS: &str = "FQ/FIFO+";

/// How a job's traffic is generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficMode {
    /// Open-loop UDP packet trains paced by the host NIC (§2.3) — no
    /// feedback, the workload is fixed up front.
    OpenLoop,
    /// Closed-loop TCP Reno endpoints (§3): acks gate the send window,
    /// loss backs senders off, and the slack headers come from the
    /// [`SlackPolicy`] derived from the scheduler under test.
    ///
    /// [`SlackPolicy`]: ups_transport::SlackPolicy
    ClosedLoop,
}

impl TrafficMode {
    /// Stable axis label.
    pub fn name(self) -> &'static str {
        match self {
            TrafficMode::OpenLoop => "open-loop",
            TrafficMode::ClosedLoop => "closed-loop",
        }
    }

    /// Parse an axis label.
    pub fn from_name(name: &str) -> Option<TrafficMode> {
        match name {
            "open-loop" => Some(TrafficMode::OpenLoop),
            "closed-loop" => Some(TrafficMode::ClosedLoop),
            _ => None,
        }
    }
}

/// One fully-specified, independently-executable scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Position in the expanded grid (dense, 0-based).
    pub job_id: usize,
    /// Topology registry name.
    pub topology: String,
    /// Workload profile registry name.
    pub profile: String,
    /// Scheduler label (`SchedulerKind::name` or `"FQ/FIFO+"`).
    pub scheduler: String,
    /// Open-loop UDP or closed-loop TCP.
    pub traffic: TrafficMode,
    /// Fair-rate estimate (bits/s) for the closed-loop LSTF fairness
    /// slack policy; `None` everywhere else (LSTF then uses the §3.1
    /// FCT assignment).
    pub rest_bps: Option<u64>,
    /// Target mean core-link utilization.
    pub utilization: f64,
    /// Workload + simulation seed.
    pub seed: u64,
    /// Flow-arrival window.
    pub window: Dur,
    /// Simulated-time horizon for closed-loop runs (TCP feedback loops
    /// never drain on their own); `None` for open-loop jobs.
    pub horizon: Option<Dur>,
    /// Router buffer bytes; `None` = unbounded (drop-free, replayable).
    pub buffer_bytes: Option<u64>,
    /// Whether to run the LSTF replay and report the match rate.
    pub replay: bool,
    /// Finite-priority-queue sub-axis: when set, the job *additionally*
    /// replays the original schedule through quantized LSTF on this many
    /// strict-priority queues, reporting match-rate/FCT deltas against
    /// the exact-LSTF replay baseline. `None` = exact replay only.
    pub queues: Option<u32>,
    /// Rank→queue mapper label for the quantized replay (`"log"`,
    /// `"sppifo"`, `"dynamic"`); `None` exactly when `queues` is `None`.
    pub mapper: Option<String>,
    /// Network-dynamics axis: a failure spec `"profile:rate"` (e.g.
    /// `"random-links:0.3"`) generating a seeded link-outage schedule for
    /// the run, or `None` for a static network. Failure jobs replay the
    /// **as-executed** schedule (observed paths, delivered packets only)
    /// and report a `disruption` metrics block.
    pub failures: Option<String>,
    /// In-flight policy at a dead link (`"reroute"` / `"drop"`); `None`
    /// exactly when `failures` is `None`.
    pub inflight: Option<String>,
    /// Optional cap on injected packets (CI smoke grids).
    pub max_packets: Option<usize>,
}

impl JobSpec {
    /// The scenario as a compact JSON object — embedded in every result
    /// record so each line is self-describing.
    // lint:schema(ups-sweep-record/v5)
    pub fn scenario_json(&self) -> String {
        let opt_u64 = |v: Option<u64>| match v {
            Some(n) => n.to_string(),
            None => "null".into(),
        };
        let opt_str = |v: &Option<String>| match v {
            Some(s) => format!("\"{}\"", json_escape(s)),
            None => "null".into(),
        };
        format!(
            concat!(
                r#"{{"topology":"{}","profile":"{}","scheduler":"{}","traffic":"{}","#,
                r#""rest_bps":{},"utilization":{},"seed":{},"window_ms":{},"horizon_ms":{},"#,
                r#""buffer_bytes":{},"replay":{},"queues":{},"mapper":{},"#,
                r#""failures":{},"inflight":{},"max_packets":{}}}"#
            ),
            json_escape(&self.topology),
            json_escape(&self.profile),
            json_escape(&self.scheduler),
            self.traffic.name(),
            opt_u64(self.rest_bps),
            ups_metrics::json_num(self.utilization),
            self.seed,
            ups_metrics::json_num(self.window.as_secs_f64() * 1e3),
            ups_metrics::json_opt_num(self.horizon.map(|h| h.as_secs_f64() * 1e3)),
            opt_u64(self.buffer_bytes),
            self.replay,
            opt_u64(self.queues.map(u64::from)),
            opt_str(&self.mapper),
            opt_str(&self.failures),
            opt_str(&self.inflight),
            match self.max_packets {
                Some(n) => n.to_string(),
                None => "null".into(),
            }
        )
    }

    /// Human-readable one-line label (pool diagnostics, progress lines).
    pub fn label(&self) -> String {
        let rest = match self.rest_bps {
            Some(r) => format!(" r_est {r}"),
            None => String::new(),
        };
        let queues = match (self.queues, &self.mapper) {
            (Some(k), Some(m)) => format!(" K{k}/{m}"),
            _ => String::new(),
        };
        let failures = match (&self.failures, &self.inflight) {
            (Some(f), Some(p)) => format!(" fail {f}/{p}"),
            _ => String::new(),
        };
        format!(
            "{} {} {} {}{}{}{} util {} seed {}",
            self.topology,
            self.profile,
            self.scheduler,
            self.traffic.name(),
            rest,
            queues,
            failures,
            self.utilization,
            self.seed
        )
    }
}

/// An exclusion filter: a job is dropped when **every** populated field
/// matches it. `Exclude { topology: Some("RocketFuel"), scheduler:
/// Some("Random"), .. }` drops only RocketFuel×Random combinations;
/// `utilization_above` alone caps load grid-wide.
#[derive(Debug, Clone, Default)]
pub struct Exclude {
    /// Match on topology name.
    pub topology: Option<String>,
    /// Match on profile name.
    pub profile: Option<String>,
    /// Match on scheduler label.
    pub scheduler: Option<String>,
    /// Match on traffic-mode label (`"open-loop"` / `"closed-loop"`).
    pub traffic: Option<String>,
    /// Match on the `--queues` sub-axis value (a job with no queues
    /// value never matches this field).
    pub queues: Option<u32>,
    /// Match on the failure-axis label (a static-network job never
    /// matches this field).
    pub failures: Option<String>,
    /// Match when utilization is strictly above this.
    pub utilization_above: Option<f64>,
}

impl Exclude {
    // One parameter per matchable axis; a struct would just restate the
    // field list.
    #[allow(clippy::too_many_arguments)]
    fn matches(
        &self,
        topo: &str,
        profile: &str,
        sched: &str,
        traffic: TrafficMode,
        queues: Option<u32>,
        failures: Option<&str>,
        util: f64,
    ) -> bool {
        let mut any = false;
        for (field, value) in [
            (&self.topology, topo),
            (&self.profile, profile),
            (&self.scheduler, sched),
            (&self.traffic, traffic.name()),
        ] {
            if let Some(want) = field {
                if want != value {
                    return false;
                }
                any = true;
            }
        }
        if let Some(want_k) = self.queues {
            if queues != Some(want_k) {
                return false;
            }
            any = true;
        }
        if let Some(want_f) = &self.failures {
            if failures != Some(want_f.as_str()) {
                return false;
            }
            any = true;
        }
        if let Some(cap) = self.utilization_above {
            if util <= cap {
                return false;
            }
            any = true;
        }
        any
    }

    /// The filter as JSON, so a recorded grid block can reproduce the
    /// exact job list it generated.
    // lint:schema(ups-sweep/v4)
    fn to_json(&self) -> String {
        let opt_str = |v: &Option<String>| match v {
            Some(s) => format!("\"{}\"", json_escape(s)),
            None => "null".into(),
        };
        format!(
            concat!(
                r#"{{"topology":{},"profile":{},"scheduler":{},"traffic":{},"#,
                r#""queues":{},"failures":{},"utilization_above":{}}}"#
            ),
            opt_str(&self.topology),
            opt_str(&self.profile),
            opt_str(&self.scheduler),
            opt_str(&self.traffic),
            match self.queues {
                Some(k) => k.to_string(),
                None => "null".into(),
            },
            opt_str(&self.failures),
            ups_metrics::json_opt_num(self.utilization_above),
        )
    }
}

/// A declarative sweep: six axes, filters, and per-job run options.
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    /// Topology registry names.
    pub topologies: Vec<String>,
    /// Workload profile registry names.
    pub profiles: Vec<String>,
    /// Scheduler labels.
    pub schedulers: Vec<String>,
    /// Traffic-mode labels (`"open-loop"` / `"closed-loop"`).
    pub traffic: Vec<String>,
    /// Fair-rate estimates (bits/s) for closed-loop LSTF — each value is
    /// an independent job running the §3.3 `Fairness(r_est)` slack
    /// policy. Empty ⇒ closed-loop LSTF uses the §3.1 FCT assignment.
    /// The axis multiplies *only* closed-loop × LSTF combinations.
    pub rest_bps: Vec<u64>,
    /// Utilization targets.
    pub utilizations: Vec<f64>,
    /// Seeds (each seed is an independent job).
    pub seeds: Vec<u64>,
    /// Flow-arrival window per job.
    pub window: Dur,
    /// Simulated horizon for closed-loop jobs; `None` ⇒ `window × 20`.
    pub horizon: Option<Dur>,
    /// Router buffer bytes per job; `None` = unbounded (drop-free).
    pub buffer_bytes: Option<u64>,
    /// Run the LSTF replay per job.
    pub replay: bool,
    /// Finite-priority-queue axis: each K is an independent job that
    /// additionally replays through quantized LSTF on K strict-priority
    /// queues. Empty ⇒ exact replay only. Requires `replay`.
    pub queues: Vec<u32>,
    /// Rank→queue mapper for the quantized replays (`"log"`, `"sppifo"`,
    /// `"dynamic"`). One mapper per grid — sweep K, pin the policy.
    pub mapper: String,
    /// Network-dynamics axis: failure specs (`"random-links:0.3"`,
    /// `"burst:0.5"`, or the literal `"none"` for a static-network row).
    /// Each value is an independent job. Empty ⇒ every job runs on a
    /// static network. Open-loop only, and mutually exclusive with the
    /// `queues` axis.
    pub failures: Vec<String>,
    /// In-flight policy at a dead link for every failure job
    /// (`"reroute"` / `"drop"`). One policy per grid.
    pub inflight: String,
    /// Cap injected packets per job.
    pub max_packets: Option<usize>,
    /// Exclusion filters applied during expansion.
    pub excludes: Vec<Exclude>,
    /// Keep at most this many jobs (applied last, in expansion order).
    pub max_jobs: Option<usize>,
}

impl Default for ScenarioGrid {
    /// The paper-evaluation default: Table 1's three flagship networks ×
    /// six original disciplines × two traffic modes × two seeds at 70%.
    /// The closed-loop sub-grid drops LIFO and Random (the §3
    /// experiments never drive TCP through them), leaving
    /// 3 × 6 × 2 open-loop + 3 × 4 × 2 closed-loop = 60 jobs.
    fn default() -> Self {
        ScenarioGrid {
            topologies: ["I2:1Gbps-10Gbps", "RocketFuel", "FatTree(k=4)"]
                .map(String::from)
                .to_vec(),
            profiles: vec!["web-search".into()],
            schedulers: ["FIFO", "FQ", "SJF", "LIFO", "Random", "LSTF"]
                .map(String::from)
                .to_vec(),
            traffic: vec!["open-loop".into(), "closed-loop".into()],
            rest_bps: Vec::new(),
            utilizations: vec![0.7],
            seeds: vec![1, 2],
            window: Dur::from_ms(10),
            horizon: None,
            buffer_bytes: None,
            replay: true,
            queues: Vec::new(),
            mapper: "sppifo".into(),
            failures: Vec::new(),
            inflight: "reroute".into(),
            max_packets: None,
            excludes: vec![
                Exclude {
                    traffic: Some("closed-loop".into()),
                    scheduler: Some("LIFO".into()),
                    ..Exclude::default()
                },
                Exclude {
                    traffic: Some("closed-loop".into()),
                    scheduler: Some("Random".into()),
                    ..Exclude::default()
                },
            ],
            max_jobs: None,
        }
    }
}

/// Why a grid failed to expand.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// A topology name not in the registry.
    UnknownTopology(String),
    /// A profile name not in the registry.
    UnknownProfile(String),
    /// A scheduler label `SchedulerKind::from_name` rejects (or one that
    /// cannot run as an *original* schedule, like `Omniscient`).
    UnknownScheduler(String),
    /// A traffic-mode label that isn't `open-loop` / `closed-loop`.
    UnknownTraffic(String),
    /// A closed-loop-only profile (long-lived flows) combined with
    /// open-loop traffic — no finite packet train exists.
    ProfileNeedsClosedLoop(String),
    /// A rank→queue mapper label `MapperKind::from_name` rejects.
    UnknownMapper(String),
    /// A `--queues` value outside `1..=MAX_FIXED_QUEUES`.
    BadQueues(u32),
    /// A `--queues` axis on a grid that skips the replay — the quantized
    /// replay *is* a replay; there is nothing to quantize without one.
    QueuesNeedReplay,
    /// A `--failures` spec that doesn't parse (unknown profile or a rate
    /// outside [0, 1]); carries the parser's message.
    BadFailures(String),
    /// An in-flight policy label that isn't `reroute` / `drop`.
    UnknownInflight(String),
    /// A failure axis combined with closed-loop traffic — the TCP driver
    /// runs on a static network; exclude the combination or drop the
    /// mode.
    FailuresNeedOpenLoop(String),
    /// A failure axis combined with the `--queues` axis; the quantized
    /// replay baseline is defined against the static-network exact
    /// replay, which a churn job doesn't run.
    FailuresExcludeQueues,
    /// Every combination was filtered out (or an axis was empty).
    Empty,
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::UnknownTopology(n) => write!(
                f,
                "unknown topology {n:?} (known: {})",
                ups_topology::topology_names().join(", ")
            ),
            GridError::UnknownProfile(n) => write!(
                f,
                "unknown workload profile {n:?} (known: {})",
                ups_workload::profile_names().join(", ")
            ),
            GridError::UnknownScheduler(n) => {
                write!(f, "unknown or non-original scheduler {n:?}")
            }
            GridError::UnknownTraffic(n) => {
                write!(
                    f,
                    "unknown traffic mode {n:?} (known: open-loop, closed-loop)"
                )
            }
            GridError::ProfileNeedsClosedLoop(n) => write!(
                f,
                "profile {n:?} is closed-loop only (long-lived flows) but the grid \
                 includes open-loop traffic — exclude the combination or drop the mode"
            ),
            GridError::UnknownMapper(n) => write!(
                f,
                "unknown rank->queue mapper {n:?} (known: {})",
                MapperKind::ALL.map(MapperKind::name).join(", ")
            ),
            GridError::BadQueues(k) => write!(
                f,
                "queue count {k} out of range (want 1..={MAX_FIXED_QUEUES}; \
                 the dynamic mapper alone accepts any K >= 1)"
            ),
            GridError::QueuesNeedReplay => write!(
                f,
                "--queues quantizes the LSTF replay; it cannot combine with --no-replay"
            ),
            GridError::BadFailures(msg) => write!(f, "bad --failures value: {msg}"),
            GridError::UnknownInflight(p) => {
                write!(f, "unknown in-flight policy {p:?} (known: reroute, drop)")
            }
            GridError::FailuresNeedOpenLoop(spec) => write!(
                f,
                "failure spec {spec:?} combined with closed-loop traffic — link churn \
                 drives open-loop schedules only; exclude the combination or drop the mode"
            ),
            GridError::FailuresExcludeQueues => write!(
                f,
                "--failures and --queues cannot combine: the quantized replay is \
                 defined against the static-network exact replay"
            ),
            GridError::Empty => write!(f, "grid expanded to zero jobs"),
        }
    }
}

/// Scheduler labels a grid may use as an *original* schedule: any
/// uniform discipline that runs without replay-only headers, plus the
/// FQ/FIFO+ mix. `Omniscient` needs per-hop header vectors and `EDF`
/// needs `tmin` tables — both exist only as replay candidates.
pub fn is_original_scheduler(label: &str) -> bool {
    if label == MIXED_FQ_FIFOPLUS {
        return true;
    }
    match SchedulerKind::from_name(label) {
        Some(SchedulerKind::Omniscient) | Some(SchedulerKind::Edf { .. }) | None => false,
        Some(_) => true,
    }
}

impl ScenarioGrid {
    /// The horizon closed-loop jobs run to when none is set explicitly.
    pub fn effective_horizon(&self) -> Dur {
        self.horizon.unwrap_or_else(|| self.window.times(20))
    }

    /// Validate every axis value and expand to the ordered job list.
    pub fn expand(&self) -> Result<Vec<JobSpec>, GridError> {
        for t in &self.topologies {
            if ups_topology::topology_entry(t).is_none() {
                return Err(GridError::UnknownTopology(t.clone()));
            }
        }
        for p in &self.profiles {
            if ups_workload::profile_by_name(p).is_none() {
                return Err(GridError::UnknownProfile(p.clone()));
            }
        }
        for s in &self.schedulers {
            if !is_original_scheduler(s) {
                return Err(GridError::UnknownScheduler(s.clone()));
            }
        }
        let modes: Vec<TrafficMode> = self
            .traffic
            .iter()
            .map(|t| TrafficMode::from_name(t).ok_or_else(|| GridError::UnknownTraffic(t.clone())))
            .collect::<Result<_, _>>()?;
        // The finite-priority-queue axis: validated up front, expanded as
        // an innermost sub-axis so K-sweeps of one scenario sit on
        // adjacent job ids.
        let Some(mapper) = MapperKind::from_name(&self.mapper) else {
            return Err(GridError::UnknownMapper(self.mapper.clone()));
        };
        for &k in &self.queues {
            // The bucketing mappers allocate K physical queues eagerly;
            // the dynamic mapper scales to any K (the netsim layer has
            // the same split).
            let capped = mapper != MapperKind::Dynamic;
            if k == 0 || (capped && k > MAX_FIXED_QUEUES) {
                return Err(GridError::BadQueues(k));
            }
        }
        if !self.queues.is_empty() && !self.replay {
            return Err(GridError::QueuesNeedReplay);
        }
        let queue_axis: Vec<Option<u32>> = if self.queues.is_empty() {
            vec![None]
        } else {
            self.queues.iter().copied().map(Some).collect()
        };
        // The dynamics axis: `"none"` names the static-network row so a
        // single grid can hold its own baseline; everything else must
        // parse as a failure spec.
        for spec in &self.failures {
            if spec != "none" {
                ups_dynamics::parse_failure_spec(spec).map_err(GridError::BadFailures)?;
            }
        }
        if !matches!(self.inflight.as_str(), "reroute" | "drop") {
            return Err(GridError::UnknownInflight(self.inflight.clone()));
        }
        if !self.queues.is_empty() && self.failures.iter().any(|f| f != "none") {
            return Err(GridError::FailuresExcludeQueues);
        }
        let failure_axis: Vec<Option<String>> = if self.failures.is_empty() {
            vec![None]
        } else {
            self.failures
                .iter()
                .map(|f| (f != "none").then(|| f.clone()))
                .collect()
        };
        let horizon = self.effective_horizon();
        let mut jobs = Vec::new();
        for topo in &self.topologies {
            for profile in &self.profiles {
                for sched in &self.schedulers {
                    for &mode in &modes {
                        // The r_est sub-axis multiplies only closed-loop
                        // LSTF (the one scheduler whose slack policy
                        // takes a fair-rate estimate).
                        let rests: Vec<Option<u64>> = if mode == TrafficMode::ClosedLoop
                            && sched == "LSTF"
                            && !self.rest_bps.is_empty()
                        {
                            self.rest_bps.iter().map(|&r| Some(r)).collect()
                        } else {
                            vec![None]
                        };
                        for rest in rests {
                            for &util in &self.utilizations {
                                for &seed in &self.seeds {
                                    for &queues in &queue_axis {
                                        for failures in &failure_axis {
                                            if self.excludes.iter().any(|e| {
                                                e.matches(
                                                    topo,
                                                    profile,
                                                    sched,
                                                    mode,
                                                    queues,
                                                    failures.as_deref(),
                                                    util,
                                                )
                                            }) {
                                                continue;
                                            }
                                            let closed_only =
                                                ups_workload::profile_by_name(profile)
                                                    .expect("validated above")
                                                    .closed_loop_only();
                                            if closed_only && mode == TrafficMode::OpenLoop {
                                                return Err(GridError::ProfileNeedsClosedLoop(
                                                    profile.clone(),
                                                ));
                                            }
                                            if let Some(f) = failures {
                                                if mode == TrafficMode::ClosedLoop {
                                                    return Err(GridError::FailuresNeedOpenLoop(
                                                        f.clone(),
                                                    ));
                                                }
                                            }
                                            jobs.push(JobSpec {
                                                job_id: jobs.len(),
                                                topology: topo.clone(),
                                                profile: profile.clone(),
                                                scheduler: sched.clone(),
                                                traffic: mode,
                                                rest_bps: rest,
                                                utilization: util,
                                                seed,
                                                window: self.window,
                                                horizon: (mode == TrafficMode::ClosedLoop)
                                                    .then_some(horizon),
                                                buffer_bytes: self.buffer_bytes,
                                                replay: self.replay,
                                                queues,
                                                mapper: queues
                                                    .is_some()
                                                    .then(|| self.mapper.clone()),
                                                failures: failures.clone(),
                                                inflight: failures
                                                    .is_some()
                                                    .then(|| self.inflight.clone()),
                                                max_packets: self.max_packets,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if let Some(cap) = self.max_jobs {
            jobs.truncate(cap);
        }
        if jobs.is_empty() {
            return Err(GridError::Empty);
        }
        Ok(jobs)
    }

    /// The grid itself as JSON — the `"grid"` block of `BENCH_sweep.json`.
    // lint:schema(ups-sweep/v4)
    pub fn to_json(&self) -> String {
        let strs = |v: &[String]| {
            v.iter()
                .map(|s| format!("\"{}\"", json_escape(s)))
                .collect::<Vec<_>>()
                .join(",")
        };
        let nums = |v: &[f64]| {
            v.iter()
                .map(|&x| ups_metrics::json_num(x))
                .collect::<Vec<_>>()
                .join(",")
        };
        let ints = |v: &[u64]| {
            v.iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let opt_u64 = |v: Option<u64>| match v {
            Some(n) => n.to_string(),
            None => "null".into(),
        };
        format!(
            concat!(
                r#"{{"topologies":[{}],"profiles":[{}],"schedulers":[{}],"traffic":[{}],"#,
                r#""rest_bps":[{}],"utilizations":[{}],"seeds":[{}],"window_ms":{},"#,
                r#""horizon_ms":{},"buffer_bytes":{},"replay":{},"#,
                r#""queues":[{}],"mapper":"{}","#,
                r#""failures":[{}],"inflight":"{}","#,
                r#""max_packets":{},"excludes":[{}],"max_jobs":{}}}"#
            ),
            strs(&self.topologies),
            strs(&self.profiles),
            strs(&self.schedulers),
            strs(&self.traffic),
            ints(&self.rest_bps),
            nums(&self.utilizations),
            ints(&self.seeds),
            ups_metrics::json_num(self.window.as_secs_f64() * 1e3),
            ups_metrics::json_opt_num(self.horizon.map(|h| h.as_secs_f64() * 1e3)),
            opt_u64(self.buffer_bytes),
            self.replay,
            self.queues
                .iter()
                .map(|k| k.to_string())
                .collect::<Vec<_>>()
                .join(","),
            json_escape(&self.mapper),
            strs(&self.failures),
            json_escape(&self.inflight),
            match self.max_packets {
                Some(n) => n.to_string(),
                None => "null".into(),
            },
            self.excludes
                .iter()
                .map(Exclude::to_json)
                .collect::<Vec<_>>()
                .join(","),
            match self.max_jobs {
                Some(n) => n.to_string(),
                None => "null".into(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScenarioGrid {
        ScenarioGrid {
            topologies: vec!["Line(3)".into(), "Dumbbell(4)".into()],
            profiles: vec!["web-search".into()],
            schedulers: vec!["FIFO".into(), "Random".into()],
            traffic: vec!["open-loop".into()],
            rest_bps: Vec::new(),
            utilizations: vec![0.5, 0.7],
            seeds: vec![1, 2],
            window: Dur::from_ms(1),
            horizon: None,
            buffer_bytes: None,
            replay: false,
            queues: Vec::new(),
            mapper: "dynamic".into(),
            failures: Vec::new(),
            inflight: "reroute".into(),
            max_packets: Some(1000),
            excludes: Vec::new(),
            max_jobs: None,
        }
    }

    #[test]
    fn expansion_is_the_cartesian_product() {
        let jobs = tiny().expand().unwrap();
        assert_eq!(jobs.len(), 2 * 2 * 2 * 2);
        // Dense, ordered ids.
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.job_id, i);
        }
        // Innermost axis is the seed.
        assert_eq!(jobs[0].seed, 1);
        assert_eq!(jobs[1].seed, 2);
        assert_eq!(jobs[0].utilization, jobs[1].utilization);
        // Open-loop jobs carry no horizon and no r_est.
        assert!(jobs.iter().all(|j| j.horizon.is_none()));
        assert!(jobs.iter().all(|j| j.rest_bps.is_none()));
    }

    #[test]
    fn traffic_axis_multiplies_and_closed_loop_jobs_get_a_horizon() {
        let mut g = tiny();
        g.traffic = vec!["open-loop".into(), "closed-loop".into()];
        let jobs = g.expand().unwrap();
        assert_eq!(jobs.len(), 32);
        let closed: Vec<_> = jobs
            .iter()
            .filter(|j| j.traffic == TrafficMode::ClosedLoop)
            .collect();
        assert_eq!(closed.len(), 16);
        // Default horizon = window × 20.
        assert!(closed.iter().all(|j| j.horizon == Some(Dur::from_ms(20))));
        g.horizon = Some(Dur::from_ms(7));
        let jobs = g.expand().unwrap();
        assert!(jobs
            .iter()
            .filter(|j| j.traffic == TrafficMode::ClosedLoop)
            .all(|j| j.horizon == Some(Dur::from_ms(7))));
    }

    #[test]
    fn rest_axis_applies_only_to_closed_loop_lstf() {
        let mut g = tiny();
        g.schedulers = vec!["FIFO".into(), "LSTF".into()];
        g.traffic = vec!["open-loop".into(), "closed-loop".into()];
        g.rest_bps = vec![1_000_000_000, 100_000_000];
        let jobs = g.expand().unwrap();
        // FIFO jobs and open-loop LSTF jobs: one each; closed-loop LSTF:
        // one per r_est value.
        let lstf_closed: Vec<_> = jobs
            .iter()
            .filter(|j| j.scheduler == "LSTF" && j.traffic == TrafficMode::ClosedLoop)
            .collect();
        assert_eq!(
            lstf_closed.len(),
            2 * 2 * 2 * 2,
            "2 topos × 2 rests × 2 utils × 2 seeds"
        );
        assert!(lstf_closed
            .iter()
            .any(|j| j.rest_bps == Some(1_000_000_000)));
        assert!(lstf_closed.iter().any(|j| j.rest_bps == Some(100_000_000)));
        assert!(jobs
            .iter()
            .filter(|j| j.scheduler != "LSTF" || j.traffic == TrafficMode::OpenLoop)
            .all(|j| j.rest_bps.is_none()));
    }

    #[test]
    fn closed_loop_only_profile_rejected_for_open_loop() {
        let mut g = tiny();
        g.profiles = vec!["long-lived".into()];
        assert_eq!(
            g.expand(),
            Err(GridError::ProfileNeedsClosedLoop("long-lived".into()))
        );
        // The same profile is fine when the grid is closed-loop only.
        g.traffic = vec!["closed-loop".into()];
        assert!(g.expand().is_ok());
        // ...or when an exclude removes the open-loop combination.
        g.traffic = vec!["open-loop".into(), "closed-loop".into()];
        g.excludes.push(Exclude {
            profile: Some("long-lived".into()),
            traffic: Some("open-loop".into()),
            ..Exclude::default()
        });
        assert!(g.expand().is_ok());
    }

    #[test]
    fn default_grid_meets_the_acceptance_floor() {
        let g = ScenarioGrid::default();
        let jobs = g.expand().unwrap();
        assert!(g.topologies.len() >= 3);
        assert!(g.schedulers.len() >= 4);
        assert!(g.seeds.len() >= 2);
        assert!(jobs.len() >= 24, "default grid has {} jobs", jobs.len());
        // The closed-loop sub-grid is present: all four §3 disciplines,
        // no closed-loop LIFO/Random.
        let closed: Vec<_> = jobs
            .iter()
            .filter(|j| j.traffic == TrafficMode::ClosedLoop)
            .collect();
        assert_eq!(closed.len(), 3 * 4 * 2, "closed-loop sub-grid");
        assert!(closed
            .iter()
            .all(|j| j.scheduler != "LIFO" && j.scheduler != "Random"));
        assert!(closed.iter().any(|j| j.scheduler == "LSTF"));
    }

    #[test]
    fn queues_axis_multiplies_replay_jobs() {
        let mut g = tiny();
        g.replay = true;
        g.queues = vec![1, 8];
        let jobs = g.expand().unwrap();
        assert_eq!(jobs.len(), 2 * 2 * 2 * 2 * 2, "one job per K value");
        for j in &jobs {
            let k = j.queues.expect("every job carries a K");
            assert!(k == 1 || k == 8);
            assert_eq!(j.mapper.as_deref(), Some("dynamic"));
        }
        // Innermost axis: adjacent ids sweep K within one scenario.
        assert_eq!(jobs[0].queues, Some(1));
        assert_eq!(jobs[1].queues, Some(8));
        assert_eq!(jobs[0].seed, jobs[1].seed);
        // Without the axis, jobs carry no quantization fields.
        let plain = tiny().expand().unwrap();
        assert!(plain
            .iter()
            .all(|j| j.queues.is_none() && j.mapper.is_none()));
    }

    #[test]
    fn queues_axis_is_validated() {
        let mut g = tiny();
        g.replay = true;
        g.queues = vec![4];
        g.mapper = "afq".into();
        assert_eq!(g.expand(), Err(GridError::UnknownMapper("afq".into())));
        let mut g = tiny();
        g.replay = true;
        g.queues = vec![0];
        assert_eq!(g.expand(), Err(GridError::BadQueues(0)));
        // The bucketing mappers allocate K physical queues, so their K is
        // capped; the dynamic mapper accepts any K ≥ 1.
        g.mapper = "log".into();
        g.queues = vec![MAX_FIXED_QUEUES + 1];
        assert_eq!(g.expand(), Err(GridError::BadQueues(MAX_FIXED_QUEUES + 1)));
        g.mapper = "dynamic".into();
        assert!(g.expand().is_ok(), "dynamic mapper has no upper K bound");
        // --queues without the replay is a contradiction, not a no-op.
        let mut g = tiny();
        g.replay = false;
        g.queues = vec![8];
        assert_eq!(g.expand(), Err(GridError::QueuesNeedReplay));
    }

    #[test]
    fn excludes_can_filter_a_queue_count() {
        let mut g = tiny();
        g.replay = true;
        g.queues = vec![1, 8];
        g.excludes.push(Exclude {
            queues: Some(1),
            ..Exclude::default()
        });
        let jobs = g.expand().unwrap();
        assert!(jobs.iter().all(|j| j.queues == Some(8)));
        // And a scoped version: drop K=8 only on one topology.
        let mut g = tiny();
        g.replay = true;
        g.queues = vec![1, 8];
        g.excludes.push(Exclude {
            topology: Some("Line(3)".into()),
            queues: Some(8),
            ..Exclude::default()
        });
        let jobs = g.expand().unwrap();
        assert!(!jobs
            .iter()
            .any(|j| j.topology == "Line(3)" && j.queues == Some(8)));
        assert!(jobs
            .iter()
            .any(|j| j.topology == "Dumbbell(4)" && j.queues == Some(8)));
    }

    #[test]
    fn failure_axis_multiplies_and_none_is_the_static_row() {
        let mut g = tiny();
        g.failures = vec!["none".into(), "random-links:0.5".into()];
        let jobs = g.expand().unwrap();
        assert_eq!(jobs.len(), 2 * 2 * 2 * 2 * 2, "one job per axis value");
        let churn: Vec<_> = jobs.iter().filter(|j| j.failures.is_some()).collect();
        assert_eq!(churn.len(), jobs.len() / 2);
        for j in &churn {
            assert_eq!(j.failures.as_deref(), Some("random-links:0.5"));
            assert_eq!(j.inflight.as_deref(), Some("reroute"));
        }
        // The "none" rows are indistinguishable from a no-axis job.
        assert!(jobs
            .iter()
            .filter(|j| j.failures.is_none())
            .all(|j| j.inflight.is_none()));
        // Adjacent ids sweep the failure axis within one scenario.
        assert_eq!(jobs[0].failures, None);
        assert_eq!(jobs[1].failures.as_deref(), Some("random-links:0.5"));
        assert_eq!(jobs[0].seed, jobs[1].seed);
    }

    #[test]
    fn failure_axis_is_validated() {
        let mut g = tiny();
        g.failures = vec!["meteor-strike:0.5".into()];
        assert!(matches!(g.expand(), Err(GridError::BadFailures(_))));
        let mut g = tiny();
        g.failures = vec!["random-links:1.5".into()];
        assert!(matches!(g.expand(), Err(GridError::BadFailures(_))));
        let mut g = tiny();
        g.failures = vec!["burst".into()];
        g.inflight = "pray".into();
        assert_eq!(g.expand(), Err(GridError::UnknownInflight("pray".into())));
        // Churn drives open-loop schedules only.
        let mut g = tiny();
        g.failures = vec!["burst:0.4".into()];
        g.traffic = vec!["open-loop".into(), "closed-loop".into()];
        assert_eq!(
            g.expand(),
            Err(GridError::FailuresNeedOpenLoop("burst:0.4".into()))
        );
        // ...unless an exclude removes the combination.
        g.excludes.push(Exclude {
            traffic: Some("closed-loop".into()),
            ..Exclude::default()
        });
        assert!(g.expand().is_ok());
        // Failures and queues don't compose.
        let mut g = tiny();
        g.replay = true;
        g.queues = vec![8];
        g.failures = vec!["random-links:0.3".into()];
        assert_eq!(g.expand(), Err(GridError::FailuresExcludeQueues));
        // ...but an all-"none" failure axis is no failure axis.
        g.failures = vec!["none".into()];
        assert!(g.expand().is_ok());
    }

    #[test]
    fn excludes_can_filter_a_failure_spec() {
        let mut g = tiny();
        g.failures = vec!["none".into(), "burst:0.6".into()];
        g.excludes.push(Exclude {
            topology: Some("Line(3)".into()),
            failures: Some("burst:0.6".into()),
            ..Exclude::default()
        });
        let jobs = g.expand().unwrap();
        assert!(!jobs
            .iter()
            .any(|j| j.topology == "Line(3)" && j.failures.is_some()));
        assert!(jobs
            .iter()
            .any(|j| j.topology == "Dumbbell(4)" && j.failures.is_some()));
    }

    #[test]
    fn unknown_names_are_rejected() {
        let mut g = tiny();
        g.topologies.push("Torus(9)".into());
        assert_eq!(
            g.expand(),
            Err(GridError::UnknownTopology("Torus(9)".into()))
        );
        let mut g = tiny();
        g.profiles = vec!["bimodal".into()];
        assert!(matches!(g.expand(), Err(GridError::UnknownProfile(_))));
        let mut g = tiny();
        g.schedulers = vec!["Omniscient".into()];
        assert!(matches!(g.expand(), Err(GridError::UnknownScheduler(_))));
        let mut g = tiny();
        g.traffic = vec!["half-open".into()];
        assert_eq!(
            g.expand(),
            Err(GridError::UnknownTraffic("half-open".into()))
        );
    }

    #[test]
    fn mixed_row_and_all_table1_disciplines_accepted() {
        for label in [
            "FIFO",
            "LIFO",
            "Random",
            "FQ",
            "SJF",
            "SRPT",
            "DRR",
            "FIFO+",
            "LSTF",
            MIXED_FQ_FIFOPLUS,
        ] {
            assert!(is_original_scheduler(label), "{label} should be usable");
        }
        assert!(!is_original_scheduler("EDF"));
        assert!(!is_original_scheduler("WFQ2"));
    }

    #[test]
    fn excludes_filter_matching_combinations() {
        let mut g = tiny();
        g.excludes.push(Exclude {
            topology: Some("Line(3)".into()),
            scheduler: Some("Random".into()),
            ..Exclude::default()
        });
        let jobs = g.expand().unwrap();
        assert_eq!(jobs.len(), 12);
        assert!(!jobs
            .iter()
            .any(|j| j.topology == "Line(3)" && j.scheduler == "Random"));
        // Utilization cap applies across the whole grid.
        let mut g = tiny();
        g.excludes.push(Exclude {
            utilization_above: Some(0.6),
            ..Exclude::default()
        });
        assert!(g.expand().unwrap().iter().all(|j| j.utilization <= 0.6));
        // An empty Exclude matches nothing.
        let mut g = tiny();
        g.excludes.push(Exclude::default());
        assert_eq!(g.expand().unwrap().len(), 16);
    }

    #[test]
    fn max_jobs_truncates_and_empty_errors() {
        let mut g = tiny();
        g.max_jobs = Some(3);
        assert_eq!(g.expand().unwrap().len(), 3);
        g.max_jobs = Some(0);
        assert_eq!(g.expand(), Err(GridError::Empty));
    }

    #[test]
    fn grid_json_round_trips_its_filters() {
        let mut g = tiny();
        g.excludes.push(Exclude {
            topology: Some("Line(3)".into()),
            utilization_above: Some(0.8),
            ..Exclude::default()
        });
        let v = crate::json::parse(&g.to_json()).unwrap();
        let excludes = v.get("excludes").unwrap().as_array().unwrap();
        assert_eq!(excludes.len(), 1);
        assert_eq!(
            excludes[0].get("topology").unwrap().as_str(),
            Some("Line(3)")
        );
        assert_eq!(
            excludes[0].get("utilization_above").unwrap().as_f64(),
            Some(0.8)
        );
        assert_eq!(
            excludes[0].get("scheduler"),
            Some(&crate::json::JsonValue::Null)
        );
    }

    #[test]
    fn scenario_json_is_parseable_and_complete() {
        let jobs = tiny().expand().unwrap();
        let v = crate::json::parse(&jobs[0].scenario_json()).unwrap();
        assert_eq!(v.get("topology").unwrap().as_str(), Some("Line(3)"));
        assert_eq!(v.get("seed").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("window_ms").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("max_packets").unwrap().as_f64(), Some(1000.0));
        assert_eq!(v.get("traffic").unwrap().as_str(), Some("open-loop"));
        assert_eq!(v.get("rest_bps"), Some(&crate::json::JsonValue::Null));
        assert_eq!(v.get("horizon_ms"), Some(&crate::json::JsonValue::Null));
        assert_eq!(v.get("queues"), Some(&crate::json::JsonValue::Null));
        assert_eq!(v.get("mapper"), Some(&crate::json::JsonValue::Null));
        assert_eq!(v.get("failures"), Some(&crate::json::JsonValue::Null));
        assert_eq!(v.get("inflight"), Some(&crate::json::JsonValue::Null));
        // A failure job round-trips its spec and policy.
        let mut g = tiny();
        g.failures = vec!["core-links:0.25".into()];
        g.inflight = "drop".into();
        let jobs = g.expand().unwrap();
        let v = crate::json::parse(&jobs[0].scenario_json()).unwrap();
        assert_eq!(v.get("failures").unwrap().as_str(), Some("core-links:0.25"));
        assert_eq!(v.get("inflight").unwrap().as_str(), Some("drop"));
        // A quantized job round-trips its K and mapper.
        let mut g = tiny();
        g.replay = true;
        g.queues = vec![8];
        g.mapper = "sppifo".into();
        let jobs = g.expand().unwrap();
        let v = crate::json::parse(&jobs[0].scenario_json()).unwrap();
        assert_eq!(v.get("queues").unwrap().as_f64(), Some(8.0));
        assert_eq!(v.get("mapper").unwrap().as_str(), Some("sppifo"));
        // And a closed-loop LSTF job round-trips its r_est and horizon.
        let mut g = tiny();
        g.schedulers = vec!["LSTF".into()];
        g.traffic = vec!["closed-loop".into()];
        g.rest_bps = vec![500_000_000];
        let jobs = g.expand().unwrap();
        let v = crate::json::parse(&jobs[0].scenario_json()).unwrap();
        assert_eq!(v.get("traffic").unwrap().as_str(), Some("closed-loop"));
        assert_eq!(v.get("rest_bps").unwrap().as_f64(), Some(500_000_000.0));
        assert_eq!(v.get("horizon_ms").unwrap().as_f64(), Some(20.0));
    }
}
