//! Declarative scenario grids.
//!
//! A [`ScenarioGrid`] is the cartesian product of five axes — topology ×
//! workload profile × scheduler discipline × utilization × seed — plus
//! filters. `expand` validates every axis value against the registries
//! (`ups_topology::registry`, `ups_workload::registry`,
//! `SchedulerKind::from_name`) and materializes the independent
//! [`JobSpec`]s the pool executes. Job ids are assigned in expansion
//! order, so a grid fully determines its job list — the sweep result
//! record for job *k* is a pure function of the grid, never of worker
//! scheduling.

use ups_metrics::json_escape;
use ups_netsim::prelude::{Dur, SchedulerKind};

/// The mixed Table 1 row — half the routers FQ, half FIFO+ — is the one
/// non-uniform assignment grids can name.
pub const MIXED_FQ_FIFOPLUS: &str = "FQ/FIFO+";

/// One fully-specified, independently-executable scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Position in the expanded grid (dense, 0-based).
    pub job_id: usize,
    /// Topology registry name.
    pub topology: String,
    /// Workload profile registry name.
    pub profile: String,
    /// Scheduler label (`SchedulerKind::name` or `"FQ/FIFO+"`).
    pub scheduler: String,
    /// Target mean core-link utilization.
    pub utilization: f64,
    /// Workload + simulation seed.
    pub seed: u64,
    /// Flow-arrival window.
    pub window: Dur,
    /// Whether to run the LSTF replay and report the match rate.
    pub replay: bool,
    /// Optional cap on injected packets (CI smoke grids).
    pub max_packets: Option<usize>,
}

impl JobSpec {
    /// The scenario as a compact JSON object — embedded in every result
    /// record so each line is self-describing.
    pub fn scenario_json(&self) -> String {
        format!(
            concat!(
                r#"{{"topology":"{}","profile":"{}","scheduler":"{}","#,
                r#""utilization":{},"seed":{},"window_ms":{},"replay":{},"max_packets":{}}}"#
            ),
            json_escape(&self.topology),
            json_escape(&self.profile),
            json_escape(&self.scheduler),
            ups_metrics::json_num(self.utilization),
            self.seed,
            ups_metrics::json_num(self.window.as_secs_f64() * 1e3),
            self.replay,
            match self.max_packets {
                Some(n) => n.to_string(),
                None => "null".into(),
            }
        )
    }
}

/// An exclusion filter: a job is dropped when **every** populated field
/// matches it. `Exclude { topology: Some("RocketFuel"), scheduler:
/// Some("Random"), .. }` drops only RocketFuel×Random combinations;
/// `utilization_above` alone caps load grid-wide.
#[derive(Debug, Clone, Default)]
pub struct Exclude {
    /// Match on topology name.
    pub topology: Option<String>,
    /// Match on profile name.
    pub profile: Option<String>,
    /// Match on scheduler label.
    pub scheduler: Option<String>,
    /// Match when utilization is strictly above this.
    pub utilization_above: Option<f64>,
}

impl Exclude {
    fn matches(&self, topo: &str, profile: &str, sched: &str, util: f64) -> bool {
        let mut any = false;
        for (field, value) in [
            (&self.topology, topo),
            (&self.profile, profile),
            (&self.scheduler, sched),
        ] {
            if let Some(want) = field {
                if want != value {
                    return false;
                }
                any = true;
            }
        }
        if let Some(cap) = self.utilization_above {
            if util <= cap {
                return false;
            }
            any = true;
        }
        any
    }

    /// The filter as JSON, so a recorded grid block can reproduce the
    /// exact job list it generated.
    fn to_json(&self) -> String {
        let opt_str = |v: &Option<String>| match v {
            Some(s) => format!("\"{}\"", json_escape(s)),
            None => "null".into(),
        };
        format!(
            r#"{{"topology":{},"profile":{},"scheduler":{},"utilization_above":{}}}"#,
            opt_str(&self.topology),
            opt_str(&self.profile),
            opt_str(&self.scheduler),
            ups_metrics::json_opt_num(self.utilization_above),
        )
    }
}

/// A declarative sweep: five axes, filters, and per-job run options.
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    /// Topology registry names.
    pub topologies: Vec<String>,
    /// Workload profile registry names.
    pub profiles: Vec<String>,
    /// Scheduler labels.
    pub schedulers: Vec<String>,
    /// Utilization targets.
    pub utilizations: Vec<f64>,
    /// Seeds (each seed is an independent job).
    pub seeds: Vec<u64>,
    /// Flow-arrival window per job.
    pub window: Dur,
    /// Run the LSTF replay per job.
    pub replay: bool,
    /// Cap injected packets per job.
    pub max_packets: Option<usize>,
    /// Exclusion filters applied during expansion.
    pub excludes: Vec<Exclude>,
    /// Keep at most this many jobs (applied last, in expansion order).
    pub max_jobs: Option<usize>,
}

impl Default for ScenarioGrid {
    /// The paper-evaluation default: Table 1's three flagship networks ×
    /// five original disciplines × two seeds at 70% — 30 jobs.
    fn default() -> Self {
        ScenarioGrid {
            topologies: ["I2:1Gbps-10Gbps", "RocketFuel", "FatTree(k=4)"]
                .map(String::from)
                .to_vec(),
            profiles: vec!["web-search".into()],
            schedulers: ["FIFO", "FQ", "SJF", "LIFO", "Random"]
                .map(String::from)
                .to_vec(),
            utilizations: vec![0.7],
            seeds: vec![1, 2],
            window: Dur::from_ms(10),
            replay: true,
            max_packets: None,
            excludes: Vec::new(),
            max_jobs: None,
        }
    }
}

/// Why a grid failed to expand.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// A topology name not in the registry.
    UnknownTopology(String),
    /// A profile name not in the registry.
    UnknownProfile(String),
    /// A scheduler label `SchedulerKind::from_name` rejects (or one that
    /// cannot run as an *original* schedule, like `Omniscient`).
    UnknownScheduler(String),
    /// Every combination was filtered out (or an axis was empty).
    Empty,
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::UnknownTopology(n) => write!(
                f,
                "unknown topology {n:?} (known: {})",
                ups_topology::topology_names().join(", ")
            ),
            GridError::UnknownProfile(n) => write!(
                f,
                "unknown workload profile {n:?} (known: {})",
                ups_workload::profile_names().join(", ")
            ),
            GridError::UnknownScheduler(n) => {
                write!(f, "unknown or non-original scheduler {n:?}")
            }
            GridError::Empty => write!(f, "grid expanded to zero jobs"),
        }
    }
}

/// Scheduler labels a grid may use as an *original* schedule: any
/// uniform discipline that runs without replay-only headers, plus the
/// FQ/FIFO+ mix. `Omniscient` needs per-hop header vectors and `EDF`
/// needs `tmin` tables — both exist only as replay candidates.
pub fn is_original_scheduler(label: &str) -> bool {
    if label == MIXED_FQ_FIFOPLUS {
        return true;
    }
    match SchedulerKind::from_name(label) {
        Some(SchedulerKind::Omniscient) | Some(SchedulerKind::Edf { .. }) | None => false,
        Some(_) => true,
    }
}

impl ScenarioGrid {
    /// Validate every axis value and expand to the ordered job list.
    pub fn expand(&self) -> Result<Vec<JobSpec>, GridError> {
        for t in &self.topologies {
            if ups_topology::topology_entry(t).is_none() {
                return Err(GridError::UnknownTopology(t.clone()));
            }
        }
        for p in &self.profiles {
            if ups_workload::profile_by_name(p).is_none() {
                return Err(GridError::UnknownProfile(p.clone()));
            }
        }
        for s in &self.schedulers {
            if !is_original_scheduler(s) {
                return Err(GridError::UnknownScheduler(s.clone()));
            }
        }
        let mut jobs = Vec::new();
        for topo in &self.topologies {
            for profile in &self.profiles {
                for sched in &self.schedulers {
                    for &util in &self.utilizations {
                        for &seed in &self.seeds {
                            if self
                                .excludes
                                .iter()
                                .any(|e| e.matches(topo, profile, sched, util))
                            {
                                continue;
                            }
                            jobs.push(JobSpec {
                                job_id: jobs.len(),
                                topology: topo.clone(),
                                profile: profile.clone(),
                                scheduler: sched.clone(),
                                utilization: util,
                                seed,
                                window: self.window,
                                replay: self.replay,
                                max_packets: self.max_packets,
                            });
                        }
                    }
                }
            }
        }
        if let Some(cap) = self.max_jobs {
            jobs.truncate(cap);
        }
        if jobs.is_empty() {
            return Err(GridError::Empty);
        }
        Ok(jobs)
    }

    /// The grid itself as JSON — the `"grid"` block of `BENCH_sweep.json`.
    pub fn to_json(&self) -> String {
        let strs = |v: &[String]| {
            v.iter()
                .map(|s| format!("\"{}\"", json_escape(s)))
                .collect::<Vec<_>>()
                .join(",")
        };
        let nums = |v: &[f64]| {
            v.iter()
                .map(|&x| ups_metrics::json_num(x))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            concat!(
                r#"{{"topologies":[{}],"profiles":[{}],"schedulers":[{}],"#,
                r#""utilizations":[{}],"seeds":[{}],"window_ms":{},"replay":{},"#,
                r#""max_packets":{},"excludes":[{}],"max_jobs":{}}}"#
            ),
            strs(&self.topologies),
            strs(&self.profiles),
            strs(&self.schedulers),
            nums(&self.utilizations),
            self.seeds
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(","),
            ups_metrics::json_num(self.window.as_secs_f64() * 1e3),
            self.replay,
            match self.max_packets {
                Some(n) => n.to_string(),
                None => "null".into(),
            },
            self.excludes
                .iter()
                .map(Exclude::to_json)
                .collect::<Vec<_>>()
                .join(","),
            match self.max_jobs {
                Some(n) => n.to_string(),
                None => "null".into(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScenarioGrid {
        ScenarioGrid {
            topologies: vec!["Line(3)".into(), "Dumbbell(4)".into()],
            profiles: vec!["web-search".into()],
            schedulers: vec!["FIFO".into(), "Random".into()],
            utilizations: vec![0.5, 0.7],
            seeds: vec![1, 2],
            window: Dur::from_ms(1),
            replay: false,
            max_packets: Some(1000),
            excludes: Vec::new(),
            max_jobs: None,
        }
    }

    #[test]
    fn expansion_is_the_cartesian_product() {
        let jobs = tiny().expand().unwrap();
        assert_eq!(jobs.len(), 2 * 2 * 2 * 2);
        // Dense, ordered ids.
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.job_id, i);
        }
        // Innermost axis is the seed.
        assert_eq!(jobs[0].seed, 1);
        assert_eq!(jobs[1].seed, 2);
        assert_eq!(jobs[0].utilization, jobs[1].utilization);
    }

    #[test]
    fn default_grid_meets_the_acceptance_floor() {
        let g = ScenarioGrid::default();
        let jobs = g.expand().unwrap();
        assert!(g.topologies.len() >= 3);
        assert!(g.schedulers.len() >= 4);
        assert!(g.seeds.len() >= 2);
        assert!(jobs.len() >= 24, "default grid has {} jobs", jobs.len());
    }

    #[test]
    fn unknown_names_are_rejected() {
        let mut g = tiny();
        g.topologies.push("Torus(9)".into());
        assert_eq!(
            g.expand(),
            Err(GridError::UnknownTopology("Torus(9)".into()))
        );
        let mut g = tiny();
        g.profiles = vec!["bimodal".into()];
        assert!(matches!(g.expand(), Err(GridError::UnknownProfile(_))));
        let mut g = tiny();
        g.schedulers = vec!["Omniscient".into()];
        assert!(matches!(g.expand(), Err(GridError::UnknownScheduler(_))));
    }

    #[test]
    fn mixed_row_and_all_table1_disciplines_accepted() {
        for label in [
            "FIFO",
            "LIFO",
            "Random",
            "FQ",
            "SJF",
            "SRPT",
            "DRR",
            "FIFO+",
            "LSTF",
            MIXED_FQ_FIFOPLUS,
        ] {
            assert!(is_original_scheduler(label), "{label} should be usable");
        }
        assert!(!is_original_scheduler("EDF"));
        assert!(!is_original_scheduler("WFQ2"));
    }

    #[test]
    fn excludes_filter_matching_combinations() {
        let mut g = tiny();
        g.excludes.push(Exclude {
            topology: Some("Line(3)".into()),
            scheduler: Some("Random".into()),
            ..Exclude::default()
        });
        let jobs = g.expand().unwrap();
        assert_eq!(jobs.len(), 12);
        assert!(!jobs
            .iter()
            .any(|j| j.topology == "Line(3)" && j.scheduler == "Random"));
        // Utilization cap applies across the whole grid.
        let mut g = tiny();
        g.excludes.push(Exclude {
            utilization_above: Some(0.6),
            ..Exclude::default()
        });
        assert!(g.expand().unwrap().iter().all(|j| j.utilization <= 0.6));
        // An empty Exclude matches nothing.
        let mut g = tiny();
        g.excludes.push(Exclude::default());
        assert_eq!(g.expand().unwrap().len(), 16);
    }

    #[test]
    fn max_jobs_truncates_and_empty_errors() {
        let mut g = tiny();
        g.max_jobs = Some(3);
        assert_eq!(g.expand().unwrap().len(), 3);
        g.max_jobs = Some(0);
        assert_eq!(g.expand(), Err(GridError::Empty));
    }

    #[test]
    fn grid_json_round_trips_its_filters() {
        let mut g = tiny();
        g.excludes.push(Exclude {
            topology: Some("Line(3)".into()),
            utilization_above: Some(0.8),
            ..Exclude::default()
        });
        let v = crate::json::parse(&g.to_json()).unwrap();
        let excludes = v.get("excludes").unwrap().as_array().unwrap();
        assert_eq!(excludes.len(), 1);
        assert_eq!(
            excludes[0].get("topology").unwrap().as_str(),
            Some("Line(3)")
        );
        assert_eq!(
            excludes[0].get("utilization_above").unwrap().as_f64(),
            Some(0.8)
        );
        assert_eq!(
            excludes[0].get("scheduler"),
            Some(&crate::json::JsonValue::Null)
        );
    }

    #[test]
    fn scenario_json_is_parseable_and_complete() {
        let jobs = tiny().expand().unwrap();
        let v = crate::json::parse(&jobs[0].scenario_json()).unwrap();
        assert_eq!(v.get("topology").unwrap().as_str(), Some("Line(3)"));
        assert_eq!(v.get("seed").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("window_ms").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("max_packets").unwrap().as_f64(), Some(1000.0));
    }
}
