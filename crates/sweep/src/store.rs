//! The machine-readable result store.
//!
//! Two artifacts, following the DESIGN.md §5 pattern:
//!
//! * a **JSON-lines stream** — one self-describing record per job,
//!   appended the moment the job finishes on whichever worker ran it
//!   (completion order, so the stream doubles as a progress log), and
//! * the **aggregate `BENCH_sweep.json`** — schema tag, the grid that
//!   generated the sweep, pool accounting (workers, steals, jobs/sec) and
//!   every record sorted by job id.
//!
//! [`validate_bench_sweep`] loads an aggregate back through the minimal
//! parser and asserts its schema — the check CI runs on the artifact.

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use ups_race::sync::Mutex;

use crate::grid::ScenarioGrid;
use crate::json::{parse, JsonValue};
use crate::pool::PoolStats;
use crate::runner::JobRecord;

/// Schema tag of the aggregate artifact this build writes.
pub const SWEEP_SCHEMA: &str = "ups-sweep/v4";

/// Aggregate schema tags [`validate_bench_sweep`] accepts (v1 artifacts
/// predate the traffic-mode axis and the transport block; v2 predates
/// the finite-priority-queue axis; v3 predates the failure axis and the
/// disruption block).
pub const ACCEPTED_SWEEP_SCHEMAS: [&str; 4] = [
    "ups-sweep/v1",
    "ups-sweep/v2",
    "ups-sweep/v3",
    "ups-sweep/v4",
];

/// Schema tag of the quantized-replay bench artifact
/// (`BENCH_quantized.json`), validated by [`validate_bench_quantized`].
pub const QUANTIZED_BENCH_SCHEMA: &str = "ups-bench-quantized/v1";

/// Schema tag of the link-failure bench artifact
/// (`BENCH_failures.json`), validated by [`validate_bench_failures`].
pub const FAILURES_BENCH_SCHEMA: &str = "ups-bench-failures/v1";

/// Schema tag of the streaming-pipeline scale bench artifact
/// (`BENCH_scale.json`), validated by [`validate_bench_scale`].
pub const SCALE_BENCH_SCHEMA: &str = "ups-bench-scale/v1";

/// Schema tag of the probe-overhead bench artifact (`BENCH_obs.json`),
/// validated by [`validate_bench_obs`].
pub const OBS_BENCH_SCHEMA: &str = "ups-bench-obs/v1";

/// Schema tag of the divergence-forensics bench artifact
/// (`BENCH_divergence.json`), validated by [`validate_bench_divergence`].
pub const DIVERGENCE_BENCH_SCHEMA: &str = "ups-bench-divergence/v1";

/// Streams one JSON line per finished job. Shared across workers behind
/// a mutex — append is one short write per multi-second job.
pub struct ResultStream {
    out: Mutex<BufWriter<File>>,
    path: PathBuf,
}

impl ResultStream {
    /// Create/truncate the JSONL file.
    pub fn create(path: &Path) -> std::io::Result<ResultStream> {
        Ok(ResultStream {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
            path: path.to_path_buf(),
        })
    }

    /// Append one record (with timing — the stream is a log, not the
    /// determinism surface).
    ///
    /// # Panics
    /// On write failure (e.g. disk full) — the sweep cannot report
    /// results it cannot record. A poisoned lock is recovered rather
    /// than re-panicked: one job's write failure is caught per job by
    /// the pool, and later jobs must surface the *real* I/O error, not
    /// a cascade of "stream poisoned".
    pub fn append(&self, record: &JobRecord) {
        let mut out = self
            .out
            .lock()
            .unwrap_or_else(ups_race::sync::PoisonError::into_inner);
        writeln!(out, "{}", record.to_json(true)).expect("write JSONL record");
        out.flush().expect("flush JSONL record");
    }

    /// Where the stream writes.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Render the aggregate artifact. Records are sorted by job id (the
/// caller hands them in pool order, which is already job order).
// lint:schema(ups-sweep/v4)
pub fn bench_sweep_json(
    grid: &ScenarioGrid,
    records: &[JobRecord],
    stats: &PoolStats,
    wall_s: f64,
) -> String {
    let jobs_per_sec = if wall_s > 0.0 {
        records.len() as f64 / wall_s
    } else {
        0.0
    };
    let mut sorted: Vec<&JobRecord> = records.iter().collect();
    sorted.sort_by_key(|r| r.spec.job_id);
    let body: Vec<String> = sorted
        .iter()
        .map(|r| format!("    {}", r.to_json(true)))
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"{}\",\n",
            "  \"grid\": {},\n",
            "  \"workers\": {},\n",
            "  \"steals\": {},\n",
            "  \"jobs\": {},\n",
            "  \"wall_s\": {},\n",
            "  \"jobs_per_sec\": {},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        SWEEP_SCHEMA,
        grid.to_json(),
        stats.workers,
        stats.steals,
        records.len(),
        ups_metrics::json_num(wall_s),
        ups_metrics::json_num(jobs_per_sec),
        body.join(",\n")
    )
}

/// What a valid aggregate reports — returned so callers can print a
/// one-line confirmation.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepDigest {
    /// Jobs recorded.
    pub jobs: usize,
    /// Worker threads the sweep used.
    pub workers: usize,
    /// Aggregate throughput.
    pub jobs_per_sec: f64,
}

/// Validate a `BENCH_sweep.json` document against its schema.
/// `ups-sweep/v1` (pre-traffic-axis), `/v2` (pre-queues-axis) and `/v3`
/// artifacts all validate; each record line is checked against its own
/// `ups-sweep-record/v{1,2,3}` tag. Every failure is a `Result::Err`
/// naming the offending field — never a panic — so `sweep --check` can
/// print a usable diagnosis.
pub fn validate_bench_sweep(doc: &str) -> Result<SweepDigest, String> {
    let v = parse(doc).map_err(|e| format!("not JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema tag")?;
    if !ACCEPTED_SWEEP_SCHEMAS.contains(&schema) {
        return Err(format!(
            "unexpected schema {schema:?} (expected one of {ACCEPTED_SWEEP_SCHEMAS:?})"
        ));
    }
    v.get("grid").ok_or("missing grid block")?;
    let jobs = v
        .get("jobs")
        .and_then(JsonValue::as_f64)
        .ok_or("missing jobs count")? as usize;
    let workers = v
        .get("workers")
        .and_then(JsonValue::as_f64)
        .ok_or("missing workers")? as usize;
    let jobs_per_sec = v
        .get("jobs_per_sec")
        .and_then(JsonValue::as_f64)
        .ok_or("missing jobs_per_sec")?;
    if !jobs_per_sec.is_finite() || jobs_per_sec <= 0.0 {
        return Err(format!("jobs_per_sec {jobs_per_sec} not positive"));
    }
    let results = v
        .get("results")
        .and_then(JsonValue::as_array)
        .ok_or("missing results array")?;
    if results.len() != jobs {
        return Err(format!(
            "jobs field says {jobs} but results holds {}",
            results.len()
        ));
    }
    for (i, r) in results.iter().enumerate() {
        let id = r
            .get("job_id")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("result {i}: missing job_id"))?;
        if id as usize != i {
            return Err(format!("result {i} has job_id {id} — not sorted/dense"));
        }
        validate_record(i, r)?;
    }
    Ok(SweepDigest {
        jobs,
        workers,
        jobs_per_sec,
    })
}

/// Validate one result record against its own schema tag (`v1` — `v5`).
fn validate_record(i: usize, r: &JsonValue) -> Result<(), String> {
    let record_schema = r
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("result {i}: missing record schema tag"))?;
    let (v2, v3, v4, v5) = match record_schema {
        "ups-sweep-record/v1" => (false, false, false, false),
        "ups-sweep-record/v2" => (true, false, false, false),
        "ups-sweep-record/v3" => (true, true, false, false),
        "ups-sweep-record/v4" => (true, true, true, false),
        "ups-sweep-record/v5" => (true, true, true, true),
        other => {
            return Err(format!(
                "result {i}: unexpected record schema {other:?} \
                 (expected ups-sweep-record/v1 through /v5)"
            ))
        }
    };
    let scenario = r
        .get("scenario")
        .ok_or_else(|| format!("result {i}: missing scenario"))?;
    for field in ["topology", "profile", "scheduler"] {
        if scenario.get(field).and_then(JsonValue::as_str).is_none() {
            return Err(format!("result {i}: scenario.{field} missing"));
        }
    }
    for field in ["utilization", "seed", "window_ms"] {
        if scenario.get(field).and_then(JsonValue::as_f64).is_none() {
            return Err(format!("result {i}: scenario.{field} missing"));
        }
    }
    let metrics = r
        .get("metrics")
        .ok_or_else(|| format!("result {i}: missing metrics"))?;
    for field in [
        "flows",
        "packets",
        "delivered",
        "dropped",
        "delay_mean_s",
        "delay_p99_s",
        "fct_mean_s",
    ] {
        if metrics.get(field).and_then(JsonValue::as_f64).is_none() {
            return Err(format!("result {i}: metrics.{field} missing"));
        }
    }
    if metrics
        .get("fct_buckets")
        .and_then(JsonValue::as_array)
        .is_none()
    {
        return Err(format!("result {i}: metrics.fct_buckets missing"));
    }
    if !v2 {
        // v1: Jain was unconditionally numeric; no traffic/transport.
        if metrics.get("jain").and_then(JsonValue::as_f64).is_none() {
            return Err(format!("result {i}: metrics.jain missing"));
        }
        return Ok(());
    }
    // v2: the traffic axis is part of the scenario, Jain may be null
    // (zero-delivery run), and closed-loop records carry a transport
    // block.
    let traffic = scenario
        .get("traffic")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("result {i}: scenario.traffic missing"))?;
    if traffic != "open-loop" && traffic != "closed-loop" {
        return Err(format!(
            "result {i}: unexpected scenario.traffic {traffic:?}"
        ));
    }
    match metrics.get("jain") {
        Some(JsonValue::Null) | Some(JsonValue::Number(_)) => {}
        Some(other) => {
            return Err(format!(
                "result {i}: metrics.jain must be number or null, got {other:?}"
            ))
        }
        None => return Err(format!("result {i}: metrics.jain missing")),
    }
    match metrics.get("transport") {
        Some(JsonValue::Null) => {
            if traffic == "closed-loop" {
                return Err(format!(
                    "result {i}: closed-loop record lacks a transport block"
                ));
            }
        }
        Some(t @ JsonValue::Object(_)) => {
            // v3 transport blocks additionally carry the fairness-slack
            // out-of-order warning counter.
            let fields: &[&str] = if v3 {
                &[
                    "completed_flows",
                    "goodput_bytes",
                    "retransmits",
                    "rto_events",
                    "slack_ooo",
                ]
            } else {
                &[
                    "completed_flows",
                    "goodput_bytes",
                    "retransmits",
                    "rto_events",
                ]
            };
            for field in fields {
                if t.get(field).and_then(JsonValue::as_f64).is_none() {
                    return Err(format!("result {i}: metrics.transport.{field} missing"));
                }
            }
        }
        Some(other) => {
            return Err(format!(
                "result {i}: metrics.transport must be object or null, got {other:?}"
            ))
        }
        None => return Err(format!("result {i}: metrics.transport missing")),
    }
    if !v3 {
        return Ok(());
    }
    // v3: the finite-priority-queue sub-axis. `queues`/`mapper` travel
    // together, and the quantized metrics are number-or-null.
    let queues = match scenario.get("queues") {
        Some(JsonValue::Null) => None,
        Some(JsonValue::Number(k)) if *k >= 1.0 => Some(*k),
        other => {
            return Err(format!(
                "result {i}: scenario.queues must be a positive number or null, got {other:?}"
            ))
        }
    };
    let mapper = match scenario.get("mapper") {
        Some(JsonValue::Null) => None,
        Some(JsonValue::String(m)) => Some(m.clone()),
        other => {
            return Err(format!(
                "result {i}: scenario.mapper must be a string or null, got {other:?}"
            ))
        }
    };
    if queues.is_some() != mapper.is_some() {
        return Err(format!(
            "result {i}: scenario.queues and scenario.mapper must be set together"
        ));
    }
    for field in [
        "quantized_match_rate",
        "quantized_frac_gt_t",
        "quantized_fct_delta_s",
    ] {
        match metrics.get(field) {
            Some(JsonValue::Null) | Some(JsonValue::Number(_)) => {}
            other => {
                return Err(format!(
                    "result {i}: metrics.{field} must be number or null, got {other:?}"
                ))
            }
        }
        if queues.is_none() && matches!(metrics.get(field), Some(JsonValue::Number(_))) {
            return Err(format!(
                "result {i}: metrics.{field} set but the scenario has no queues axis"
            ));
        }
    }
    if !v4 {
        return Ok(());
    }
    // v4: the network-dynamics axis. `failures`/`inflight` travel
    // together, and the disruption block is present exactly when the
    // scenario carries a failure spec.
    let failures = match scenario.get("failures") {
        Some(JsonValue::Null) => None,
        Some(JsonValue::String(f)) => Some(f.clone()),
        other => {
            return Err(format!(
                "result {i}: scenario.failures must be a string or null, got {other:?}"
            ))
        }
    };
    match scenario.get("inflight") {
        Some(JsonValue::Null) if failures.is_none() => {}
        Some(JsonValue::String(p)) if failures.is_some() && (p == "reroute" || p == "drop") => {}
        other => {
            return Err(format!(
                "result {i}: scenario.inflight must be reroute/drop exactly when \
                 failures is set, got {other:?}"
            ))
        }
    }
    match metrics.get("disruption") {
        Some(JsonValue::Null) => {
            if failures.is_some() {
                return Err(format!(
                    "result {i}: failure record lacks a disruption block"
                ));
            }
        }
        Some(d @ JsonValue::Object(_)) => {
            if failures.is_none() {
                return Err(format!(
                    "result {i}: disruption block on a static-network record"
                ));
            }
            for field in ["links_failed", "rerouted", "dropped_at_dead_link"] {
                if d.get(field).and_then(JsonValue::as_f64).is_none() {
                    return Err(format!("result {i}: metrics.disruption.{field} missing"));
                }
            }
            match d.get("churn_replay_match_rate") {
                Some(JsonValue::Null) | Some(JsonValue::Number(_)) => {}
                other => {
                    return Err(format!(
                        "result {i}: disruption.churn_replay_match_rate must be \
                         number or null, got {other:?}"
                    ))
                }
            }
        }
        other => {
            return Err(format!(
                "result {i}: metrics.disruption must be object or null, got {other:?}"
            ))
        }
    }
    if !v5 {
        return Ok(());
    }
    // v5: the divergence forensics block — object or null, and when
    // present its taxonomy must be *conserved*: each mismatched packet
    // got exactly one cause and one inversion class, so both families
    // sum back to the mismatch count. A block that doesn't is corrupt
    // attribution, not a schema quirk.
    match metrics.get("divergence") {
        Some(JsonValue::Null) => {}
        Some(d @ JsonValue::Object(_)) => {
            validate_divergence_block(&format!("result {i}"), d)?;
        }
        other => {
            return Err(format!(
                "result {i}: metrics.divergence must be object or null, got {other:?}"
            ))
        }
    }
    Ok(())
}

/// The five mismatch causes of `ups-forensics/v1`, in emission order.
const DIVERGENCE_CAUSES: [&str; 5] = [
    "overdue_within_t",
    "overdue_beyond_t",
    "missing_in_replay",
    "dead_link_drop",
    "buffer_drop",
];

/// The five first-divergent-hop inversion classes, in emission order.
const DIVERGENCE_INVERSIONS: [&str; 5] = [
    "rank_tie_break",
    "bucket_collision",
    "reroute",
    "queue_overflow",
    "exit_only",
];

/// Validate one `ups-forensics/v1` object wherever it appears (the v5
/// record's `divergence` block, every divergence-bench row). Returns the
/// block's mismatch count. Shared so the conservation laws — Σ causes ≡
/// Σ inversions ≡ mismatches — are enforced identically everywhere.
fn validate_divergence_block(ctx: &str, d: &JsonValue) -> Result<u64, String> {
    let tag = d
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("{ctx}: divergence block lacks its schema tag"))?;
    if tag != "ups-forensics/v1" {
        return Err(format!(
            "{ctx}: divergence schema {tag:?} (expected \"ups-forensics/v1\")"
        ));
    }
    let field = |name: &str| -> Result<f64, String> {
        d.get(name)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{ctx}: divergence.{name} missing"))
    };
    let mismatches = field("mismatches")?;
    for (family, names) in [
        ("cause", &DIVERGENCE_CAUSES),
        ("inversion", &DIVERGENCE_INVERSIONS),
    ] {
        let mut sum = 0.0;
        for name in *names {
            sum += field(name)?;
        }
        if sum != mismatches {
            return Err(format!(
                "{ctx}: divergence {family} counts sum to {sum} \
                 but mismatches is {mismatches} — attribution not conserved"
            ));
        }
    }
    for name in ["hop_lateness_p50_s", "hop_lateness_p99_s"] {
        match d.get(name) {
            Some(JsonValue::Null) | Some(JsonValue::Number(_)) => {}
            other => {
                return Err(format!(
                    "{ctx}: divergence.{name} must be number or null, got {other:?}"
                ))
            }
        }
    }
    let nodes = d
        .get("top_nodes")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("{ctx}: divergence.top_nodes missing"))?;
    for (j, n) in nodes.iter().enumerate() {
        for name in ["node", "mismatches"] {
            if n.get(name).and_then(JsonValue::as_f64).is_none() {
                return Err(format!("{ctx}: divergence.top_nodes[{j}].{name} missing"));
            }
        }
    }
    Ok(mismatches as u64)
}

/// What a valid quantized-bench artifact reports.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedDigest {
    /// Finite-K rows recorded (the `k = null` row is the ∞ point).
    pub rows: usize,
    /// Match rate of the exact (K=∞) replay.
    pub exact_match_rate: f64,
}

/// Validate a `BENCH_quantized.json` document (the `quantized` bench's
/// K-sweep artifact; schema [`QUANTIZED_BENCH_SCHEMA`]). Checked by the
/// same `sweep --validate` entry point as the sweep artifacts: the tag
/// dispatches. Every failure is an `Err` naming the offending field.
pub fn validate_bench_quantized(doc: &str) -> Result<QuantizedDigest, String> {
    let v = parse(doc).map_err(|e| format!("not JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema tag")?;
    if schema != QUANTIZED_BENCH_SCHEMA {
        return Err(format!(
            "unexpected schema {schema:?} (expected {QUANTIZED_BENCH_SCHEMA:?})"
        ));
    }
    let scenario = v.get("scenario").ok_or("missing scenario block")?;
    for field in ["topology", "original", "mapper"] {
        if scenario.get(field).and_then(JsonValue::as_str).is_none() {
            return Err(format!("scenario.{field} missing"));
        }
    }
    for field in ["packets", "seed", "utilization"] {
        if scenario.get(field).and_then(JsonValue::as_f64).is_none() {
            return Err(format!("scenario.{field} missing"));
        }
    }
    let results = v
        .get("results")
        .and_then(JsonValue::as_array)
        .ok_or("missing results array")?;
    if results.is_empty() {
        return Err("results array is empty".into());
    }
    let mut exact_match_rate = None;
    for (i, r) in results.iter().enumerate() {
        // k: finite queue count, or null for the ∞ (exact) row.
        let k = match r.get("k") {
            Some(JsonValue::Null) => None,
            Some(JsonValue::Number(k)) if *k >= 1.0 => Some(*k),
            other => return Err(format!("row {i}: bad k {other:?}")),
        };
        for field in ["match_rate", "frac_gt_t", "mean_fct_s"] {
            if r.get(field).and_then(JsonValue::as_f64).is_none() {
                return Err(format!("row {i}: {field} missing"));
            }
        }
        if k.is_none() {
            if exact_match_rate.is_some() {
                return Err("more than one k = null (exact) row".into());
            }
            exact_match_rate = r.get("match_rate").and_then(JsonValue::as_f64);
            match r.get("bit_identical_to_exact_lstf") {
                Some(JsonValue::Bool(true)) => {}
                other => {
                    return Err(format!(
                        "exact row must assert bit_identical_to_exact_lstf: true, got {other:?}"
                    ))
                }
            }
        }
    }
    let exact_match_rate = exact_match_rate.ok_or("no k = null (exact) row")?;
    Ok(QuantizedDigest {
        rows: results.len() - 1,
        exact_match_rate,
    })
}

/// What a valid failures-bench artifact reports.
#[derive(Debug, Clone, PartialEq)]
pub struct FailuresDigest {
    /// Intensity rows recorded (including the zero-failure baseline).
    pub rows: usize,
    /// Match rate of the zero-failure (static-network) row.
    pub baseline_match_rate: f64,
    /// Match rate of the highest-intensity row.
    pub worst_match_rate: f64,
}

/// Validate a `BENCH_failures.json` document (the `failures` bench's
/// match-rate-vs-failure-intensity curve; schema
/// [`FAILURES_BENCH_SCHEMA`]). Dispatched from the same
/// `sweep --validate` entry point by its schema tag. Rows must be sorted
/// by ascending `rate`, start at `rate: 0`, and the zero row must assert
/// bit-identity with the static-routing run.
pub fn validate_bench_failures(doc: &str) -> Result<FailuresDigest, String> {
    let v = parse(doc).map_err(|e| format!("not JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema tag")?;
    if schema != FAILURES_BENCH_SCHEMA {
        return Err(format!(
            "unexpected schema {schema:?} (expected {FAILURES_BENCH_SCHEMA:?})"
        ));
    }
    let scenario = v.get("scenario").ok_or("missing scenario block")?;
    for field in ["topology", "original", "profile", "inflight"] {
        if scenario.get(field).and_then(JsonValue::as_str).is_none() {
            return Err(format!("scenario.{field} missing"));
        }
    }
    for field in ["packets", "seed", "utilization"] {
        if scenario.get(field).and_then(JsonValue::as_f64).is_none() {
            return Err(format!("scenario.{field} missing"));
        }
    }
    let results = v
        .get("results")
        .and_then(JsonValue::as_array)
        .ok_or("missing results array")?;
    if results.len() < 2 {
        return Err("need at least the zero-failure row and one churn row".into());
    }
    let mut last_rate = f64::NEG_INFINITY;
    let mut baseline = None;
    let mut worst = None;
    for (i, r) in results.iter().enumerate() {
        let rate = r
            .get("rate")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("row {i}: rate missing"))?;
        if !(0.0..=1.0).contains(&rate) || rate <= last_rate {
            return Err(format!(
                "row {i}: rate {rate} must ascend within [0, 1] (prev {last_rate})"
            ));
        }
        last_rate = rate;
        for field in [
            "links_failed",
            "rerouted",
            "dropped_at_dead_link",
            "delivered",
            "match_rate",
            "frac_gt_t",
        ] {
            if r.get(field).and_then(JsonValue::as_f64).is_none() {
                return Err(format!("row {i}: {field} missing"));
            }
        }
        let match_rate = r.get("match_rate").and_then(JsonValue::as_f64).unwrap();
        if i == 0 {
            if rate != 0.0 {
                return Err("first row must be the zero-failure baseline".into());
            }
            match r.get("bit_identical_to_static_routing") {
                Some(JsonValue::Bool(true)) => {}
                other => {
                    return Err(format!(
                        "zero-failure row must assert bit_identical_to_static_routing: \
                         true, got {other:?}"
                    ))
                }
            }
            baseline = Some(match_rate);
        }
        worst = Some(match_rate);
    }
    Ok(FailuresDigest {
        rows: results.len(),
        baseline_match_rate: baseline.expect("checked row 0"),
        worst_match_rate: worst.expect("non-empty"),
    })
}

/// What a valid scale-bench artifact reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleDigest {
    /// Packets simulated through the streaming path.
    pub packets: u64,
    /// Flows in the workload.
    pub flows: u64,
    /// Peak resident-set size of the bench process, bytes.
    pub peak_rss_bytes: u64,
    /// LSTF replay match rate on the scale scenario.
    pub replay_match_rate: f64,
}

/// Validate a `BENCH_scale.json` document (the `scale` bench's
/// bounded-memory streaming-pipeline artifact; schema
/// [`SCALE_BENCH_SCHEMA`]). Dispatched from the same `sweep --validate`
/// entry point by its schema tag. Enforces the issue's floors — ≥5M
/// packets, ≥10k flows — plus peak RSS within the recorded budget and a
/// fully-green differential block (streaming and resident layouts
/// bit-identical on records, reports and summaries).
pub fn validate_bench_scale(doc: &str) -> Result<ScaleDigest, String> {
    let v = parse(doc).map_err(|e| format!("not JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema tag")?;
    if schema != SCALE_BENCH_SCHEMA {
        return Err(format!(
            "unexpected schema {schema:?} (expected {SCALE_BENCH_SCHEMA:?})"
        ));
    }
    let scenario = v.get("scenario").ok_or("missing scenario block")?;
    for field in ["topology", "scheduler"] {
        if scenario.get(field).and_then(JsonValue::as_str).is_none() {
            return Err(format!("scenario.{field} missing"));
        }
    }
    for field in ["utilization", "flow_bytes", "window_ms", "seed"] {
        if scenario.get(field).and_then(JsonValue::as_f64).is_none() {
            return Err(format!("scenario.{field} missing"));
        }
    }
    let num = |field: &str| -> Result<f64, String> {
        v.get(field)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{field} missing"))
    };
    let packets = num("packets")?;
    if packets < 5_000_000.0 {
        return Err(format!("packets {packets} below the 5M floor"));
    }
    let flows = num("flows")?;
    if flows < 10_000.0 {
        return Err(format!("flows {flows} below the 10k floor"));
    }
    let delivered = num("delivered")?;
    let dropped = num("dropped")?;
    if delivered + dropped != packets {
        return Err(format!(
            "delivered {delivered} + dropped {dropped} != packets {packets}"
        ));
    }
    let peak = num("peak_rss_bytes")?;
    let budget = num("rss_budget_bytes")?;
    if peak <= 0.0 || peak > budget {
        return Err(format!(
            "peak_rss_bytes {peak} outside (0, budget {budget}]"
        ));
    }
    if num("packets_per_sec")? <= 0.0 {
        return Err("packets_per_sec must be positive".into());
    }
    let match_rate = num("replay_match_rate")?;
    if !(0.0..=1.0).contains(&match_rate) {
        return Err(format!("replay_match_rate {match_rate} outside [0, 1]"));
    }
    let frac_gt_t = num("replay_frac_gt_t")?;
    if !(0.0..=1.0).contains(&frac_gt_t) {
        return Err(format!("replay_frac_gt_t {frac_gt_t} outside [0, 1]"));
    }
    let diff = v.get("differential").ok_or("missing differential block")?;
    if diff
        .get("workload_packets")
        .and_then(JsonValue::as_f64)
        .is_none_or(|p| p < 100_000.0)
    {
        return Err("differential.workload_packets must be ≥ 100k".into());
    }
    for field in [
        "records_identical",
        "reports_identical",
        "summaries_identical",
    ] {
        match diff.get(field) {
            Some(JsonValue::Bool(true)) => {}
            other => {
                return Err(format!(
                    "differential.{field} must assert true, got {other:?}"
                ))
            }
        }
    }
    Ok(ScaleDigest {
        packets: packets as u64,
        flows: flows as u64,
        peak_rss_bytes: peak as u64,
        replay_match_rate: match_rate,
    })
}

/// What a valid sweep-telemetry time-series artifact reports.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesDigest {
    /// Workers the pool ran with.
    pub workers: u64,
    /// Heartbeat ticks recorded (≥ 1: the completion tick always fires).
    pub ticks: usize,
    /// Jobs done at the final tick (must equal the sweep total).
    pub jobs: u64,
    /// Wall seconds for the whole sweep.
    pub wall_s: f64,
}

/// Validate a `*.timeseries.json` document (the run-level sweep-telemetry
/// artifact `--telemetry` writes; schema [`ups_obs::TIMESERIES_SCHEMA`]).
/// Dispatched from `sweep --validate` by its schema tag. Enforces a
/// non-empty tick history with monotone `t_s`/`done`, per-worker rows on
/// every tick, and a final completion tick where `done == total`.
pub fn validate_obs_timeseries(doc: &str) -> Result<TimeSeriesDigest, String> {
    let v = parse(doc).map_err(|e| format!("not JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema tag")?;
    if schema != ups_obs::TIMESERIES_SCHEMA {
        return Err(format!(
            "unexpected schema {schema:?} (expected {:?})",
            ups_obs::TIMESERIES_SCHEMA
        ));
    }
    let num = |field: &str| -> Result<f64, String> {
        v.get(field)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{field} missing"))
    };
    let workers = num("workers")?;
    if workers < 1.0 {
        return Err(format!("workers {workers} must be ≥ 1"));
    }
    num("steals")?;
    let wall_s = num("wall_s")?;
    if wall_s < 0.0 {
        return Err(format!("wall_s {wall_s} must be ≥ 0"));
    }
    let ticks = v
        .get("heartbeats")
        .and_then(JsonValue::as_array)
        .ok_or("missing heartbeats array")?;
    if ticks.is_empty() {
        return Err("heartbeats empty (the completion tick always fires)".into());
    }
    let mut last_t = f64::NEG_INFINITY;
    let mut last_done = 0.0;
    let mut final_done = 0.0;
    for (i, tick) in ticks.iter().enumerate() {
        let tick_schema = tick
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("tick {i}: missing schema tag"))?;
        if tick_schema != ups_obs::HEARTBEAT_SCHEMA {
            return Err(format!(
                "tick {i}: unexpected schema {tick_schema:?} (expected {:?})",
                ups_obs::HEARTBEAT_SCHEMA
            ));
        }
        let field = |name: &str| -> Result<f64, String> {
            tick.get(name)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("tick {i}: {name} missing"))
        };
        let t_s = field("t_s")?;
        if t_s < last_t {
            return Err(format!("tick {i}: t_s {t_s} regressed (prev {last_t})"));
        }
        last_t = t_s;
        let done = field("done")?;
        let total = field("total")?;
        if done > total {
            return Err(format!("tick {i}: done {done} exceeds total {total}"));
        }
        if done < last_done {
            return Err(format!(
                "tick {i}: done {done} regressed (prev {last_done})"
            ));
        }
        last_done = done;
        field("jobs_per_sec")?;
        let rows = tick
            .get("workers")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("tick {i}: missing workers array"))?;
        if rows.len() != workers as usize {
            return Err(format!(
                "tick {i}: {} worker rows for a {workers}-worker pool",
                rows.len()
            ));
        }
        for (w, row) in rows.iter().enumerate() {
            for name in [
                "worker",
                "jobs",
                "busy_s",
                "utilization",
                "steals",
                "stolen_from",
            ] {
                if row.get(name).and_then(JsonValue::as_f64).is_none() {
                    return Err(format!("tick {i} worker {w}: {name} missing"));
                }
            }
        }
        if i == ticks.len() - 1 {
            if done != total {
                return Err(format!(
                    "final tick: done {done} != total {total} (sweep incomplete?)"
                ));
            }
            final_done = done;
        }
    }
    Ok(TimeSeriesDigest {
        workers: workers as u64,
        ticks: ticks.len(),
        jobs: final_done as u64,
        wall_s,
    })
}

/// What a valid probe-overhead bench artifact reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsDigest {
    /// Packets each measured run delivered.
    pub packets: u64,
    /// The overhead ceiling the bench enforced.
    pub tolerance: f64,
    /// Measured probe-off overhead vs the un-instrumented baseline
    /// (negative means probe-off was faster on this run).
    pub probe_off_overhead: f64,
    /// Measured probe-on overhead vs the un-instrumented baseline.
    pub probe_on_overhead: f64,
}

/// Validate a `BENCH_obs.json` document (the `obs_overhead` bench's
/// zero-cost-when-off artifact; schema [`OBS_BENCH_SCHEMA`]). Dispatched
/// from `sweep --validate` by its schema tag. Enforces the issue's
/// contract — probe-off throughput within the recorded tolerance of the
/// un-instrumented baseline, bit-identical fingerprints across all three
/// modes, and a non-empty sampled series in probe-on mode.
pub fn validate_bench_obs(doc: &str) -> Result<ObsDigest, String> {
    let v = parse(doc).map_err(|e| format!("not JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema tag")?;
    if schema != OBS_BENCH_SCHEMA {
        return Err(format!(
            "unexpected schema {schema:?} (expected {OBS_BENCH_SCHEMA:?})"
        ));
    }
    let scenario = v.get("scenario").ok_or("missing scenario block")?;
    for field in ["topology", "scheduler"] {
        if scenario.get(field).and_then(JsonValue::as_str).is_none() {
            return Err(format!("scenario.{field} missing"));
        }
    }
    let num = |field: &str| -> Result<f64, String> {
        v.get(field)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{field} missing"))
    };
    let packets = num("packets")?;
    if packets <= 0.0 {
        return Err(format!("packets {packets} must be positive"));
    }
    if num("runs")? < 1.0 {
        return Err("runs must be ≥ 1".into());
    }
    let tolerance = num("tolerance")?;
    if tolerance <= 0.0 {
        return Err(format!("tolerance {tolerance} must be positive"));
    }
    for mode in ["uninstrumented", "probe_off", "probe_on"] {
        let m = v.get(mode).ok_or_else(|| format!("missing {mode} block"))?;
        let pps = m
            .get("packets_per_sec")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{mode}.packets_per_sec missing"))?;
        if pps <= 0.0 {
            return Err(format!("{mode}.packets_per_sec {pps} must be positive"));
        }
    }
    if v.get("probe_on")
        .and_then(|m| m.get("samples"))
        .and_then(JsonValue::as_f64)
        .is_none_or(|s| s < 1.0)
    {
        return Err("probe_on.samples must be ≥ 1 (series never sampled)".into());
    }
    let probe_off_overhead = num("probe_off_overhead")?;
    if probe_off_overhead.abs() > tolerance {
        // Two-sided on purpose: a large *negative* overhead means
        // probe-off beat the hook-free loop, i.e. the baseline run (or
        // the machine) cannot be trusted — as invalid as a slowdown.
        return Err(format!(
            "probe_off_overhead {probe_off_overhead} outside ±tolerance {tolerance}"
        ));
    }
    let probe_on_overhead = num("probe_on_overhead")?;
    match v.get("fingerprints_identical") {
        Some(JsonValue::Bool(true)) => {}
        other => {
            return Err(format!(
                "fingerprints_identical must assert true, got {other:?}"
            ))
        }
    }
    Ok(ObsDigest {
        packets: packets as u64,
        tolerance,
        probe_off_overhead,
        probe_on_overhead,
    })
}

/// What a valid divergence-forensics bench artifact reports.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceDigest {
    /// Rows on the quantization axis (including the `k = null` exact row).
    pub quantization_rows: usize,
    /// Rows on the failure-rate axis (including the zero-failure row).
    pub failure_rows: usize,
    /// Mismatches attributed across every row of both axes.
    pub total_mismatches: u64,
}

/// Validate a `BENCH_divergence.json` document (the `forensics` bench's
/// blame-distribution artifact; schema [`DIVERGENCE_BENCH_SCHEMA`]).
/// Dispatched from the same `sweep --validate` entry point by its schema
/// tag. Both axes must be present and non-trivial: `quantization` rows
/// ascend in K and end in exactly one `k: null` (exact-LSTF) row;
/// `failures` rows ascend in rate starting from the zero-failure
/// baseline. Every row embeds an `ups-forensics/v1` block whose cause and
/// inversion counts each sum to the row's mismatch count.
pub fn validate_bench_divergence(doc: &str) -> Result<DivergenceDigest, String> {
    let v = parse(doc).map_err(|e| format!("not JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema tag")?;
    if schema != DIVERGENCE_BENCH_SCHEMA {
        return Err(format!(
            "unexpected schema {schema:?} (expected {DIVERGENCE_BENCH_SCHEMA:?})"
        ));
    }
    let scenario = v.get("scenario").ok_or("missing scenario block")?;
    for field in ["topology", "original", "profile"] {
        if scenario.get(field).and_then(JsonValue::as_str).is_none() {
            return Err(format!("scenario.{field} missing"));
        }
    }
    for field in ["packets", "seed", "utilization"] {
        if scenario.get(field).and_then(JsonValue::as_f64).is_none() {
            return Err(format!("scenario.{field} missing"));
        }
    }
    let mut total_mismatches = 0u64;
    let mut row_common = |axis: &str, i: usize, r: &JsonValue| -> Result<(), String> {
        for field in ["compared", "match_rate"] {
            if r.get(field).and_then(JsonValue::as_f64).is_none() {
                return Err(format!("{axis} row {i}: {field} missing"));
            }
        }
        let d = match r.get("divergence") {
            Some(d @ JsonValue::Object(_)) => d,
            other => {
                return Err(format!(
                    "{axis} row {i}: divergence must be an object, got {other:?}"
                ))
            }
        };
        total_mismatches += validate_divergence_block(&format!("{axis} row {i}"), d)?;
        Ok(())
    };

    let quant = v
        .get("quantization")
        .and_then(JsonValue::as_array)
        .ok_or("missing quantization axis")?;
    if quant.len() < 2 {
        return Err("quantization axis needs at least one finite-K row and the exact row".into());
    }
    let mut last_k = 0.0f64;
    let mut saw_exact = false;
    for (i, r) in quant.iter().enumerate() {
        match r.get("k") {
            Some(JsonValue::Number(k)) if *k >= 1.0 => {
                if saw_exact {
                    return Err(format!(
                        "quantization row {i}: finite K after the k = null exact row"
                    ));
                }
                if *k <= last_k {
                    return Err(format!(
                        "quantization row {i}: K {k} must ascend (prev {last_k})"
                    ));
                }
                last_k = *k;
            }
            Some(JsonValue::Null) => {
                if saw_exact {
                    return Err("more than one k = null (exact) row".into());
                }
                saw_exact = true;
            }
            other => return Err(format!("quantization row {i}: bad k {other:?}")),
        }
        row_common("quantization", i, r)?;
    }
    if !saw_exact {
        return Err("quantization axis lacks the k = null (exact) row".into());
    }

    let failures = v
        .get("failures")
        .and_then(JsonValue::as_array)
        .ok_or("missing failures axis")?;
    if failures.len() < 2 {
        return Err("failures axis needs the zero-failure row and one churn row".into());
    }
    let mut last_rate = f64::NEG_INFINITY;
    for (i, r) in failures.iter().enumerate() {
        let rate = r
            .get("rate")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("failures row {i}: rate missing"))?;
        if !(0.0..=1.0).contains(&rate) || rate <= last_rate {
            return Err(format!(
                "failures row {i}: rate {rate} must ascend within [0, 1] (prev {last_rate})"
            ));
        }
        if i == 0 && rate != 0.0 {
            return Err("first failures row must be the zero-failure baseline".into());
        }
        last_rate = rate;
        row_common("failures", i, r)?;
    }

    Ok(DivergenceDigest {
        quantization_rows: quant.len(),
        failure_rows: failures.len(),
        total_mismatches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::JobSpec;
    use ups_metrics::RunSummary;
    use ups_netsim::prelude::Dur;

    fn record(job_id: usize) -> JobRecord {
        JobRecord {
            spec: std::sync::Arc::new(JobSpec {
                job_id,
                topology: "Line(3)".into(),
                profile: "web-search".into(),
                scheduler: "FIFO".into(),
                traffic: crate::grid::TrafficMode::OpenLoop,
                rest_bps: None,
                utilization: 0.7,
                seed: 1,
                window: Dur::from_ms(1),
                horizon: None,
                buffer_bytes: None,
                replay: false,
                queues: None,
                mapper: None,
                failures: None,
                inflight: None,
                max_packets: None,
            }),
            summary: RunSummary {
                flows: 1,
                packets: 10,
                delivered: 10,
                dropped: 0,
                delay_mean_s: 0.001,
                delay_p99_s: 0.002,
                fct_mean_s: 0.1,
                fct_buckets: vec![(1460, 0.1, 1)],
                jain: Some(1.0),
                replay_match_rate: None,
                replay_frac_gt_t: None,
                quantized_match_rate: None,
                quantized_frac_gt_t: None,
                quantized_fct_delta_s: None,
                transport: None,
                disruption: None,
                divergence: None,
            },
            wall_s: 0.5,
        }
    }

    fn failure_record(job_id: usize) -> JobRecord {
        let mut r = record(job_id);
        let spec = std::sync::Arc::make_mut(&mut r.spec);
        spec.replay = true;
        spec.failures = Some("random-links:0.4".into());
        spec.inflight = Some("reroute".into());
        r.summary.replay_match_rate = Some(0.87);
        r.summary.replay_frac_gt_t = Some(0.01);
        r.summary.disruption = Some(ups_metrics::DisruptionSummary {
            links_failed: 3,
            rerouted: 42,
            dropped_at_dead_link: 5,
            churn_replay_match_rate: Some(0.87),
        });
        r
    }

    fn quantized_record(job_id: usize) -> JobRecord {
        let mut r = record(job_id);
        let spec = std::sync::Arc::make_mut(&mut r.spec);
        spec.replay = true;
        spec.queues = Some(8);
        spec.mapper = Some("dynamic".into());
        r.summary.replay_match_rate = Some(0.99);
        r.summary.replay_frac_gt_t = Some(0.001);
        r.summary.quantized_match_rate = Some(0.91);
        r.summary.quantized_frac_gt_t = Some(0.02);
        r.summary.quantized_fct_delta_s = Some(0.0004);
        // Replay records carry the v5 forensics block; keep the counts
        // conserved (6 + 3 = 9 = 7 + 2) so the validator accepts it.
        r.summary.divergence = Some(ups_metrics::DivergenceSummary {
            mismatches: 9,
            overdue_within_t: 6,
            overdue_beyond_t: 3,
            missing_in_replay: 0,
            dead_link_drop: 0,
            buffer_drop: 0,
            rank_tie_break: 0,
            bucket_collision: 7,
            reroute: 0,
            queue_overflow: 0,
            exit_only: 2,
            top_nodes: vec![(1, 6), (4, 3)],
            hop_lateness_p50_s: Some(1.5e-6),
            hop_lateness_p99_s: Some(8.0e-6),
        });
        r
    }

    fn closed_record(job_id: usize) -> JobRecord {
        let mut r = record(job_id);
        let spec = std::sync::Arc::make_mut(&mut r.spec);
        spec.traffic = crate::grid::TrafficMode::ClosedLoop;
        spec.horizon = Some(Dur::from_ms(20));
        r.summary.transport = Some(ups_metrics::TransportSummary {
            completed_flows: 1,
            goodput_bytes: 9000,
            retransmits: 0,
            rto_events: 0,
            slack_ooo: 0,
        });
        r
    }

    fn grid() -> ScenarioGrid {
        ScenarioGrid {
            topologies: vec!["Line(3)".into()],
            schedulers: vec!["FIFO".into()],
            seeds: vec![1, 2],
            ..ScenarioGrid::default()
        }
    }

    fn pool_stats(workers: usize, jobs: usize, steals: u64) -> PoolStats {
        PoolStats {
            workers,
            jobs,
            steals,
            per_worker: Vec::new(),
        }
    }

    #[test]
    fn aggregate_validates_and_digest_matches() {
        let records = [record(0), record(1)];
        let stats = pool_stats(4, 2, 1);
        let doc = bench_sweep_json(&grid(), &records, &stats, 2.0);
        let digest = validate_bench_sweep(&doc).expect("valid artifact");
        assert_eq!(
            digest,
            SweepDigest {
                jobs: 2,
                workers: 4,
                jobs_per_sec: 1.0
            }
        );
    }

    #[test]
    fn aggregate_sorts_records_by_job_id() {
        // Hand the records in completion order; the artifact must not care.
        let records = [record(1), record(0)];
        let stats = pool_stats(1, 2, 0);
        let doc = bench_sweep_json(&grid(), &records, &stats, 1.0);
        validate_bench_sweep(&doc).expect("sorted despite unsorted input");
    }

    #[test]
    fn validation_rejects_broken_artifacts() {
        let records = [record(0)];
        let stats = pool_stats(1, 1, 0);
        let good = bench_sweep_json(&grid(), &records, &stats, 1.0);
        assert!(validate_bench_sweep("not json").is_err());
        assert!(validate_bench_sweep("{}").is_err());
        let wrong_schema = good.replace(SWEEP_SCHEMA, "ups-sweep/v0");
        assert!(validate_bench_sweep(&wrong_schema)
            .unwrap_err()
            .contains("schema"));
        let missing_metric = good.replace(r#""jain":"#, r#""gain":"#);
        assert!(validate_bench_sweep(&missing_metric)
            .unwrap_err()
            .contains("jain"));
        // A record schema from the future names the unexpected tag.
        let future = good.replace("ups-sweep-record/v5", "ups-sweep-record/v9");
        let err = validate_bench_sweep(&future).unwrap_err();
        assert!(
            err.contains("ups-sweep-record/v9") && err.contains("unexpected record schema"),
            "unhelpful error: {err}"
        );
        // A bogus traffic label is caught.
        let bad_traffic = good.replace(r#""traffic":"open-loop""#, r#""traffic":"sideways""#);
        assert!(validate_bench_sweep(&bad_traffic)
            .unwrap_err()
            .contains("traffic"));
    }

    #[test]
    fn v1_through_v5_artifacts_all_validate() {
        // A current artifact with open-loop, closed-loop, quantized and
        // failure records (v5 record lines inside the v4 aggregate —
        // each line is validated against its own tag).
        let records = [
            record(0),
            closed_record(1),
            quantized_record(2),
            failure_record(3),
        ];
        let stats = pool_stats(1, 4, 0);
        let v4_doc = bench_sweep_json(&grid(), &records, &stats, 1.0);
        validate_bench_sweep(&v4_doc).expect("current artifact validates");
        // The forensics conservation law: inflating one cause count
        // breaks Σ causes == mismatches and must be rejected.
        let unconserved = v4_doc.replace(r#""overdue_within_t":6"#, r#""overdue_within_t":7"#);
        assert!(validate_bench_sweep(&unconserved)
            .unwrap_err()
            .contains("not conserved"));
        // ...and so does inflating an inversion count.
        let unconserved = v4_doc.replace(r#""bucket_collision":7"#, r#""bucket_collision":8"#);
        assert!(validate_bench_sweep(&unconserved)
            .unwrap_err()
            .contains("not conserved"));
        // A divergence block without its own schema tag is rejected.
        let untagged = v4_doc.replace(
            r#""divergence":{"schema":"ups-forensics/v1","#,
            r#""divergence":{"#,
        );
        assert!(validate_bench_sweep(&untagged)
            .unwrap_err()
            .contains("schema tag"));
        // queues and mapper must travel together.
        let torn = v4_doc.replace(
            r#""queues":8,"mapper":"dynamic""#,
            r#""queues":8,"mapper":null"#,
        );
        assert!(validate_bench_sweep(&torn)
            .unwrap_err()
            .contains("set together"));
        // Quantized metrics without the axis are inconsistent.
        let orphan = v4_doc.replace(
            r#""quantized_match_rate":null"#,
            r#""quantized_match_rate":0.5"#,
        );
        assert!(validate_bench_sweep(&orphan)
            .unwrap_err()
            .contains("no queues axis"));
        // failures and inflight must travel together.
        let torn = v4_doc.replace(
            r#""failures":"random-links:0.4","inflight":"reroute""#,
            r#""failures":"random-links:0.4","inflight":null"#,
        );
        assert!(validate_bench_sweep(&torn)
            .unwrap_err()
            .contains("inflight"));
        // A failure record must carry its disruption block...
        let gone = v4_doc.replace(
            r#""disruption":{"links_failed":3,"rerouted":42,"dropped_at_dead_link":5,"churn_replay_match_rate":0.87}"#,
            r#""disruption":null"#,
        );
        assert!(validate_bench_sweep(&gone)
            .unwrap_err()
            .contains("disruption"));
        // ...and a static record must not.
        let sprouted = v4_doc.replacen(
            r#""disruption":null"#,
            r#""disruption":{"links_failed":1,"rerouted":0,"dropped_at_dead_link":0,"churn_replay_match_rate":null}"#,
            1,
        );
        assert!(validate_bench_sweep(&sprouted)
            .unwrap_err()
            .contains("static-network"));

        // A hand-rolled v2 artifact (pre-queues-axis) still validates.
        let v2_doc = r#"{
  "schema": "ups-sweep/v2",
  "grid": {"topologies": ["Line(3)"]},
  "workers": 1,
  "steals": 0,
  "jobs": 1,
  "wall_s": 1.0,
  "jobs_per_sec": 1.0,
  "results": [
    {"schema": "ups-sweep-record/v2", "job_id": 0,
     "scenario": {"topology": "Line(3)", "profile": "web-search", "scheduler": "FIFO",
                  "traffic": "open-loop", "rest_bps": null, "utilization": 0.7,
                  "seed": 1, "window_ms": 1, "horizon_ms": null, "buffer_bytes": null,
                  "replay": false, "max_packets": null},
     "metrics": {"flows": 1, "packets": 10, "delivered": 10, "dropped": 0,
                 "delay_mean_s": 0.001, "delay_p99_s": 0.002, "fct_mean_s": 0.1,
                 "jain": 1.0, "replay_match_rate": null, "replay_frac_gt_t": null,
                 "transport": null, "fct_buckets": []},
     "wall_s": 0.5}
  ]
}"#;
        validate_bench_sweep(v2_doc).expect("v2 artifact still validates");

        // A hand-rolled v1 artifact (numeric jain, no traffic/transport)
        // — the form every pre-traffic-axis BENCH_sweep.json has.
        let v1_doc = r#"{
  "schema": "ups-sweep/v1",
  "grid": {"topologies": ["Line(3)"]},
  "workers": 1,
  "steals": 0,
  "jobs": 1,
  "wall_s": 1.0,
  "jobs_per_sec": 1.0,
  "results": [
    {"schema": "ups-sweep-record/v1", "job_id": 0,
     "scenario": {"topology": "Line(3)", "profile": "web-search", "scheduler": "FIFO",
                  "utilization": 0.7, "seed": 1, "window_ms": 1, "replay": false,
                  "max_packets": null},
     "metrics": {"flows": 1, "packets": 10, "delivered": 10, "dropped": 0,
                 "delay_mean_s": 0.001, "delay_p99_s": 0.002, "fct_mean_s": 0.1,
                 "jain": 1.0, "replay_match_rate": null, "replay_frac_gt_t": null,
                 "fct_buckets": []},
     "wall_s": 0.5}
  ]
}"#;
        validate_bench_sweep(v1_doc).expect("v1 artifact still validates");
        // But a v1 record may not drop jain.
        let broken = v1_doc.replace(r#""jain": 1.0"#, r#""joan": 1.0"#);
        assert!(validate_bench_sweep(&broken).unwrap_err().contains("jain"));

        // A hand-rolled v3 artifact (pre-failure-axis) still validates.
        let v3_doc = r#"{
  "schema": "ups-sweep/v3",
  "grid": {"topologies": ["Line(3)"]},
  "workers": 1,
  "steals": 0,
  "jobs": 1,
  "wall_s": 1.0,
  "jobs_per_sec": 1.0,
  "results": [
    {"schema": "ups-sweep-record/v3", "job_id": 0,
     "scenario": {"topology": "Line(3)", "profile": "web-search", "scheduler": "FIFO",
                  "traffic": "open-loop", "rest_bps": null, "utilization": 0.7,
                  "seed": 1, "window_ms": 1, "horizon_ms": null, "buffer_bytes": null,
                  "replay": false, "queues": null, "mapper": null, "max_packets": null},
     "metrics": {"flows": 1, "packets": 10, "delivered": 10, "dropped": 0,
                 "delay_mean_s": 0.001, "delay_p99_s": 0.002, "fct_mean_s": 0.1,
                 "jain": 1.0, "replay_match_rate": null, "replay_frac_gt_t": null,
                 "quantized_match_rate": null, "quantized_frac_gt_t": null,
                 "quantized_fct_delta_s": null, "transport": null, "fct_buckets": []},
     "wall_s": 0.5}
  ]
}"#;
        validate_bench_sweep(v3_doc).expect("v3 artifact still validates");

        // A hand-rolled v4 record (pre-forensics) still validates: the
        // divergence block is a v5 surface, so its absence is fine.
        let v4_compat_doc = r#"{
  "schema": "ups-sweep/v4",
  "grid": {"topologies": ["Line(3)"]},
  "workers": 1,
  "steals": 0,
  "jobs": 1,
  "wall_s": 1.0,
  "jobs_per_sec": 1.0,
  "results": [
    {"schema": "ups-sweep-record/v4", "job_id": 0,
     "scenario": {"topology": "Line(3)", "profile": "web-search", "scheduler": "FIFO",
                  "traffic": "open-loop", "rest_bps": null, "utilization": 0.7,
                  "seed": 1, "window_ms": 1, "horizon_ms": null, "buffer_bytes": null,
                  "replay": false, "queues": null, "mapper": null,
                  "failures": null, "inflight": null, "max_packets": null},
     "metrics": {"flows": 1, "packets": 10, "delivered": 10, "dropped": 0,
                 "delay_mean_s": 0.001, "delay_p99_s": 0.002, "fct_mean_s": 0.1,
                 "jain": 1.0, "replay_match_rate": null, "replay_frac_gt_t": null,
                 "quantized_match_rate": null, "quantized_frac_gt_t": null,
                 "quantized_fct_delta_s": null, "transport": null, "disruption": null,
                 "fct_buckets": []},
     "wall_s": 0.5}
  ]
}"#;
        validate_bench_sweep(v4_compat_doc).expect("v4 artifact still validates");
    }

    const FAIL_DOC: &str = r#"{
  "schema": "ups-bench-failures/v1",
  "scenario": {"topology": "FatTree(k=4)", "original": "Random", "profile": "random-links",
               "inflight": "reroute", "utilization": 0.7, "seed": 42, "packets": 20000},
  "results": [
    {"rate": 0, "links_failed": 0, "rerouted": 0, "dropped_at_dead_link": 0,
     "delivered": 20000, "match_rate": 0.99, "frac_gt_t": 0.001,
     "bit_identical_to_static_routing": true},
    {"rate": 0.25, "links_failed": 8, "rerouted": 900, "dropped_at_dead_link": 12,
     "delivered": 19988, "match_rate": 0.93, "frac_gt_t": 0.02},
    {"rate": 0.5, "links_failed": 16, "rerouted": 2100, "dropped_at_dead_link": 60,
     "delivered": 19940, "match_rate": 0.81, "frac_gt_t": 0.09}
  ]
}"#;

    #[test]
    fn failures_bench_artifact_validates() {
        let d = validate_bench_failures(FAIL_DOC).expect("valid artifact");
        assert_eq!(
            d,
            FailuresDigest {
                rows: 3,
                baseline_match_rate: 0.99,
                worst_match_rate: 0.81
            }
        );
        assert!(validate_bench_failures("{}").is_err());
        let wrong = FAIL_DOC.replace("ups-bench-failures/v1", "ups-sweep/v4");
        assert!(validate_bench_failures(&wrong)
            .unwrap_err()
            .contains("schema"));
        // The zero row must assert bit-identity with static routing.
        let unasserted = FAIL_DOC.replace(
            r#""bit_identical_to_static_routing": true"#,
            r#""bit_identical_to_static_routing": false"#,
        );
        assert!(validate_bench_failures(&unasserted)
            .unwrap_err()
            .contains("bit_identical_to_static_routing"));
        // Rates must ascend.
        let shuffled = FAIL_DOC.replace(r#""rate": 0.25"#, r#""rate": 0.75"#);
        assert!(validate_bench_failures(&shuffled)
            .unwrap_err()
            .contains("ascend"));
        let missing = FAIL_DOC.replace(r#""rerouted": 900, "#, "");
        assert!(validate_bench_failures(&missing)
            .unwrap_err()
            .contains("rerouted"));
    }

    /// One conserved `ups-forensics/v1` block as a JSON fragment:
    /// causes 5 + 2 + 1 = 8, inversions 4 + 3 + 1 = 8.
    const DIV_BLOCK: &str = r#"{"schema":"ups-forensics/v1","mismatches":8,
      "overdue_within_t":5,"overdue_beyond_t":2,"missing_in_replay":1,
      "dead_link_drop":0,"buffer_drop":0,
      "rank_tie_break":4,"bucket_collision":3,"reroute":0,"queue_overflow":0,"exit_only":1,
      "hop_lateness_p50_s":1.2e-6,"hop_lateness_p99_s":9.0e-6,
      "top_nodes":[{"node":2,"mismatches":5},{"node":9,"mismatches":3}]}"#;

    fn divergence_doc() -> String {
        format!(
            r#"{{
  "schema": "ups-bench-divergence/v1",
  "scenario": {{"topology": "FatTree(k=4)", "original": "Random", "profile": "fixed-mtu",
               "utilization": 0.7, "seed": 42, "packets": 20000}},
  "quantization": [
    {{"k": 1, "compared": 20000, "match_rate": 0.42, "divergence": {d}}},
    {{"k": 8, "compared": 20000, "match_rate": 0.9, "divergence": {d}}},
    {{"k": null, "compared": 20000, "match_rate": 0.99, "divergence": {d}}}
  ],
  "failures": [
    {{"rate": 0, "compared": 20000, "match_rate": 0.99, "divergence": {d}}},
    {{"rate": 0.5, "compared": 19900, "match_rate": 0.8, "divergence": {d}}}
  ]
}}"#,
            d = DIV_BLOCK
        )
    }

    #[test]
    fn divergence_bench_artifact_validates() {
        let doc = divergence_doc();
        let d = validate_bench_divergence(&doc).expect("valid artifact");
        assert_eq!(
            d,
            DivergenceDigest {
                quantization_rows: 3,
                failure_rows: 2,
                total_mismatches: 40, // 8 per row × 5 rows
            }
        );
        assert!(validate_bench_divergence("{}").is_err());
        let wrong = doc.replace("ups-bench-divergence/v1", "ups-sweep/v4");
        assert!(validate_bench_divergence(&wrong)
            .unwrap_err()
            .contains("schema"));
        // Conservation is enforced per row.
        let unconserved = doc.replacen(r#""overdue_within_t":5"#, r#""overdue_within_t":6"#, 1);
        assert!(validate_bench_divergence(&unconserved)
            .unwrap_err()
            .contains("not conserved"));
        // K must ascend and end at the k = null exact row.
        let shuffled = doc.replace(r#""k": 8"#, r#""k": 1"#);
        assert!(validate_bench_divergence(&shuffled)
            .unwrap_err()
            .contains("ascend"));
        let no_exact = doc.replace(r#""k": null"#, r#""k": 64"#);
        assert!(validate_bench_divergence(&no_exact)
            .unwrap_err()
            .contains("exact"));
        // The failure axis starts at the zero-failure baseline.
        let no_zero = doc.replace(r#""rate": 0,"#, r#""rate": 0.1,"#);
        assert!(validate_bench_divergence(&no_zero)
            .unwrap_err()
            .contains("zero-failure"));
        // Both axes are mandatory — a one-axis artifact is not "both
        // axes present", which the issue's acceptance criterion demands.
        let axisless = doc.replace(r#""failures""#, r#""failurez""#);
        assert!(validate_bench_divergence(&axisless)
            .unwrap_err()
            .contains("failures axis"));
    }

    #[test]
    fn closed_loop_record_requires_a_transport_block() {
        let mut r = closed_record(0);
        r.summary.transport = None;
        let stats = pool_stats(1, 1, 0);
        let doc = bench_sweep_json(&grid(), &[r], &stats, 1.0);
        let err = validate_bench_sweep(&doc).unwrap_err();
        assert!(err.contains("transport"), "bad error: {err}");
    }

    const QUANT_DOC: &str = r#"{
  "schema": "ups-bench-quantized/v1",
  "scenario": {"topology": "FatTree(k=4)", "original": "Random", "mapper": "dynamic",
               "utilization": 0.7, "seed": 42, "packets": 20000},
  "results": [
    {"k": 1, "match_rate": 0.42, "frac_gt_t": 0.3, "mean_fct_s": 0.011},
    {"k": 8, "match_rate": 0.9, "frac_gt_t": 0.01, "mean_fct_s": 0.009},
    {"k": null, "match_rate": 0.99, "frac_gt_t": 0.0, "mean_fct_s": 0.008,
     "bit_identical_to_exact_lstf": true}
  ]
}"#;

    #[test]
    fn quantized_bench_artifact_validates() {
        let d = validate_bench_quantized(QUANT_DOC).expect("valid artifact");
        assert_eq!(
            d,
            QuantizedDigest {
                rows: 2,
                exact_match_rate: 0.99
            }
        );
        // Sweep artifacts are not quantized-bench artifacts and vice versa.
        assert!(validate_bench_quantized("{}").is_err());
        let wrong = QUANT_DOC.replace("ups-bench-quantized/v1", "ups-sweep/v3");
        assert!(validate_bench_quantized(&wrong)
            .unwrap_err()
            .contains("schema"));
        // The ∞ row must assert bit-identity with exact LSTF.
        let unasserted = QUANT_DOC.replace(
            r#""bit_identical_to_exact_lstf": true"#,
            r#""bit_identical_to_exact_lstf": false"#,
        );
        assert!(validate_bench_quantized(&unasserted)
            .unwrap_err()
            .contains("bit_identical_to_exact_lstf"));
        let missing = QUANT_DOC.replace(r#""match_rate": 0.9, "#, "");
        assert!(validate_bench_quantized(&missing)
            .unwrap_err()
            .contains("match_rate"));
    }

    const SCALE_DOC: &str = r#"{
  "schema": "ups-bench-scale/v1",
  "scenario": {"topology": "FatTree(k=8)", "scheduler": "FIFO", "utilization": 0.7,
               "flow_bytes": 150000, "window_ms": 128, "seed": 42},
  "packets": 5401700,
  "flows": 54017,
  "delivered": 5401700,
  "dropped": 0,
  "peak_rss_bytes": 239599616,
  "rss_budget_bytes": 536870912,
  "packets_per_sec": 205074,
  "replay_match_rate": 0.948206,
  "replay_frac_gt_t": 0.027197,
  "differential": {"workload_packets": 120000, "records_identical": true,
                   "reports_identical": true, "summaries_identical": true}
}"#;

    #[test]
    fn scale_bench_artifact_validates() {
        let d = validate_bench_scale(SCALE_DOC).expect("valid artifact");
        assert_eq!(
            d,
            ScaleDigest {
                packets: 5_401_700,
                flows: 54_017,
                peak_rss_bytes: 239_599_616,
                replay_match_rate: 0.948206
            }
        );
        assert!(validate_bench_scale("{}").is_err());
        let wrong = SCALE_DOC.replace("ups-bench-scale/v1", "ups-sweep/v4");
        assert!(validate_bench_scale(&wrong).unwrap_err().contains("schema"));
        // The issue's floors are part of validity, not just presence.
        let small = SCALE_DOC.replace(r#""packets": 5401700"#, r#""packets": 400000"#);
        assert!(validate_bench_scale(&small).unwrap_err().contains("floor"));
        let few = SCALE_DOC.replace(r#""flows": 54017"#, r#""flows": 5000"#);
        assert!(validate_bench_scale(&few).unwrap_err().contains("floor"));
        // Peak RSS must sit inside the recorded budget.
        let blown = SCALE_DOC.replace(
            r#""peak_rss_bytes": 239599616"#,
            r#""peak_rss_bytes": 639599616"#,
        );
        assert!(validate_bench_scale(&blown)
            .unwrap_err()
            .contains("peak_rss_bytes"));
        // Conservation: delivered + dropped == packets.
        let leaky = SCALE_DOC.replace(r#""dropped": 0"#, r#""dropped": 7"#);
        assert!(validate_bench_scale(&leaky)
            .unwrap_err()
            .contains("dropped"));
        // The differential gate must be green across all three layers.
        let diverged = SCALE_DOC.replace(
            r#""summaries_identical": true"#,
            r#""summaries_identical": false"#,
        );
        assert!(validate_bench_scale(&diverged)
            .unwrap_err()
            .contains("summaries_identical"));
    }

    const TIMESERIES_DOC: &str = r#"{
  "schema": "ups-obs-timeseries/v1",
  "workers": 2,
  "steals": 3,
  "wall_s": 1.25,
  "heartbeats": [
    {"schema": "ups-obs-heartbeat/v1", "t_s": 0.5, "done": 4, "total": 8,
     "jobs_per_sec": 8.0, "eta_s": 0.5,
     "workers": [
       {"worker": 0, "jobs": 2, "busy_s": 0.4, "utilization": 0.8, "steals": 1, "stolen_from": 0},
       {"worker": 1, "jobs": 2, "busy_s": 0.3, "utilization": 0.6, "steals": 0, "stolen_from": 1}]},
    {"schema": "ups-obs-heartbeat/v1", "t_s": 1.25, "done": 8, "total": 8,
     "jobs_per_sec": 6.4, "eta_s": 0.0,
     "workers": [
       {"worker": 0, "jobs": 5, "busy_s": 1.1, "utilization": 0.88, "steals": 3, "stolen_from": 0},
       {"worker": 1, "jobs": 3, "busy_s": 0.9, "utilization": 0.72, "steals": 0, "stolen_from": 3}]}
  ]
}"#;

    #[test]
    fn timeseries_artifact_validates() {
        let d = validate_obs_timeseries(TIMESERIES_DOC).expect("valid artifact");
        assert_eq!(
            d,
            TimeSeriesDigest {
                workers: 2,
                ticks: 2,
                jobs: 8,
                wall_s: 1.25
            }
        );
        assert!(validate_obs_timeseries("{}").is_err());
        let wrong = TIMESERIES_DOC.replace("ups-obs-timeseries/v1", "ups-sweep/v4");
        assert!(validate_obs_timeseries(&wrong)
            .unwrap_err()
            .contains("schema"));
        // Progress can never run backwards.
        let regress =
            TIMESERIES_DOC.replace(r#""t_s": 1.25, "done": 8"#, r#""t_s": 0.25, "done": 8"#);
        assert!(validate_obs_timeseries(&regress)
            .unwrap_err()
            .contains("regressed"));
        // The completion tick must show a finished sweep.
        let partial =
            TIMESERIES_DOC.replace(r#""t_s": 1.25, "done": 8"#, r#""t_s": 1.25, "done": 6"#);
        assert!(validate_obs_timeseries(&partial)
            .unwrap_err()
            .contains("final tick"));
        // Worker rows must cover the whole pool on every tick.
        let missing = TIMESERIES_DOC.replace(r#""workers": 2,"#, r#""workers": 3,"#);
        assert!(validate_obs_timeseries(&missing)
            .unwrap_err()
            .contains("worker rows"));
        // The heartbeat thread guarantees at least the completion tick.
        let empty = r#"{"schema": "ups-obs-timeseries/v1", "workers": 1,
                        "steals": 0, "wall_s": 0.0, "heartbeats": []}"#;
        assert!(validate_obs_timeseries(empty)
            .unwrap_err()
            .contains("completion tick"));
    }

    const OBS_DOC: &str = r#"{
  "schema": "ups-bench-obs/v1",
  "scenario": {"topology": "FatTree(4)", "scheduler": "LSTF", "utilization": 0.7, "seed": 42},
  "packets": 250000,
  "runs": 3,
  "tolerance": 0.02,
  "uninstrumented": {"packets_per_sec": 1000000.0, "best_s": 0.25},
  "probe_off": {"packets_per_sec": 995000.0, "best_s": 0.2512},
  "probe_on": {"packets_per_sec": 930000.0, "best_s": 0.2688, "samples": 120},
  "probe_off_overhead": 0.005,
  "probe_on_overhead": 0.07,
  "fingerprints_identical": true
}"#;

    #[test]
    fn obs_bench_artifact_validates() {
        let d = validate_bench_obs(OBS_DOC).expect("valid artifact");
        assert_eq!(
            d,
            ObsDigest {
                packets: 250_000,
                tolerance: 0.02,
                probe_off_overhead: 0.005,
                probe_on_overhead: 0.07
            }
        );
        assert!(validate_bench_obs("{}").is_err());
        let wrong = OBS_DOC.replace("ups-bench-obs/v1", "ups-bench-scale/v1");
        assert!(validate_bench_obs(&wrong).unwrap_err().contains("schema"));
        // The zero-cost-when-off contract is the point of the artifact.
        let slow = OBS_DOC.replace(
            r#""probe_off_overhead": 0.005"#,
            r#""probe_off_overhead": 0.05"#,
        );
        assert!(validate_bench_obs(&slow).unwrap_err().contains("tolerance"));
        // A probe-off run that *beats* the hook-free loop by more than
        // the tolerance is a broken baseline, not a win.
        let fast = OBS_DOC.replace(
            r#""probe_off_overhead": 0.005"#,
            r#""probe_off_overhead": -0.05"#,
        );
        assert!(validate_bench_obs(&fast).unwrap_err().contains("tolerance"));
        let slightly_fast = OBS_DOC.replace(
            r#""probe_off_overhead": 0.005"#,
            r#""probe_off_overhead": -0.015"#,
        );
        assert!(validate_bench_obs(&slightly_fast).is_ok());
        // Instrumentation must never change the schedule.
        let diverged = OBS_DOC.replace(
            r#""fingerprints_identical": true"#,
            r#""fingerprints_identical": false"#,
        );
        assert!(validate_bench_obs(&diverged)
            .unwrap_err()
            .contains("fingerprints_identical"));
        // Probe-on must have actually sampled something.
        let unsampled = OBS_DOC.replace(r#""samples": 120"#, r#""samples": 0"#);
        assert!(validate_bench_obs(&unsampled)
            .unwrap_err()
            .contains("samples"));
    }

    #[test]
    fn stream_appends_one_line_per_record() {
        let dir = std::env::temp_dir().join("ups-sweep-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.jsonl");
        let stream = ResultStream::create(&path).unwrap();
        stream.append(&record(0));
        stream.append(&record(1));
        let content = std::fs::read_to_string(stream.path()).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = parse(line).expect("each line parses alone");
            assert_eq!(
                v.get("schema").unwrap().as_str(),
                Some("ups-sweep-record/v5")
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
