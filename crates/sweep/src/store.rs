//! The machine-readable result store.
//!
//! Two artifacts, following the DESIGN.md §5 pattern:
//!
//! * a **JSON-lines stream** — one self-describing record per job,
//!   appended the moment the job finishes on whichever worker ran it
//!   (completion order, so the stream doubles as a progress log), and
//! * the **aggregate `BENCH_sweep.json`** — schema tag, the grid that
//!   generated the sweep, pool accounting (workers, steals, jobs/sec) and
//!   every record sorted by job id.
//!
//! [`validate_bench_sweep`] loads an aggregate back through the minimal
//! parser and asserts its schema — the check CI runs on the artifact.

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::grid::ScenarioGrid;
use crate::json::{parse, JsonValue};
use crate::pool::PoolStats;
use crate::runner::JobRecord;

/// Schema tag of the aggregate artifact this build writes.
pub const SWEEP_SCHEMA: &str = "ups-sweep/v2";

/// Aggregate schema tags [`validate_bench_sweep`] accepts (v1 artifacts
/// predate the traffic-mode axis and the transport block).
pub const ACCEPTED_SWEEP_SCHEMAS: [&str; 2] = ["ups-sweep/v1", "ups-sweep/v2"];

/// Streams one JSON line per finished job. Shared across workers behind
/// a mutex — append is one short write per multi-second job.
pub struct ResultStream {
    out: Mutex<BufWriter<File>>,
    path: PathBuf,
}

impl ResultStream {
    /// Create/truncate the JSONL file.
    pub fn create(path: &Path) -> std::io::Result<ResultStream> {
        Ok(ResultStream {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
            path: path.to_path_buf(),
        })
    }

    /// Append one record (with timing — the stream is a log, not the
    /// determinism surface).
    ///
    /// # Panics
    /// On write failure (e.g. disk full) — the sweep cannot report
    /// results it cannot record. A poisoned lock is recovered rather
    /// than re-panicked: one job's write failure is caught per job by
    /// the pool, and later jobs must surface the *real* I/O error, not
    /// a cascade of "stream poisoned".
    pub fn append(&self, record: &JobRecord) {
        let mut out = self
            .out
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        writeln!(out, "{}", record.to_json(true)).expect("write JSONL record");
        out.flush().expect("flush JSONL record");
    }

    /// Where the stream writes.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Render the aggregate artifact. Records are sorted by job id (the
/// caller hands them in pool order, which is already job order).
pub fn bench_sweep_json(
    grid: &ScenarioGrid,
    records: &[JobRecord],
    stats: PoolStats,
    wall_s: f64,
) -> String {
    let jobs_per_sec = if wall_s > 0.0 {
        records.len() as f64 / wall_s
    } else {
        0.0
    };
    let mut sorted: Vec<&JobRecord> = records.iter().collect();
    sorted.sort_by_key(|r| r.spec.job_id);
    let body: Vec<String> = sorted
        .iter()
        .map(|r| format!("    {}", r.to_json(true)))
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"{}\",\n",
            "  \"grid\": {},\n",
            "  \"workers\": {},\n",
            "  \"steals\": {},\n",
            "  \"jobs\": {},\n",
            "  \"wall_s\": {},\n",
            "  \"jobs_per_sec\": {},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        SWEEP_SCHEMA,
        grid.to_json(),
        stats.workers,
        stats.steals,
        records.len(),
        ups_metrics::json_num(wall_s),
        ups_metrics::json_num(jobs_per_sec),
        body.join(",\n")
    )
}

/// What a valid aggregate reports — returned so callers can print a
/// one-line confirmation.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepDigest {
    /// Jobs recorded.
    pub jobs: usize,
    /// Worker threads the sweep used.
    pub workers: usize,
    /// Aggregate throughput.
    pub jobs_per_sec: f64,
}

/// Validate a `BENCH_sweep.json` document against its schema. Both
/// `ups-sweep/v1` artifacts (pre-traffic-axis) and `ups-sweep/v2` ones
/// validate; each record line is checked against its own
/// `ups-sweep-record/v{1,2}` tag. Every failure is a `Result::Err`
/// naming the offending field — never a panic — so `sweep --check` can
/// print a usable diagnosis.
pub fn validate_bench_sweep(doc: &str) -> Result<SweepDigest, String> {
    let v = parse(doc).map_err(|e| format!("not JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema tag")?;
    if !ACCEPTED_SWEEP_SCHEMAS.contains(&schema) {
        return Err(format!(
            "unexpected schema {schema:?} (expected one of {ACCEPTED_SWEEP_SCHEMAS:?})"
        ));
    }
    v.get("grid").ok_or("missing grid block")?;
    let jobs = v
        .get("jobs")
        .and_then(JsonValue::as_f64)
        .ok_or("missing jobs count")? as usize;
    let workers = v
        .get("workers")
        .and_then(JsonValue::as_f64)
        .ok_or("missing workers")? as usize;
    let jobs_per_sec = v
        .get("jobs_per_sec")
        .and_then(JsonValue::as_f64)
        .ok_or("missing jobs_per_sec")?;
    if !jobs_per_sec.is_finite() || jobs_per_sec <= 0.0 {
        return Err(format!("jobs_per_sec {jobs_per_sec} not positive"));
    }
    let results = v
        .get("results")
        .and_then(JsonValue::as_array)
        .ok_or("missing results array")?;
    if results.len() != jobs {
        return Err(format!(
            "jobs field says {jobs} but results holds {}",
            results.len()
        ));
    }
    for (i, r) in results.iter().enumerate() {
        let id = r
            .get("job_id")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("result {i}: missing job_id"))?;
        if id as usize != i {
            return Err(format!("result {i} has job_id {id} — not sorted/dense"));
        }
        validate_record(i, r)?;
    }
    Ok(SweepDigest {
        jobs,
        workers,
        jobs_per_sec,
    })
}

/// Validate one result record against its own schema tag (`v1` or `v2`).
fn validate_record(i: usize, r: &JsonValue) -> Result<(), String> {
    let record_schema = r
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("result {i}: missing record schema tag"))?;
    let v2 = match record_schema {
        "ups-sweep-record/v1" => false,
        "ups-sweep-record/v2" => true,
        other => {
            return Err(format!(
                "result {i}: unexpected record schema {other:?} \
                 (expected ups-sweep-record/v1 or ups-sweep-record/v2)"
            ))
        }
    };
    let scenario = r
        .get("scenario")
        .ok_or_else(|| format!("result {i}: missing scenario"))?;
    for field in ["topology", "profile", "scheduler"] {
        if scenario.get(field).and_then(JsonValue::as_str).is_none() {
            return Err(format!("result {i}: scenario.{field} missing"));
        }
    }
    for field in ["utilization", "seed", "window_ms"] {
        if scenario.get(field).and_then(JsonValue::as_f64).is_none() {
            return Err(format!("result {i}: scenario.{field} missing"));
        }
    }
    let metrics = r
        .get("metrics")
        .ok_or_else(|| format!("result {i}: missing metrics"))?;
    for field in [
        "flows",
        "packets",
        "delivered",
        "dropped",
        "delay_mean_s",
        "delay_p99_s",
        "fct_mean_s",
    ] {
        if metrics.get(field).and_then(JsonValue::as_f64).is_none() {
            return Err(format!("result {i}: metrics.{field} missing"));
        }
    }
    if metrics
        .get("fct_buckets")
        .and_then(JsonValue::as_array)
        .is_none()
    {
        return Err(format!("result {i}: metrics.fct_buckets missing"));
    }
    if !v2 {
        // v1: Jain was unconditionally numeric; no traffic/transport.
        if metrics.get("jain").and_then(JsonValue::as_f64).is_none() {
            return Err(format!("result {i}: metrics.jain missing"));
        }
        return Ok(());
    }
    // v2: the traffic axis is part of the scenario, Jain may be null
    // (zero-delivery run), and closed-loop records carry a transport
    // block.
    let traffic = scenario
        .get("traffic")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("result {i}: scenario.traffic missing"))?;
    if traffic != "open-loop" && traffic != "closed-loop" {
        return Err(format!(
            "result {i}: unexpected scenario.traffic {traffic:?}"
        ));
    }
    match metrics.get("jain") {
        Some(JsonValue::Null) | Some(JsonValue::Number(_)) => {}
        Some(other) => {
            return Err(format!(
                "result {i}: metrics.jain must be number or null, got {other:?}"
            ))
        }
        None => return Err(format!("result {i}: metrics.jain missing")),
    }
    match metrics.get("transport") {
        Some(JsonValue::Null) => {
            if traffic == "closed-loop" {
                return Err(format!(
                    "result {i}: closed-loop record lacks a transport block"
                ));
            }
        }
        Some(t @ JsonValue::Object(_)) => {
            for field in [
                "completed_flows",
                "goodput_bytes",
                "retransmits",
                "rto_events",
            ] {
                if t.get(field).and_then(JsonValue::as_f64).is_none() {
                    return Err(format!("result {i}: metrics.transport.{field} missing"));
                }
            }
        }
        Some(other) => {
            return Err(format!(
                "result {i}: metrics.transport must be object or null, got {other:?}"
            ))
        }
        None => return Err(format!("result {i}: metrics.transport missing")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::JobSpec;
    use ups_metrics::RunSummary;
    use ups_netsim::prelude::Dur;

    fn record(job_id: usize) -> JobRecord {
        JobRecord {
            spec: JobSpec {
                job_id,
                topology: "Line(3)".into(),
                profile: "web-search".into(),
                scheduler: "FIFO".into(),
                traffic: crate::grid::TrafficMode::OpenLoop,
                rest_bps: None,
                utilization: 0.7,
                seed: 1,
                window: Dur::from_ms(1),
                horizon: None,
                buffer_bytes: None,
                replay: false,
                max_packets: None,
            },
            summary: RunSummary {
                flows: 1,
                packets: 10,
                delivered: 10,
                dropped: 0,
                delay_mean_s: 0.001,
                delay_p99_s: 0.002,
                fct_mean_s: 0.1,
                fct_buckets: vec![(1460, 0.1, 1)],
                jain: Some(1.0),
                replay_match_rate: None,
                replay_frac_gt_t: None,
                transport: None,
            },
            wall_s: 0.5,
        }
    }

    fn closed_record(job_id: usize) -> JobRecord {
        let mut r = record(job_id);
        r.spec.traffic = crate::grid::TrafficMode::ClosedLoop;
        r.spec.horizon = Some(Dur::from_ms(20));
        r.summary.transport = Some(ups_metrics::TransportSummary {
            completed_flows: 1,
            goodput_bytes: 9000,
            retransmits: 0,
            rto_events: 0,
        });
        r
    }

    fn grid() -> ScenarioGrid {
        ScenarioGrid {
            topologies: vec!["Line(3)".into()],
            schedulers: vec!["FIFO".into()],
            seeds: vec![1, 2],
            ..ScenarioGrid::default()
        }
    }

    #[test]
    fn aggregate_validates_and_digest_matches() {
        let records = [record(0), record(1)];
        let stats = PoolStats {
            workers: 4,
            jobs: 2,
            steals: 1,
        };
        let doc = bench_sweep_json(&grid(), &records, stats, 2.0);
        let digest = validate_bench_sweep(&doc).expect("valid artifact");
        assert_eq!(
            digest,
            SweepDigest {
                jobs: 2,
                workers: 4,
                jobs_per_sec: 1.0
            }
        );
    }

    #[test]
    fn aggregate_sorts_records_by_job_id() {
        // Hand the records in completion order; the artifact must not care.
        let records = [record(1), record(0)];
        let stats = PoolStats {
            workers: 1,
            jobs: 2,
            steals: 0,
        };
        let doc = bench_sweep_json(&grid(), &records, stats, 1.0);
        validate_bench_sweep(&doc).expect("sorted despite unsorted input");
    }

    #[test]
    fn validation_rejects_broken_artifacts() {
        let records = [record(0)];
        let stats = PoolStats {
            workers: 1,
            jobs: 1,
            steals: 0,
        };
        let good = bench_sweep_json(&grid(), &records, stats, 1.0);
        assert!(validate_bench_sweep("not json").is_err());
        assert!(validate_bench_sweep("{}").is_err());
        let wrong_schema = good.replace(SWEEP_SCHEMA, "ups-sweep/v0");
        assert!(validate_bench_sweep(&wrong_schema)
            .unwrap_err()
            .contains("schema"));
        let missing_metric = good.replace(r#""jain":"#, r#""gain":"#);
        assert!(validate_bench_sweep(&missing_metric)
            .unwrap_err()
            .contains("jain"));
        // A record schema from the future names the unexpected tag.
        let future = good.replace("ups-sweep-record/v2", "ups-sweep-record/v9");
        let err = validate_bench_sweep(&future).unwrap_err();
        assert!(
            err.contains("ups-sweep-record/v9") && err.contains("unexpected record schema"),
            "unhelpful error: {err}"
        );
        // A bogus traffic label is caught.
        let bad_traffic = good.replace(r#""traffic":"open-loop""#, r#""traffic":"sideways""#);
        assert!(validate_bench_sweep(&bad_traffic)
            .unwrap_err()
            .contains("traffic"));
    }

    #[test]
    fn v1_and_v2_artifacts_both_validate() {
        // A v2 artifact with open- and closed-loop records.
        let records = [record(0), closed_record(1)];
        let stats = PoolStats {
            workers: 1,
            jobs: 2,
            steals: 0,
        };
        let v2_doc = bench_sweep_json(&grid(), &records, stats, 1.0);
        validate_bench_sweep(&v2_doc).expect("v2 artifact validates");

        // A hand-rolled v1 artifact (numeric jain, no traffic/transport)
        // — the form every pre-traffic-axis BENCH_sweep.json has.
        let v1_doc = r#"{
  "schema": "ups-sweep/v1",
  "grid": {"topologies": ["Line(3)"]},
  "workers": 1,
  "steals": 0,
  "jobs": 1,
  "wall_s": 1.0,
  "jobs_per_sec": 1.0,
  "results": [
    {"schema": "ups-sweep-record/v1", "job_id": 0,
     "scenario": {"topology": "Line(3)", "profile": "web-search", "scheduler": "FIFO",
                  "utilization": 0.7, "seed": 1, "window_ms": 1, "replay": false,
                  "max_packets": null},
     "metrics": {"flows": 1, "packets": 10, "delivered": 10, "dropped": 0,
                 "delay_mean_s": 0.001, "delay_p99_s": 0.002, "fct_mean_s": 0.1,
                 "jain": 1.0, "replay_match_rate": null, "replay_frac_gt_t": null,
                 "fct_buckets": []},
     "wall_s": 0.5}
  ]
}"#;
        validate_bench_sweep(v1_doc).expect("v1 artifact still validates");
        // But a v1 record may not drop jain.
        let broken = v1_doc.replace(r#""jain": 1.0"#, r#""joan": 1.0"#);
        assert!(validate_bench_sweep(&broken).unwrap_err().contains("jain"));
    }

    #[test]
    fn closed_loop_record_requires_a_transport_block() {
        let mut r = closed_record(0);
        r.summary.transport = None;
        let stats = PoolStats {
            workers: 1,
            jobs: 1,
            steals: 0,
        };
        let doc = bench_sweep_json(&grid(), &[r], stats, 1.0);
        let err = validate_bench_sweep(&doc).unwrap_err();
        assert!(err.contains("transport"), "bad error: {err}");
    }

    #[test]
    fn stream_appends_one_line_per_record() {
        let dir = std::env::temp_dir().join("ups-sweep-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.jsonl");
        let stream = ResultStream::create(&path).unwrap();
        stream.append(&record(0));
        stream.append(&record(1));
        let content = std::fs::read_to_string(stream.path()).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = parse(line).expect("each line parses alone");
            assert_eq!(
                v.get("schema").unwrap().as_str(),
                Some("ups-sweep-record/v2")
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
