//! The machine-readable result store.
//!
//! Two artifacts, following the DESIGN.md §5 pattern:
//!
//! * a **JSON-lines stream** — one self-describing record per job,
//!   appended the moment the job finishes on whichever worker ran it
//!   (completion order, so the stream doubles as a progress log), and
//! * the **aggregate `BENCH_sweep.json`** — schema tag, the grid that
//!   generated the sweep, pool accounting (workers, steals, jobs/sec) and
//!   every record sorted by job id.
//!
//! [`validate_bench_sweep`] loads an aggregate back through the minimal
//! parser and asserts its schema — the check CI runs on the artifact.

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::grid::ScenarioGrid;
use crate::json::{parse, JsonValue};
use crate::pool::PoolStats;
use crate::runner::JobRecord;

/// Schema tag of the aggregate artifact.
pub const SWEEP_SCHEMA: &str = "ups-sweep/v1";

/// Streams one JSON line per finished job. Shared across workers behind
/// a mutex — append is one short write per multi-second job.
pub struct ResultStream {
    out: Mutex<BufWriter<File>>,
    path: PathBuf,
}

impl ResultStream {
    /// Create/truncate the JSONL file.
    pub fn create(path: &Path) -> std::io::Result<ResultStream> {
        Ok(ResultStream {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
            path: path.to_path_buf(),
        })
    }

    /// Append one record (with timing — the stream is a log, not the
    /// determinism surface).
    pub fn append(&self, record: &JobRecord) {
        let mut out = self.out.lock().expect("stream poisoned");
        writeln!(out, "{}", record.to_json(true)).expect("write JSONL record");
        out.flush().expect("flush JSONL record");
    }

    /// Where the stream writes.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Render the aggregate artifact. Records are sorted by job id (the
/// caller hands them in pool order, which is already job order).
pub fn bench_sweep_json(
    grid: &ScenarioGrid,
    records: &[JobRecord],
    stats: PoolStats,
    wall_s: f64,
) -> String {
    let jobs_per_sec = if wall_s > 0.0 {
        records.len() as f64 / wall_s
    } else {
        0.0
    };
    let mut sorted: Vec<&JobRecord> = records.iter().collect();
    sorted.sort_by_key(|r| r.spec.job_id);
    let body: Vec<String> = sorted
        .iter()
        .map(|r| format!("    {}", r.to_json(true)))
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"{}\",\n",
            "  \"grid\": {},\n",
            "  \"workers\": {},\n",
            "  \"steals\": {},\n",
            "  \"jobs\": {},\n",
            "  \"wall_s\": {},\n",
            "  \"jobs_per_sec\": {},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        SWEEP_SCHEMA,
        grid.to_json(),
        stats.workers,
        stats.steals,
        records.len(),
        ups_metrics::json_num(wall_s),
        ups_metrics::json_num(jobs_per_sec),
        body.join(",\n")
    )
}

/// What a valid aggregate reports — returned so callers can print a
/// one-line confirmation.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepDigest {
    /// Jobs recorded.
    pub jobs: usize,
    /// Worker threads the sweep used.
    pub workers: usize,
    /// Aggregate throughput.
    pub jobs_per_sec: f64,
}

/// Validate a `BENCH_sweep.json` document against its schema.
pub fn validate_bench_sweep(doc: &str) -> Result<SweepDigest, String> {
    let v = parse(doc).map_err(|e| format!("not JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema tag")?;
    if schema != SWEEP_SCHEMA {
        return Err(format!("schema {schema:?}, expected {SWEEP_SCHEMA:?}"));
    }
    v.get("grid").ok_or("missing grid block")?;
    let jobs = v
        .get("jobs")
        .and_then(JsonValue::as_f64)
        .ok_or("missing jobs count")? as usize;
    let workers = v
        .get("workers")
        .and_then(JsonValue::as_f64)
        .ok_or("missing workers")? as usize;
    let jobs_per_sec = v
        .get("jobs_per_sec")
        .and_then(JsonValue::as_f64)
        .ok_or("missing jobs_per_sec")?;
    if !jobs_per_sec.is_finite() || jobs_per_sec <= 0.0 {
        return Err(format!("jobs_per_sec {jobs_per_sec} not positive"));
    }
    let results = v
        .get("results")
        .and_then(JsonValue::as_array)
        .ok_or("missing results array")?;
    if results.len() != jobs {
        return Err(format!(
            "jobs field says {jobs} but results holds {}",
            results.len()
        ));
    }
    for (i, r) in results.iter().enumerate() {
        let id = r
            .get("job_id")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("result {i}: missing job_id"))?;
        if id as usize != i {
            return Err(format!("result {i} has job_id {id} — not sorted/dense"));
        }
        let scenario = r
            .get("scenario")
            .ok_or_else(|| format!("result {i}: missing scenario"))?;
        for field in ["topology", "profile", "scheduler"] {
            if scenario.get(field).and_then(JsonValue::as_str).is_none() {
                return Err(format!("result {i}: scenario.{field} missing"));
            }
        }
        for field in ["utilization", "seed", "window_ms"] {
            if scenario.get(field).and_then(JsonValue::as_f64).is_none() {
                return Err(format!("result {i}: scenario.{field} missing"));
            }
        }
        let metrics = r
            .get("metrics")
            .ok_or_else(|| format!("result {i}: missing metrics"))?;
        for field in [
            "flows",
            "packets",
            "delivered",
            "dropped",
            "delay_mean_s",
            "delay_p99_s",
            "fct_mean_s",
            "jain",
        ] {
            if metrics.get(field).and_then(JsonValue::as_f64).is_none() {
                return Err(format!("result {i}: metrics.{field} missing"));
            }
        }
        if metrics
            .get("fct_buckets")
            .and_then(JsonValue::as_array)
            .is_none()
        {
            return Err(format!("result {i}: metrics.fct_buckets missing"));
        }
    }
    Ok(SweepDigest {
        jobs,
        workers,
        jobs_per_sec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::JobSpec;
    use ups_metrics::RunSummary;
    use ups_netsim::prelude::Dur;

    fn record(job_id: usize) -> JobRecord {
        JobRecord {
            spec: JobSpec {
                job_id,
                topology: "Line(3)".into(),
                profile: "web-search".into(),
                scheduler: "FIFO".into(),
                utilization: 0.7,
                seed: 1,
                window: Dur::from_ms(1),
                replay: false,
                max_packets: None,
            },
            summary: RunSummary {
                flows: 1,
                packets: 10,
                delivered: 10,
                dropped: 0,
                delay_mean_s: 0.001,
                delay_p99_s: 0.002,
                fct_mean_s: 0.1,
                fct_buckets: vec![(1460, 0.1, 1)],
                jain: 1.0,
                replay_match_rate: None,
                replay_frac_gt_t: None,
            },
            wall_s: 0.5,
        }
    }

    fn grid() -> ScenarioGrid {
        ScenarioGrid {
            topologies: vec!["Line(3)".into()],
            schedulers: vec!["FIFO".into()],
            seeds: vec![1, 2],
            ..ScenarioGrid::default()
        }
    }

    #[test]
    fn aggregate_validates_and_digest_matches() {
        let records = [record(0), record(1)];
        let stats = PoolStats {
            workers: 4,
            jobs: 2,
            steals: 1,
        };
        let doc = bench_sweep_json(&grid(), &records, stats, 2.0);
        let digest = validate_bench_sweep(&doc).expect("valid artifact");
        assert_eq!(
            digest,
            SweepDigest {
                jobs: 2,
                workers: 4,
                jobs_per_sec: 1.0
            }
        );
    }

    #[test]
    fn aggregate_sorts_records_by_job_id() {
        // Hand the records in completion order; the artifact must not care.
        let records = [record(1), record(0)];
        let stats = PoolStats {
            workers: 1,
            jobs: 2,
            steals: 0,
        };
        let doc = bench_sweep_json(&grid(), &records, stats, 1.0);
        validate_bench_sweep(&doc).expect("sorted despite unsorted input");
    }

    #[test]
    fn validation_rejects_broken_artifacts() {
        let records = [record(0)];
        let stats = PoolStats {
            workers: 1,
            jobs: 1,
            steals: 0,
        };
        let good = bench_sweep_json(&grid(), &records, stats, 1.0);
        assert!(validate_bench_sweep("not json").is_err());
        assert!(validate_bench_sweep("{}").is_err());
        let wrong_schema = good.replace(SWEEP_SCHEMA, "ups-sweep/v0");
        assert!(validate_bench_sweep(&wrong_schema)
            .unwrap_err()
            .contains("schema"));
        let missing_metric = good.replace(r#""jain":"#, r#""gain":"#);
        assert!(validate_bench_sweep(&missing_metric)
            .unwrap_err()
            .contains("jain"));
    }

    #[test]
    fn stream_appends_one_line_per_record() {
        let dir = std::env::temp_dir().join("ups-sweep-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.jsonl");
        let stream = ResultStream::create(&path).unwrap();
        stream.append(&record(0));
        stream.append(&record(1));
        let content = std::fs::read_to_string(stream.path()).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = parse(line).expect("each line parses alone");
            assert_eq!(
                v.get("schema").unwrap().as_str(),
                Some("ups-sweep-record/v1")
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
