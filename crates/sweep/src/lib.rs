//! # ups-sweep — the parallel scenario-sweep engine
//!
//! Runs *grids* of scheduling scenarios across all cores: a declarative
//! [`ScenarioGrid`] (topology × workload profile × scheduler × traffic
//! mode × utilization × seed, with filters) expands to independent
//! [`JobSpec`]s; a hand-rolled work-stealing [`pool`] over `std::thread`
//! executes them with per-job seeded determinism; and the [`store`]
//! streams one JSON line per finished job before aggregating everything
//! into a schema-tagged `BENCH_sweep.json` (DESIGN.md §5 artifact
//! pattern, §7–§8 for this subsystem).
//!
//! The traffic axis closes the loop: `open-loop` jobs inject §2.3's
//! paced UDP trains; `closed-loop` jobs drive live TCP Reno endpoints
//! (via `ups-transport`'s shared driver) with the §3 slack policy
//! derived from the scheduler under test, then replay the **as-executed**
//! schedule through black-box LSTF.
//!
//! The `sweep` binary is the command-line face: "run the whole paper
//! evaluation, 8-wide, in one command". Library consumers (`ups-bench`
//! ports its Figure 2/3 runners onto [`pool::run_jobs`]) get the same
//! engine without the CLI.
//!
//! ## Determinism contract
//!
//! A job is a pure function of its [`JobSpec`] — registries rebuild the
//! topology and workload from names + seed inside the worker. The pool
//! therefore guarantees: **same grid ⇒ byte-identical sorted result
//! records, for any worker count**. `tests/determinism.rs` pins this with
//! a 1-worker vs 4-worker comparison.
//!
//! ## Quick example
//!
//! ```
//! use ups_sweep::{pool, runner, ScenarioGrid};
//! use ups_netsim::prelude::Dur;
//!
//! let grid = ScenarioGrid {
//!     topologies: vec!["Line(3)".into()],
//!     schedulers: vec!["FIFO".into(), "LSTF".into()],
//!     traffic: vec!["open-loop".into()],
//!     seeds: vec![1],
//!     window: Dur::from_ms(1),
//!     replay: false,
//!     max_packets: Some(500),
//!     excludes: Vec::new(),
//!     ..ScenarioGrid::default()
//! };
//! let jobs = grid.expand().unwrap();
//! let (records, stats) = pool::run_jobs(&jobs, 2, |_, spec| runner::run_job(spec));
//! assert_eq!(records.len(), 2);
//! assert_eq!(stats.jobs, 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod explain;
pub mod grid;
pub mod json;
pub mod pool;
pub mod runner;
pub mod store;
pub mod telemetry;

pub use explain::{explain_job, Explanation};
pub use grid::{Exclude, GridError, JobSpec, ScenarioGrid, TrafficMode, MIXED_FQ_FIFOPLUS};
pub use pool::{
    effective_workers, run_jobs, run_jobs_labeled, run_jobs_telemetry, PoolStats, PoolTelemetry,
    WorkerStats,
};
pub use runner::{
    run_job, run_job_arc, run_job_shared, slack_policy_for, summarize_trace, JobRecord,
    SharedScenarios, RECORD_SCHEMA,
};
pub use store::{
    bench_sweep_json, validate_bench_divergence, validate_bench_failures, validate_bench_obs,
    validate_bench_quantized, validate_bench_scale, validate_bench_sweep, validate_obs_timeseries,
    DivergenceDigest, FailuresDigest, ObsDigest, QuantizedDigest, ResultStream, ScaleDigest,
    SweepDigest, TimeSeriesDigest, ACCEPTED_SWEEP_SCHEMAS, DIVERGENCE_BENCH_SCHEMA,
    FAILURES_BENCH_SCHEMA, OBS_BENCH_SCHEMA, QUANTIZED_BENCH_SCHEMA, SCALE_BENCH_SCHEMA,
    SWEEP_SCHEMA,
};
pub use telemetry::{Heartbeat, HeartbeatConfig};
