//! A hand-rolled work-stealing thread pool over `std::thread`.
//!
//! The environment is offline (no rayon/crossbeam), and the workload —
//! tens of multi-second simulation jobs — doesn't need lock-free deques:
//! a `Mutex<VecDeque>` per worker is locked a handful of times per
//! *second*, not per microsecond. What matters here is the scheduling
//! shape: each worker owns a queue seeded round-robin, pops its own work
//! from the front, and steals from the *back* of a victim's queue when it
//! runs dry, so long-running jobs at the back of one queue migrate to
//! idle workers instead of serializing the tail of the sweep.
//!
//! Determinism: jobs are pure functions of their [`JobSpec`] and results
//! are returned indexed by job id, so worker count and steal order affect
//! wall time only, never the result vector. The cross-thread determinism
//! test in `tests/determinism.rs` pins this.
//!
//! [`JobSpec`]: crate::grid::JobSpec

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::time::Instant;
use ups_race::sync::atomic::{AtomicU64, Ordering};
use ups_race::sync::Mutex;

/// One worker's accounting after (or during) a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Jobs this worker executed.
    pub jobs: u64,
    /// Wall nanoseconds spent inside job closures.
    pub busy_ns: u64,
    /// Jobs this worker stole from another worker's queue.
    pub steals: u64,
    /// Jobs stolen *from* this worker's queue — the victim side, so a
    /// skewed deal shows up on the row that was overloaded.
    pub stolen_from: u64,
}

/// Aggregate pool accounting for the sweep report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads used.
    pub workers: usize,
    /// Jobs executed.
    pub jobs: usize,
    /// Jobs that ran on a worker other than the one they were dealt to
    /// (equals both the sum of per-worker `steals` and of `stolen_from`).
    pub steals: u64,
    /// Per-worker rows, indexed by worker id.
    pub per_worker: Vec<WorkerStats>,
}

/// The worker count [`run_jobs`] actually uses for a given request —
/// clamped to `[1, jobs]` so idle threads are never spawned. Exposed so
/// a [`PoolTelemetry`] can be sized before the pool starts.
pub fn effective_workers(requested: usize, jobs: usize) -> usize {
    requested.clamp(1, jobs.max(1))
}

/// Live, shared pool accounting: one set of relaxed-atomic cells per
/// worker plus a global done-jobs counter. Workers update it as they go;
/// a heartbeat thread may read it concurrently through
/// [`PoolTelemetry::snapshot`]/[`PoolTelemetry::done`] while the sweep
/// runs. Values are monotone, so a mid-run snapshot is a consistent
/// lower bound even though cells are read without synchronization.
#[derive(Debug)]
pub struct PoolTelemetry {
    cells: Vec<[AtomicU64; 4]>, // [jobs, busy_ns, steals, stolen_from]
    done: AtomicU64,
}

impl PoolTelemetry {
    const JOBS: usize = 0;
    const BUSY_NS: usize = 1;
    const STEALS: usize = 2;
    const STOLEN_FROM: usize = 3;

    /// Telemetry for a pool of exactly `workers` threads (use
    /// [`effective_workers`] to match what the pool will spawn).
    pub fn new(workers: usize) -> Self {
        PoolTelemetry {
            cells: (0..workers)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
            done: AtomicU64::new(0),
        }
    }

    /// Worker rows this telemetry was sized for.
    pub fn workers(&self) -> usize {
        self.cells.len()
    }

    /// Jobs finished so far, across all workers.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    fn add(&self, worker: usize, cell: usize, n: u64) {
        self.cells[worker][cell].fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of every worker row.
    pub fn snapshot(&self) -> Vec<WorkerStats> {
        self.cells
            .iter()
            .enumerate()
            .map(|(worker, c)| WorkerStats {
                worker,
                jobs: c[Self::JOBS].load(Ordering::Relaxed),
                busy_ns: c[Self::BUSY_NS].load(Ordering::Relaxed),
                steals: c[Self::STEALS].load(Ordering::Relaxed),
                stolen_from: c[Self::STOLEN_FROM].load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// Render a `catch_unwind` payload (the panic message is almost always a
/// `String` or `&'static str`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".into()
    }
}

/// Execute `f` over every job on `workers` threads; returns results in
/// job order (index `i` holds `f(i, &jobs[i])`) plus pool stats.
///
/// `f` runs concurrently on multiple threads — it must be `Sync` and is
/// given the job index so callers can stream per-job output as jobs
/// finish (completion order is nondeterministic; the *returned vector*
/// is not).
///
/// # Panics
/// A job that panics is caught on its worker (the rest of the sweep
/// still runs) and re-raised from the collector with the job id attached
/// — use [`run_jobs_labeled`] to also name the scenario.
pub fn run_jobs<J, R, F>(jobs: &[J], workers: usize, f: F) -> (Vec<R>, PoolStats)
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    run_jobs_labeled(jobs, workers, |i, _| format!("job {i}"), f)
}

/// [`run_jobs`] with a diagnostic label per job: when job *i* panics,
/// the re-raised collector panic reads
/// `"sweep job {i} ({label}) panicked: {original message}"` instead of a
/// bogus bookkeeping error, so the failing scenario is identifiable from
/// the report alone.
pub fn run_jobs_labeled<J, R, F, L>(
    jobs: &[J],
    workers: usize,
    label: L,
    f: F,
) -> (Vec<R>, PoolStats)
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
    L: Fn(usize, &J) -> String + Sync,
{
    run_jobs_telemetry(jobs, workers, None, label, f)
}

/// [`run_jobs_labeled`] with live accounting published into `telemetry`
/// as the sweep runs, so a heartbeat thread can report progress and
/// per-worker utilization mid-flight. When `telemetry` is `None` an
/// internal one is used (the final [`PoolStats::per_worker`] rows are
/// filled either way).
///
/// # Panics
/// If a provided telemetry was sized for a different worker count than
/// [`effective_workers`]`(workers, jobs.len())`.
pub fn run_jobs_telemetry<J, R, F, L>(
    jobs: &[J],
    workers: usize,
    telemetry: Option<&PoolTelemetry>,
    label: L,
    f: F,
) -> (Vec<R>, PoolStats)
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
    L: Fn(usize, &J) -> String + Sync,
{
    let workers = effective_workers(workers, jobs.len());
    let internal;
    let tel = match telemetry {
        Some(t) => {
            assert_eq!(
                t.workers(),
                workers,
                "telemetry sized for {} workers, pool uses {workers}",
                t.workers()
            );
            t
        }
        None => {
            internal = PoolTelemetry::new(workers);
            &internal
        }
    };
    // Deal jobs round-robin so every queue starts with a similar mix.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..jobs.len()).step_by(workers).collect()))
        .collect();

    let mut slots: Vec<Option<Result<R, String>>> =
        std::iter::repeat_with(|| None).take(jobs.len()).collect();
    ups_race::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queues = &queues;
                let f = &f;
                scope.spawn(move || {
                    let mut done: Vec<(usize, Result<R, String>)> = Vec::new();
                    loop {
                        // Own queue first (front: dealt order)...
                        let next = queues[w].lock().expect("queue poisoned").pop_front();
                        // ...then steal from the back of the first
                        // non-empty victim. No new jobs are ever produced,
                        // so "every queue empty" is a stable exit.
                        let next = next.or_else(|| {
                            (1..workers).find_map(|off| {
                                let victim = (w + off) % workers;
                                let got = queues[victim].lock().expect("queue poisoned").pop_back();
                                if got.is_some() {
                                    // Attribute both sides: the thief's
                                    // `steals` and the victim's
                                    // `stolen_from`.
                                    tel.add(w, PoolTelemetry::STEALS, 1);
                                    tel.add(victim, PoolTelemetry::STOLEN_FROM, 1);
                                }
                                got
                            })
                        });
                        match next {
                            Some(i) => {
                                // Catch per job: a panicking scenario must
                                // surface as *its own* failure, not as the
                                // collector's "job never executed".
                                // lint:allow(wall-clock): worker busy-time
                                // telemetry only; jobs never read it.
                                let t0 = Instant::now();
                                let r =
                                    std::panic::catch_unwind(AssertUnwindSafe(|| f(i, &jobs[i])))
                                        .map_err(|payload| panic_message(payload.as_ref()));
                                tel.add(w, PoolTelemetry::BUSY_NS, t0.elapsed().as_nanos() as u64);
                                tel.add(w, PoolTelemetry::JOBS, 1);
                                tel.done.fetch_add(1, Ordering::Relaxed);
                                done.push((i, r));
                            }
                            None => return done,
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("sweep worker panicked outside a job") {
                debug_assert!(slots[i].is_none(), "job {i} executed twice");
                slots[i] = Some(r);
            }
        }
    });

    let results: Vec<R> = slots
        .into_iter()
        .enumerate()
        .map(
            |(i, r)| match r.unwrap_or_else(|| panic!("job {i} never executed")) {
                Ok(r) => r,
                Err(msg) => panic!("sweep job {i} ({}) panicked: {msg}", label(i, &jobs[i])),
            },
        )
        .collect();
    let per_worker = tel.snapshot();
    let stats = PoolStats {
        workers,
        jobs: jobs.len(),
        steals: per_worker.iter().map(|ws| ws.steals).sum(),
        per_worker,
    };
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_job_order_for_any_worker_count() {
        let jobs: Vec<u64> = (0..97).collect();
        for workers in [1, 2, 3, 8, 200] {
            let (out, stats) = run_jobs(&jobs, workers, |i, &j| {
                assert_eq!(i as u64, j);
                j * j
            });
            assert_eq!(out, jobs.iter().map(|j| j * j).collect::<Vec<_>>());
            assert_eq!(stats.jobs, 97);
            assert!(stats.workers <= 97);
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        let jobs: Vec<usize> = (0..500).collect();
        let (out, _) = run_jobs(&jobs, 4, |_, &j| {
            count.fetch_add(1, Ordering::Relaxed);
            j
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn stealing_rebalances_a_skewed_queue() {
        // Worker 0's dealt share (jobs 0, 2, 4, ...) is made slow; with 2
        // workers the fast worker must steal some of it.
        let jobs: Vec<usize> = (0..40).collect();
        let (_, stats) = run_jobs(&jobs, 2, |i, _| {
            if i % 2 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
        });
        assert_eq!(stats.workers, 2);
        // Not asserting an exact count (timing-dependent) — only that the
        // mechanism exists and fired under a 60 ms imbalance.
        assert!(stats.steals > 0, "no steals under skewed load");
    }

    #[test]
    fn panicking_job_reports_its_id_and_label_not_a_collector_error() {
        // Regression: a worker panic used to tear the thread down and
        // surface as the collector's misleading "job {i} never executed".
        let jobs: Vec<usize> = (0..8).collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_jobs_labeled(
                &jobs,
                2,
                |i, &j| format!("scenario-{j}/seed-{i}"),
                |_, &j| {
                    if j == 5 {
                        panic!("bottleneck bandwidth must be positive");
                    }
                    j
                },
            )
        }))
        .expect_err("the job panic must propagate");
        let msg = panic_message(caught.as_ref());
        assert!(msg.contains("sweep job 5"), "bad message: {msg}");
        assert!(msg.contains("scenario-5/seed-5"), "bad message: {msg}");
        assert!(
            msg.contains("bottleneck bandwidth must be positive"),
            "original panic text lost: {msg}"
        );
        assert!(
            !msg.contains("never executed"),
            "bogus collector error: {msg}"
        );
    }

    #[test]
    fn other_jobs_still_run_when_one_panics() {
        let count = AtomicUsize::new(0);
        let jobs: Vec<usize> = (0..20).collect();
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_jobs(&jobs, 4, |_, &j| {
                count.fetch_add(1, Ordering::Relaxed);
                if j == 0 {
                    panic!("boom");
                }
                j
            })
        }));
        assert_eq!(
            count.load(Ordering::Relaxed),
            20,
            "a panic must not take the worker's remaining queue down with it"
        );
    }

    #[test]
    fn telemetry_conservation_holds_when_a_job_panics() {
        // Audit of the panic path: every accounting update (per-worker
        // jobs/busy_ns and the global done counter) happens *after* the
        // catch_unwind, so a panicking job is billed like any other and
        // Σ per-worker jobs == done == dealt must survive a panic. The
        // ups-race model pins the same invariant on small configs
        // (fixtures::check_pool with panic_job); this is the full-size
        // production-pool regression test.
        let jobs: Vec<usize> = (0..30).collect();
        let tel = PoolTelemetry::new(effective_workers(3, jobs.len()));
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_jobs_telemetry(
                &jobs,
                3,
                Some(&tel),
                |i, _| format!("{i}"),
                |_, &j| {
                    if j == 7 {
                        panic!("boom");
                    }
                    j
                },
            )
        }))
        .expect_err("the job panic must propagate");
        let msg = panic_message(caught.as_ref());
        assert!(msg.contains("sweep job 7"), "bad message: {msg}");
        let rows = tel.snapshot();
        let jobs_sum: u64 = rows.iter().map(|w| w.jobs).sum();
        assert_eq!(
            jobs_sum, 30,
            "panicking job must still count in its worker row"
        );
        assert_eq!(tel.done(), 30, "panicking job must still count in done");
        let steals: u64 = rows.iter().map(|w| w.steals).sum();
        let stolen: u64 = rows.iter().map(|w| w.stolen_from).sum();
        assert_eq!(steals, stolen, "steal attribution must survive a panic");
    }

    #[test]
    fn per_worker_rows_attribute_steals_to_both_sides() {
        // Same skew as above: worker 0's dealt share is slow, worker 1
        // must steal from it. Every steal must show up twice — on the
        // thief's `steals` row and the victim's `stolen_from` row.
        let jobs: Vec<usize> = (0..40).collect();
        let tel = PoolTelemetry::new(effective_workers(2, jobs.len()));
        let (_, stats) = run_jobs_telemetry(
            &jobs,
            2,
            Some(&tel),
            |i, _| format!("job {i}"),
            |i, _| {
                if i % 2 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(3));
                }
            },
        );
        assert_eq!(stats.per_worker.len(), 2);
        assert!(stats.steals > 0, "no steals under skewed load");
        let stolen: u64 = stats.per_worker.iter().map(|w| w.stolen_from).sum();
        let steals: u64 = stats.per_worker.iter().map(|w| w.steals).sum();
        assert_eq!(steals, stats.steals, "thief-side attribution");
        assert_eq!(stolen, stats.steals, "victim-side attribution");
        assert_eq!(stats.per_worker.iter().map(|w| w.jobs).sum::<u64>(), 40);
        assert_eq!(tel.done(), 40);
        assert!(
            stats.per_worker.iter().any(|w| w.busy_ns > 0),
            "sleeping jobs must accrue busy time"
        );
    }

    #[test]
    #[should_panic(expected = "telemetry sized for")]
    fn mis_sized_telemetry_is_rejected() {
        let tel = PoolTelemetry::new(7);
        let jobs: Vec<usize> = (0..4).collect();
        let _ = run_jobs_telemetry(&jobs, 2, Some(&tel), |i, _| format!("{i}"), |_, _| ());
    }

    #[test]
    fn zero_workers_clamps_to_one_and_empty_jobs_is_fine() {
        let (out, stats) = run_jobs(&[1, 2, 3], 0, |_, &j| j);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(stats.workers, 1);
        let (out, _) = run_jobs::<u32, u32, _>(&[], 4, |_, &j| j);
        assert!(out.is_empty());
    }
}
