//! `sweep explain` — re-run one job with full hop recording and attribute
//! its replay divergence.
//!
//! Sweep records answer *how much* a replay diverged (the v5 `divergence`
//! block); this module answers *where and why*. It re-executes a single
//! [`JobSpec`] deterministically — same registries, same seed, so the
//! re-run reproduces the sweep's numbers — but records both the original
//! and the replay in [`RecordMode::PerHop`], which is what lets the
//! forensics layer walk hop timelines instead of degrading to exit-only
//! blame (the sweep's own records stay end-to-end: per-hop recording on
//! every job would defeat the bounded-memory path).
//!
//! The result is an [`Explanation`]: the comparison report, the
//! [`BlameCollector`] with its per-node/per-link/per-flow aggregates,
//! rendered tables, and optional Perfetto instant markers for the
//! worst-lateness packets.

use std::sync::Arc;

use ups_core::{compare_with_sink, replay_packets, run_schedule, HeaderInit, ReplayReport};
use ups_dynamics::FailureSchedule;
use ups_dynamics::{churn_replay_with_sink, parse_failure_spec, run_schedule_with_failures};
use ups_forensics::{BlameCollector, ReplayFlavor};
use ups_netsim::prelude::{DeadLinkPolicy, Dur, MapperKind, RecordMode, SchedulerKind};
use ups_obs::{InstantMarker, SharedProbe, TimeSeries};
use ups_topology::{build_simulator, BuildOptions, Routing, SchedulerAssignment};
use ups_workload::{profile_by_name, udp_packet_train, MTU};

use crate::grid::{JobSpec, TrafficMode};
use crate::runner::{assignment_for, SharedScenarios};

/// Everything `sweep explain` learned about one job's divergence.
pub struct Explanation {
    /// The job that was re-run.
    pub spec: Arc<JobSpec>,
    /// Which replay the forensics attributed.
    pub flavor: ReplayFlavor,
    /// The §2 comparison report of that replay.
    pub report: ReplayReport,
    /// The attribution: taxonomy counts, per-node blame, worst packets.
    pub forensics: BlameCollector,
    /// Sampled series of the replay run (when a probe was attached for
    /// Perfetto export).
    pub series: Option<TimeSeries>,
}

impl Explanation {
    /// Render the report header, the conservation line and the top-`k`
    /// blame tables as terminal text.
    pub fn render(&self, k: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "job {} — {} on {} ({} replay)\n",
            self.spec.job_id, self.spec.scheduler, self.spec.topology, self.flavor
        ));
        let rate = self
            .report
            .match_rate()
            .map_or("n/a".to_string(), |r| format!("{:.6}", r));
        out.push_str(&format!(
            "compared {} packets: {} diverged, {} beyond T, {} missing (match rate {})\n",
            self.report.total,
            self.report.overdue,
            self.report.overdue_gt_t,
            self.report.missing,
            rate
        ));
        // The conservation law, stated with the numbers so a reader can
        // check it without trusting us: every mismatched packet got
        // exactly one cause and one inversion class.
        let s = self.forensics.summary();
        out.push_str(&format!(
            "conservation: causes {} = inversions {} = mismatches {} = report {}\n\n",
            s.cause_total(),
            s.inversion_total(),
            self.forensics.mismatches(),
            self.report.overdue
        ));
        out.push_str(&self.forensics.render_tables(k));
        out
    }

    /// Perfetto instant markers for the worst-lateness divergences, on
    /// the virtual-time axis of the original run.
    pub fn markers(&self) -> Vec<InstantMarker> {
        self.forensics
            .worst_cases()
            .iter()
            .map(|w| InstantMarker {
                t_ps: w.exited_ps,
                name: w.cause.name().to_string(),
                detail: format!(
                    "packet {} flow {} at {}: {}, late {:.3} us",
                    w.id,
                    w.flow,
                    w.node,
                    w.kind,
                    w.lateness.as_us_f64()
                ),
            })
            .collect()
    }
}

/// Re-run `spec` with per-hop recording and attribute its replay
/// divergence. `with_series` attaches a sampling probe to the replay run
/// (for Perfetto export); it never changes the simulation results — the
/// obs determinism contract.
///
/// Errors (as text for the CLI) when the job cannot be explained: a
/// closed-loop job (endpoints decide their own packet sets; the sweep
/// record is the right surface there), a job whose spec disabled the
/// replay, or a drop-free gate violation mirroring `run_job`'s.
pub fn explain_job(
    spec: &Arc<JobSpec>,
    shared: &SharedScenarios,
    with_series: bool,
) -> Result<Explanation, String> {
    if spec.traffic == TrafficMode::ClosedLoop {
        return Err(
            "closed-loop jobs cannot be explained hop-by-hop: the endpoints' as-executed \
             schedule is already the replay target; use the sweep record's divergence block"
                .into(),
        );
    }
    if !spec.replay {
        return Err("this job's spec has replay: false — nothing to explain".into());
    }
    let (topo, routing_core) = shared.get(&spec.topology);
    let topo = &*topo;
    let profile = profile_by_name(&spec.profile)
        .ok_or_else(|| format!("unknown profile {:?}", spec.profile))?;
    let assign = assignment_for(topo, &spec.scheduler)
        .ok_or_else(|| format!("unknown scheduler {:?}", spec.scheduler))?;
    let mut routing = Routing::from_core(routing_core);
    let flows = profile.flows(topo, &mut routing, spec.utilization, spec.window, spec.seed);
    let mut packets = udp_packet_train(&flows, MTU);
    if let Some(cap) = spec.max_packets {
        packets.truncate(cap);
    }
    // Per-hop recording on both sides: the whole point of the re-run.
    let opts = BuildOptions {
        record: RecordMode::PerHop,
        seed: spec.seed,
        router_buffer_bytes: spec.buffer_bytes,
        ..BuildOptions::default()
    };

    if let Some(f) = spec.failures.as_deref() {
        // The churn flavor: replay the delivered subset along observed
        // paths. The churn replay itself records end-to-end (it is the
        // sweep's bounded-memory path), so hop blame degrades to drop
        // causes and exit lateness — still attributed, just coarser.
        let (fprofile, rate) = parse_failure_spec(f)?;
        let policy = match spec.inflight.as_deref() {
            Some("drop") => DeadLinkPolicy::Drop,
            Some("reroute") => DeadLinkPolicy::Reroute,
            other => return Err(format!("bad in-flight policy {other:?}")),
        };
        let schedule = FailureSchedule::generate(topo, fprofile, rate, spec.window, spec.seed);
        let churn = run_schedule_with_failures(
            topo,
            &assign,
            packets.iter().cloned(),
            &schedule,
            policy,
            &opts,
        );
        if churn.stats.delivered == 0 {
            return Err("the churn run delivered nothing; no replay to explain".into());
        }
        let mut forensics = BlameCollector::new(ReplayFlavor::Churn);
        let report = churn_replay_with_sink(topo, &churn.trace, spec.seed, &mut forensics);
        return Ok(Explanation {
            spec: spec.clone(),
            flavor: ReplayFlavor::Churn,
            report,
            forensics,
            series: None,
        });
    }

    let original = run_schedule(topo, &assign, packets.iter().cloned(), &opts);
    let dropped = packets.len() as u64
        - original
            .stream()
            .filter(|(_, r)| r.exited.is_some())
            .count() as u64;
    if dropped > 0 {
        return Err(format!(
            "the original run dropped {dropped} packets; §2.3 replays run drop-free \
             (the sweep skips the replay on this job too)"
        ));
    }
    let replay_set = replay_packets(topo, &original, &packets, HeaderInit::LstfSlack);
    let (flavor, replay_assign) = match spec.queues {
        Some(k) => {
            let mapper = spec
                .mapper
                .as_deref()
                .and_then(MapperKind::from_name)
                .ok_or_else(|| format!("bad mapper {:?}", spec.mapper))?;
            (
                ReplayFlavor::Quantized { k },
                SchedulerAssignment::uniform(SchedulerKind::quantized_lstf(k, mapper)),
            )
        }
        None => (
            ReplayFlavor::Exact,
            SchedulerAssignment::uniform(SchedulerKind::Lstf { preemptive: false }),
        ),
    };
    let mut sim = build_simulator(topo, &replay_assign, &opts);
    let probe = with_series.then(|| {
        // Sample at ~1/512 of the job window (floor 1 µs) — enough rows
        // for a readable Perfetto timeline without drowning short jobs.
        SharedProbe::new((spec.window.as_ps() / 512).max(1_000_000))
    });
    if let Some(p) = &probe {
        sim.set_probe(p.attachment());
    }
    for p in replay_set {
        sim.inject(p);
    }
    sim.run();
    let replay = sim.into_trace();
    let threshold = topo.bottleneck_bandwidth().tx_time(MTU);
    let mut forensics = BlameCollector::new(flavor);
    let report = compare_with_sink(&original, &replay, threshold, Dur::ZERO, &mut forensics);
    Ok(Explanation {
        spec: spec.clone(),
        flavor,
        report,
        forensics,
        series: probe.map(|p| p.take_series()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::TrafficMode;

    fn base_spec() -> JobSpec {
        JobSpec {
            job_id: 0,
            topology: "Line(3)".into(),
            profile: "fixed-mtu".into(),
            scheduler: "Random".into(),
            traffic: TrafficMode::OpenLoop,
            rest_bps: None,
            utilization: 0.6,
            seed: 11,
            window: Dur::from_ms(4),
            horizon: None,
            buffer_bytes: None,
            replay: true,
            queues: None,
            mapper: None,
            failures: None,
            inflight: None,
            max_packets: None,
        }
    }

    fn explain(spec: JobSpec) -> Result<Explanation, String> {
        let spec = Arc::new(spec);
        let shared = SharedScenarios::for_jobs([&*spec]);
        explain_job(&spec, &shared, false)
    }

    #[test]
    fn quantized_job_explains_with_conserved_counts() {
        let mut spec = base_spec();
        spec.queues = Some(1);
        spec.mapper = Some("dynamic".into());
        let ex = explain(spec).expect("explainable job");
        assert_eq!(ex.flavor, ReplayFlavor::Quantized { k: 1 });
        // K=1 degrades LSTF to FIFO: a Random original must diverge.
        assert!(ex.report.overdue > 0, "K=1 replay should diverge");
        let s = ex.forensics.summary();
        assert_eq!(s.cause_total(), ex.report.overdue as u64);
        assert_eq!(s.inversion_total(), ex.report.overdue as u64);
        assert!(!s.top_nodes.is_empty(), "blame table names switches");
        // Per-hop recording means real hop attribution, not exit-only.
        assert!(
            s.bucket_collision > 0,
            "quantized divergence should show bucket collisions: {:?}",
            s
        );
        let rendered = ex.render(5);
        assert!(rendered.contains("mismatch taxonomy"));
        assert!(rendered.contains("conservation:"));
        assert!(!ex.markers().is_empty(), "worst cases become markers");
    }

    #[test]
    fn closed_loop_and_replayless_jobs_are_rejected() {
        let mut spec = base_spec();
        spec.traffic = TrafficMode::ClosedLoop;
        spec.horizon = Some(Dur::from_ms(10));
        assert!(explain(spec)
            .err()
            .expect("rejected")
            .contains("closed-loop"));
        let mut spec = base_spec();
        spec.replay = false;
        assert!(explain(spec)
            .err()
            .expect("rejected")
            .contains("replay: false"));
    }

    #[test]
    fn exact_replay_on_line_matches_perfectly() {
        // On Line(3) with per-hop LSTF slack headers the exact replay
        // reproduces the schedule: the explanation reports zero blame.
        let ex = explain(base_spec()).expect("explainable job");
        assert_eq!(ex.flavor, ReplayFlavor::Exact);
        assert_eq!(ex.forensics.mismatches(), ex.report.overdue as u64);
    }
}
