//! A minimal JSON reader for artifact validation.
//!
//! The store *emits* JSON with hand-rolled formatting (see
//! `ups_metrics::summary`); this module is the other direction — just
//! enough of a recursive-descent parser to load a `BENCH_sweep.json` back
//! and assert its schema, so CI can validate the artifact without serde
//! (the workspace is offline; DESIGN.md §6).

use std::collections::BTreeMap;

/// A parsed JSON value. Objects use a `BTreeMap` — artifact validation
/// only looks fields up by name, never relies on insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON doesn't distinguish int/float).
    Number(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let b = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        other => Err(format!("unexpected {other:?} at byte {pos}", pos = *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Number)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogate pairs don't appear in our artifacts;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut v = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(v));
    }
    loop {
        v.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(v));
            }
            other => return Err(format!("expected , or ] (found {other:?})")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut m = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(m));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        m.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(m));
            }
            other => return Err(format!("expected , or }} (found {other:?})")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_record() {
        let src = r#"{"a": 1, "b": [true, null, -2.5e3], "s": "x\"y\\z\nq"}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.0));
        let arr = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0], JsonValue::Bool(true));
        assert_eq!(arr[1], JsonValue::Null);
        assert_eq!(arr[2].as_f64(), Some(-2500.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\"y\\z\nq"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1} trailing"#).is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parses_summary_emission() {
        // The emitter in ups-metrics and this parser must agree.
        let summary = ups_metrics::RunSummary {
            flows: 2,
            packets: 10,
            delivered: 10,
            dropped: 0,
            delay_mean_s: 0.001,
            delay_p99_s: 0.002,
            fct_mean_s: 0.5,
            fct_buckets: vec![(1460, 0.1, 1), (u64::MAX, 0.2, 1)],
            jain: None,
            replay_match_rate: None,
            replay_frac_gt_t: None,
            quantized_match_rate: Some(0.5),
            quantized_frac_gt_t: Some(0.25),
            quantized_fct_delta_s: Some(0.003),
            transport: Some(ups_metrics::TransportSummary {
                completed_flows: 2,
                goodput_bytes: 12_345,
                retransmits: 1,
                rto_events: 0,
                slack_ooo: 2,
            }),
            disruption: Some(ups_metrics::DisruptionSummary {
                links_failed: 2,
                rerouted: 17,
                dropped_at_dead_link: 1,
                churn_replay_match_rate: None,
            }),
            divergence: None,
        };
        let v = parse(&summary.to_json()).unwrap();
        assert_eq!(v.get("packets").unwrap().as_f64(), Some(10.0));
        assert_eq!(v.get("replay_match_rate"), Some(&JsonValue::Null));
        assert_eq!(v.get("jain"), Some(&JsonValue::Null));
        assert_eq!(v.get("quantized_match_rate").unwrap().as_f64(), Some(0.5));
        assert_eq!(
            v.get("quantized_fct_delta_s").unwrap().as_f64(),
            Some(0.003)
        );
        let t = v.get("transport").unwrap();
        assert_eq!(t.get("goodput_bytes").unwrap().as_f64(), Some(12_345.0));
        let d = v.get("disruption").unwrap();
        assert_eq!(d.get("rerouted").unwrap().as_f64(), Some(17.0));
        assert_eq!(d.get("churn_replay_match_rate"), Some(&JsonValue::Null));
        let buckets = v.get("fct_buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets[0].get("edge_bytes").unwrap().as_f64(), Some(1460.0));
        assert_eq!(buckets[1].get("edge_bytes"), Some(&JsonValue::Null));
    }

    #[test]
    fn unicode_and_escapes() {
        let v = parse(r#""café → naïve""#).unwrap();
        assert_eq!(v.as_str(), Some("café → naïve"));
    }
}
