//! Executing one [`JobSpec`]: build the scenario from the registries,
//! run the original schedule (open-loop UDP train or closed-loop TCP
//! endpoints), optionally run the LSTF replay, and distill a
//! [`RunSummary`].
//!
//! A job is a pure function of its spec — the topology and workload are
//! rebuilt from (name, seed) inside the worker thread, nothing is shared
//! between jobs, and all metrics aggregate in packet-/flow-id order. That
//! purity is what lets the pool run jobs on any worker in any order and
//! still produce identical result records (see `tests/determinism.rs`).
//!
//! ## Closed-loop jobs
//!
//! `traffic: closed-loop` drives the simulator with live TCP Reno
//! endpoints through the shared [`ups_transport::driver`]: the slack
//! policy is derived from the scheduler under test (see
//! [`slack_policy_for`]), the run stops at the job's horizon (or packet
//! cap), and the §2 replay then re-runs the **as-executed** schedule —
//! every data segment and ack the endpoints actually emitted, at its
//! recorded injection time — through black-box LSTF. The summary gains a
//! transport block (completions, goodput, retransmits, RTOs) distilled
//! from [`TransportStats`].

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use ups_core::{as_executed_packets, compare_with_sink, replay_packets, run_schedule, HeaderInit};
use ups_dynamics::{
    churn_replay_with_sink, parse_failure_spec, run_schedule_with_failures, FailureSchedule,
};
use ups_forensics::{BlameCollector, ReplayFlavor};
use ups_metrics::{
    jain_index, mean_fct_by_bucket, DisruptionSummary, FlowSample, RunAccumulator, RunSummary,
    TransportSummary, FIG2_BUCKETS,
};
use ups_netsim::prelude::{
    DeadLinkPolicy, Dur, MapperKind, PacketKind, RecordMode, SchedulerKind, SimTime, Trace,
};
use ups_topology::{
    topology_by_name, BuildOptions, Routing, RoutingCore, SchedulerAssignment, Topology,
};
use ups_transport::{run_tcp, SlackPolicy, TcpConfig, TcpScenario, TransportStats};
use ups_workload::{profile_by_name, udp_packet_train, FlowSpec, MTU};

use crate::grid::{JobSpec, TrafficMode, MIXED_FQ_FIFOPLUS};

/// Topology + all-pairs routing, built **once per distinct topology** in
/// a sweep and shared read-only across every job (and worker thread)
/// that names it. Before this cache each job redid the whole
/// `O(V·(V+E))` BFS; now a job only carries its own cheap per-(src, dst)
/// path cache on top of the shared core.
pub struct SharedScenarios {
    map: BTreeMap<String, (Arc<Topology>, Arc<RoutingCore>)>,
}

impl SharedScenarios {
    /// Build the shared topology/routing pair for every distinct
    /// topology named by `jobs` — any borrowing iterable of specs
    /// (slices, or `Arc<JobSpec>` collections via a deref map).
    pub fn for_jobs<'a>(jobs: impl IntoIterator<Item = &'a JobSpec>) -> Self {
        let mut map = BTreeMap::new();
        for spec in jobs {
            if !map.contains_key(&spec.topology) {
                let topo = topology_by_name(&spec.topology)
                    .unwrap_or_else(|| panic!("unvalidated topology {:?}", spec.topology));
                let core = Arc::new(RoutingCore::new(&topo));
                map.insert(spec.topology.clone(), (Arc::new(topo), core));
            }
        }
        SharedScenarios { map }
    }

    /// The shared pair for a topology name, building it on the fly for a
    /// spec the cache was not primed with.
    pub(crate) fn get(&self, name: &str) -> (Arc<Topology>, Arc<RoutingCore>) {
        match self.map.get(name) {
            Some((t, c)) => (t.clone(), c.clone()),
            None => {
                let topo = topology_by_name(name)
                    .unwrap_or_else(|| panic!("unvalidated topology {name:?}"));
                let core = Arc::new(RoutingCore::new(&topo));
                (Arc::new(topo), core)
            }
        }
    }

    /// Distinct topologies held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Resolve a grid scheduler label into a per-node assignment on `topo`.
/// Returns `None` for labels that can't run as an original schedule
/// (grids reject those at expansion; see
/// [`crate::grid::is_original_scheduler`]).
pub fn assignment_for(topo: &Topology, label: &str) -> Option<SchedulerAssignment> {
    if label == MIXED_FQ_FIFOPLUS {
        return Some(SchedulerAssignment::half_half(
            topo,
            SchedulerKind::Fq,
            SchedulerKind::FifoPlus,
            SchedulerKind::Fifo,
        ));
    }
    match SchedulerKind::from_name(label)? {
        SchedulerKind::Omniscient | SchedulerKind::Edf { .. } => None,
        kind => Some(SchedulerAssignment::uniform(kind)),
    }
}

/// The §3 slack policy a closed-loop job stamps, derived from the
/// scheduler under test:
///
/// * `LSTF` — [`SlackPolicy::FctSjf`] (§3.1, LSTF approximates SJF), or
///   [`SlackPolicy::Fairness`] when the job carries an `r_est` (§3.3);
/// * `FIFO+` — [`SlackPolicy::Constant`] (§3.2's uniform slack; FIFO+
///   ignores the header, but the stamped schedule is the one §3.2
///   equates with constant-slack LSTF);
/// * everything else (FIFO/FQ/SJF/SRPT/…) — [`SlackPolicy::None`]; the
///   endpoints still stamp `flow_size`/`remaining` so SJF and SRPT
///   routers can prioritize.
pub fn slack_policy_for(label: &str, rest_bps: Option<u64>) -> SlackPolicy {
    match label {
        "LSTF" => match rest_bps {
            Some(rest) => SlackPolicy::Fairness(rest),
            None => SlackPolicy::FctSjf,
        },
        "FIFO+" => SlackPolicy::Constant(ups_core::tail_slack()),
        _ => SlackPolicy::None,
    }
}

/// One finished job: the spec it ran, what it measured, how long it took.
///
/// The spec rides along as an `Arc`: a sweep holds every record in memory
/// until the final report, and cloning the full `JobSpec` (five `String`s
/// plus options) into each one doubled the per-record footprint for data
/// the grid already owns.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The scenario executed.
    pub spec: Arc<JobSpec>,
    /// Per-run metrics.
    pub summary: RunSummary,
    /// Wall-clock seconds this job took on its worker.
    pub wall_s: f64,
}

/// Schema tag of one result line (v5 added the `divergence` forensics
/// block; v4 added the `failures`/`inflight` scenario fields and the
/// `disruption` metrics block).
pub const RECORD_SCHEMA: &str = "ups-sweep-record/v5";

impl JobRecord {
    /// The record as one JSON line. `with_timing: false` omits the
    /// wall-clock field, leaving only fields that are pure functions of
    /// the spec — the form the cross-thread determinism contract compares.
    // lint:schema(ups-sweep-record/v5)
    pub fn to_json(&self, with_timing: bool) -> String {
        let timing = if with_timing {
            format!(r#","wall_s":{}"#, ups_metrics::json_num(self.wall_s))
        } else {
            String::new()
        };
        format!(
            r#"{{"schema":"{}","job_id":{},"scenario":{},"metrics":{}{}}}"#,
            RECORD_SCHEMA,
            self.spec.job_id,
            self.spec.scenario_json(),
            self.summary.to_json(),
            timing
        )
    }
}

/// Execute one job to completion, building its topology and routing
/// from scratch. Prefer [`run_job_shared`] when running many jobs — it
/// reuses one all-pairs BFS per distinct topology.
///
/// # Panics
/// On registry/label lookups the grid already validated, and on the
/// internal invariants of the replay framework.
pub fn run_job(spec: &JobSpec) -> JobRecord {
    run_job_shared(spec, &SharedScenarios::for_jobs(std::slice::from_ref(spec)))
}

/// [`run_job`] against a prebuilt [`SharedScenarios`] cache. Clones the
/// spec once into the record's `Arc`; callers that already hold
/// `Arc<JobSpec>`s (the sweep binary) should use [`run_job_arc`].
pub fn run_job_shared(spec: &JobSpec, shared: &SharedScenarios) -> JobRecord {
    run_job_arc(&Arc::new(spec.clone()), shared)
}

/// [`run_job_shared`] for callers holding shared specs: the record reuses
/// the caller's `Arc` instead of cloning the spec.
pub fn run_job_arc(spec: &Arc<JobSpec>, shared: &SharedScenarios) -> JobRecord {
    // lint:allow(wall-clock): feeds only the record's wall_s field,
    // which to_json(false) excludes from the determinism surface.
    let t0 = Instant::now();
    let (topo, routing_core) = shared.get(&spec.topology);
    let topo = &*topo;
    let profile = profile_by_name(&spec.profile)
        .unwrap_or_else(|| panic!("unvalidated profile {:?}", spec.profile));
    let assign = assignment_for(topo, &spec.scheduler)
        .unwrap_or_else(|| panic!("unvalidated scheduler {:?}", spec.scheduler));

    let mut routing = Routing::from_core(routing_core);
    let flows = profile.flows(topo, &mut routing, spec.utilization, spec.window, spec.seed);
    let opts = BuildOptions {
        record: RecordMode::EndToEnd,
        seed: spec.seed,
        router_buffer_bytes: spec.buffer_bytes,
        ..BuildOptions::default()
    };

    // The failure sub-axis: generate the seeded outage schedule up front
    // so its distinct-link count lands in the disruption block even when
    // the replay is skipped.
    let failure = spec.failures.as_deref().map(|f| {
        // Grids reject this combination (GridError::FailuresNeedOpenLoop);
        // a hand-built spec must fail just as loudly, not run a silently
        // static TCP scenario labeled as churn.
        assert_eq!(
            spec.traffic,
            TrafficMode::OpenLoop,
            "failure spec {f:?} on a closed-loop job — link churn drives open-loop schedules only"
        );
        let (profile, rate) =
            parse_failure_spec(f).unwrap_or_else(|e| panic!("unvalidated failure spec: {e}"));
        let policy = match spec.inflight.as_deref() {
            Some("drop") => DeadLinkPolicy::Drop,
            Some("reroute") => DeadLinkPolicy::Reroute,
            other => panic!("unvalidated in-flight policy {other:?}"),
        };
        (
            FailureSchedule::generate(topo, profile, rate, spec.window, spec.seed),
            policy,
        )
    });

    let (original, mut summary, as_executed) = match spec.traffic {
        TrafficMode::OpenLoop => {
            let mut packets = udp_packet_train(&flows, MTU);
            if let Some(cap) = spec.max_packets {
                packets.truncate(cap);
            }
            match &failure {
                Some((schedule, policy)) => {
                    let churn = run_schedule_with_failures(
                        topo,
                        &assign,
                        packets.iter().cloned(),
                        schedule,
                        *policy,
                        &opts,
                    );
                    let mut summary =
                        summarize_trace(&churn.trace, &flows, packets.len() as u64, None);
                    summary.disruption = Some(DisruptionSummary {
                        links_failed: schedule.links_failed(),
                        rerouted: churn.stats.rerouted,
                        dropped_at_dead_link: churn.stats.dropped_dead_link,
                        churn_replay_match_rate: None, // filled below
                    });
                    // The replay targets what actually ran: the delivered
                    // packets at their observed paths.
                    let executed = as_executed_packets(&churn.trace);
                    (churn.trace, summary, executed)
                }
                None => {
                    let original = run_schedule(topo, &assign, packets.iter().cloned(), &opts);
                    let summary = summarize_trace(&original, &flows, packets.len() as u64, None);
                    (original, summary, packets)
                }
            }
        }
        TrafficMode::ClosedLoop => {
            let run = run_tcp(
                &TcpScenario {
                    topo,
                    assign: &assign,
                    opts,
                    flows: &flows,
                    config: TcpConfig::default(),
                    policy: slack_policy_for(&spec.scheduler, spec.rest_bps),
                    horizon: spec.horizon.expect("closed-loop jobs carry a horizon"),
                    max_packets: spec.max_packets.map(|n| n as u64),
                    goodput_bucket: Dur::from_ms(1),
                },
                &mut routing,
            );
            let summary = summarize_trace(&run.trace, &flows, run.sim.injected, Some(&run.stats));
            // The §2 replay re-runs the schedule the endpoints actually
            // executed: reconstruct that packet set from the trace.
            let packets = as_executed_packets(&run.trace);
            (run.trace, summary, packets)
        }
    };

    // A churn job replays the delivered subset along observed paths —
    // drops at dead links are *expected* and excluded on both sides, so
    // the drop-free gate below doesn't apply.
    if spec.replay && summary.delivered > 0 && failure.is_some() {
        let mut forensics = BlameCollector::new(ReplayFlavor::Churn);
        let report = churn_replay_with_sink(topo, &original, spec.seed, &mut forensics);
        summary.replay_match_rate = report.match_rate();
        summary.replay_frac_gt_t = report.frac_gt_t_rate();
        summary
            .disruption
            .as_mut()
            .expect("failure jobs carry a disruption block")
            .churn_replay_match_rate = report.match_rate();
        summary.divergence = Some(forensics.summary());
    }

    // Replay needs every packet delivered (§2.3 runs drop-free); with
    // unbounded buffers dropped > 0 can't happen — the gate makes a
    // buffered grid degrade to "no replay" instead of a panic. Closed-loop
    // packet sets are already restricted to delivered packets, so a
    // horizon-truncated run still replays its delivered prefix.
    if spec.replay && summary.dropped == 0 && summary.delivered > 0 && failure.is_none() {
        let replay_set = replay_packets(topo, &original, &as_executed, HeaderInit::LstfSlack);
        let replay_assign = SchedulerAssignment::uniform(SchedulerKind::Lstf { preemptive: false });
        let replay_opts = BuildOptions {
            record: RecordMode::EndToEnd,
            seed: spec.seed,
            ..BuildOptions::default()
        };
        let replay = run_schedule(
            topo,
            &replay_assign,
            replay_set.iter().cloned(),
            &replay_opts,
        );
        let threshold = topo.bottleneck_bandwidth().tx_time(MTU);
        let mut forensics = BlameCollector::new(ReplayFlavor::Exact);
        let report = compare_with_sink(&original, &replay, threshold, Dur::ZERO, &mut forensics);
        // An empty comparison matched nothing: null, not a perfect 1.0.
        summary.replay_match_rate = report.match_rate();
        summary.replay_frac_gt_t = report.frac_gt_t_rate();
        summary.divergence = Some(forensics.summary());

        // The finite-priority-queue sub-axis: the identical packet set
        // replayed through quantized LSTF, scored against the same
        // original, with FCT degradation measured against the exact
        // replay above.
        if let Some(k) = spec.queues {
            let mapper = spec
                .mapper
                .as_deref()
                .and_then(MapperKind::from_name)
                .unwrap_or_else(|| panic!("unvalidated mapper {:?}", spec.mapper));
            let q_assign = SchedulerAssignment::uniform(SchedulerKind::quantized_lstf(k, mapper));
            let q_replay = run_schedule(topo, &q_assign, replay_set, &replay_opts);
            // The quantized comparison's forensics replace the exact
            // replay's: when the queues axis is present the record
            // explains the quantized divergence (the interesting one).
            let mut q_forensics = BlameCollector::new(ReplayFlavor::Quantized { k });
            let q_report =
                compare_with_sink(&original, &q_replay, threshold, Dur::ZERO, &mut q_forensics);
            summary.quantized_match_rate = q_report.match_rate();
            summary.quantized_frac_gt_t = q_report.frac_gt_t_rate();
            summary.divergence = Some(q_forensics.summary());
            summary.quantized_fct_delta_s = match (
                trace_mean_fct(&q_replay, &flows),
                trace_mean_fct(&replay, &flows),
            ) {
                (Some(q), Some(exact)) => Some(q - exact),
                _ => None,
            };
        }
    }

    JobRecord {
        spec: spec.clone(),
        summary,
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

/// Mean flow completion time over a (replay) trace: per flow, last data
/// packet exit minus the flow's start, averaged in flow-id order. `None`
/// when the trace delivered nothing — the quantized-vs-exact FCT delta
/// has no meaning on an empty run.
fn trace_mean_fct(trace: &Trace, flows: &[FlowSpec]) -> Option<f64> {
    let mut last_exit = vec![None::<SimTime>; flows.len()];
    for (_, rec) in trace.stream() {
        if rec.kind != PacketKind::Data {
            continue;
        }
        let Some(exited) = rec.exited else { continue };
        let slot = &mut last_exit[rec.flow.index()];
        *slot = Some(slot.map_or(exited, |e| e.max(exited)));
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for (flow, exit) in flows.iter().zip(&last_exit) {
        if let Some(exit) = exit {
            sum += exit.saturating_since(flow.start).as_secs_f64();
            n += 1;
        }
    }
    (n > 0).then(|| sum / n as f64)
}

/// Distill an original-run trace into the summary metrics, one record at
/// a time: the trace is consumed through [`Trace::stream`] into a
/// [`RunAccumulator`], so a streaming (spilled) trace summarizes in
/// bounded memory and a resident one never allocates a per-packet sample
/// vector. All accumulator state is order-insensitive (exact integer
/// picosecond sums, a logarithmic quantile sketch for p99), so both trace
/// layouts produce bit-identical summaries.
///
/// Delay, throughput and per-flow byte accounting consider **data**
/// packets only (acks are transport control); `dropped` counts every
/// kind, because any drop disqualifies the drop-free replay. For
/// closed-loop runs (`transport: Some`), flow completion times come from
/// the receiver-side [`TransportStats`] — the paper's FCT — instead of
/// last-packet-exit spans, and the summary gains the transport block.
pub fn summarize_trace(
    trace: &Trace,
    flows: &[FlowSpec],
    injected: u64,
    transport: Option<&TransportStats>,
) -> RunSummary {
    let mut acc = RunAccumulator::new(flows.len());
    for (_, rec) in trace.stream() {
        if rec.dropped {
            acc.on_drop();
            continue;
        }
        if rec.kind != PacketKind::Data {
            continue;
        }
        let Some(exited) = rec.exited else { continue };
        let delay = rec.delay().expect("exited implies delay");
        acc.on_delivery(rec.flow.index(), rec.size, delay.as_ps(), exited.as_ps());
    }

    let flow_meta: Vec<(u64, u64)> = flows.iter().map(|f| (f.size, f.start.as_ps())).collect();
    let (mut fct_samples, rates) = acc.flow_samples(&flow_meta);
    let flows_seen = fct_samples.len();

    // Closed loop: the true FCT is "last in-order byte received",
    // measured by the receivers — completed flows only.
    let completions = transport.map(|stats| stats.completions());
    if let Some(completions) = &completions {
        fct_samples = completions
            .iter()
            .map(|c| FlowSample {
                size: c.bytes,
                fct_secs: c.fct().as_secs_f64(),
            })
            .collect();
    }

    RunSummary {
        flows: flows_seen,
        packets: injected,
        delivered: acc.delivered(),
        dropped: acc.dropped(),
        delay_mean_s: acc.delay_mean_s(),
        delay_p99_s: acc.delay_p99_s(),
        fct_mean_s: ups_metrics::overall_mean_fct(&fct_samples),
        fct_buckets: mean_fct_by_bucket(&fct_samples, &FIG2_BUCKETS),
        jain: if rates.is_empty() {
            None // a dead run must not report "perfectly fair"
        } else {
            Some(jain_index(&rates))
        },
        replay_match_rate: None,
        replay_frac_gt_t: None,
        quantized_match_rate: None,
        quantized_frac_gt_t: None,
        quantized_fct_delta_s: None,
        transport: transport.map(|stats| TransportSummary {
            completed_flows: completions.as_ref().map_or(0, Vec::len),
            goodput_bytes: stats.goodput_total(),
            retransmits: stats.retransmits_total(),
            rto_events: stats.timeouts_total(),
            slack_ooo: stats.slack_out_of_order(),
        }),
        disruption: None,
        divergence: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_netsim::prelude::Dur;

    fn spec(scheduler: &str, replay: bool) -> JobSpec {
        // fixed-mtu on a line: dense single-packet flows at a small
        // window (the empirical profiles' multi-MB means make 2-host
        // micro-topologies too sparse for millisecond windows).
        JobSpec {
            job_id: 0,
            topology: "Line(3)".into(),
            profile: "fixed-mtu".into(),
            scheduler: scheduler.into(),
            traffic: TrafficMode::OpenLoop,
            rest_bps: None,
            utilization: 0.6,
            seed: 11,
            window: Dur::from_ms(4),
            horizon: None,
            buffer_bytes: None,
            replay,
            queues: None,
            mapper: None,
            failures: None,
            inflight: None,
            max_packets: None,
        }
    }

    fn failure_spec(scheduler: &str, spec_str: &str, inflight: &str, replay: bool) -> JobSpec {
        JobSpec {
            topology: "FatTree(k=4)".into(),
            failures: Some(spec_str.into()),
            inflight: Some(inflight.into()),
            ..spec(scheduler, replay)
        }
    }

    fn quantized_spec(scheduler: &str, k: u32, mapper: &str) -> JobSpec {
        JobSpec {
            queues: Some(k),
            mapper: Some(mapper.into()),
            ..spec(scheduler, true)
        }
    }

    fn closed_spec(scheduler: &str, replay: bool) -> JobSpec {
        JobSpec {
            traffic: TrafficMode::ClosedLoop,
            horizon: Some(Dur::from_ms(80)),
            ..spec(scheduler, replay)
        }
    }

    #[test]
    fn fifo_job_produces_consistent_metrics() {
        let rec = run_job(&spec("FIFO", false));
        let s = &rec.summary;
        assert!(s.packets > 100, "workload too small: {}", s.packets);
        assert_eq!(s.delivered, s.packets, "unbuffered line drops nothing");
        assert_eq!(s.dropped, 0);
        assert!(s.flows > 0 && s.flows <= s.packets as usize);
        assert!(s.delay_mean_s > 0.0 && s.delay_mean_s <= s.delay_p99_s);
        assert!(s.fct_mean_s > 0.0);
        let jain = s.jain.expect("delivering run has a Jain index");
        assert!(jain > 0.0 && jain <= 1.0 + 1e-12);
        assert!(s.replay_match_rate.is_none());
        assert!(
            s.transport.is_none(),
            "open-loop runs carry no transport block"
        );
        assert!(rec.wall_s > 0.0);
    }

    #[test]
    fn replay_on_a_line_matches_well() {
        // ≤ 2 congestion points on a line ⇒ near-perfect LSTF replay.
        let rec = run_job(&spec("Random", true));
        let rate = rec.summary.replay_match_rate.expect("replay ran");
        assert!(rate > 0.95, "LSTF matched only {rate}");
        assert!(rec.summary.replay_frac_gt_t.unwrap() <= 1.0 - rate + 1e-12);
    }

    #[test]
    fn identical_specs_yield_identical_records() {
        let a = run_job(&spec("SJF", true));
        let b = run_job(&spec("SJF", true));
        assert_eq!(a.to_json(false), b.to_json(false));
        // And the record parses back.
        let v = crate::json::parse(&a.to_json(true)).unwrap();
        assert_eq!(
            v.get("schema").unwrap().as_str(),
            Some("ups-sweep-record/v5")
        );
        assert!(v.get("wall_s").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn quantized_job_reports_degradation_against_exact_replay() {
        // K=1 degrades the replay to per-port FIFO: on a Random original
        // the quantized match rate must fall visibly below exact LSTF's.
        let rec = run_job(&quantized_spec("Random", 1, "dynamic"));
        let s = &rec.summary;
        let exact = s.replay_match_rate.expect("exact replay ran");
        let quant = s.quantized_match_rate.expect("quantized replay ran");
        assert!(quant <= exact + 1e-12, "quantized {quant} vs exact {exact}");
        assert!(
            s.quantized_frac_gt_t.unwrap() <= 1.0 - quant + 1e-12,
            "gt-T bounded by overdue"
        );
        assert!(s.quantized_fct_delta_s.is_some());
    }

    #[test]
    fn large_k_dynamic_quantization_is_exact() {
        // With K far above the distinct ranks in flight, the dynamic
        // mapper is bit-exact: identical match rate and zero FCT delta.
        let rec = run_job(&quantized_spec("Random", 4096, "dynamic"));
        let s = &rec.summary;
        assert_eq!(s.quantized_match_rate, s.replay_match_rate);
        assert_eq!(s.quantized_frac_gt_t, s.replay_frac_gt_t);
        assert_eq!(s.quantized_fct_delta_s, Some(0.0));
    }

    #[test]
    fn jobs_without_the_queues_axis_skip_quantized_metrics() {
        let rec = run_job(&spec("Random", true));
        assert!(rec.summary.replay_match_rate.is_some());
        assert!(rec.summary.quantized_match_rate.is_none());
        assert!(rec.summary.quantized_fct_delta_s.is_none());
    }

    #[test]
    fn failure_job_reports_a_disruption_block_and_churn_replay() {
        let rec = run_job(&failure_spec("FIFO", "random-links:0.6", "reroute", true));
        let s = &rec.summary;
        let d = s.disruption.as_ref().expect("failure job disruption block");
        assert!(d.links_failed > 0, "schedule must actually fail links");
        assert!(
            d.rerouted > 0,
            "a 60% cut on the fat-tree must divert someone"
        );
        let churn_rate = d.churn_replay_match_rate.expect("replay ran");
        assert_eq!(
            s.replay_match_rate,
            Some(churn_rate),
            "top-level replay rate is the churn replay's"
        );
        assert!((0.0..=1.0).contains(&churn_rate));
        assert!(s.delivered > 0);
    }

    #[test]
    fn failure_job_drop_policy_counts_dead_link_losses() {
        let rec = run_job(&failure_spec("FIFO", "burst:0.5", "drop", false));
        let s = &rec.summary;
        let d = s.disruption.as_ref().unwrap();
        assert_eq!(d.rerouted, 0, "drop policy never reroutes");
        assert!(d.dropped_at_dead_link > 0);
        assert_eq!(s.dropped, d.dropped_at_dead_link, "no buffer drops here");
        assert!(
            d.churn_replay_match_rate.is_none(),
            "replay skipped on request"
        );
    }

    #[test]
    #[should_panic(expected = "open-loop schedules only")]
    fn closed_loop_failure_spec_panics_loudly() {
        let mut s = failure_spec("FIFO", "burst:0.5", "drop", false);
        s.traffic = TrafficMode::ClosedLoop;
        s.horizon = Some(Dur::from_ms(20));
        let _ = run_job(&s);
    }

    #[test]
    fn static_jobs_carry_no_disruption_block() {
        let rec = run_job(&spec("FIFO", false));
        assert!(rec.summary.disruption.is_none());
    }

    #[test]
    fn failure_jobs_are_deterministic() {
        let a = run_job(&failure_spec("Random", "random-links:0.4", "reroute", true));
        let b = run_job(&failure_spec("Random", "random-links:0.4", "reroute", true));
        assert_eq!(a.to_json(false), b.to_json(false));
    }

    #[test]
    fn shared_scenarios_match_fresh_builds() {
        // The memoized path must be invisible in the records.
        let specs = [spec("FIFO", true), spec("Random", true)];
        let shared = SharedScenarios::for_jobs(&specs);
        assert_eq!(shared.len(), 1, "one distinct topology");
        for s in &specs {
            assert_eq!(
                run_job_shared(s, &shared).to_json(false),
                run_job(s).to_json(false)
            );
        }
    }

    #[test]
    fn max_packets_caps_the_workload() {
        let mut s = spec("FIFO", false);
        s.max_packets = Some(50);
        let rec = run_job(&s);
        assert_eq!(rec.summary.packets, 50);
    }

    #[test]
    fn mixed_assignment_resolves() {
        let topo = topology_by_name("I2:small").unwrap();
        assert!(assignment_for(&topo, MIXED_FQ_FIFOPLUS).is_some());
        assert!(assignment_for(&topo, "Omniscient").is_none());
        assert!(assignment_for(&topo, "EDF").is_none());
    }

    #[test]
    fn slack_policy_mapping_follows_the_scheduler_under_test() {
        assert!(matches!(
            slack_policy_for("LSTF", None),
            SlackPolicy::FctSjf
        ));
        assert!(matches!(
            slack_policy_for("LSTF", Some(7)),
            SlackPolicy::Fairness(7)
        ));
        assert!(matches!(
            slack_policy_for("FIFO+", None),
            SlackPolicy::Constant(_)
        ));
        for label in ["FIFO", "FQ", "SJF", "SRPT", MIXED_FQ_FIFOPLUS] {
            assert!(matches!(slack_policy_for(label, None), SlackPolicy::None));
        }
    }

    #[test]
    fn closed_loop_job_reports_transport_metrics_and_replays() {
        let rec = run_job(&closed_spec("FIFO", true));
        let s = &rec.summary;
        let t = s.transport.as_ref().expect("closed-loop transport block");
        assert!(t.completed_flows > 0, "single-MTU flows complete fast");
        assert!(t.goodput_bytes > 0);
        assert!(s.packets > s.delivered, "acks inflate injected over data");
        assert!(s.delay_mean_s > 0.0);
        assert!(s.fct_mean_s > 0.0, "FCT from receiver completions");
        assert!(s.jain.is_some());
        let rate = s.replay_match_rate.expect("as-executed schedule replayed");
        assert!(rate > 0.9, "LSTF replay of a TCP FIFO line: {rate}");
    }

    #[test]
    fn closed_loop_jobs_are_deterministic() {
        let a = run_job(&closed_spec("SJF", true));
        let b = run_job(&closed_spec("SJF", true));
        assert_eq!(a.to_json(false), b.to_json(false));
    }

    #[test]
    fn closed_loop_respects_the_packet_cap() {
        let mut s = closed_spec("FIFO", false);
        s.max_packets = Some(60);
        let rec = run_job(&s);
        assert!(rec.summary.packets >= 60, "cap binds");
        assert!(
            rec.summary.packets < 600,
            "run stopped early: {}",
            rec.summary.packets
        );
    }

    #[test]
    fn long_lived_closed_loop_job_runs_without_completions() {
        let mut s = closed_spec("LSTF", false);
        s.profile = "long-lived".into();
        s.rest_bps = Some(100_000_000);
        let rec = run_job(&s);
        let t = rec.summary.transport.as_ref().unwrap();
        assert_eq!(t.completed_flows, 0, "persistent flows never finish");
        assert!(t.goodput_bytes > 0, "but they move data");
        assert_eq!(rec.summary.fct_mean_s, 0.0, "no completions, no FCT");
        assert!(rec.summary.jain.is_some());
    }
}
