//! Executing one [`JobSpec`]: build the scenario from the registries,
//! run the original schedule, optionally run the LSTF replay, and distill
//! a [`RunSummary`].
//!
//! A job is a pure function of its spec — the topology and workload are
//! rebuilt from (name, seed) inside the worker thread, nothing is shared
//! between jobs, and all metrics aggregate in packet-/flow-id order. That
//! purity is what lets the pool run jobs on any worker in any order and
//! still produce identical result records (see `tests/determinism.rs`).

use std::time::Instant;

use ups_core::{compare, replay_packets, run_schedule, HeaderInit};
use ups_metrics::{jain_index, mean_fct_by_bucket, Cdf, FlowSample, RunSummary, FIG2_BUCKETS};
use ups_netsim::prelude::{RecordMode, SchedulerKind, SimTime, Trace};
use ups_topology::{topology_by_name, BuildOptions, SchedulerAssignment, Topology};
use ups_workload::{profile_by_name, udp_packet_train, FlowSpec, MTU};

use crate::grid::{JobSpec, MIXED_FQ_FIFOPLUS};

/// Resolve a grid scheduler label into a per-node assignment on `topo`.
/// Returns `None` for labels that can't run as an original schedule
/// (grids reject those at expansion; see
/// [`crate::grid::is_original_scheduler`]).
pub fn assignment_for(topo: &Topology, label: &str) -> Option<SchedulerAssignment> {
    if label == MIXED_FQ_FIFOPLUS {
        return Some(SchedulerAssignment::half_half(
            topo,
            SchedulerKind::Fq,
            SchedulerKind::FifoPlus,
            SchedulerKind::Fifo,
        ));
    }
    match SchedulerKind::from_name(label)? {
        SchedulerKind::Omniscient | SchedulerKind::Edf { .. } => None,
        kind => Some(SchedulerAssignment::uniform(kind)),
    }
}

/// One finished job: the spec it ran, what it measured, how long it took.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The scenario executed.
    pub spec: JobSpec,
    /// Per-run metrics.
    pub summary: RunSummary,
    /// Wall-clock seconds this job took on its worker.
    pub wall_s: f64,
}

impl JobRecord {
    /// The record as one JSON line. `with_timing: false` omits the
    /// wall-clock field, leaving only fields that are pure functions of
    /// the spec — the form the cross-thread determinism contract compares.
    pub fn to_json(&self, with_timing: bool) -> String {
        let timing = if with_timing {
            format!(r#","wall_s":{}"#, ups_metrics::json_num(self.wall_s))
        } else {
            String::new()
        };
        format!(
            r#"{{"schema":"ups-sweep-record/v1","job_id":{},"scenario":{},"metrics":{}{}}}"#,
            self.spec.job_id,
            self.spec.scenario_json(),
            self.summary.to_json(),
            timing
        )
    }
}

/// Execute one job to completion.
///
/// # Panics
/// On registry/label lookups the grid already validated, and on the
/// internal invariants of the replay framework.
pub fn run_job(spec: &JobSpec) -> JobRecord {
    let t0 = Instant::now();
    let topo = topology_by_name(&spec.topology)
        .unwrap_or_else(|| panic!("unvalidated topology {:?}", spec.topology));
    let profile = profile_by_name(&spec.profile)
        .unwrap_or_else(|| panic!("unvalidated profile {:?}", spec.profile));
    let assign = assignment_for(&topo, &spec.scheduler)
        .unwrap_or_else(|| panic!("unvalidated scheduler {:?}", spec.scheduler));

    let mut routing = ups_topology::Routing::new(&topo);
    let flows = profile.flows(
        &topo,
        &mut routing,
        spec.utilization,
        spec.window,
        spec.seed,
    );
    let mut packets = udp_packet_train(&flows, MTU);
    if let Some(cap) = spec.max_packets {
        packets.truncate(cap);
    }

    let opts = BuildOptions {
        record: RecordMode::EndToEnd,
        seed: spec.seed,
        ..BuildOptions::default()
    };
    let original = run_schedule(&topo, &assign, packets.iter().cloned(), &opts);
    let mut summary = summarize(&original, &flows, packets.len() as u64);

    // Replay needs every packet delivered (§2.3 runs drop-free); buffers
    // are unbounded here, so dropped > 0 can't happen — but keep the gate
    // so a future buffered grid degrades to "no replay" instead of a panic.
    if spec.replay && summary.dropped == 0 && summary.delivered > 0 {
        let replay_set = replay_packets(&topo, &original, &packets, HeaderInit::LstfSlack);
        let replay_assign = SchedulerAssignment::uniform(SchedulerKind::Lstf { preemptive: false });
        let replay = run_schedule(&topo, &replay_assign, replay_set, &opts);
        let threshold = topo.bottleneck_bandwidth().tx_time(MTU);
        let report = compare(&original, &replay, threshold);
        summary.replay_match_rate = Some(1.0 - report.frac_overdue());
        summary.replay_frac_gt_t = Some(report.frac_overdue_gt_t());
    }

    JobRecord {
        spec: spec.clone(),
        summary,
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

/// Distill an original-run trace into the summary metrics. All loops run
/// in packet-/flow-id order so float accumulation is deterministic.
fn summarize(trace: &Trace, flows: &[FlowSpec], injected: u64) -> RunSummary {
    let mut delays: Vec<f64> = Vec::new();
    let mut dropped = 0u64;
    // Dense per-flow accumulation: (delivered bytes, last exit).
    let mut flow_bytes = vec![0u64; flows.len()];
    let mut flow_last_exit = vec![SimTime::ZERO; flows.len()];
    for (_, rec) in trace.iter() {
        if rec.dropped {
            dropped += 1;
            continue;
        }
        let Some(exited) = rec.exited else { continue };
        delays.push(rec.delay().expect("exited implies delay").as_secs_f64());
        let fi = rec.flow.index();
        flow_bytes[fi] += rec.size as u64;
        flow_last_exit[fi] = flow_last_exit[fi].max(exited);
    }
    let delivered = delays.len() as u64;

    let mut fct_samples: Vec<FlowSample> = Vec::new();
    let mut rates: Vec<f64> = Vec::new();
    for (i, flow) in flows.iter().enumerate() {
        if flow_bytes[i] == 0 {
            continue; // flow truncated away or nothing delivered yet
        }
        let span = flow_last_exit[i].saturating_since(flow.start).as_secs_f64();
        fct_samples.push(FlowSample {
            size: flow.size,
            fct_secs: span,
        });
        if span > 0.0 {
            rates.push(flow_bytes[i] as f64 / span);
        }
    }

    let cdf = Cdf::new(delays);
    RunSummary {
        flows: fct_samples.len(),
        packets: injected,
        delivered,
        dropped,
        delay_mean_s: cdf.mean(),
        delay_p99_s: if cdf.is_empty() {
            0.0
        } else {
            cdf.quantile(0.99)
        },
        fct_mean_s: ups_metrics::overall_mean_fct(&fct_samples),
        fct_buckets: mean_fct_by_bucket(&fct_samples, &FIG2_BUCKETS),
        jain: jain_index(&rates),
        replay_match_rate: None,
        replay_frac_gt_t: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_netsim::prelude::Dur;

    fn spec(scheduler: &str, replay: bool) -> JobSpec {
        // fixed-mtu on a line: dense single-packet flows at a small
        // window (the empirical profiles' multi-MB means make 2-host
        // micro-topologies too sparse for millisecond windows).
        JobSpec {
            job_id: 0,
            topology: "Line(3)".into(),
            profile: "fixed-mtu".into(),
            scheduler: scheduler.into(),
            utilization: 0.6,
            seed: 11,
            window: Dur::from_ms(4),
            replay,
            max_packets: None,
        }
    }

    #[test]
    fn fifo_job_produces_consistent_metrics() {
        let rec = run_job(&spec("FIFO", false));
        let s = &rec.summary;
        assert!(s.packets > 100, "workload too small: {}", s.packets);
        assert_eq!(s.delivered, s.packets, "unbuffered line drops nothing");
        assert_eq!(s.dropped, 0);
        assert!(s.flows > 0 && s.flows <= s.packets as usize);
        assert!(s.delay_mean_s > 0.0 && s.delay_mean_s <= s.delay_p99_s);
        assert!(s.fct_mean_s > 0.0);
        assert!(s.jain > 0.0 && s.jain <= 1.0 + 1e-12);
        assert!(s.replay_match_rate.is_none());
        assert!(rec.wall_s > 0.0);
    }

    #[test]
    fn replay_on_a_line_matches_well() {
        // ≤ 2 congestion points on a line ⇒ near-perfect LSTF replay.
        let rec = run_job(&spec("Random", true));
        let rate = rec.summary.replay_match_rate.expect("replay ran");
        assert!(rate > 0.95, "LSTF matched only {rate}");
        assert!(rec.summary.replay_frac_gt_t.unwrap() <= 1.0 - rate + 1e-12);
    }

    #[test]
    fn identical_specs_yield_identical_records() {
        let a = run_job(&spec("SJF", true));
        let b = run_job(&spec("SJF", true));
        assert_eq!(a.to_json(false), b.to_json(false));
        // And the record parses back.
        let v = crate::json::parse(&a.to_json(true)).unwrap();
        assert_eq!(
            v.get("schema").unwrap().as_str(),
            Some("ups-sweep-record/v1")
        );
        assert!(v.get("wall_s").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn max_packets_caps_the_workload() {
        let mut s = spec("FIFO", false);
        s.max_packets = Some(50);
        let rec = run_job(&s);
        assert_eq!(rec.summary.packets, 50);
    }

    #[test]
    fn mixed_assignment_resolves() {
        let topo = topology_by_name("I2:small").unwrap();
        assert!(assignment_for(&topo, MIXED_FQ_FIFOPLUS).is_some());
        assert!(assignment_for(&topo, "Omniscient").is_none());
        assert!(assignment_for(&topo, "EDF").is_none());
    }
}
