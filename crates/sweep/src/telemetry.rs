//! The sweep heartbeat: a background thread that periodically reads the
//! live [`PoolTelemetry`] and turns it into
//! [`ups_obs::HeartbeatRecord`]s — a throttled stderr progress line
//! (done/total, jobs/sec, ETA), an optional `*.heartbeat.jsonl` stream,
//! and the tick history behind the run-level
//! `ups-obs-timeseries/v1` artifact.
//!
//! The heartbeat only ever *reads* relaxed counters; it cannot perturb
//! job results (jobs are pure functions of their specs) and is therefore
//! outside the determinism surface.

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use ups_race::sync::atomic::{AtomicBool, Ordering};

use ups_obs::{HeartbeatRecord, WorkerRow};

use crate::pool::PoolTelemetry;

/// How a [`Heartbeat`] reports.
#[derive(Debug, Clone)]
pub struct HeartbeatConfig {
    /// Jobs in the sweep (the denominator of every progress line).
    pub total: u64,
    /// Tick period. Sub-second keeps short CI sweeps from finishing
    /// between ticks; the work per tick is a few atomic loads.
    pub interval: Duration,
    /// Print a `# progress ...` line to stderr each tick.
    pub progress: bool,
    /// Append one heartbeat JSON line per tick to this file.
    pub jsonl: Option<PathBuf>,
}

/// Build the record for "now" from the live pool counters.
// lint:allow(wall-clock): heartbeat telemetry — observes the pool,
// never feeds back into job execution or any record's determinism
// surface (heartbeats are obs artifacts).
fn record_now(tel: &PoolTelemetry, total: u64, t0: Instant) -> HeartbeatRecord {
    let t_s = t0.elapsed().as_secs_f64();
    let done = tel.done().min(total);
    let jobs_per_sec = if t_s > 0.0 { done as f64 / t_s } else { 0.0 };
    let eta_s = (done > 0 && jobs_per_sec > 0.0).then(|| (total - done) as f64 / jobs_per_sec);
    let workers = tel
        .snapshot()
        .into_iter()
        .map(|w| {
            let busy_s = w.busy_ns as f64 / 1e9;
            WorkerRow {
                worker: w.worker,
                jobs: w.jobs,
                busy_s,
                utilization: if t_s > 0.0 { busy_s / t_s } else { 0.0 },
                steals: w.steals,
                stolen_from: w.stolen_from,
            }
        })
        .collect();
    HeartbeatRecord {
        t_s,
        done,
        total,
        jobs_per_sec,
        eta_s,
        workers,
    }
}

fn progress_line(r: &HeartbeatRecord) {
    let eta = match r.eta_s {
        Some(e) => format!(", eta {e:.0}s"),
        None => String::new(),
    };
    eprintln!(
        "# progress {}/{} jobs ({:.2} jobs/sec{eta})",
        r.done, r.total, r.jobs_per_sec
    );
}

/// A running heartbeat thread. Construct with [`Heartbeat::start`]
/// before launching the pool, stop with [`Heartbeat::finish`] after it
/// returns — the final tick is always recorded, so even a sweep shorter
/// than one interval yields a non-empty record history.
pub struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: ups_race::thread::JoinHandle<Vec<HeartbeatRecord>>,
}

impl Heartbeat {
    /// Spawn the heartbeat over `telemetry`.
    ///
    /// # Panics
    /// If `config.jsonl` names a file that cannot be created.
    pub fn start(telemetry: Arc<PoolTelemetry>, config: HeartbeatConfig) -> Heartbeat {
        let mut jsonl = config
            .jsonl
            .as_ref()
            .map(|p| BufWriter::new(File::create(p).expect("create heartbeat jsonl")));
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = ups_race::thread::spawn(move || {
            // lint:allow(wall-clock): heartbeat clock; see record_now.
            let t0 = Instant::now();
            let mut records = Vec::new();
            let emit = |records: &mut Vec<HeartbeatRecord>, jsonl: &mut Option<BufWriter<File>>| {
                let r = record_now(&telemetry, config.total, t0);
                if let Some(out) = jsonl.as_mut() {
                    writeln!(out, "{}", r.to_json()).expect("write heartbeat record");
                    out.flush().expect("flush heartbeat record");
                }
                if config.progress {
                    progress_line(&r);
                }
                records.push(r);
            };
            while !stop_flag.load(Ordering::Relaxed) {
                ups_race::thread::park_timeout(config.interval);
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                emit(&mut records, &mut jsonl);
            }
            // The completion tick: records the final counters even when
            // the whole sweep fit inside one interval.
            emit(&mut records, &mut jsonl);
            records
        });
        Heartbeat { stop, handle }
    }

    /// Stop the thread and return every tick recorded (at least one).
    pub fn finish(self) -> Vec<HeartbeatRecord> {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.thread().unpark();
        self.handle.join().expect("heartbeat thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_always_records_a_final_tick() {
        let tel = Arc::new(PoolTelemetry::new(2));
        let hb = Heartbeat::start(
            Arc::clone(&tel),
            HeartbeatConfig {
                total: 4,
                interval: Duration::from_secs(3600), // never ticks on its own
                progress: false,
                jsonl: None,
            },
        );
        let records = hb.finish();
        assert_eq!(records.len(), 1, "completion tick must always fire");
        assert_eq!(records[0].total, 4);
        assert_eq!(records[0].workers.len(), 2);
    }

    #[test]
    fn heartbeat_jsonl_lines_parse_back() {
        let dir = std::env::temp_dir().join(format!("ups-obs-hb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.heartbeat.jsonl");
        let tel = Arc::new(PoolTelemetry::new(1));
        let hb = Heartbeat::start(
            Arc::clone(&tel),
            HeartbeatConfig {
                total: 1,
                interval: Duration::from_millis(5),
                progress: false,
                jsonl: Some(path.clone()),
            },
        );
        std::thread::sleep(Duration::from_millis(30));
        let records = hb.finish();
        assert!(!records.is_empty());
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), records.len());
        for line in lines {
            let v = crate::json::parse(line).expect("heartbeat line parses");
            assert_eq!(
                v.get("schema").and_then(|s| s.as_str()),
                Some(ups_obs::HEARTBEAT_SCHEMA)
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
