//! `sweep` — run a declarative scenario grid across all cores.
//!
//! ```text
//! sweep                                   # the 60-job paper-default grid
//! sweep --workers 8 --seeds 1,2,3         # wider, more seeds
//! sweep --topos "Line(3),Dumbbell(4)" --scheds FIFO,LSTF \
//!       --window-ms 2 --max-packets 4000  # CI smoke grid
//! sweep --traffic closed-loop --scheds LSTF \
//!       --rest 1000000000,100000000       # TCP + §3.3 fairness r_est axis
//! sweep --queues 1,2,8 --mapper sppifo    # finite-priority-queue replays
//! sweep --failures none,random-links:0.3 \
//!       --traffic open-loop              # link-failure (churn) sweeps
//! sweep --list                            # registries and disciplines
//! sweep --validate BENCH_sweep.json BENCH_quantized.json \
//!       BENCH_divergence.json             # schema-check artifacts (the
//!                                         # validator dispatches per tag)
//! sweep explain --topos "Line(3)" --scheds Random --queues 1 \
//!       --top 5 --perfetto explain.json   # attribute one job's divergence
//! ```
//!
//! Writes one JSON line per finished job to `--jsonl` (completion order,
//! live progress) and the sorted aggregate to `--out`; `--check`
//! re-validates the aggregate after writing and fails the process if the
//! artifact doesn't conform.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ups_netsim::prelude::Dur;
use ups_sweep::{
    bench_sweep_json, explain_job, grid::is_original_scheduler, pool, runner, validate_bench_sweep,
    Exclude, Heartbeat, HeartbeatConfig, JobSpec, PoolTelemetry, ResultStream, ScenarioGrid,
};

struct Args {
    grid: ScenarioGrid,
    workers: usize,
    out: PathBuf,
    jsonl: PathBuf,
    telemetry: Option<PathBuf>,
    check: bool,
    quiet: bool,
    list: bool,
    validate: Vec<PathBuf>,
    explain: bool,
    job: Option<usize>,
    top: usize,
    perfetto: Option<PathBuf>,
}

fn default_workers() -> usize {
    ups_race::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 8)
}

const USAGE: &str = "\
sweep — parallel scenario-sweep engine (Universal Packet Scheduling)

USAGE:
  sweep [OPTIONS]
  sweep explain [GRID AXES/OPTIONS] [--job ID] [--top K] [--perfetto PATH]

GRID AXES (comma-separated; defaults form the 60-job paper grid):
  --topos NAMES       topologies by registry name
  --profiles NAMES    workload profiles by registry name
  --scheds LABELS     scheduler disciplines (Table-1 labels; FQ/FIFO+ ok)
  --traffic MODES     open-loop (UDP trains) and/or closed-loop (TCP Reno
                      with the slack policy of the scheduler under test)
  --rest BPS          r_est axis (bits/s) for closed-loop LSTF: each value
                      runs the §3.3 Fairness slack policy as its own job
  --queues KS         finite-priority-queue axis: per K, additionally replay
                      through quantized LSTF on K strict-priority FIFO
                      queues and report the match/FCT deltas vs exact LSTF
  --mapper NAME       rank->queue mapper for --queues: log, sppifo or
                      dynamic (default sppifo)
  --failures SPECS    network-dynamics axis: failure specs PROFILE[:rate]
                      (random-links, core-links, burst; rate = fraction of
                      eligible links, default 0.3) or the literal none
                      for a static-network row; open-loop only
  --inflight POLICY   what happens to packets at a dead link: reroute
                      (epoch-based re-pathing at the current hop; default)
                      or drop
  --utils FRACS       utilization targets, e.g. 0.3,0.7
  --seeds INTS        one independent job per seed

GRID OPTIONS:
  --window-ms MS      flow-arrival window per job (default 10)
  --horizon-ms MS     closed-loop simulated horizon (default window x 20)
  --buffer-bytes N    router buffers per port (default unbounded/drop-free)
  --no-replay         skip the LSTF replay (original schedule only)
  --max-packets N     cap injected packets per job (smoke grids)
  --exclude SPEC      drop combinations, e.g. topo=RocketFuel,sched=Random
                      (repeatable; traffic=closed-loop, queues=8,
                      failures=burst:0.5 and util>0.8 work too)
  --max-jobs N        keep at most N jobs

EXECUTION & OUTPUT:
  --workers N         worker threads (default: min(cores, 8))
  --out PATH          aggregate artifact (default BENCH_sweep.json)
  --jsonl PATH        streamed records (default sweep_results.jsonl)
  --telemetry BASE    write sweep telemetry: one heartbeat JSON line per
                      second to BASE.heartbeat.jsonl (done/total, jobs/sec,
                      ETA, per-worker utilization and steal attribution)
                      plus the run-level BASE.timeseries.json artifact,
                      schema-checked by --validate like any BENCH_*.json
  --check             validate the artifact after writing
  --quiet             suppress per-job lines and the throttled stderr
                      `# progress` heartbeat (telemetry files still write)

EXPLAIN (replay-divergence forensics; re-runs ONE job with per-hop
recording and attributes every mismatched packet):
  --job ID            which expanded grid job to explain (required when
                      the axes expand to more than one job)
  --top K             rows per blame table (default 10)
  --perfetto PATH     write the replay's sampled timeline as trace-event
                      JSON with one instant marker per worst-case
                      divergence (open in Perfetto / chrome://tracing)

OTHER:
  --list              print registered topologies, profiles, disciplines
  --validate PATHS    schema-check existing artifacts and exit; accepts
                      multiple paths and dispatches on each schema tag
  --help              this text
";

fn split_list(v: &str) -> Vec<String> {
    v.split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

fn parse_exclude(spec: &str) -> Result<Exclude, String> {
    let mut e = Exclude::default();
    for part in spec.split(',') {
        let part = part.trim();
        if let Some(v) = part.strip_prefix("topo=") {
            e.topology = Some(v.into());
        } else if let Some(v) = part.strip_prefix("profile=") {
            e.profile = Some(v.into());
        } else if let Some(v) = part.strip_prefix("sched=") {
            e.scheduler = Some(v.into());
        } else if let Some(v) = part.strip_prefix("traffic=") {
            e.traffic = Some(v.into());
        } else if let Some(v) = part.strip_prefix("queues=") {
            e.queues = Some(v.parse().map_err(|_| format!("bad queue count {v:?}"))?);
        } else if let Some(v) = part.strip_prefix("failures=") {
            e.failures = Some(v.into());
        } else if let Some(v) = part.strip_prefix("util>") {
            e.utilization_above = Some(v.parse().map_err(|_| format!("bad utilization {v:?}"))?);
        } else {
            return Err(format!(
                "bad --exclude part {part:?} \
                 (want topo=/profile=/sched=/traffic=/queues=/failures=/util>)"
            ));
        }
    }
    Ok(e)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        grid: ScenarioGrid::default(),
        workers: default_workers(),
        out: PathBuf::from("BENCH_sweep.json"),
        jsonl: PathBuf::from("sweep_results.jsonl"),
        telemetry: None,
        check: false,
        quiet: false,
        list: false,
        validate: Vec::new(),
        explain: false,
        job: None,
        top: 10,
        perfetto: None,
    };
    let mut it = std::env::args().skip(1).peekable();
    // `explain` is the one subcommand; everything after it is the same
    // flag grammar (grid axes select the job to re-run).
    if it.peek().map(String::as_str) == Some("explain") {
        it.next();
        args.explain = true;
    }
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--topos" => args.grid.topologies = split_list(&value("--topos")?),
            "--profiles" => args.grid.profiles = split_list(&value("--profiles")?),
            "--scheds" => args.grid.schedulers = split_list(&value("--scheds")?),
            "--traffic" => args.grid.traffic = split_list(&value("--traffic")?),
            "--rest" => {
                args.grid.rest_bps = split_list(&value("--rest")?)
                    .iter()
                    .map(|s| s.parse().map_err(|_| format!("bad r_est {s:?}")))
                    .collect::<Result<_, _>>()?;
            }
            "--queues" => {
                args.grid.queues = split_list(&value("--queues")?)
                    .iter()
                    .map(|s| s.parse().map_err(|_| format!("bad queue count {s:?}")))
                    .collect::<Result<_, _>>()?;
            }
            "--mapper" => args.grid.mapper = value("--mapper")?,
            "--failures" => args.grid.failures = split_list(&value("--failures")?),
            "--inflight" => args.grid.inflight = value("--inflight")?,
            "--utils" => {
                args.grid.utilizations = split_list(&value("--utils")?)
                    .iter()
                    .map(|s| s.parse().map_err(|_| format!("bad utilization {s:?}")))
                    .collect::<Result<_, _>>()?;
            }
            "--seeds" => {
                args.grid.seeds = split_list(&value("--seeds")?)
                    .iter()
                    .map(|s| s.parse().map_err(|_| format!("bad seed {s:?}")))
                    .collect::<Result<_, _>>()?;
            }
            "--window-ms" => {
                let ms: u64 = value("--window-ms")?
                    .parse()
                    .map_err(|_| "bad --window-ms".to_string())?;
                args.grid.window = Dur::from_ms(ms);
            }
            "--horizon-ms" => {
                let ms: u64 = value("--horizon-ms")?
                    .parse()
                    .map_err(|_| "bad --horizon-ms".to_string())?;
                args.grid.horizon = Some(Dur::from_ms(ms));
            }
            "--buffer-bytes" => {
                args.grid.buffer_bytes = Some(
                    value("--buffer-bytes")?
                        .parse()
                        .map_err(|_| "bad --buffer-bytes".to_string())?,
                );
            }
            "--no-replay" => args.grid.replay = false,
            "--max-packets" => {
                args.grid.max_packets = Some(
                    value("--max-packets")?
                        .parse()
                        .map_err(|_| "bad --max-packets".to_string())?,
                );
            }
            "--exclude" => args
                .grid
                .excludes
                .push(parse_exclude(&value("--exclude")?)?),
            "--max-jobs" => {
                args.grid.max_jobs = Some(
                    value("--max-jobs")?
                        .parse()
                        .map_err(|_| "bad --max-jobs".to_string())?,
                );
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "bad --workers".to_string())?;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--jsonl" => args.jsonl = PathBuf::from(value("--jsonl")?),
            "--telemetry" => args.telemetry = Some(PathBuf::from(value("--telemetry")?)),
            "--check" => args.check = true,
            "--quiet" => args.quiet = true,
            "--list" => args.list = true,
            "--validate" => {
                // Greedy: one flag, many artifacts (CI validates the
                // whole committed set in a single invocation).
                args.validate.push(PathBuf::from(value("--validate")?));
                while let Some(p) = it.peek() {
                    if p.starts_with("--") {
                        break;
                    }
                    args.validate
                        .push(PathBuf::from(it.next().expect("peeked")));
                }
            }
            "--job" => {
                args.job = Some(
                    value("--job")?
                        .parse()
                        .map_err(|_| "bad --job".to_string())?,
                );
            }
            "--top" => {
                args.top = value("--top")?
                    .parse()
                    .map_err(|_| "bad --top".to_string())?;
            }
            "--perfetto" => args.perfetto = Some(PathBuf::from(value("--perfetto")?)),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

/// `BASE` + literal suffix: `--telemetry runs/ci` names
/// `runs/ci.heartbeat.jsonl` and `runs/ci.timeseries.json`.
fn with_suffix(base: &std::path::Path, suffix: &str) -> PathBuf {
    let mut s = base.as_os_str().to_os_string();
    s.push(suffix);
    PathBuf::from(s)
}

fn list_registries() {
    println!("topologies:");
    for e in ups_topology::TOPOLOGIES {
        println!("  {:<18} {}", e.name, e.description);
    }
    println!("workload profiles:");
    for p in ups_workload::PROFILES {
        println!("  {:<18} {}", p.name, p.description);
    }
    println!("schedulers (original-schedule disciplines):");
    let labels: Vec<&str> = ups_netsim::sched::SchedulerKind::ALL
        .into_iter()
        .map(|k| k.name())
        .filter(|l| is_original_scheduler(l))
        .chain([ups_sweep::MIXED_FQ_FIFOPLUS])
        .collect();
    println!("  {}", labels.join(", "));
    println!("traffic modes:");
    println!("  open-loop          UDP packet trains paced by the host NIC (§2.3)");
    println!("  closed-loop        TCP Reno endpoints, slack policy per scheduler (§3)");
    println!("rank->queue mappers (--mapper, for --queues):");
    for m in ups_netsim::prelude::MapperKind::ALL {
        println!("  {:<18} {}", m.name(), m.description());
    }
    println!(
        "failure profiles (--failures PROFILE[:rate]; rate defaults to {}):",
        ups_dynamics::FailureProfile::DEFAULT_RATE
    );
    for (p, desc) in ups_dynamics::FAILURE_PROFILES {
        println!("  {:<18} {}", p.name(), desc);
    }
    println!("  none               static-network row (the baseline inside a failure grid)");
    println!("in-flight policies (--inflight, at a dead link):");
    println!("  reroute            epoch-based re-pathing at the packet's current hop");
    println!("  drop               lose the packet, recorded with its drop cause");
    println!("trace record modes (engine-level; sweep jobs pick per traffic mode):");
    for m in ups_netsim::prelude::RecordMode::ALL {
        println!("  {:<18} {}", m.name(), m.describe());
    }
    println!("observability probes (ups-obs gate; sampled via Simulator::set_probe):");
    for (name, desc) in ups_obs::describe_probes() {
        println!("  {name:<26} {desc}");
    }
    println!("scale bench (cargo bench -p ups-bench --bench scale; env knobs):");
    println!("  UPS_SCALE_PACKETS        packet floor for the streaming run (default 5000000)");
    println!("  UPS_SCALE_MIN_FLOWS      minimum flow count asserted (default 10000)");
    println!("  UPS_SCALE_FLOW_BYTES     fixed per-flow size in bytes (default 150000)");
    println!("  UPS_SCALE_RSS_BUDGET_MB  peak-RSS budget asserted via VmHWM (default 512)");
    println!("  UPS_SCALE_DIFF_PACKETS   differential-gate workload floor (default 120000)");
    println!("obs overhead bench (cargo bench -p ups-bench --bench obs_overhead; env knobs):");
    println!("  UPS_OBS_MIN_PACKETS      packet floor for the three-mode run (default 120000)");
    println!("  UPS_OBS_RUNS             timed repetitions, best-of (default 5)");
    println!("  UPS_OBS_TOLERANCE        two-sided |probe-off delta| ceiling (default 0.10)");
    println!("divergence forensics (sweep explain; ups-forensics taxonomy):");
    println!("  causes             overdue_within_t, overdue_beyond_t, missing_in_replay,");
    println!("                     dead_link_drop, buffer_drop (conserved vs the report)");
    println!("  inversions         rank_tie_break, bucket_collision, reroute,");
    println!("                     queue_overflow, exit_only (first divergent hop)");
    println!("  --job ID           which expanded grid job to explain");
    println!("  --top K            rows per blame table (default 10)");
    println!("  --perfetto PATH    replay timeline + divergence instant markers");
    println!("forensics bench (cargo bench -p ups-bench --bench forensics; env knobs):");
    println!("  UPS_FORENSICS_PACKETS  packet floor per bench row (default 30000)");
    println!("  UPS_FORENSICS_SEED     workload seed for both axes (default 7)");
    println!("model checker (cargo test -p ups-race; env knobs):");
    println!("  UPS_RACE_PREEMPTION_BOUND  DFS preemption budget per execution (default 2)");
    println!("  UPS_RACE_RANDOM_SCHEDULES  seeded random schedules per test (default 64)");
}

/// Schema-check one artifact, dispatching on its parsed schema tag: each
/// bench family has its own validator; everything else goes through the
/// sweep validator (which names any unexpected tag).
fn validate_artifact(path: &std::path::Path) -> Result<String, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let schema_tag = ups_sweep::json::parse(&doc)
        .ok()
        .and_then(|v| v.get("schema").and_then(|s| s.as_str().map(String::from)));
    if schema_tag.as_deref() == Some(ups_sweep::QUANTIZED_BENCH_SCHEMA) {
        ups_sweep::validate_bench_quantized(&doc).map(|d| {
            format!(
                "{} finite-K rows, exact-LSTF match rate {:.4}",
                d.rows, d.exact_match_rate
            )
        })
    } else if schema_tag.as_deref() == Some(ups_sweep::FAILURES_BENCH_SCHEMA) {
        ups_sweep::validate_bench_failures(&doc).map(|d| {
            format!(
                "{} intensity rows, match rate {:.4} (static) -> {:.4} (worst)",
                d.rows, d.baseline_match_rate, d.worst_match_rate
            )
        })
    } else if schema_tag.as_deref() == Some(ups_sweep::SCALE_BENCH_SCHEMA) {
        ups_sweep::validate_bench_scale(&doc).map(|d| {
            format!(
                "{} packets / {} flows streamed, peak RSS {:.1} MiB, match rate {:.4}",
                d.packets,
                d.flows,
                d.peak_rss_bytes as f64 / (1024.0 * 1024.0),
                d.replay_match_rate
            )
        })
    } else if schema_tag.as_deref() == Some(ups_obs::TIMESERIES_SCHEMA) {
        ups_sweep::validate_obs_timeseries(&doc).map(|d| {
            format!(
                "{} heartbeat ticks over {:.2}s, {} jobs on {} workers",
                d.ticks, d.wall_s, d.jobs, d.workers
            )
        })
    } else if schema_tag.as_deref() == Some(ups_sweep::OBS_BENCH_SCHEMA) {
        ups_sweep::validate_bench_obs(&doc).map(|d| {
            format!(
                "{} packets, probe-off overhead {:+.2}% (tolerance {:.0}%), probe-on {:+.2}%",
                d.packets,
                d.probe_off_overhead * 100.0,
                d.tolerance * 100.0,
                d.probe_on_overhead * 100.0
            )
        })
    } else if schema_tag.as_deref() == Some(ups_sweep::DIVERGENCE_BENCH_SCHEMA) {
        ups_sweep::validate_bench_divergence(&doc).map(|d| {
            format!(
                "{} quantization rows + {} failure rows, {} mismatches attributed (conserved)",
                d.quantization_rows, d.failure_rows, d.total_mismatches
            )
        })
    } else {
        validate_bench_sweep(&doc).map(|d| {
            format!(
                "{} jobs, {} workers, {:.2} jobs/sec",
                d.jobs, d.workers, d.jobs_per_sec
            )
        })
    }
}

/// `sweep explain`: expand the grid, pick the one job (by `--job` id when
/// the axes expand to several), re-run it with per-hop recording and
/// print the blame tables; `--perfetto` additionally exports the replay's
/// sampled timeline with one instant marker per worst-case divergence.
fn run_explain(args: &Args) -> ExitCode {
    let jobs: Vec<Arc<JobSpec>> = match args.grid.expand() {
        Ok(j) => j.into_iter().map(Arc::new).collect(),
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match args.job {
        Some(id) => match jobs.iter().find(|j| j.job_id == id) {
            Some(s) => Arc::clone(s),
            None => {
                eprintln!(
                    "sweep: no job {id} in this grid ({} jobs, ids 0..{})",
                    jobs.len(),
                    jobs.len()
                );
                return ExitCode::FAILURE;
            }
        },
        None if jobs.len() == 1 => Arc::clone(&jobs[0]),
        None => {
            eprintln!(
                "sweep: the axes expand to {} jobs; pick one with --job ID \
                 (ids 0..{}, in grid expansion order)",
                jobs.len(),
                jobs.len()
            );
            return ExitCode::FAILURE;
        }
    };
    let shared = runner::SharedScenarios::for_jobs([spec.as_ref()]);
    match explain_job(&spec, &shared, args.perfetto.is_some()) {
        Ok(ex) => {
            print!("{}", ex.render(args.top));
            if let Some(path) = &args.perfetto {
                let markers = ex.markers();
                match &ex.series {
                    Some(series) => {
                        let doc = ups_obs::trace_event_json_with_markers(series, &markers);
                        if let Err(e) = std::fs::write(path, doc) {
                            eprintln!("sweep: cannot write {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                        println!(
                            "\n# wrote {} ({} divergence markers)",
                            path.display(),
                            markers.len()
                        );
                    }
                    None => {
                        // The churn replay records end-to-end inside the
                        // dynamics engine; there is no sampled series to
                        // anchor markers on.
                        eprintln!(
                            "sweep: {} flavor has no sampled replay series; skipping {}",
                            ex.flavor,
                            path.display()
                        );
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("sweep: explain: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        list_registries();
        return ExitCode::SUCCESS;
    }
    if !args.validate.is_empty() {
        // Validate every path (don't stop at the first failure: CI wants
        // the full damage report), then fail if anything failed.
        let mut failed = false;
        for path in &args.validate {
            match validate_artifact(path) {
                Ok(line) => println!("{} valid: {line}", path.display()),
                Err(e) => {
                    eprintln!("sweep: {}: {e}", path.display());
                    failed = true;
                }
            }
        }
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    if args.explain {
        return run_explain(&args);
    }

    // Specs are shared into each record via `Arc` (see `JobRecord`), so
    // wrap them once at expansion instead of cloning per record.
    let jobs: Vec<std::sync::Arc<ups_sweep::JobSpec>> = match args.grid.expand() {
        Ok(j) => j.into_iter().map(std::sync::Arc::new).collect(),
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The r_est axis only multiplies closed-loop × LSTF combinations; a
    // grid where it applies nowhere would silently record an "r_est
    // sweep" containing zero Fairness(r_est) jobs.
    if !args.grid.rest_bps.is_empty() && jobs.iter().all(|j| j.rest_bps.is_none()) {
        eprintln!(
            "sweep: --rest given but no closed-loop LSTF job exists in the grid \
             (add LSTF to --scheds and closed-loop to --traffic)"
        );
        return ExitCode::FAILURE;
    }
    let stream = match ResultStream::create(&args.jsonl) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sweep: cannot open {}: {e}", args.jsonl.display());
            return ExitCode::FAILURE;
        }
    };
    // Excludes, the LSTF-only r_est sub-axis and --max-jobs all reshape
    // the cartesian product, so report the expanded count against the
    // six base axes without attributing the difference to one mechanism.
    println!(
        "# sweep: {} jobs ({} topologies × {} profiles × {} schedulers × {} traffic × {} utils × {} seeds{}) on {} workers",
        jobs.len(),
        args.grid.topologies.len(),
        args.grid.profiles.len(),
        args.grid.schedulers.len(),
        args.grid.traffic.len(),
        args.grid.utilizations.len(),
        args.grid.seeds.len(),
        if args.grid.rest_bps.is_empty() {
            String::new()
        } else {
            format!(", {} r_est values", args.grid.rest_bps.len())
        },
        args.workers.clamp(1, jobs.len())
    );
    if !args.grid.queues.is_empty() {
        println!(
            "# finite-priority-queue axis: K in {{{}}} via the {} mapper (quantized LSTF replays)",
            args.grid
                .queues
                .iter()
                .map(|k| k.to_string())
                .collect::<Vec<_>>()
                .join(","),
            args.grid.mapper
        );
    }

    if !args.grid.failures.is_empty() {
        println!(
            "# failure axis: {{{}}} with in-flight policy {}",
            args.grid.failures.join(","),
            args.grid.inflight
        );
    }

    // lint:allow(wall-clock): feeds the envelope's wall_s/jobs_per_sec
    // throughput fields, excluded from the determinism surface.
    let t0 = Instant::now();
    let quiet = args.quiet;
    let stream_ref = &stream;
    // The heartbeat thread reads these relaxed counters once a second;
    // it observes the pool but never feeds back into job execution.
    let telemetry = Arc::new(PoolTelemetry::new(pool::effective_workers(
        args.workers,
        jobs.len(),
    )));
    let heartbeat = Heartbeat::start(
        Arc::clone(&telemetry),
        HeartbeatConfig {
            total: jobs.len() as u64,
            interval: Duration::from_secs(1),
            progress: !quiet,
            jsonl: args
                .telemetry
                .as_ref()
                .map(|base| with_suffix(base, ".heartbeat.jsonl")),
        },
    );
    // One topology build + all-pairs BFS per *distinct* topology, shared
    // read-only across workers, instead of one per job.
    let shared = runner::SharedScenarios::for_jobs(jobs.iter().map(|j| j.as_ref()));
    let shared_ref = &shared;
    let (records, stats) = pool::run_jobs_telemetry(
        &jobs,
        args.workers,
        Some(&telemetry),
        |_, spec| spec.label(),
        move |_, spec| {
            let rec = runner::run_job_arc(spec, shared_ref);
            stream_ref.append(&rec);
            if !quiet {
                let s = &rec.summary;
                println!(
                    "job {:>3}  {:<16} {:<11} {:<8} {:<11} util {:.2} seed {:<2}  {:>7} pkts  {} replay {}{}{}{}  {:.2}s",
                    rec.spec.job_id,
                    rec.spec.topology,
                    rec.spec.profile,
                    rec.spec.scheduler,
                    rec.spec.traffic.name(),
                    rec.spec.utilization,
                    rec.spec.seed,
                    s.packets,
                    if s.dropped > 0 {
                        format!("dropped {}", s.dropped)
                    } else {
                        "drop-free".into()
                    },
                    match s.replay_match_rate {
                        Some(r) => format!("{:.4}", r),
                        None => "-".into(),
                    },
                    match (rec.spec.queues, s.quantized_match_rate) {
                        (Some(k), Some(q)) => format!("  K{k} {q:.4}"),
                        _ => String::new(),
                    },
                    match &s.transport {
                        Some(t) => format!("  tcp {}fl/{}retx", t.completed_flows, t.retransmits),
                        None => String::new(),
                    },
                    match &s.disruption {
                        Some(d) => format!(
                            "  churn {}dn/{}rr/{}dd",
                            d.links_failed, d.rerouted, d.dropped_at_dead_link
                        ),
                        None => String::new(),
                    },
                    rec.wall_s
                );
            }
            rec
        },
    );
    let wall_s = t0.elapsed().as_secs_f64();
    let ticks = heartbeat.finish();

    let doc = bench_sweep_json(&args.grid, &records, &stats, wall_s);
    if let Err(e) = std::fs::write(&args.out, &doc) {
        eprintln!("sweep: cannot write {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    // Steal attribution: thief side first, then which queues were raided.
    let stolen: Vec<String> = stats
        .per_worker
        .iter()
        .filter(|w| w.stolen_from > 0)
        .map(|w| format!("{}×w{}", w.stolen_from, w.worker))
        .collect();
    println!(
        "# {} jobs in {:.2}s on {} workers ({:.2} jobs/sec, {} steals{})",
        records.len(),
        wall_s,
        stats.workers,
        records.len() as f64 / wall_s,
        stats.steals,
        if stolen.is_empty() {
            String::new()
        } else {
            format!(" from {}", stolen.join(" "))
        }
    );
    println!(
        "# wrote {} and {}",
        args.out.display(),
        args.jsonl.display()
    );
    if let Some(base) = &args.telemetry {
        let ts_path = with_suffix(base, ".timeseries.json");
        let ts_doc =
            ups_obs::heartbeat::timeseries_json(&ticks, stats.workers, stats.steals, wall_s);
        if let Err(e) = std::fs::write(&ts_path, &ts_doc) {
            eprintln!("sweep: cannot write {}: {e}", ts_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "# wrote {} and {} ({} heartbeat ticks)",
            ts_path.display(),
            with_suffix(base, ".heartbeat.jsonl").display(),
            ticks.len()
        );
        // The artifact we just wrote must pass the same gate CI applies.
        if let Err(e) = ups_sweep::validate_obs_timeseries(&ts_doc) {
            eprintln!("sweep: telemetry artifact failed validation: {e}");
            return ExitCode::FAILURE;
        }
    }

    if args.check {
        match validate_bench_sweep(&doc) {
            Ok(d) => println!(
                "# artifact valid: {} jobs, {:.2} jobs/sec",
                d.jobs, d.jobs_per_sec
            ),
            Err(e) => {
                eprintln!("sweep: artifact failed validation: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
