//! Round trip between the two halves of the telemetry plumbing: records
//! are *emitted* by `ups-obs` (hand-rolled JSON) and *parsed* by this
//! crate's minimal parser — the pair must agree on every field,
//! including the `eta_s: null` case. Then the same plumbing end to end:
//! a real (tiny) sweep through `run_jobs_telemetry` + `Heartbeat`
//! produces a run-level document that `validate_obs_timeseries` accepts.

use std::sync::Arc;
use std::time::Duration;

use ups_obs::{HeartbeatRecord, WorkerRow};
use ups_sweep::json::{parse, JsonValue};
use ups_sweep::{pool, validate_obs_timeseries, Heartbeat, HeartbeatConfig, PoolTelemetry};

fn worker_back(v: &JsonValue) -> WorkerRow {
    let num = |f: &str| v.get(f).and_then(JsonValue::as_f64).expect(f);
    WorkerRow {
        worker: num("worker") as usize,
        jobs: num("jobs") as u64,
        busy_s: num("busy_s"),
        utilization: num("utilization"),
        steals: num("steals") as u64,
        stolen_from: num("stolen_from") as u64,
    }
}

fn record_back(line: &str) -> HeartbeatRecord {
    let v = parse(line).expect("heartbeat line parses");
    assert_eq!(
        v.get("schema").and_then(JsonValue::as_str),
        Some(ups_obs::HEARTBEAT_SCHEMA)
    );
    let num = |f: &str| v.get(f).and_then(JsonValue::as_f64).expect(f);
    HeartbeatRecord {
        t_s: num("t_s"),
        done: num("done") as u64,
        total: num("total") as u64,
        jobs_per_sec: num("jobs_per_sec"),
        eta_s: v.get("eta_s").and_then(JsonValue::as_f64),
        workers: v
            .get("workers")
            .and_then(JsonValue::as_array)
            .expect("workers")
            .iter()
            .map(worker_back)
            .collect(),
    }
}

#[test]
fn heartbeat_record_round_trips_through_the_parser() {
    let r = HeartbeatRecord {
        t_s: 2.125,
        done: 37,
        total: 60,
        jobs_per_sec: 17.5,
        eta_s: Some(1.3125),
        workers: vec![
            WorkerRow {
                worker: 0,
                jobs: 20,
                busy_s: 1.75,
                utilization: 0.875,
                steals: 4,
                stolen_from: 0,
            },
            WorkerRow {
                worker: 1,
                jobs: 17,
                busy_s: 1.5,
                utilization: 0.75,
                steals: 0,
                stolen_from: 4,
            },
        ],
    };
    assert_eq!(record_back(&r.to_json()), r);
    // `eta_s` is the only nullable field; null must come back as None.
    let unstarted = HeartbeatRecord {
        done: 0,
        eta_s: None,
        ..r
    };
    assert_eq!(record_back(&unstarted.to_json()), unstarted);
}

#[test]
fn live_sweep_timeseries_document_validates() {
    let jobs: Vec<u64> = (0..12).collect();
    let telemetry = Arc::new(PoolTelemetry::new(pool::effective_workers(3, jobs.len())));
    let hb = Heartbeat::start(
        Arc::clone(&telemetry),
        HeartbeatConfig {
            total: jobs.len() as u64,
            interval: Duration::from_millis(2),
            progress: false,
            jsonl: None,
        },
    );
    let (results, stats) = pool::run_jobs_telemetry(
        &jobs,
        3,
        Some(&telemetry),
        |i, _| format!("job {i}"),
        |_, &n| {
            std::thread::sleep(Duration::from_millis(1 + n % 3));
            n * 2
        },
    );
    let ticks = hb.finish();
    assert_eq!(results.len(), jobs.len());
    assert!(!ticks.is_empty());
    assert_eq!(ticks.last().unwrap().done, jobs.len() as u64);

    let doc = ups_obs::heartbeat::timeseries_json(&ticks, stats.workers, stats.steals, 0.05);
    let digest = validate_obs_timeseries(&doc).expect("live telemetry document validates");
    assert_eq!(digest.workers as usize, stats.workers);
    assert_eq!(digest.jobs, jobs.len() as u64);
    assert_eq!(digest.ticks, ticks.len());
}
