//! The sweep layer's extension of the repository determinism contract
//! (`tests/determinism.rs` at the root pins bit-identical *traces*; this
//! pins bit-identical *result records* across worker counts).
//!
//! A job is a pure function of its `JobSpec`, so executing the same
//! `ScenarioGrid` with 1 worker and with 4 workers must produce
//! byte-identical sorted result records — regardless of which worker ran
//! which job, in what order, or what got stolen.

use ups_netsim::prelude::Dur;
use ups_sweep::{pool, runner, store, PoolStats, ScenarioGrid};

fn tiny_grid() -> ScenarioGrid {
    ScenarioGrid {
        topologies: vec!["Line(3)".into(), "Dumbbell(4)".into()],
        profiles: vec!["fixed-mtu".into()],
        schedulers: vec!["FIFO".into(), "Random".into()],
        // The determinism contract must hold for TCP-driven jobs too: a
        // mixed grid runs every combination both open- and closed-loop.
        traffic: vec!["open-loop".into(), "closed-loop".into()],
        rest_bps: Vec::new(),
        utilizations: vec![0.7],
        seeds: vec![1, 2],
        window: Dur::from_ms(2),
        horizon: Some(Dur::from_ms(30)),
        buffer_bytes: None,
        replay: true,
        // Every job also runs the K=8 quantized replay, so the
        // cross-thread contract covers the finite-priority-queue path.
        queues: vec![8],
        mapper: "sppifo".into(),
        failures: Vec::new(),
        inflight: "reroute".into(),
        max_packets: Some(3_000),
        excludes: Vec::new(),
        max_jobs: None,
    }
}

/// An open-loop grid sweeping the failure axis: a static baseline plus a
/// reroute-heavy churn row on a path-diverse topology.
fn failure_grid() -> ScenarioGrid {
    ScenarioGrid {
        topologies: vec!["FatTree(k=4)".into(), "I2:small".into()],
        profiles: vec!["fixed-mtu".into()],
        schedulers: vec!["FIFO".into(), "Random".into()],
        traffic: vec!["open-loop".into()],
        rest_bps: Vec::new(),
        utilizations: vec![0.7],
        seeds: vec![1, 2],
        window: Dur::from_ms(2),
        horizon: None,
        buffer_bytes: None,
        replay: true,
        queues: Vec::new(),
        mapper: "sppifo".into(),
        failures: vec!["none".into(), "random-links:0.5".into()],
        inflight: "reroute".into(),
        max_packets: Some(3_000),
        excludes: Vec::new(),
        max_jobs: None,
    }
}

/// Run the grid with `workers` threads and return the sorted record
/// lines, timing stripped (wall time is the one field that may differ).
fn sorted_records(workers: usize) -> (Vec<String>, PoolStats) {
    let jobs = tiny_grid().expand().expect("grid expands");
    assert_eq!(
        jobs.len(),
        16,
        "2 topologies × 2 schedulers × 2 traffic modes × 2 seeds"
    );
    let (records, stats) = pool::run_jobs(&jobs, workers, |_, spec| runner::run_job(spec));
    let mut lines: Vec<String> = records.iter().map(|r| r.to_json(false)).collect();
    lines.sort();
    (lines, stats)
}

#[test]
fn one_worker_and_four_workers_agree_byte_for_byte() {
    let (serial, s1) = sorted_records(1);
    let (parallel, s4) = sorted_records(4);
    assert_eq!(s1.workers, 1);
    assert_eq!(s4.workers, 4);
    assert_eq!(
        serial, parallel,
        "sorted result records must be byte-identical across worker counts"
    );
    // The records actually carry simulation output, not just zeros.
    assert!(serial.iter().all(|l| l.contains(r#""delivered":"#)));
    assert!(
        serial
            .iter()
            .any(|l| l.contains(r#""replay_match_rate":0"#))
            || serial
                .iter()
                .any(|l| l.contains(r#""replay_match_rate":1"#)),
        "replay ran somewhere in the grid"
    );
    // The quantized sub-replay ran and serialized on every record.
    assert!(serial.iter().all(|l| l.contains(r#""queues":8"#)));
    assert!(
        serial
            .iter()
            .any(|l| l.contains(r#""quantized_match_rate":0"#)
                || l.contains(r#""quantized_match_rate":1"#)),
        "quantized replay reported a rate somewhere in the grid"
    );
    // Both traffic modes produced records, and the closed-loop ones
    // carry transport blocks with actual completions.
    assert!(serial
        .iter()
        .any(|l| l.contains(r#""traffic":"open-loop""#)));
    let closed: Vec<&String> = serial
        .iter()
        .filter(|l| l.contains(r#""traffic":"closed-loop""#))
        .collect();
    assert_eq!(closed.len(), 8);
    assert!(closed.iter().all(|l| l.contains(r#""transport":{"#)));
    assert!(
        closed.iter().any(|l| !l.contains(r#""completed_flows":0"#)),
        "TCP flows completed somewhere in the closed sub-grid"
    );
}

/// Run the failure grid with `workers` threads through the shared
/// topology cache (the memoized path is the one the CLI uses).
fn sorted_failure_records(workers: usize) -> Vec<String> {
    let jobs = failure_grid().expand().expect("grid expands");
    assert_eq!(
        jobs.len(),
        16,
        "2 topologies × 2 schedulers × 2 seeds × 2 failure-axis values"
    );
    let shared = runner::SharedScenarios::for_jobs(&jobs);
    let (records, _) = pool::run_jobs(&jobs, workers, |_, spec| {
        runner::run_job_shared(spec, &shared)
    });
    let mut lines: Vec<String> = records.iter().map(|r| r.to_json(false)).collect();
    lines.sort();
    lines
}

#[test]
fn failure_axis_grid_is_deterministic_across_worker_counts() {
    let serial = sorted_failure_records(1);
    let parallel = sorted_failure_records(4);
    assert_eq!(
        serial, parallel,
        "churn records must be byte-identical across worker counts"
    );
    // The churn rows actually churned: every failure record carries a
    // disruption block, and rerouting happened somewhere in the grid.
    let churn: Vec<&String> = serial
        .iter()
        .filter(|l| l.contains(r#""failures":"random-links:0.5""#))
        .collect();
    assert_eq!(churn.len(), 8);
    assert!(churn.iter().all(|l| l.contains(r#""disruption":{"#)));
    assert!(churn.iter().all(|l| l.contains(r#""inflight":"reroute""#)));
    assert!(
        churn.iter().any(|l| !l.contains(r#""rerouted":0"#)),
        "a 50% cut must reroute something somewhere"
    );
    assert!(
        churn
            .iter()
            .any(|l| l.contains(r#""churn_replay_match_rate":0"#)
                || l.contains(r#""churn_replay_match_rate":1"#)),
        "churn replay reported a rate somewhere"
    );
    // The static rows are plain v4 records with a null disruption.
    let baseline: Vec<&String> = serial
        .iter()
        .filter(|l| l.contains(r#""failures":null"#))
        .collect();
    assert_eq!(baseline.len(), 8);
    assert!(baseline.iter().all(|l| l.contains(r#""disruption":null"#)));
}

#[test]
fn repeated_parallel_runs_agree_too() {
    // Same worker count twice: steal patterns may differ run to run, the
    // records must not.
    let (a, _) = sorted_records(4);
    let (b, _) = sorted_records(4);
    assert_eq!(a, b);
}

#[test]
fn aggregate_artifact_from_parallel_run_validates() {
    let grid = tiny_grid();
    let jobs = grid.expand().unwrap();
    let t0 = std::time::Instant::now();
    let (records, stats) = pool::run_jobs(&jobs, 4, |_, spec| runner::run_job(spec));
    let doc = store::bench_sweep_json(&grid, &records, &stats, t0.elapsed().as_secs_f64());
    let digest = store::validate_bench_sweep(&doc).expect("artifact conforms to ups-sweep/v3");
    assert_eq!(digest.jobs, 16);
    assert!(digest.jobs_per_sec > 0.0);
}
