//! The committed artifacts, the validators and `SCHEMAS.lock` must
//! agree: every JSON key a committed `BENCH_*.json` artifact actually
//! carries appears in the lockfile surface of its schema tag. The lock
//! is extracted from the *emitters* (the `lint:schema` annotations), so
//! this closes the triangle — emitter annotations ↔ lockfile ↔ shipped
//! artifacts. A key in an artifact but missing from the lock means an
//! emitter lost its annotation (or the artifact was written by code the
//! lock does not cover); both deserve a red test.
//!
//! The lock may be a *superset* of any one artifact: optional fields
//! (`disruption`, `eta_s`, quantized metrics) appear only under some
//! scenarios.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use ups_lint::schemas::json_keys;
use ups_lint::{parse_lock, SurfaceMap};

fn repo_root() -> PathBuf {
    // crates/sweep → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn lock() -> SurfaceMap {
    let text = fs::read_to_string(repo_root().join("SCHEMAS.lock"))
        .expect("SCHEMAS.lock is committed at the repo root");
    parse_lock(&text).expect("SCHEMAS.lock parses")
}

/// Keys of an artifact document: `json_keys` over the raw text. The
/// artifacts are trusted well-formed here — `sweep --validate` (its own
/// CI step and `store::validate_*` tests) checks structure and values.
fn artifact_keys(name: &str) -> BTreeSet<String> {
    let text = fs::read_to_string(repo_root().join(name))
        .unwrap_or_else(|e| panic!("committed artifact {name}: {e}"));
    json_keys(&text).into_iter().collect()
}

/// Assert every key in `artifact` is covered by the union of the lock
/// surfaces of `tags`.
fn assert_covered(artifact: &str, tags: &[&str]) {
    let lock = lock();
    let mut allowed: BTreeSet<&str> = BTreeSet::new();
    for tag in tags {
        let surface = lock
            .get(*tag)
            .unwrap_or_else(|| panic!("{tag} missing from SCHEMAS.lock"));
        allowed.extend(surface.iter().map(String::as_str));
    }
    let missing: Vec<String> = artifact_keys(artifact)
        .into_iter()
        .filter(|k| !allowed.contains(k.as_str()))
        .collect();
    assert!(
        missing.is_empty(),
        "{artifact} carries keys outside the SCHEMAS.lock surface of {tags:?}: {missing:?} — \
         an emitter lost its lint:schema annotation, or the lock is stale \
         (cargo run -p ups-lint -- --update)"
    );
}

#[test]
fn sweep_artifact_is_covered_by_the_lock() {
    // The envelope (ups-sweep/v4) embeds one record line per job
    // (ups-sweep-record/v5), each of which may embed a forensics block
    // (ups-forensics/v1), so the artifact's keys live in the union.
    assert_covered(
        "BENCH_sweep.json",
        &["ups-sweep/v4", "ups-sweep-record/v5", "ups-forensics/v1"],
    );
}

#[test]
fn bench_artifacts_are_covered_by_the_lock() {
    for (artifact, tag) in [
        ("BENCH_throughput.json", "ups-bench-throughput/v1"),
        ("BENCH_quantized.json", "ups-bench-quantized/v1"),
        ("BENCH_failures.json", "ups-bench-failures/v1"),
        ("BENCH_scale.json", "ups-bench-scale/v1"),
        ("BENCH_obs.json", "ups-bench-obs/v1"),
    ] {
        assert_covered(artifact, &[tag]);
    }
    // The divergence bench embeds one forensics block per row.
    assert_covered(
        "BENCH_divergence.json",
        &["ups-bench-divergence/v1", "ups-forensics/v1"],
    );
}

#[test]
fn every_artifact_schema_tag_is_locked() {
    let lock = lock();
    for artifact in [
        "BENCH_sweep.json",
        "BENCH_throughput.json",
        "BENCH_quantized.json",
        "BENCH_failures.json",
        "BENCH_scale.json",
        "BENCH_obs.json",
        "BENCH_divergence.json",
    ] {
        let text = fs::read_to_string(repo_root().join(artifact)).expect("committed artifact");
        // Every `"schema": "<tag>"` value in the document (the envelope
        // plus, for the sweep artifact, each embedded record line).
        let mut found = 0;
        for part in text.split("\"schema\"") {
            let Some(rest) = part.trim_start().strip_prefix(':') else {
                continue;
            };
            let rest = rest.trim_start().trim_start_matches('"');
            let Some(tag) = rest.split('"').next() else {
                continue;
            };
            found += 1;
            assert!(
                lock.contains_key(tag),
                "{artifact} declares schema {tag:?} which SCHEMAS.lock does not cover"
            );
        }
        assert!(found > 0, "{artifact} carries no schema tag");
    }
}

#[test]
fn validator_required_fields_are_locked() {
    // The hand-maintained validators in store.rs demand these fields by
    // name; each must be part of the locked emitter surface, or the
    // validator would reject what the emitters produce.
    let lock = lock();
    let envelope = &lock["ups-sweep/v4"];
    for field in [
        "schema",
        "grid",
        "workers",
        "steals",
        "jobs",
        "wall_s",
        "jobs_per_sec",
        "results",
    ] {
        assert!(
            envelope.contains(field),
            "ups-sweep/v4 lock misses required field {field}"
        );
    }
    let record = &lock["ups-sweep-record/v5"];
    for field in [
        "schema",
        "job_id",
        "scenario",
        "metrics",
        "failures",
        "inflight",
        "disruption",
        "divergence",
    ] {
        assert!(
            record.contains(field),
            "ups-sweep-record/v5 lock misses required field {field}"
        );
    }
    // The forensics block's conservation-checked fields.
    let forensics = &lock["ups-forensics/v1"];
    for field in [
        "mismatches",
        "overdue_within_t",
        "bucket_collision",
        "exit_only",
        "top_nodes",
    ] {
        assert!(
            forensics.contains(field),
            "ups-forensics/v1 lock misses required field {field}"
        );
    }
}
