//! Round-trip property: every JSON line [`JobRecord::to_json`] can emit —
//! including the closed-loop transport block, a `null` Jain, the overflow
//! FCT bucket (`edge_bytes: null`) and the non-finite-float fallbacks in
//! `json_num` — must parse under the in-tree reader
//! (`ups_sweep::json::parse`) with every field surviving unchanged.
//!
//! The emitter (hand-rolled formatting in `ups-metrics`) and the parser
//! (recursive descent in `ups-sweep`) are maintained independently; this
//! test is the contract that keeps them agreeing as the record schema
//! grows.

use proptest::prelude::*;
use proptest::{bool as any_bool, collection, sample};
use ups_metrics::{DisruptionSummary, DivergenceSummary, RunSummary, TransportSummary};
use ups_netsim::prelude::Dur;
use ups_sweep::json::{parse, JsonValue};
use ups_sweep::{JobRecord, JobSpec, TrafficMode};

/// Names with every character class `json_escape` handles.
const NAMES: [&str; 6] = [
    "Line(3)",
    "FQ/FIFO+",
    "quote\"inside",
    "back\\slash",
    "tab\tand\nnewline",
    "unicode café →",
];

/// Finite-or-not floats: the emitter must fall back to `null` for the
/// non-finite ones.
fn any_float() -> impl Strategy<Value = f64> {
    prop_oneof![
        (0u64..u64::MAX).prop_map(|n| (n as f64 / 1e12) - 9e6),
        Just(0.0),
        Just(-0.0),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
    ]
}

/// Bucket edges including the overflow sentinel.
fn any_edge() -> impl Strategy<Value = u64> {
    prop_oneof![1u64..40_000_000, Just(30_762_200), Just(u64::MAX)]
}

/// What the parser must hold for a float the emitter was given.
fn assert_float_field(parsed: Option<&JsonValue>, input: f64, what: &str) {
    match parsed {
        Some(JsonValue::Number(x)) => {
            prop_assert_ok(input.is_finite(), what);
            assert_eq!(x.to_bits(), input.to_bits(), "{what}: {x} vs {input}");
        }
        Some(JsonValue::Null) => prop_assert_ok(!input.is_finite(), what),
        other => panic!("{what}: unexpected {other:?}"),
    }
}

fn prop_assert_ok(cond: bool, what: &str) {
    assert!(cond, "field {what} round-tripped into the wrong shape");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]
    #[test]
    fn every_record_line_parses_back(
        names in (sample::select(&NAMES), sample::select(&NAMES), sample::select(&NAMES)),
        ids in (0usize..5000, 0u64..1000, 0u64..1 << 53, 0u64..1 << 53, 0u64..10_000),
        floats in (any_float(), any_float(), any_float(), any_float()),
        buckets in collection::vec((any_edge(), any_float(), 0usize..500), 0..6),
        options in (any_bool::ANY, any_bool::ANY, any_bool::ANY, any_bool::ANY, any_bool::ANY),
        transport in (0usize..200, 0u64..1 << 53, 0u64..5000, 0u64..500, any_bool::ANY, 1u64..10_000_000_000),
    ) {
        let (topology, profile, scheduler) = names;
        let (job_id, seed, packets, delivered, dropped) = ids;
        let (delay_mean, delay_p99, fct_mean, wall) = floats;
        let (closed, jain_some, replay_some, with_timing, transport_some) = options;
        let (completed, goodput, retx, rtos, rest_some, rest_bps) = transport;

        let traffic = if closed { TrafficMode::ClosedLoop } else { TrafficMode::OpenLoop };
        let jain = jain_some.then_some(delay_p99); // reuse an arbitrary float
        // The queues sub-axis rides on replay jobs; exercise both a
        // quantized and an exact-only shape. `rest_some` doubles as "the
        // replay compared zero packets" so the None-vs-Some(match rate)
        // distinction of the empty comparison is pinned here: a replay
        // that matched nothing round-trips as null, never as a number.
        let quantized = replay_some && transport_some;
        let empty_comparison = replay_some && rest_some;
        let spec = JobSpec {
            job_id,
            topology: topology.to_string(),
            profile: profile.to_string(),
            scheduler: scheduler.to_string(),
            traffic,
            rest_bps: (closed && rest_some).then_some(rest_bps),
            utilization: 0.7,
            seed,
            window: Dur::from_ms(2),
            horizon: closed.then_some(Dur::from_ms(40)),
            buffer_bytes: rest_some.then_some(5_000_000),
            replay: replay_some,
            queues: quantized.then_some((retx as u32).max(1)),
            mapper: quantized.then(|| "dynamic".to_string()),
            // The dynamics axis is open-loop only and excludes queues;
            // exercise it on the records that carry neither.
            failures: (!closed && !quantized).then(|| "random-links:0.4".to_string()),
            inflight: (!closed && !quantized).then(|| "drop".to_string()),
            max_packets: jain_some.then_some(4096),
        };
        let churned = spec.failures.is_some();
        let summary = RunSummary {
            flows: completed,
            packets,
            delivered,
            dropped,
            delay_mean_s: delay_mean,
            delay_p99_s: delay_p99,
            fct_mean_s: fct_mean,
            fct_buckets: buckets.clone(),
            jain,
            replay_match_rate: (replay_some && !empty_comparison).then_some(fct_mean),
            replay_frac_gt_t: (replay_some && !empty_comparison).then_some(0.0),
            quantized_match_rate: (quantized && !empty_comparison).then_some(delay_mean),
            quantized_frac_gt_t: (quantized && !empty_comparison).then_some(0.0),
            quantized_fct_delta_s: (quantized && !empty_comparison).then_some(delay_p99),
            transport: transport_some.then_some(TransportSummary {
                completed_flows: completed,
                goodput_bytes: goodput,
                retransmits: retx,
                rto_events: rtos,
                slack_ooo: goodput % 7,
            }),
            disruption: churned.then_some(DisruptionSummary {
                links_failed: rtos,
                rerouted: retx,
                dropped_at_dead_link: goodput % 11,
                churn_replay_match_rate: jain_some.then_some(fct_mean),
            }),
            // The v5 forensics block rides on replay jobs. Keep the
            // counts conserved (Σ causes = Σ inversions = mismatches) —
            // the validator rejects anything else, so the roundtrip
            // should exercise the shapes that can actually occur.
            divergence: (replay_some && !empty_comparison).then_some(DivergenceSummary {
                mismatches: retx + rtos,
                overdue_within_t: retx,
                overdue_beyond_t: rtos,
                missing_in_replay: 0,
                dead_link_drop: 0,
                buffer_drop: 0,
                rank_tie_break: rtos,
                bucket_collision: 0,
                reroute: 0,
                queue_overflow: 0,
                exit_only: retx,
                top_nodes: vec![(3, retx), (7, rtos)],
                hop_lateness_p50_s: jain_some.then_some(delay_mean),
                hop_lateness_p99_s: jain_some.then_some(delay_p99),
            }),
        };
        let record = JobRecord { spec: std::sync::Arc::new(spec), summary, wall_s: wall };

        let line = record.to_json(with_timing);
        prop_assert!(!line.contains('\n'), "JSONL lines must be single-line: {line}");
        let v = parse(&line).map_err(|e| {
            TestCaseError::Fail(format!("emitted line does not parse: {e}\n{line}"))
        })?;

        prop_assert_eq!(v.get("schema").unwrap().as_str(), Some("ups-sweep-record/v5"));
        prop_assert_eq!(v.get("job_id").unwrap().as_f64(), Some(job_id as f64));

        let scenario = v.get("scenario").unwrap();
        prop_assert_eq!(scenario.get("topology").unwrap().as_str(), Some(topology));
        prop_assert_eq!(scenario.get("profile").unwrap().as_str(), Some(profile));
        prop_assert_eq!(scenario.get("scheduler").unwrap().as_str(), Some(scheduler));
        prop_assert_eq!(
            scenario.get("traffic").unwrap().as_str(),
            Some(traffic.name())
        );
        match record.spec.rest_bps {
            Some(r) => prop_assert_eq!(scenario.get("rest_bps").unwrap().as_f64(), Some(r as f64)),
            None => prop_assert_eq!(scenario.get("rest_bps"), Some(&JsonValue::Null)),
        }
        match record.spec.queues {
            Some(k) => {
                prop_assert_eq!(scenario.get("queues").unwrap().as_f64(), Some(k as f64));
                prop_assert_eq!(scenario.get("mapper").unwrap().as_str(), Some("dynamic"));
            }
            None => {
                prop_assert_eq!(scenario.get("queues"), Some(&JsonValue::Null));
                prop_assert_eq!(scenario.get("mapper"), Some(&JsonValue::Null));
            }
        }
        if churned {
            prop_assert_eq!(
                scenario.get("failures").unwrap().as_str(),
                Some("random-links:0.4")
            );
            prop_assert_eq!(scenario.get("inflight").unwrap().as_str(), Some("drop"));
        } else {
            prop_assert_eq!(scenario.get("failures"), Some(&JsonValue::Null));
            prop_assert_eq!(scenario.get("inflight"), Some(&JsonValue::Null));
        }

        let metrics = v.get("metrics").unwrap();
        prop_assert_eq!(metrics.get("packets").unwrap().as_f64(), Some(packets as f64));
        prop_assert_eq!(metrics.get("delivered").unwrap().as_f64(), Some(delivered as f64));
        assert_float_field(metrics.get("delay_mean_s"), delay_mean, "delay_mean_s");
        assert_float_field(metrics.get("delay_p99_s"), delay_p99, "delay_p99_s");
        assert_float_field(metrics.get("fct_mean_s"), fct_mean, "fct_mean_s");
        match jain {
            Some(j) => assert_float_field(metrics.get("jain"), j, "jain"),
            None => prop_assert_eq!(metrics.get("jain"), Some(&JsonValue::Null)),
        }
        // The empty-comparison distinction: a requested replay whose
        // comparison covered no packets emits null, never 1.0 (and the
        // quantized fields follow the same rule).
        for (field, value) in [
            ("replay_match_rate", record.summary.replay_match_rate),
            ("quantized_match_rate", record.summary.quantized_match_rate),
            ("quantized_frac_gt_t", record.summary.quantized_frac_gt_t),
            ("quantized_fct_delta_s", record.summary.quantized_fct_delta_s),
        ] {
            match value {
                Some(x) => assert_float_field(metrics.get(field), x, field),
                None => prop_assert_eq!(
                    metrics.get(field),
                    Some(&JsonValue::Null),
                    "{} must be null when absent — an empty comparison is not a match",
                    field
                ),
            }
        }

        let parsed_buckets = metrics.get("fct_buckets").unwrap().as_array().unwrap();
        prop_assert_eq!(parsed_buckets.len(), buckets.len());
        for (b, &(edge, mean, n)) in parsed_buckets.iter().zip(&buckets) {
            match b.get("edge_bytes") {
                Some(JsonValue::Null) => prop_assert_eq!(edge, u64::MAX, "only overflow is null"),
                Some(JsonValue::Number(x)) => prop_assert_eq!(x.to_bits(), (edge as f64).to_bits()),
                other => return Err(TestCaseError::Fail(format!("edge_bytes: {other:?}"))),
            }
            assert_float_field(b.get("mean_fct_s"), mean, "bucket mean");
            prop_assert_eq!(b.get("flows").unwrap().as_f64(), Some(n as f64));
        }

        match &record.summary.transport {
            Some(t) => {
                let block = metrics.get("transport").unwrap();
                prop_assert_eq!(
                    block.get("completed_flows").unwrap().as_f64(),
                    Some(t.completed_flows as f64)
                );
                prop_assert_eq!(
                    block.get("goodput_bytes").unwrap().as_f64(),
                    Some(t.goodput_bytes as f64)
                );
                prop_assert_eq!(
                    block.get("retransmits").unwrap().as_f64(),
                    Some(t.retransmits as f64)
                );
                prop_assert_eq!(
                    block.get("rto_events").unwrap().as_f64(),
                    Some(t.rto_events as f64)
                );
                prop_assert_eq!(
                    block.get("slack_ooo").unwrap().as_f64(),
                    Some(t.slack_ooo as f64)
                );
            }
            None => prop_assert_eq!(metrics.get("transport"), Some(&JsonValue::Null)),
        }

        match &record.summary.disruption {
            Some(d) => {
                let block = metrics.get("disruption").unwrap();
                prop_assert_eq!(
                    block.get("links_failed").unwrap().as_f64(),
                    Some(d.links_failed as f64)
                );
                prop_assert_eq!(
                    block.get("rerouted").unwrap().as_f64(),
                    Some(d.rerouted as f64)
                );
                prop_assert_eq!(
                    block.get("dropped_at_dead_link").unwrap().as_f64(),
                    Some(d.dropped_at_dead_link as f64)
                );
                match d.churn_replay_match_rate {
                    Some(x) => assert_float_field(
                        block.get("churn_replay_match_rate"),
                        x,
                        "churn_replay_match_rate",
                    ),
                    None => prop_assert_eq!(
                        block.get("churn_replay_match_rate"),
                        Some(&JsonValue::Null)
                    ),
                }
            }
            None => prop_assert_eq!(metrics.get("disruption"), Some(&JsonValue::Null)),
        }

        match &record.summary.divergence {
            Some(d) => {
                let block = metrics.get("divergence").unwrap();
                prop_assert_eq!(
                    block.get("schema").unwrap().as_str(),
                    Some("ups-forensics/v1")
                );
                prop_assert_eq!(
                    block.get("mismatches").unwrap().as_f64(),
                    Some(d.mismatches as f64)
                );
                prop_assert_eq!(
                    block.get("overdue_within_t").unwrap().as_f64(),
                    Some(d.overdue_within_t as f64)
                );
                prop_assert_eq!(
                    block.get("exit_only").unwrap().as_f64(),
                    Some(d.exit_only as f64)
                );
                match d.hop_lateness_p50_s {
                    Some(x) => {
                        assert_float_field(block.get("hop_lateness_p50_s"), x, "hop p50")
                    }
                    None => prop_assert_eq!(
                        block.get("hop_lateness_p50_s"),
                        Some(&JsonValue::Null)
                    ),
                }
                let nodes = block.get("top_nodes").unwrap().as_array().unwrap();
                prop_assert_eq!(nodes.len(), d.top_nodes.len());
                for (n, &(node, m)) in nodes.iter().zip(&d.top_nodes) {
                    prop_assert_eq!(n.get("node").unwrap().as_f64(), Some(node as f64));
                    prop_assert_eq!(n.get("mismatches").unwrap().as_f64(), Some(m as f64));
                }
            }
            None => prop_assert_eq!(metrics.get("divergence"), Some(&JsonValue::Null)),
        }

        if with_timing {
            assert_float_field(v.get("wall_s"), wall, "wall_s");
        } else {
            prop_assert!(v.get("wall_s").is_none(), "timing-stripped record has no wall_s");
        }

        // Emission is deterministic: the same record yields the same line.
        prop_assert_eq!(line, record.to_json(with_timing));
    }
}
