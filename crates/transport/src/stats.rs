//! Shared transport-level measurement: flow completions (Figure 2's FCT)
//! and per-bucket goodput (Figure 4's per-millisecond throughput).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use ups_netsim::prelude::{Dur, FlowId, SimTime};

/// One completed flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowCompletion {
    /// Which flow.
    pub flow: FlowId,
    /// Bytes transferred.
    pub bytes: u64,
    /// Application start time.
    pub started: SimTime,
    /// When the last in-order byte reached the receiver.
    pub finished: SimTime,
}

impl FlowCompletion {
    /// Flow completion time.
    pub fn fct(&self) -> Dur {
        self.finished.saturating_since(self.started)
    }
}

#[derive(Debug, Default)]
struct Inner {
    completions: Vec<FlowCompletion>,
    /// flow → goodput bytes per time bucket.
    goodput: BTreeMap<FlowId, Vec<u64>>,
    /// flow → data segments re-sent (fast retransmit + go-back-N).
    retransmits: BTreeMap<FlowId, u64>,
    /// flow → RTO firings that actually rolled the sender back.
    timeouts: BTreeMap<FlowId, u64>,
    /// Out-of-order arrivals the fairness slack assigner clamped (see
    /// `ups_core::FairnessSlackAssigner::out_of_order_arrivals`).
    slack_out_of_order: u64,
}

/// Cheaply clonable collector shared by all host agents of a run.
///
/// Uses a `Mutex` only because agents are `Send`; the simulator is
/// single-threaded, so the lock is never contended.
#[derive(Debug, Clone)]
pub struct TransportStats {
    inner: Arc<Mutex<Inner>>,
    bucket: Dur,
}

impl TransportStats {
    /// New collector with the given goodput bucket width (Figure 4 uses
    /// 1 ms).
    pub fn new(bucket: Dur) -> Self {
        assert!(bucket > Dur::ZERO);
        TransportStats {
            inner: Arc::new(Mutex::new(Inner::default())),
            bucket,
        }
    }

    /// Record a flow completion.
    pub fn record_completion(&self, c: FlowCompletion) {
        self.inner.lock().expect("poisoned").completions.push(c);
    }

    /// Record `bytes` of newly in-order data for `flow` at `now`.
    pub fn record_goodput(&self, flow: FlowId, now: SimTime, bytes: u64) {
        let idx = (now.as_ps() / self.bucket.as_ps()) as usize;
        let mut inner = self.inner.lock().expect("poisoned");
        let v = inner.goodput.entry(flow).or_default();
        if v.len() <= idx {
            v.resize(idx + 1, 0);
        }
        v[idx] += bytes;
    }

    /// Record one retransmitted data segment for `flow`.
    pub fn record_retransmit(&self, flow: FlowId) {
        *self
            .inner
            .lock()
            .expect("poisoned")
            .retransmits
            .entry(flow)
            .or_insert(0) += 1;
    }

    /// Record `n` out-of-order arrivals the fairness slack assigner had
    /// to clamp — a warning counter, not a per-flow metric: the §3.3
    /// recurrence is only meaningful called in per-flow arrival order.
    pub fn record_slack_out_of_order(&self, n: u64) {
        self.inner.lock().expect("poisoned").slack_out_of_order += n;
    }

    /// Out-of-order slack-assignment arrivals clamped across the run.
    /// Non-zero means a sender called the fairness assigner against
    /// arrival order; its flows received conservatively *less* slack.
    pub fn slack_out_of_order(&self) -> u64 {
        self.inner.lock().expect("poisoned").slack_out_of_order
    }

    /// Record one retransmission-timeout event for `flow`.
    pub fn record_timeout(&self, flow: FlowId) {
        *self
            .inner
            .lock()
            .expect("poisoned")
            .timeouts
            .entry(flow)
            .or_insert(0) += 1;
    }

    /// Retransmitted segments for one flow.
    pub fn retransmits(&self, flow: FlowId) -> u64 {
        self.inner
            .lock()
            .expect("poisoned")
            .retransmits
            .get(&flow)
            .copied()
            .unwrap_or(0)
    }

    /// RTO events for one flow.
    pub fn timeouts(&self, flow: FlowId) -> u64 {
        self.inner
            .lock()
            .expect("poisoned")
            .timeouts
            .get(&flow)
            .copied()
            .unwrap_or(0)
    }

    /// Retransmitted segments summed over all flows.
    pub fn retransmits_total(&self) -> u64 {
        self.inner
            .lock()
            .expect("poisoned")
            .retransmits
            .values()
            .sum()
    }

    /// RTO events summed over all flows.
    pub fn timeouts_total(&self) -> u64 {
        self.inner.lock().expect("poisoned").timeouts.values().sum()
    }

    /// Total in-order bytes delivered across all flows and buckets.
    pub fn goodput_total(&self) -> u64 {
        self.inner
            .lock()
            .expect("poisoned")
            .goodput
            .values()
            .map(|v| v.iter().sum::<u64>())
            .sum()
    }

    /// All completions so far (sorted by flow id for determinism).
    pub fn completions(&self) -> Vec<FlowCompletion> {
        let mut v = self.inner.lock().expect("poisoned").completions.clone();
        v.sort_by_key(|c| c.flow);
        v
    }

    /// Per-flow goodput buckets, zero-padded to equal length and ordered
    /// by `flows` — directly feedable to `ups_metrics::jain_series`.
    pub fn goodput_matrix(&self, flows: &[FlowId]) -> Vec<Vec<u64>> {
        let inner = self.inner.lock().expect("poisoned");
        let len = inner.goodput.values().map(|v| v.len()).max().unwrap_or(0);
        flows
            .iter()
            .map(|f| {
                let mut v = inner.goodput.get(f).cloned().unwrap_or_default();
                v.resize(len, 0);
                v
            })
            .collect()
    }

    /// Goodput bucket width.
    pub fn bucket(&self) -> Dur {
        self.bucket
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completions_sorted_and_fct() {
        let s = TransportStats::new(Dur::from_ms(1));
        s.record_completion(FlowCompletion {
            flow: FlowId(2),
            bytes: 100,
            started: SimTime::from_ms(1),
            finished: SimTime::from_ms(5),
        });
        s.record_completion(FlowCompletion {
            flow: FlowId(1),
            bytes: 50,
            started: SimTime::ZERO,
            finished: SimTime::from_ms(2),
        });
        let c = s.completions();
        assert_eq!(c[0].flow, FlowId(1));
        assert_eq!(c[1].fct(), Dur::from_ms(4));
    }

    #[test]
    fn goodput_buckets_align_and_pad() {
        let s = TransportStats::new(Dur::from_ms(1));
        s.record_goodput(FlowId(0), SimTime::from_us(100), 10);
        s.record_goodput(FlowId(0), SimTime::from_us(900), 5);
        s.record_goodput(FlowId(0), SimTime::from_ms(3), 7);
        s.record_goodput(FlowId(1), SimTime::from_ms(1), 9);
        let m = s.goodput_matrix(&[FlowId(0), FlowId(1)]);
        assert_eq!(m[0], vec![15, 0, 0, 7]);
        assert_eq!(m[1], vec![0, 9, 0, 0]);
    }

    #[test]
    fn clones_share_state() {
        let s = TransportStats::new(Dur::from_ms(1));
        let t = s.clone();
        t.record_goodput(FlowId(0), SimTime::ZERO, 1);
        assert_eq!(s.goodput_matrix(&[FlowId(0)]), vec![vec![1]]);
    }

    #[test]
    fn retransmit_and_timeout_counters_accumulate() {
        let s = TransportStats::new(Dur::from_ms(1));
        s.record_retransmit(FlowId(0));
        s.record_retransmit(FlowId(0));
        s.record_retransmit(FlowId(1));
        s.record_timeout(FlowId(1));
        assert_eq!(s.retransmits(FlowId(0)), 2);
        assert_eq!(s.retransmits(FlowId(1)), 1);
        assert_eq!(s.retransmits(FlowId(9)), 0);
        assert_eq!(s.retransmits_total(), 3);
        assert_eq!(s.timeouts(FlowId(1)), 1);
        assert_eq!(s.timeouts_total(), 1);
        s.record_goodput(FlowId(0), SimTime::ZERO, 10);
        s.record_goodput(FlowId(1), SimTime::from_ms(2), 5);
        assert_eq!(s.goodput_total(), 15);
    }

    #[test]
    fn slack_out_of_order_counter_accumulates() {
        let s = TransportStats::new(Dur::from_ms(1));
        assert_eq!(s.slack_out_of_order(), 0);
        s.record_slack_out_of_order(2);
        s.clone().record_slack_out_of_order(1);
        assert_eq!(s.slack_out_of_order(), 3);
    }
}
