//! The shared closed-loop scenario driver.
//!
//! Build the simulator, install the TCP endpoints, run to a horizon,
//! hand back the recorded schedule plus the transport measurements — the
//! one code path behind every TCP-driven experiment: the `ups-sweep`
//! closed-loop jobs, Figure 2 (mean FCT) and Figure 4 (fairness). The
//! bench runners used to wire `install_tcp` by hand per figure; keeping
//! the setup here means a sweep job and a figure run of the same scenario
//! are the same simulation.

use ups_netsim::prelude::{Dur, SimStats, SimTime, Trace};
use ups_topology::{build_simulator, BuildOptions, Routing, SchedulerAssignment, Topology};
use ups_workload::FlowSpec;

use crate::stats::TransportStats;
use crate::tcp::{install_tcp, SlackPolicy, TcpConfig};

/// One fully-specified closed-loop run.
pub struct TcpScenario<'a> {
    /// Network.
    pub topo: &'a Topology,
    /// Per-router disciplines.
    pub assign: &'a SchedulerAssignment,
    /// Simulator construction options (record mode, buffers, seed).
    pub opts: BuildOptions,
    /// The application flows the endpoints realize.
    pub flows: &'a [FlowSpec],
    /// Transport tuning.
    pub config: TcpConfig,
    /// §3 slack stamping.
    pub policy: SlackPolicy,
    /// Simulated-time horizon: the run processes events up to and
    /// including this instant (long-lived flows never drain on their own).
    pub horizon: Dur,
    /// Stop early once this many packets (data + acks) were injected —
    /// the closed-loop analogue of the sweep engine's `max_packets`
    /// smoke-grid cap.
    pub max_packets: Option<u64>,
    /// Goodput bucket width for [`TransportStats`] (Figure 4 uses 1 ms).
    pub goodput_bucket: Dur,
}

/// What a closed-loop run produced.
pub struct TcpRun {
    /// The as-executed schedule (detail per `opts.record`).
    pub trace: Trace,
    /// Flow completions, goodput buckets, retransmit/RTO counters.
    pub stats: TransportStats,
    /// Simulator counters (injected/delivered/dropped include acks).
    pub sim: SimStats,
}

/// Execute `scenario` to completion (horizon or packet cap, whichever
/// comes first). `routing` is the caller's instance — every caller has
/// already built one to generate the flows, and reusing it keeps its
/// all-pairs BFS tables and path cache warm for the ack reverse paths.
pub fn run_tcp(scenario: &TcpScenario<'_>, routing: &mut Routing) -> TcpRun {
    let mut sim = build_simulator(scenario.topo, scenario.assign, &scenario.opts);
    let stats = TransportStats::new(scenario.goodput_bucket);
    install_tcp(
        &mut sim,
        scenario.topo,
        routing,
        scenario.flows,
        scenario.config,
        scenario.policy.clone(),
        &stats,
    );
    let horizon = SimTime::ZERO + scenario.horizon;
    match scenario.max_packets {
        None => sim.run_until(horizon),
        Some(cap) => {
            // Step-wise so the injected count is checked between events;
            // the cap binds deterministically because event order does.
            // `step_within` keeps run_until's horizon semantics exactly,
            // so a run whose cap never binds matches the uncapped run.
            while sim.stats().injected < cap && sim.step_within(horizon) {}
        }
    }
    let sim_stats = sim.stats();
    TcpRun {
        trace: sim.into_trace(),
        stats,
        sim: sim_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_netsim::prelude::{Bandwidth, FlowId, RecordMode, SchedulerKind, SimTime};
    use ups_topology::dumbbell;

    fn scenario_parts() -> (Topology, Vec<FlowSpec>) {
        let topo = dumbbell(
            2,
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(1),
            Dur::from_ms(1),
        );
        let mut routing = Routing::new(&topo);
        let hosts = topo.hosts();
        let flows = vec![FlowSpec {
            id: FlowId(0),
            src: hosts[0],
            dst: hosts[2],
            size: 500_000,
            start: SimTime::ZERO,
            path: routing.path(hosts[0], hosts[2]),
        }];
        (topo, flows)
    }

    #[test]
    fn driver_runs_a_flow_to_completion_and_records_a_trace() {
        let (topo, flows) = scenario_parts();
        let assign = SchedulerAssignment::uniform(SchedulerKind::Fifo);
        let mut routing = Routing::new(&topo);
        let run = run_tcp(
            &TcpScenario {
                topo: &topo,
                assign: &assign,
                opts: BuildOptions {
                    record: RecordMode::EndToEnd,
                    ..BuildOptions::default()
                },
                flows: &flows,
                config: TcpConfig::default(),
                policy: SlackPolicy::None,
                horizon: Dur::from_secs(5),
                max_packets: None,
                goodput_bucket: Dur::from_ms(1),
            },
            &mut routing,
        );
        assert_eq!(run.stats.completions().len(), 1);
        assert_eq!(run.stats.goodput_total(), 500_000);
        assert!(run.sim.injected > 0);
        // The trace recorded the as-executed schedule: every delivered
        // packet has an exit time.
        assert!(
            run.trace.delivered().expect("resident trace").count() > 300,
            "data + acks recorded"
        );
    }

    #[test]
    fn packet_cap_stops_the_run_early_and_deterministically() {
        let (topo, flows) = scenario_parts();
        let assign = SchedulerAssignment::uniform(SchedulerKind::Fifo);
        let mk = || {
            let mut routing = Routing::new(&topo);
            run_tcp(
                &TcpScenario {
                    topo: &topo,
                    assign: &assign,
                    opts: BuildOptions::default(),
                    flows: &flows,
                    config: TcpConfig::default(),
                    policy: SlackPolicy::None,
                    horizon: Dur::from_secs(5),
                    max_packets: Some(50),
                    goodput_bucket: Dur::from_ms(1),
                },
                &mut routing,
            )
        };
        let a = mk();
        let b = mk();
        assert!(a.sim.injected >= 50, "cap binds at or just past 50");
        assert!(
            a.sim.injected < 200,
            "run stopped early: {}",
            a.sim.injected
        );
        assert_eq!(a.sim, b.sim, "capped runs are deterministic");
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn non_binding_cap_matches_the_uncapped_run_exactly() {
        // The capped path must not overshoot the horizon by one event:
        // with a cap that never binds, both paths are the same run.
        let (topo, flows) = scenario_parts();
        let assign = SchedulerAssignment::uniform(SchedulerKind::Fifo);
        let mk = |cap: Option<u64>| {
            let mut routing = Routing::new(&topo);
            run_tcp(
                &TcpScenario {
                    topo: &topo,
                    assign: &assign,
                    opts: BuildOptions::default(),
                    flows: &flows,
                    config: TcpConfig::default(),
                    policy: SlackPolicy::None,
                    horizon: Dur::from_ms(9), // mid-flight: events remain queued
                    max_packets: cap,
                    goodput_bucket: Dur::from_ms(1),
                },
                &mut routing,
            )
        };
        let uncapped = mk(None);
        let capped = mk(Some(u64::MAX));
        assert_eq!(uncapped.sim, capped.sim);
        assert_eq!(uncapped.trace, capped.trace);
    }
}
