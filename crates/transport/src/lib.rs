//! # ups-transport — endpoint transports for the §3 experiments
//!
//! * [`tcp`] — a simplified TCP Reno (slow start, AIMD, fast retransmit,
//!   RTO backoff) with per-packet header stamping: `flow_size`/`remaining`
//!   for SJF/SRPT routers and slack per the §3 heuristics
//!   ([`tcp::SlackPolicy`]).
//! * [`stats`] — flow-completion, per-bucket goodput and
//!   retransmit/RTO collection (Figures 2 and 4's raw measurements).
//! * [`driver`] — the shared closed-loop scenario driver (build sim →
//!   install endpoints → run to horizon) behind the sweep engine's
//!   `traffic: closed-loop` jobs and the Figure 2/4 bench runners.
//!
//! Open-loop UDP traffic needs no agent — `ups-workload` packetizes it
//! directly; this crate is the closed-loop side.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod driver;
pub mod stats;
pub mod tcp;

pub use driver::{run_tcp, TcpRun, TcpScenario};
pub use stats::{FlowCompletion, TransportStats};
pub use tcp::{install_tcp, SlackPolicy, TcpConfig};
