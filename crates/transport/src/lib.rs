//! # ups-transport — endpoint transports for the §3 experiments
//!
//! * [`tcp`] — a simplified TCP Reno (slow start, AIMD, fast retransmit,
//!   RTO backoff) with per-packet header stamping: `flow_size`/`remaining`
//!   for SJF/SRPT routers and slack per the §3 heuristics
//!   ([`tcp::SlackPolicy`]).
//! * [`stats`] — flow-completion and per-bucket goodput collection
//!   (Figures 2 and 4's raw measurements).
//!
//! Open-loop UDP traffic needs no agent — `ups-workload` packetizes it
//! directly; this crate is the closed-loop side.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod stats;
pub mod tcp;

pub use stats::{FlowCompletion, TransportStats};
pub use tcp::{install_tcp, SlackPolicy, TcpConfig};
