//! A simplified TCP (Reno family) for the §3 experiments.
//!
//! The paper's Figure 2 (mean FCT) and Figure 4 (fairness) drive the
//! network with ns-2 TCP flows; what those experiments need from the
//! transport is **self-clocking** (acks gate the send window),
//! **loss-driven backoff** (5 MB FIFO buffers drop under 70% load) and
//! **bandwidth probing** (long-lived flows must converge to the
//! bottleneck share). This implementation provides slow start,
//! congestion avoidance, triple-duplicate-ack fast retransmit, RTO with
//! exponential backoff and go-back-N recovery.
//!
//! Deliberate simplifications (recorded in DESIGN.md §4): no handshake or
//! teardown, no SACK, no delayed acks, no receive-window limit, fast
//! recovery collapses to `cwnd = ssthresh`. None of these change which
//! scheduler wins in Figures 2/4 — they shift absolute FCTs only.
//!
//! ## Header stamping
//!
//! Every data packet is stamped with `flow_size`/`remaining` (so SJF and
//! SRPT routers can prioritize) and with a slack per the configured
//! [`SlackPolicy`] — this is where the §3 heuristics meet the wire.

use std::collections::BTreeMap;
use std::sync::Arc;

use ups_core::FairnessSlackAssigner;
use ups_netsim::prelude::{
    Agent, Dur, FlowId, NodeId, Packet, PacketBuilder, PacketKind, SimApi, SimTime, Simulator,
};
use ups_topology::{Routing, Topology};
use ups_workload::FlowSpec;

use crate::stats::{FlowCompletion, TransportStats};

/// Transport-level tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Segment size in bytes (on-wire packet size; the paper's MTU).
    pub mss: u32,
    /// Ack packet size.
    pub ack_size: u32,
    /// Initial congestion window in segments.
    pub init_cwnd_segments: u32,
    /// Lower bound for the retransmission timeout. Sim-scale default
    /// (10 ms) rather than RFC 6298's 1 s — the experiments simulate
    /// fractions of a second.
    pub rto_min: Dur,
    /// Upper bound for the RTO after backoff.
    pub rto_max: Dur,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1500,
            ack_size: 40,
            init_cwnd_segments: 10,
            rto_min: Dur::from_ms(10),
            rto_max: Dur::from_secs(4),
        }
    }
}

/// How data-packet slack headers are initialized (§3).
#[derive(Debug, Clone)]
pub enum SlackPolicy {
    /// Leave headers zero — for FIFO/FQ/SJF/SRPT networks that don't read
    /// slack.
    None,
    /// §3.1: `slack = flow_size × D` (D = 1 s). LSTF approximates SJF.
    FctSjf,
    /// §3.2: every packet gets the same slack — LSTF becomes FIFO+.
    Constant(i128),
    /// §3.3: Virtual-Clock accumulation with the given `r_est` (bits/s).
    Fairness(u64),
    /// §3.3's weighted extension: base `r_est` plus per-flow weights
    /// (flows not listed default to weight 1). A weight-w flow converges
    /// to w× the base share.
    WeightedFairness {
        /// Base fair-rate estimate in bits/s.
        rest_bps: u64,
        /// (flow, weight) overrides.
        weights: Vec<(FlowId, f64)>,
    },
}

/// Per-host TCP endpoint: all senders and receivers living on one host.
struct TcpHost {
    node: NodeId,
    config: TcpConfig,
    policy: SlackPolicy,
    fairness: FairnessSlackAssigner,
    senders: Vec<TcpSender>,
    sender_index: BTreeMap<FlowId, usize>,
    receivers: BTreeMap<FlowId, TcpReceiver>,
    stats: TransportStats,
}

/// Timer keys: flow-local index × 2 (+1 for RTO, +0 for start).
const KEY_START: u64 = 0;
const KEY_RTO: u64 = 1;

struct TcpSender {
    flow: FlowId,
    size: u64,
    start: SimTime,
    path: Arc<[NodeId]>,
    next_seq: u64,
    acked: u64,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    /// seq → (send time, was retransmitted) for RTT sampling.
    send_times: BTreeMap<u64, (SimTime, bool)>,
    srtt: Option<Dur>,
    rttvar: Dur,
    rto: Dur,
    rto_deadline: Option<SimTime>,
    timer_armed: bool,
    /// Fast-retransmit high-water mark: no second fast retransmit until
    /// acks pass this.
    recovery_until: u64,
    /// Highest byte ever sent (`next_seq` rewinds on RTO; this doesn't).
    /// Any segment below it is a retransmission — fast retransmit and
    /// go-back-N alike — for both Karn's rule and the retransmit counter.
    high_seq: u64,
    started: bool,
}

struct TcpReceiver {
    flow: FlowId,
    size: u64,
    started: SimTime,
    reverse_path: Arc<[NodeId]>,
    expected: u64,
    /// Out-of-order segments: seq → len.
    ooo: BTreeMap<u64, u32>,
    completed: bool,
}

impl TcpSender {
    fn new(spec: &FlowSpec, config: &TcpConfig) -> Self {
        TcpSender {
            flow: spec.id,
            size: spec.size,
            start: spec.start,
            path: spec.path.clone(),
            next_seq: 0,
            acked: 0,
            cwnd: (config.init_cwnd_segments * config.mss) as f64,
            ssthresh: f64::MAX,
            dupacks: 0,
            send_times: BTreeMap::new(),
            srtt: None,
            rttvar: Dur::ZERO,
            rto: Dur::from_ms(100),
            rto_deadline: None,
            timer_armed: false,
            recovery_until: 0,
            high_seq: 0,
            started: false,
        }
    }

    fn inflight(&self) -> u64 {
        // `next_seq` can transiently sit below `acked` when a late ack
        // (for data sent before an RTO rollback) arrives; see `on_ack`.
        self.next_seq.saturating_sub(self.acked)
    }

    fn done(&self) -> bool {
        self.size != u64::MAX && self.acked >= self.size
    }

    fn rtt_sample(&mut self, sample: Dur, config: &TcpConfig) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = Dur::from_ps(sample.as_ps() / 2);
            }
            Some(srtt) => {
                let diff = if srtt > sample {
                    srtt - sample
                } else {
                    sample - srtt
                };
                self.rttvar = Dur::from_ps((3 * self.rttvar.as_ps() + diff.as_ps()) / 4);
                self.srtt = Some(Dur::from_ps((7 * srtt.as_ps() + sample.as_ps()) / 8));
            }
        }
        let candidate = self.srtt.expect("just set")
            + Dur::from_ps((4 * self.rttvar.as_ps()).max(Dur::from_ms(1).as_ps()));
        self.rto = candidate.clamp(config.rto_min, config.rto_max);
    }
}

impl TcpHost {
    fn stamp_header(
        &mut self,
        sender_idx: usize,
        seq: u64,
        len: u32,
        now: SimTime,
    ) -> (i128, u64, u64) {
        let s = &self.senders[sender_idx];
        let remaining = if s.size == u64::MAX {
            u64::MAX
        } else {
            s.size.saturating_sub(seq)
        };
        let slack = match self.policy {
            SlackPolicy::None => 0,
            SlackPolicy::FctSjf => {
                if s.size == u64::MAX {
                    ups_core::fct_slack(u64::MAX / 2, ups_core::FCT_D)
                } else {
                    ups_core::fct_slack(s.size, ups_core::FCT_D)
                }
            }
            SlackPolicy::Constant(c) => c,
            SlackPolicy::Fairness(_) | SlackPolicy::WeightedFairness { .. } => {
                let before = self.fairness.out_of_order_arrivals();
                let slack = self.fairness.slack_for(s.flow, now, len);
                let clamped = self.fairness.out_of_order_arrivals() - before;
                if clamped > 0 {
                    // Surfaced as a run-level warning counter: the §3.3
                    // recurrence was fed against arrival order.
                    self.stats.record_slack_out_of_order(clamped);
                }
                slack
            }
        };
        (slack, s.size, remaining)
    }

    /// Transmit as much new data as the window allows.
    fn pump(&mut self, idx: usize, api: &mut SimApi<'_>) {
        loop {
            let s = &self.senders[idx];
            if s.done() {
                return;
            }
            let remaining_bytes = if s.size == u64::MAX {
                u64::MAX
            } else {
                s.size.saturating_sub(s.next_seq)
            };
            if remaining_bytes == 0 {
                return;
            }
            let len = remaining_bytes.min(self.config.mss as u64) as u32;
            if s.inflight() + len as u64 > s.cwnd as u64 {
                return;
            }
            let seq = s.next_seq;
            self.send_segment(idx, seq, len, api);
            let s = &mut self.senders[idx];
            s.next_seq += len as u64;
        }
    }

    fn send_segment(&mut self, idx: usize, seq: u64, len: u32, api: &mut SimApi<'_>) {
        let now = api.now();
        let (slack, flow_size, remaining) = self.stamp_header(idx, seq, len, now);
        // Anything below the historic high-water mark is a re-send: the
        // fast-retransmit segment, and every go-back-N segment `pump`
        // re-emits after an RTO rewound `next_seq`.
        let retransmit = seq < self.senders[idx].high_seq;
        if retransmit {
            self.stats.record_retransmit(self.senders[idx].flow);
        }
        let s = &mut self.senders[idx];
        s.high_seq = s.high_seq.max(seq + len as u64);
        let id = api.alloc_packet_id();
        let pkt = PacketBuilder::new(id, s.flow, len, s.path.clone(), now)
            .seq(seq)
            .flow_bytes(flow_size, remaining)
            .slack(slack)
            .build();
        api.inject(pkt);
        s.send_times
            .entry(seq)
            .and_modify(|e| *e = (now, true))
            .or_insert((now, retransmit));
        // Arm/refresh the retransmission deadline.
        s.rto_deadline = Some(now + s.rto);
        if !s.timer_armed {
            s.timer_armed = true;
            let key = (idx as u64) << 1 | KEY_RTO;
            api.set_timer(s.rto, key);
        }
    }

    fn on_ack(&mut self, idx: usize, ack: u64, api: &mut SimApi<'_>) {
        let config = self.config;
        let s = &mut self.senders[idx];
        if s.done() {
            return;
        }
        if ack > s.acked {
            // New data acknowledged.
            // RTT sample from the oldest fully-acked, never-retransmitted
            // segment (Karn's rule).
            let covered: Vec<u64> = s.send_times.range(..ack).map(|(&seq, _)| seq).collect();
            let now = api.now();
            for seq in covered {
                let (sent, retx) = s.send_times.remove(&seq).expect("key exists");
                if !retx {
                    let sample = now.saturating_since(sent);
                    s.rtt_sample(sample, &config);
                }
            }
            let newly = ack - s.acked;
            s.acked = ack;
            // A late ack may cover data beyond an RTO rollback point;
            // never re-send what the receiver already has.
            s.next_seq = s.next_seq.max(ack);
            s.dupacks = 0;
            // Window growth: slow start below ssthresh, else AIMD.
            if s.cwnd < s.ssthresh {
                s.cwnd += newly as f64;
            } else {
                s.cwnd += (config.mss as f64) * (newly as f64) / s.cwnd;
            }
            if s.acked >= s.recovery_until {
                s.recovery_until = 0;
            }
            // Refresh RTO horizon.
            s.rto_deadline = if s.inflight() > 0 {
                Some(api.now() + s.rto)
            } else {
                None
            };
            if s.done() {
                s.rto_deadline = None;
                return self.pump_next_done(idx);
            }
            self.pump(idx, api);
        } else if ack == s.acked && s.inflight() > 0 {
            s.dupacks += 1;
            if s.dupacks == 3 && s.acked >= s.recovery_until {
                // Fast retransmit + simplified recovery.
                let inflight = s.inflight() as f64;
                s.ssthresh = (inflight / 2.0).max(2.0 * config.mss as f64);
                s.cwnd = s.ssthresh;
                s.recovery_until = s.next_seq;
                let seq = s.acked;
                let len = self.segment_len(idx, seq);
                self.send_segment(idx, seq, len, api);
            }
        }
    }

    fn segment_len(&self, idx: usize, seq: u64) -> u32 {
        let s = &self.senders[idx];
        let remaining = if s.size == u64::MAX {
            u64::MAX
        } else {
            s.size.saturating_sub(seq)
        };
        remaining.min(self.config.mss as u64) as u32
    }

    fn pump_next_done(&mut self, _idx: usize) {
        // Sender finished; receiver-side completion is recorded at the
        // destination host. Nothing further to do.
    }

    fn on_rto_timer(&mut self, idx: usize, api: &mut SimApi<'_>) {
        let config = self.config;
        let s = &mut self.senders[idx];
        s.timer_armed = false;
        let Some(deadline) = s.rto_deadline else {
            return; // everything acked meanwhile
        };
        let now = api.now();
        if now < deadline {
            // Deadline moved forward since the timer was armed; re-arm.
            s.timer_armed = true;
            let key = (idx as u64) << 1 | KEY_RTO;
            api.set_timer(deadline - now, key);
            return;
        }
        if s.done() || s.inflight() == 0 {
            s.rto_deadline = None;
            return;
        }
        // Timeout: multiplicative backoff, shrink to one segment,
        // go-back-N from the last cumulative ack.
        self.stats.record_timeout(s.flow);
        let s = &mut self.senders[idx];
        let inflight = s.inflight() as f64;
        s.ssthresh = (inflight / 2.0).max(2.0 * config.mss as f64);
        s.cwnd = config.mss as f64;
        s.rto = Dur::from_ps((s.rto.as_ps() * 2).min(config.rto_max.as_ps()));
        s.dupacks = 0;
        s.recovery_until = 0;
        s.next_seq = s.acked;
        s.send_times.clear();
        self.pump(idx, api);
    }

    fn on_data(&mut self, pkt: &Packet, api: &mut SimApi<'_>) {
        let config = self.config;
        let Some(r) = self.receivers.get_mut(&pkt.flow) else {
            return; // stray packet (e.g. after test teardown)
        };
        if r.completed {
            // Still ack so the sender can finish cleanly.
        }
        let seq = pkt.seq;
        let len = pkt.size;
        let before = r.expected;
        if seq <= r.expected && seq + len as u64 > r.expected {
            r.expected = seq + len as u64;
            // Drain contiguous out-of-order segments.
            while let Some((&s, &l)) = r.ooo.first_key_value() {
                if s <= r.expected {
                    r.ooo.remove(&s);
                    r.expected = r.expected.max(s + l as u64);
                } else {
                    break;
                }
            }
        } else if seq > r.expected {
            r.ooo.insert(seq, len);
        }
        let advanced = r.expected - before;
        if advanced > 0 {
            self.stats.record_goodput(pkt.flow, api.now(), advanced);
        }
        if !r.completed && r.size != u64::MAX && r.expected >= r.size {
            r.completed = true;
            self.stats.record_completion(FlowCompletion {
                flow: r.flow,
                bytes: r.size,
                started: r.started,
                finished: api.now(),
            });
        }
        // Cumulative ack; acks carry the ack number in `seq` and are
        // maximally urgent (zero slack) so transport control never starves.
        let id = api.alloc_packet_id();
        let ack = PacketBuilder::new(
            id,
            r.flow,
            config.ack_size,
            r.reverse_path.clone(),
            api.now(),
        )
        .seq(r.expected)
        .ack()
        .build();
        api.inject(ack);
    }
}

impl Agent for TcpHost {
    fn on_packet(&mut self, packet: Packet, api: &mut SimApi<'_>) {
        debug_assert_eq!(packet.dst(), self.node, "delivered to the wrong host");
        match packet.kind {
            PacketKind::Data => self.on_data(&packet, api),
            PacketKind::Ack => {
                if let Some(&idx) = self.sender_index.get(&packet.flow) {
                    self.on_ack(idx, packet.seq, api);
                }
            }
        }
    }

    fn on_timer(&mut self, key: u64, api: &mut SimApi<'_>) {
        let idx = (key >> 1) as usize;
        if idx >= self.senders.len() {
            return;
        }
        if key & 1 == KEY_RTO {
            self.on_rto_timer(idx, api);
        } else if key & 1 == KEY_START && !self.senders[idx].started {
            self.senders[idx].started = true;
            self.pump(idx, api);
        }
    }
}

/// Install TCP endpoints for `flows` into `sim`: one agent per involved
/// host, senders kicked at their flow start times. Returns nothing; all
/// measurement flows through `stats`.
pub fn install_tcp(
    sim: &mut Simulator,
    _topo: &Topology,
    routing: &mut Routing,
    flows: &[FlowSpec],
    config: TcpConfig,
    policy: SlackPolicy,
    stats: &TransportStats,
) {
    // Group flows by src and dst host.
    let mut hosts: BTreeMap<NodeId, TcpHost> = BTreeMap::new();
    let rest = match &policy {
        SlackPolicy::Fairness(r) => *r,
        SlackPolicy::WeightedFairness { rest_bps, .. } => *rest_bps,
        _ => 1, // unused
    };
    let mk_fairness = || {
        let mut f = FairnessSlackAssigner::new(rest);
        if let SlackPolicy::WeightedFairness { weights, .. } = &policy {
            for &(flow, w) in weights {
                f.set_weight(flow, w);
            }
        }
        f
    };
    let host_entry = |hosts: &mut BTreeMap<NodeId, TcpHost>, node: NodeId| {
        hosts.entry(node).or_insert_with(|| TcpHost {
            node,
            config,
            policy: policy.clone(),
            fairness: mk_fairness(),
            senders: Vec::new(),
            sender_index: BTreeMap::new(),
            receivers: BTreeMap::new(),
            stats: stats.clone(),
        });
    };
    for f in flows {
        host_entry(&mut hosts, f.src);
        host_entry(&mut hosts, f.dst);
        let sender_host = hosts.get_mut(&f.src).expect("just inserted");
        let idx = sender_host.senders.len();
        sender_host.senders.push(TcpSender::new(f, &config));
        sender_host.sender_index.insert(f.id, idx);
        let reverse_path = routing.path(f.dst, f.src);
        let recv_host = hosts.get_mut(&f.dst).expect("just inserted");
        recv_host.receivers.insert(
            f.id,
            TcpReceiver {
                flow: f.id,
                size: f.size,
                started: f.start,
                reverse_path,
                expected: 0,
                ooo: BTreeMap::new(),
                completed: false,
            },
        );
    }
    // Register agents (deterministic order) and kick senders.
    let mut nodes: Vec<NodeId> = hosts.keys().copied().collect();
    nodes.sort();
    for node in nodes {
        let host = hosts.remove(&node).expect("key from map");
        let starts: Vec<(usize, SimTime)> = host
            .senders
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.start))
            .collect();
        let agent = sim.add_agent(node, Box::new(host));
        for (idx, at) in starts {
            sim.schedule_timer(agent, at, (idx as u64) << 1 | KEY_START);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_metrics::jain_index;
    use ups_netsim::prelude::*;
    use ups_topology::{build_simulator, dumbbell, BuildOptions, SchedulerAssignment};

    fn two_host_setup(
        bottleneck_gbps: u64,
        buffer: Option<u64>,
        kind: SchedulerKind,
    ) -> (ups_topology::Topology, Simulator, TransportStats) {
        let topo = dumbbell(
            2,
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(bottleneck_gbps),
            Dur::from_ms(1),
        );
        let sim = build_simulator(
            &topo,
            &SchedulerAssignment::uniform(kind),
            &BuildOptions {
                router_buffer_bytes: buffer,
                ..BuildOptions::default()
            },
        );
        let stats = TransportStats::new(Dur::from_ms(1));
        (topo, sim, stats)
    }

    fn flow(
        routing: &mut Routing,
        topo: &ups_topology::Topology,
        id: u64,
        src: usize,
        dst: usize,
        size: u64,
        start: SimTime,
    ) -> FlowSpec {
        let hosts = topo.hosts();
        FlowSpec {
            id: FlowId(id),
            src: hosts[src],
            dst: hosts[dst],
            size,
            start,
            path: routing.path(hosts[src], hosts[dst]),
        }
    }

    #[test]
    fn single_flow_completes_without_loss() {
        let (topo, mut sim, stats) = two_host_setup(1, None, SchedulerKind::Fifo);
        let mut routing = Routing::new(&topo);
        let f = flow(&mut routing, &topo, 0, 0, 2, 1_000_000, SimTime::ZERO);
        install_tcp(
            &mut sim,
            &topo,
            &mut routing,
            &[f],
            TcpConfig::default(),
            SlackPolicy::None,
            &stats,
        );
        sim.run_until(SimTime::from_secs(5));
        let c = stats.completions();
        assert_eq!(c.len(), 1, "flow must complete");
        assert_eq!(c[0].bytes, 1_000_000);
        // 1MB over a 1Gbps bottleneck with ~4ms RTT: at least the
        // serialization time (8ms), at most a second.
        let fct = c[0].fct();
        assert!(fct >= Dur::from_ms(8), "fct {fct}");
        assert!(fct < Dur::from_secs(1), "fct {fct}");
    }

    #[test]
    fn completes_under_heavy_loss() {
        // A buffer of just 2 packets forces repeated drops; TCP must
        // still deliver everything via retransmissions.
        let (topo, mut sim, stats) = two_host_setup(1, Some(3_000), SchedulerKind::Fifo);
        let mut routing = Routing::new(&topo);
        let f = flow(&mut routing, &topo, 0, 0, 2, 300_000, SimTime::ZERO);
        install_tcp(
            &mut sim,
            &topo,
            &mut routing,
            &[f],
            TcpConfig::default(),
            SlackPolicy::None,
            &stats,
        );
        sim.run_until(SimTime::from_secs(30));
        let c = stats.completions();
        assert_eq!(c.len(), 1, "flow must survive drops");
        assert!(sim.stats().dropped > 0, "the test must actually drop");
        assert!(
            stats.retransmits_total() > 0,
            "drops imply recorded retransmissions"
        );
        assert_eq!(stats.retransmits(FlowId(0)), stats.retransmits_total());
        // Every RTO rewinds and re-sends at least one segment below the
        // high-water mark, so go-back-N resends must be counted too.
        assert!(
            stats.timeouts_total() == 0 || stats.retransmits_total() >= stats.timeouts_total(),
            "RTO recovery must count its go-back-N resends ({} RTOs, {} retx)",
            stats.timeouts_total(),
            stats.retransmits_total()
        );
    }

    #[test]
    fn two_flows_share_a_fifo_bottleneck() {
        let (topo, mut sim, stats) = two_host_setup(1, Some(100_000), SchedulerKind::Fifo);
        let mut routing = Routing::new(&topo);
        let f1 = flow(&mut routing, &topo, 0, 0, 2, 2_000_000, SimTime::ZERO);
        let f2 = flow(&mut routing, &topo, 1, 1, 3, 2_000_000, SimTime::ZERO);
        install_tcp(
            &mut sim,
            &topo,
            &mut routing,
            &[f1, f2],
            TcpConfig::default(),
            SlackPolicy::None,
            &stats,
        );
        sim.run_until(SimTime::from_secs(30));
        assert_eq!(stats.completions().len(), 2);
    }

    #[test]
    fn long_lived_flows_converge_to_fair_share_under_fq() {
        let (topo, mut sim, stats) = two_host_setup(1, Some(150_000), SchedulerKind::Fq);
        let mut routing = Routing::new(&topo);
        let f1 = flow(&mut routing, &topo, 0, 0, 2, u64::MAX, SimTime::ZERO);
        let f2 = flow(&mut routing, &topo, 1, 1, 3, u64::MAX, SimTime::from_ms(2));
        install_tcp(
            &mut sim,
            &topo,
            &mut routing,
            &[f1, f2],
            TcpConfig::default(),
            SlackPolicy::None,
            &stats,
        );
        sim.run_until(SimTime::from_ms(400));
        let m = stats.goodput_matrix(&[FlowId(0), FlowId(1)]);
        // Steady-state (second half) goodput should be near-equal.
        let half = m[0].len() / 2;
        let g1: u64 = m[0][half..].iter().sum();
        let g2: u64 = m[1][half..].iter().sum();
        let j = jain_index(&[g1 as f64, g2 as f64]);
        assert!(j > 0.95, "late-window Jain {j} (g1={g1}, g2={g2})");
        // And the bottleneck should be fully used: ~1Gbps over the window.
        let window_secs = (half as f64) * 1e-3;
        let rate = (g1 + g2) as f64 * 8.0 / window_secs;
        assert!(rate > 0.7e9, "aggregate goodput {rate}");
    }

    #[test]
    fn srpt_headers_decrease_within_flow() {
        // White-box: the stamped `remaining` must shrink as data is sent.
        let (topo, mut sim, stats) = two_host_setup(1, None, SchedulerKind::Srpt);
        let mut routing = Routing::new(&topo);
        let f = flow(&mut routing, &topo, 0, 0, 2, 15_000, SimTime::ZERO);
        install_tcp(
            &mut sim,
            &topo,
            &mut routing,
            &[f],
            TcpConfig::default(),
            SlackPolicy::FctSjf,
            &stats,
        );
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(stats.completions().len(), 1);
        // Inspect the trace: data packets of the flow carry decreasing
        // remaining, and slack = size × 1s.
        // (Header contents aren't traced; completion + SRPT scheduling
        // having worked is the observable.)
    }

    #[test]
    fn infinite_flow_never_completes_but_moves_data() {
        let (topo, mut sim, stats) = two_host_setup(1, Some(100_000), SchedulerKind::Fifo);
        let mut routing = Routing::new(&topo);
        let f = flow(&mut routing, &topo, 0, 0, 2, u64::MAX, SimTime::ZERO);
        install_tcp(
            &mut sim,
            &topo,
            &mut routing,
            &[f],
            TcpConfig::default(),
            SlackPolicy::None,
            &stats,
        );
        sim.run_until(SimTime::from_ms(300));
        assert!(stats.completions().is_empty());
        let m = stats.goodput_matrix(&[FlowId(0)]);
        let total: u64 = m[0].iter().sum();
        assert!(total > 1_000_000, "moved {total} bytes");
    }

    #[test]
    fn weighted_fairness_splits_bandwidth_by_weight() {
        // Two long-lived flows, weights 2:1, sharing a 1 Gbps LSTF
        // bottleneck: goodput should split ~2:1 (§3.3's weighted
        // extension). Buffers unbounded, as in the paper's fairness
        // experiments ("buffer size is kept large so that the fairness
        // is dominated by the scheduling policy").
        let (topo, mut sim, stats) =
            two_host_setup(1, None, SchedulerKind::Lstf { preemptive: false });
        let mut routing = Routing::new(&topo);
        let f1 = flow(&mut routing, &topo, 0, 0, 2, u64::MAX, SimTime::ZERO);
        let f2 = flow(&mut routing, &topo, 1, 1, 3, u64::MAX, SimTime::ZERO);
        install_tcp(
            &mut sim,
            &topo,
            &mut routing,
            &[f1, f2],
            TcpConfig::default(),
            SlackPolicy::WeightedFairness {
                rest_bps: 300_000_000,
                weights: vec![(FlowId(0), 2.0)],
            },
            &stats,
        );
        sim.run_until(SimTime::from_ms(300));
        let m = stats.goodput_matrix(&[FlowId(0), FlowId(1)]);
        let half = m[0].len() / 2;
        let g1: u64 = m[0][half..].iter().sum();
        let g2: u64 = m[1][half..].iter().sum();
        let ratio = g1 as f64 / g2.max(1) as f64;
        assert!(
            (1.4..=3.0).contains(&ratio),
            "weight-2 flow should get ~2x: {g1} vs {g2} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn fairness_policy_stamps_accumulating_slack() {
        // Just exercises the Fairness policy path end-to-end.
        let (topo, mut sim, stats) =
            two_host_setup(1, Some(100_000), SchedulerKind::Lstf { preemptive: false });
        let mut routing = Routing::new(&topo);
        let f1 = flow(&mut routing, &topo, 0, 0, 2, u64::MAX, SimTime::ZERO);
        let f2 = flow(&mut routing, &topo, 1, 1, 3, u64::MAX, SimTime::ZERO);
        install_tcp(
            &mut sim,
            &topo,
            &mut routing,
            &[f1, f2],
            TcpConfig::default(),
            SlackPolicy::Fairness(500_000_000),
            &stats,
        );
        sim.run_until(SimTime::from_ms(200));
        let m = stats.goodput_matrix(&[FlowId(0), FlowId(1)]);
        let half = m[0].len() / 2;
        let g1: u64 = m[0][half..].iter().sum();
        let g2: u64 = m[1][half..].iter().sum();
        let j = jain_index(&[g1 as f64, g2 as f64]);
        assert!(j > 0.9, "LSTF-fairness Jain {j} (g1={g1}, g2={g2})");
    }
}
