//! Minimal stand-in for the `criterion` benchmark harness.
//!
//! The build environment is offline, so the real criterion cannot be
//! fetched. This crate implements the subset the workspace's benches use —
//! `Criterion`, benchmark groups, `iter`/`iter_batched`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock measurement loop: warm up, then run batches until the
//! configured measurement time elapses, and report the mean time per
//! iteration on stdout.
//!
//! The numbers are coarse engineering trackers, not statistical studies;
//! that matches how the workspace's micro benches describe themselves.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting benched work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup. The stand-in runs one routine call
/// per setup call regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from the parameter alone.
    pub fn from_parameter<D: Display>(p: D) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    /// An id with a function name and a parameter.
    pub fn new<D: Display>(name: &str, p: D) -> Self {
        BenchmarkId {
            id: format!("{name}/{p}"),
        }
    }
}

/// Measurement configuration + entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// CLI-argument configuration — a no-op in the stand-in.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, name, &mut f);
        self
    }

    fn budget_per_sample(&self) -> Duration {
        self.measurement_time / self.sample_size.max(1) as u32
    }
}

fn run_bench<F>(c: &Criterion, label: &str, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: run the closure until the warm-up budget is spent.
    let warm_end = Instant::now() + c.warm_up_time;
    let mut b = Bencher {
        deadline: warm_end,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    while Instant::now() < warm_end {
        f(&mut b);
    }
    // Measurement.
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    let end = Instant::now() + c.measurement_time;
    while Instant::now() < end {
        let mut b = Bencher {
            deadline: Instant::now() + c.budget_per_sample(),
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        iters += b.iters;
    }
    if iters == 0 {
        println!("{label:<48} (no iterations completed)");
        return;
    }
    let per_iter = total.as_nanos() as f64 / iters as f64;
    println!("{label:<48} {:>14.1} ns/iter ({iters} iters)", per_iter);
}

/// Runs the timed routines for one benchmark.
pub struct Bencher {
    deadline: Instant,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly until the sample budget elapses.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark one input value under an id.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        let mut g = |b: &mut Bencher| f(b, input);
        run_bench(self.criterion, &label, &mut g);
        self
    }

    /// Run a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{name}", self.name);
        run_bench(self.criterion, &label, &mut f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn batched_setup_is_fresh_each_call() {
        let mut c = Criterion::default()
            .sample_size(1)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter_batched(Vec::<u64>::new, |mut v| v.push(x), BatchSize::SmallInput)
        });
        g.finish();
    }
}
