//! The schema lockfile: `SCHEMAS.lock`.
//!
//! Every versioned artifact this workspace emits (`ups-sweep-record/v4`
//! lines, `ups-sweep/v4` aggregates, the `ups-bench-*/v1` and
//! `ups-obs-*/v1` documents) is built by hand-rolled JSON emitters, and
//! validated by hand-maintained checkers. Those two can silently drift:
//! PR 3/4/5 each had to bump `ups-sweep-record` *because a human
//! noticed* the field surface changed. The lockfile makes the surface
//! mechanical:
//!
//! * An emitting function is annotated `// lint:schema(<tag>)`. The
//!   extractor takes the function's body (brace-matched on blanked
//!   code), collects every string literal inside it, and pulls out the
//!   JSON keys (`"key":` occurrences). Several annotated emitters may
//!   share one tag (a record line is assembled by emitters in three
//!   crates); their keys merge.
//! * `SCHEMAS.lock` stores tag → sorted key set. `ups-lint --schemas`
//!   re-extracts and diffs: a changed surface under an unchanged tag is
//!   the v3→v4-style drift hazard and fails; bumping the tag makes both
//!   the new tag and the stale lock entry fail until `--update`
//!   regenerates the lock — so the bump *and* the lock change land in
//!   the same diff, reviewable together.

use std::collections::{BTreeMap, BTreeSet};

use crate::rules::{lint_directives, Directive, Finding};
use crate::scan::{line_starts, scan, unescape_quotes, ScannedFile};

/// Tag → serialized field surface.
pub type SurfaceMap = BTreeMap<String, BTreeSet<String>>;

/// Extract the JSON keys (`"key":`) from one (unescaped) string literal.
pub fn json_keys(content: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = content.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && crate::scan::is_ident_char(bytes[j] as char) {
                j += 1;
            }
            if j > start && bytes.get(j) == Some(&b'"') && bytes.get(j + 1) == Some(&b':') {
                out.push(content[start..j].to_string());
                i = j + 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// One annotated emitter found in a file.
struct Emitter {
    tag: String,
    keys: BTreeSet<String>,
    line: usize,
}

/// Pull every `lint:schema(tag)` emitter surface out of one file.
fn emitters_in(path: &str, scanned: &ScannedFile, findings: &mut Vec<Finding>) -> Vec<Emitter> {
    let starts = line_starts(&scanned.code);
    let mut out = Vec::new();
    for c in &scanned.comments {
        for (_, directive) in lint_directives(&c.text) {
            let Directive::Schema { tag } = directive else {
                continue;
            };
            if tag.is_empty() {
                findings.push(Finding {
                    path: path.to_string(),
                    line: c.start_line,
                    rule: "schema-drift",
                    message: "lint:schema with an empty tag".to_string(),
                });
                continue;
            }
            // The annotated item's body: first `{` at or after the line
            // following the comment, brace-matched. Annotate the
            // *emitting function*, not a `let` inside one.
            let body_from = starts
                .get(c.end_line)
                .copied()
                .unwrap_or(scanned.code.len());
            let Some((open, close)) = next_brace_block(&scanned.code, body_from) else {
                findings.push(Finding {
                    path: path.to_string(),
                    line: c.start_line,
                    rule: "schema-drift",
                    message: format!("lint:schema({tag}): no braced item follows the annotation"),
                });
                continue;
            };
            let open_line = crate::scan::line_of(&starts, open);
            let close_line = crate::scan::line_of(&starts, close);
            let mut keys = BTreeSet::new();
            for s in &scanned.strings {
                if s.line >= c.end_line && s.line <= close_line {
                    keys.extend(json_keys(&unescape_quotes(&s.content)));
                }
            }
            if keys.is_empty() {
                findings.push(Finding {
                    path: path.to_string(),
                    line: c.start_line,
                    rule: "schema-drift",
                    message: format!(
                        "lint:schema({tag}): no JSON keys found in the item at lines {open_line}–{close_line}"
                    ),
                });
                continue;
            }
            out.push(Emitter {
                tag,
                keys,
                line: c.start_line,
            });
        }
    }
    out
}

/// First `{ … }` block starting at or after byte `from`.
fn next_brace_block(code: &str, from: usize) -> Option<(usize, usize)> {
    let open = from + code[from..].find('{')?;
    let mut depth = 0i64;
    for (j, b) in code[open..].bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, open + j));
                }
            }
            _ => {}
        }
    }
    None
}

/// Extract the full surface map from `(path, source)` pairs. Also
/// verifies every annotated tag is actually emitted somewhere: the tag
/// string must appear inside a string literal in the scanned set
/// (catches a typo'd annotation that would otherwise lock a surface
/// nobody writes).
pub fn extract_surfaces(files: &[(String, String)]) -> (SurfaceMap, Vec<Finding>) {
    let mut findings = Vec::new();
    let mut map: SurfaceMap = BTreeMap::new();
    let mut emitters: Vec<(String, Emitter)> = Vec::new();
    let mut all_literals = String::new();
    for (path, src) in files {
        let scanned = scan(src);
        for s in &scanned.strings {
            all_literals.push_str(&s.content);
            all_literals.push('\n');
        }
        for e in emitters_in(path, &scanned, &mut findings) {
            emitters.push((path.clone(), e));
        }
    }
    for (path, e) in emitters {
        if !all_literals.contains(&e.tag) {
            findings.push(Finding {
                path,
                line: e.line,
                rule: "schema-drift",
                message: format!(
                    "lint:schema({}): tag never appears in a string literal anywhere in the workspace — typo?",
                    e.tag
                ),
            });
            continue;
        }
        map.entry(e.tag).or_default().extend(e.keys);
    }
    findings.sort();
    (map, findings)
}

/// Render a surface map as the lockfile text (deterministic).
pub fn render_lock(map: &SurfaceMap) -> String {
    let mut out = String::new();
    out.push_str(
        "# SCHEMAS.lock — serialized field surface per schema tag.\n\
         #\n\
         # Generated by `cargo run -p ups-lint -- --update`; checked in CI by\n\
         # `ups-lint --schemas`. Each [tag] section lists every JSON key an\n\
         # annotated emitter (`lint:schema(tag)` in the source) writes under\n\
         # that tag. If a surface changes while its /vN tag does not, the\n\
         # check fails: bump the version tag, run --update, and commit both.\n",
    );
    for (tag, keys) in map {
        out.push('\n');
        out.push_str(&format!("[{tag}]\n"));
        for k in keys {
            out.push_str(k);
            out.push('\n');
        }
    }
    out
}

/// Parse a lockfile back into a surface map.
pub fn parse_lock(text: &str) -> Result<SurfaceMap, String> {
    let mut map: SurfaceMap = BTreeMap::new();
    let mut current: Option<String> = None;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(tag) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            if map.contains_key(tag) {
                return Err(format!("line {}: duplicate section [{tag}]", i + 1));
            }
            map.insert(tag.to_string(), BTreeSet::new());
            current = Some(tag.to_string());
            continue;
        }
        match &current {
            Some(tag) => {
                map.get_mut(tag)
                    .expect("section exists")
                    .insert(line.to_string());
            }
            None => {
                return Err(format!(
                    "line {}: key {line:?} before any [tag] section",
                    i + 1
                ))
            }
        }
    }
    Ok(map)
}

/// Diff the extracted surfaces against the lock. Every divergence is a
/// `schema-drift` finding anchored on `SCHEMAS.lock`.
pub fn diff_against_lock(current: &SurfaceMap, lock: &SurfaceMap) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut f = |message: String| {
        findings.push(Finding {
            path: "SCHEMAS.lock".to_string(),
            line: 1,
            rule: "schema-drift",
            message,
        });
    };
    for (tag, keys) in current {
        match lock.get(tag) {
            None => f(format!(
                "new schema tag {tag} is not in SCHEMAS.lock — run `cargo run -p ups-lint -- --update` and commit the lock"
            )),
            Some(locked) if locked != keys => {
                let added: Vec<&str> = keys.difference(locked).map(String::as_str).collect();
                let removed: Vec<&str> = locked.difference(keys).map(String::as_str).collect();
                f(format!(
                    "field surface of {tag} changed without a version-tag bump (added: [{}], removed: [{}]) — bump the /vN tag, run --update, and commit both",
                    added.join(", "),
                    removed.join(", ")
                ));
            }
            Some(_) => {}
        }
    }
    for tag in lock.keys() {
        if !current.contains_key(tag) {
            f(format!(
                "SCHEMAS.lock entry {tag} has no annotated emitter — removed or renamed (version bump?); run --update"
            ));
        }
    }
    findings.sort();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_extracted_from_escaped_and_raw_literal_styles() {
        assert_eq!(
            json_keys(r#"{"flows":{},"packets":{} "not a key" x":" "tail":"#),
            vec!["flows", "packets", "tail"]
        );
        // The store.rs style, after unescape_quotes.
        assert_eq!(json_keys(r#"  "schema": "{}",\n"#), vec!["schema"]);
    }

    fn files(src: &str) -> Vec<(String, String)> {
        vec![("a.rs".to_string(), src.to_string())]
    }

    #[test]
    fn annotated_fn_surface_is_extracted() {
        let src = r##"
/// Docs.
// lint:schema(demo-record/v1)
pub fn to_json(&self) -> String {
    format!(r#"{{"alpha":{},"beta":{}}}"#, self.a, self.b)
}
pub const TAG: &str = "demo-record/v1";
"##;
        let (map, findings) = extract_surfaces(&files(src));
        assert!(findings.is_empty(), "{findings:?}");
        let keys: Vec<&str> = map["demo-record/v1"].iter().map(String::as_str).collect();
        assert_eq!(keys, vec!["alpha", "beta"]);
    }

    #[test]
    fn emitters_sharing_a_tag_merge() {
        let src = r##"
// lint:schema(demo/v2)
fn a() -> String { r#"{"x":1}"#.into() }
// lint:schema(demo/v2)
fn b() -> String { r#"{"y":2,"demo/v2":0}"#.into() }
"##;
        let (map, findings) = extract_surfaces(&files(src));
        assert!(findings.is_empty(), "{findings:?}");
        // "demo/v2" appears in b's literal only as the tag-presence
        // witness; `/` is not an ident char, so it is not a key.
        let keys: Vec<&str> = map["demo/v2"].iter().map(String::as_str).collect();
        assert_eq!(keys, vec!["x", "y"]);
    }

    #[test]
    fn unemitted_tag_is_a_typo_finding() {
        let src = r##"
// lint:schema(never-written/v1)
fn a() -> String { r#"{"x":1}"#.into() }
"##;
        let (map, findings) = extract_surfaces(&files(src));
        assert!(map.is_empty());
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("typo"));
    }

    #[test]
    fn keyless_item_is_a_finding() {
        let src = "// lint:schema(demo/v1)\nfn a() { let x = 1; }\n";
        let (_, findings) = extract_surfaces(&files(src));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no JSON keys"));
    }

    #[test]
    fn lock_round_trips() {
        let src = r##"
// lint:schema(demo/v1)
fn a() -> String { r#"{"x":1,"y":2} demo/v1"#.into() }
"##;
        let (map, _) = extract_surfaces(&files(src));
        let lock = render_lock(&map);
        assert_eq!(parse_lock(&lock).unwrap(), map);
    }

    #[test]
    fn drift_without_bump_is_caught_and_bump_requires_update() {
        let mut locked: SurfaceMap = BTreeMap::new();
        locked.insert(
            "demo/v1".into(),
            ["x".to_string(), "y".to_string()].into_iter().collect(),
        );
        // Same tag, changed surface → drift.
        let mut drifted = locked.clone();
        drifted.get_mut("demo/v1").unwrap().insert("z".into());
        let f = diff_against_lock(&drifted, &locked);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("without a version-tag bump"));
        assert!(f[0].message.contains("added: [z]"));
        // Bumped tag → both the new tag and the stale entry fail until
        // --update rewrites the lock.
        let mut bumped: SurfaceMap = BTreeMap::new();
        bumped.insert("demo/v2".into(), drifted["demo/v1"].clone());
        let f = diff_against_lock(&bumped, &locked);
        assert_eq!(f.len(), 2);
        assert!(f
            .iter()
            .any(|x| x.message.contains("new schema tag demo/v2")));
        assert!(f.iter().any(|x| x.message.contains("no annotated emitter")));
        // Clean lock → clean diff.
        assert!(diff_against_lock(&locked, &locked).is_empty());
    }

    #[test]
    fn lock_parse_rejects_garbage() {
        assert!(parse_lock("stray-key\n").is_err());
        assert!(parse_lock("[a]\nx\n[a]\ny\n").is_err());
    }
}
