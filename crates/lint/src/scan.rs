//! The comment- and string-aware source scanner.
//!
//! Every rule in this crate works on *blanked code*: the original source
//! with the contents of comments, string literals and char literals
//! replaced by spaces (newlines preserved, so byte offsets map to the
//! original line numbers). That way a rule searching for `HashMap` or
//! `Instant` never matches prose in a doc comment or a key inside a JSON
//! format string. The scanner also keeps what it blanked — comments feed
//! the `lint:allow` / `lint:schema` / `// SAFETY:` grammar, string
//! literals feed the schema field-surface extractor.
//!
//! The grammar subset handled (everything this workspace uses):
//!
//! * line comments `//…` (incl. `///`, `//!`),
//! * block comments `/* … */` with **nesting**,
//! * string literals `"…"` with `\"`/`\\` escapes,
//! * raw strings `r"…"`, `r#"…"#`, … (any hash count) — but not raw
//!   identifiers (`r#type` stays code),
//! * byte strings `b"…"`, `br#"…"#`, byte chars `b'x'`,
//! * char literals `'x'`, `'\n'`, `'\''`, `'\u{1F600}'`,
//! * lifetimes `'a`, `'static`, `'_` — which stay code, not literals.

/// One comment, with the line span it occupies (1-based, inclusive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Line the comment starts on.
    pub start_line: usize,
    /// Line the comment ends on (same as `start_line` for `//`).
    pub end_line: usize,
    /// Full comment text, delimiters included.
    pub text: String,
}

/// One string literal (normal, raw, or byte) with its starting line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrLit {
    /// Line the opening quote is on.
    pub line: usize,
    /// Content between the delimiters, exactly as written (escape
    /// sequences are *not* resolved; see [`unescape_quotes`]).
    pub content: String,
}

/// A scanned source file.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// The source with comment/literal contents blanked to spaces.
    /// Same length and line structure as the input.
    pub code: String,
    /// Every comment, in source order.
    pub comments: Vec<Comment>,
    /// Every string literal, in source order.
    pub strings: Vec<StrLit>,
}

/// Resolve just enough escaping to search a literal's content for JSON
/// keys: `\\` → `\` and `\"` → `"`. Raw strings need neither and contain
/// neither sequence with escape meaning, so applying this uniformly is
/// safe for key extraction.
pub fn unescape_quotes(content: &str) -> String {
    let mut out = String::with_capacity(content.len());
    let mut chars = content.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Scan `src` into blanked code plus captured comments and literals.
pub fn scan(src: &str) -> ScannedFile {
    let chars: Vec<char> = src.chars().collect();
    let mut code = String::with_capacity(src.len());
    let mut comments = Vec::new();
    let mut strings = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Push a blanked char: newlines survive (line structure), everything
    // else becomes a space.
    fn blank(code: &mut String, line: &mut usize, c: char) {
        if c == '\n' {
            code.push('\n');
            *line += 1;
        } else {
            code.push(' ');
        }
    }
    fn keep(code: &mut String, line: &mut usize, c: char) {
        code.push(c);
        if c == '\n' {
            *line += 1;
        }
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Line comment.
        if c == '/' && next == Some('/') {
            let start_line = line;
            let mut text = String::new();
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                blank(&mut code, &mut line, chars[i]);
                i += 1;
            }
            comments.push(Comment {
                start_line,
                end_line: start_line,
                text,
            });
            continue;
        }

        // Block comment, nesting-aware.
        if c == '/' && next == Some('*') {
            let start_line = line;
            let mut text = String::new();
            let mut depth = 0usize;
            while i < chars.len() {
                let c = chars[i];
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    depth += 1;
                    text.push('/');
                    text.push('*');
                    blank(&mut code, &mut line, '/');
                    blank(&mut code, &mut line, '*');
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    depth -= 1;
                    text.push('*');
                    text.push('/');
                    blank(&mut code, &mut line, '*');
                    blank(&mut code, &mut line, '/');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(c);
                    blank(&mut code, &mut line, c);
                    i += 1;
                }
            }
            comments.push(Comment {
                start_line,
                end_line: line,
                text,
            });
            continue;
        }

        // Raw (byte) strings: r"…", r#"…"#, br"…", br##"…"## — only when
        // the `r` does not continue an identifier (`for`, `attr`), and
        // not raw identifiers (`r#type`).
        let prev_is_ident = i > 0 && is_ident_char(chars[i - 1]);
        let raw_start = if c == 'r' && !prev_is_ident {
            Some(i + 1)
        } else if c == 'b' && next == Some('r') && !prev_is_ident {
            Some(i + 2)
        } else {
            None
        };
        if let Some(after_r) = raw_start {
            let mut j = after_r;
            while chars.get(j) == Some(&'#') {
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                let hashes = j - after_r;
                // Prefix (r/br + hashes + quote) stays code.
                for &ch in &chars[i..=j] {
                    keep(&mut code, &mut line, ch);
                }
                let lit_line = line;
                i = j + 1;
                let mut content = String::new();
                // Scan to `"` followed by `hashes` hashes.
                'raw: while i < chars.len() {
                    if chars[i] == '"' {
                        let mut h = 0usize;
                        while h < hashes && chars.get(i + 1 + h) == Some(&'#') {
                            h += 1;
                        }
                        if h == hashes {
                            for &ch in &chars[i..=i + hashes] {
                                keep(&mut code, &mut line, ch);
                            }
                            i += hashes + 1;
                            break 'raw;
                        }
                    }
                    content.push(chars[i]);
                    blank(&mut code, &mut line, chars[i]);
                    i += 1;
                }
                strings.push(StrLit {
                    line: lit_line,
                    content,
                });
                continue;
            }
            // Not a raw string (raw identifier or plain `r`): fall through.
        }

        // Normal / byte string literal.
        if c == '"' || (c == 'b' && next == Some('"') && !prev_is_ident) {
            if c == 'b' {
                keep(&mut code, &mut line, 'b');
                i += 1;
            }
            keep(&mut code, &mut line, '"');
            let lit_line = line;
            i += 1;
            let mut content = String::new();
            while i < chars.len() {
                let c = chars[i];
                if c == '\\' {
                    content.push(c);
                    blank(&mut code, &mut line, c);
                    i += 1;
                    if i < chars.len() {
                        content.push(chars[i]);
                        blank(&mut code, &mut line, chars[i]);
                        i += 1;
                    }
                    continue;
                }
                if c == '"' {
                    keep(&mut code, &mut line, '"');
                    i += 1;
                    break;
                }
                content.push(c);
                blank(&mut code, &mut line, c);
                i += 1;
            }
            strings.push(StrLit {
                line: lit_line,
                content,
            });
            continue;
        }

        // Char literal vs lifetime. Byte char `b'x'` reduces to the same
        // case once the `b` is emitted as code.
        if c == '\'' {
            let is_char_literal = match next {
                Some('\\') => true,
                // 'x' — exactly one char then a closing quote. A
                // lifetime ('a, 'static, '_) has an ident char stream
                // with no closing quote.
                Some(ch) => chars.get(i + 2) == Some(&'\'') && ch != '\'',
                None => false,
            };
            if is_char_literal {
                keep(&mut code, &mut line, '\'');
                i += 1;
                while i < chars.len() {
                    let c = chars[i];
                    if c == '\\' {
                        blank(&mut code, &mut line, c);
                        i += 1;
                        if i < chars.len() {
                            blank(&mut code, &mut line, chars[i]);
                            i += 1;
                        }
                        continue;
                    }
                    if c == '\'' {
                        keep(&mut code, &mut line, '\'');
                        i += 1;
                        break;
                    }
                    blank(&mut code, &mut line, c);
                    i += 1;
                }
                continue;
            }
            // Lifetime: the quote and the following identifier are code.
            keep(&mut code, &mut line, '\'');
            i += 1;
            continue;
        }

        keep(&mut code, &mut line, c);
        i += 1;
    }

    ScannedFile {
        code,
        comments,
        strings,
    }
}

/// Is `c` part of an identifier?
pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offset → 1-based line number table for a blanked-code string.
pub fn line_starts(code: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in code.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// The 1-based line containing byte offset `off`, given [`line_starts`].
pub fn line_of(starts: &[usize], off: usize) -> usize {
    starts.partition_point(|&s| s <= off)
}

/// Every occurrence of `word` in `code` as a whole word (not embedded in
/// a longer identifier), returned as byte offsets.
pub fn find_word(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1] as char);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_char(bytes[end] as char);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + word.len();
    }
    out
}

/// Line spans (1-based, inclusive) of `#[cfg(test)]`-gated blocks: from
/// the attribute to the closing brace of the item it gates. Determinism
/// rules skip these — test code may hash and time freely.
pub fn test_regions(code: &str) -> Vec<(usize, usize)> {
    let starts = line_starts(code);
    let mut regions = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find("#[cfg(test)]") {
        let at = from + pos;
        from = at + 1;
        let Some(open_rel) = code[at..].find('{') else {
            continue;
        };
        let open = at + open_rel;
        let mut depth = 0i64;
        let mut close = code.len() - 1;
        for (j, b) in code[open..].bytes().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = open + j;
                        break;
                    }
                }
                _ => {}
            }
        }
        regions.push((line_of(&starts, at), line_of(&starts, close)));
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked_and_captured() {
        let s = scan("let x = 1; // HashMap in prose\nlet y = 2;\n");
        assert!(!s.code.contains("HashMap"));
        assert!(s.code.contains("let x = 1;"));
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].start_line, 1);
        assert!(s.comments[0].text.contains("HashMap in prose"));
    }

    #[test]
    fn nested_block_comments_terminate_at_the_outer_close() {
        let s = scan("a /* x /* Instant::now() */ y */ b\n");
        assert!(!s.code.contains("Instant"));
        assert!(s.code.starts_with('a'));
        assert!(s.code.contains('b'), "code after the outer close survives");
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].text.contains("Instant::now()"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let s = scan("x\n/* one\ntwo\nthree */\ny\n");
        assert_eq!(s.comments[0].start_line, 2);
        assert_eq!(s.comments[0].end_line, 4);
        // Line structure preserved.
        assert_eq!(s.code.matches('\n').count(), 5);
    }

    #[test]
    fn string_contents_are_blanked_but_captured() {
        let s = scan(r#"let x = "Instant::now() \" quoted";"#);
        assert!(!s.code.contains("Instant"));
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].content, r#"Instant::now() \" quoted"#);
        assert_eq!(
            unescape_quotes(&s.strings[0].content),
            r#"Instant::now() " quoted"#
        );
    }

    #[test]
    fn raw_strings_with_hashes_scan_to_the_matching_close() {
        let src = r###"let x = r#"one "quoted" two"#; let y = HashMap::new();"###;
        let s = scan(src);
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].content, r#"one "quoted" two"#);
        // Code after the raw string is still scanned.
        assert_eq!(find_word(&s.code, "HashMap").len(), 1);
    }

    #[test]
    fn raw_string_double_hash() {
        let src = "r##\"inner \"# still inside\"##; Instant";
        let s = scan(src);
        assert_eq!(s.strings[0].content, "inner \"# still inside");
        assert_eq!(find_word(&s.code, "Instant").len(), 1);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let s = scan(r##"let a = b"bytes"; let b = br#"raw "bytes""#;"##);
        assert_eq!(s.strings.len(), 2);
        assert_eq!(s.strings[0].content, "bytes");
        assert_eq!(s.strings[1].content, r#"raw "bytes""#);
    }

    #[test]
    fn raw_identifiers_stay_code() {
        let s = scan("let r#type = 1; let x = r#type;");
        assert!(s.strings.is_empty());
        assert!(s.code.contains("r#type"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let s = scan("fn f<'a>(x: &'a str) { let c = 'a'; let q = '\\''; }");
        // Lifetimes survive as code; char contents are blanked.
        assert!(s.code.contains("<'a>"));
        assert!(s.code.contains("&'a str"));
        assert!(!s.code.contains("'a'"), "char literal content blanked");
        // And scanning continued past both char literals.
        assert!(s.code.trim_end().ends_with('}'));
    }

    #[test]
    fn lifetime_static_not_mistaken_for_char() {
        let s = scan("fn f(x: &'static str) -> &'static str { x }");
        assert!(s.code.contains("&'static str"));
        assert!(s.strings.is_empty());
    }

    #[test]
    fn char_with_escape_does_not_derail_scanning() {
        let s = scan(r"let tab = '\t'; let q = '\u{41}'; Instant::now();");
        assert_eq!(find_word(&s.code, "Instant").len(), 1);
    }

    #[test]
    fn quote_in_string_does_not_open_a_char_literal() {
        let s = scan(r#"let x = "it's fine"; HashMap"#);
        assert_eq!(s.strings[0].content, "it's fine");
        assert_eq!(find_word(&s.code, "HashMap").len(), 1);
    }

    #[test]
    fn find_word_respects_identifier_boundaries() {
        let code = "HashMap HashMapX XHashMap a.HashMap::<u8>";
        assert_eq!(find_word(code, "HashMap").len(), 2);
    }

    #[test]
    fn test_region_covers_the_gated_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let s = scan(src);
        assert_eq!(test_regions(&s.code), vec![(2, 5)]);
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let s = scan("let x = \"one\ntwo\";\nInstant\n");
        assert_eq!(s.strings[0].line, 1);
        let starts = line_starts(&s.code);
        let at = find_word(&s.code, "Instant")[0];
        assert_eq!(line_of(&starts, at), 3);
    }
}
