//! The `ups-lint` binary. See `crates/lint/src/lib.rs` and DESIGN.md
//! §13 for what the rules enforce and why.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use ups_lint::{find_workspace_root, render, rule_list, Workspace};

const USAGE: &str = "\
ups-lint — workspace determinism & schema-drift static analysis

USAGE:
    ups-lint [--root DIR] [--check] [--schemas] [--update] [--list]

MODES (default with no mode flags: --check --schemas):
    --check      run the determinism rules over every workspace source file
    --schemas    diff the annotated schema field surfaces against SCHEMAS.lock
    --update     regenerate SCHEMAS.lock from the current annotations
    --list       print every rule and exit

OPTIONS:
    --root DIR   workspace root (default: walk up from the current directory
                 to the first Cargo.toml declaring [workspace])
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut check = false;
    let mut schemas = false;
    let mut update = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--schemas" => schemas = true,
            "--update" => update = true,
            "--list" => {
                print!("{}", rule_list());
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if !check && !schemas && !update {
        check = true;
        schemas = true;
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "ups-lint: no Cargo.toml with [workspace] above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("ups-lint: loading {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let mut findings = Vec::new();
    if check {
        findings.extend(ws.check());
    }
    if update {
        let (surfaces, schema_findings) = ws.extract_schemas();
        if schema_findings.is_empty() {
            let text = ups_lint::render_lock(&surfaces);
            if let Err(e) = std::fs::write(ws.lock_path(), &text) {
                eprintln!("ups-lint: writing {}: {e}", ws.lock_path().display());
                return ExitCode::from(2);
            }
            let fields: usize = surfaces.values().map(|k| k.len()).sum();
            println!(
                "ups-lint: wrote SCHEMAS.lock ({} tags, {} fields)",
                surfaces.len(),
                fields
            );
        } else {
            findings.extend(schema_findings);
        }
    } else if schemas {
        findings.extend(ws.check_schemas());
    }

    findings.sort();
    findings.dedup();
    if findings.is_empty() {
        println!("ups-lint: clean ({} files)", ws.files.len());
        ExitCode::SUCCESS
    } else {
        print!("{}", render(&findings));
        println!("ups-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("ups-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
