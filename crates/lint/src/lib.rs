//! `ups-lint` — the workspace's determinism & schema-drift static
//! analysis.
//!
//! The repo's determinism contract (DESIGN.md §3, §13) says a replay
//! experiment is a pure function of its seed, and that every versioned
//! artifact's field surface changes only together with its `/vN` schema
//! tag. Both are easy to break silently: one `HashMap` iteration
//! feeding a record, one `Instant::now()` reaching a metric, one field
//! added to a JSON emitter without a tag bump. This crate makes those
//! hazards mechanical: a hand-rolled, dependency-free scanner
//! ([`scan`]) feeds a rule engine ([`rules`]) and a schema-surface
//! extractor ([`schemas`]), and the `ups-lint` binary gates CI.
//!
//! * `ups-lint --check` — run the determinism rules over the workspace.
//! * `ups-lint --schemas` — diff the extracted schema surfaces against
//!   `SCHEMAS.lock`.
//! * `ups-lint --update` — regenerate `SCHEMAS.lock`.
//! * `ups-lint --list` — print every rule.
//!
//! Exceptions are spelled, never silent: a suppression is written as a
//! comment holding `lint:allow(rule): reason` (reason mandatory, stale
//! suppressions are themselves findings), and an emitter is tied to its
//! schema tag by a comment holding `lint:schema(tag)` above the
//! emitting function.

#![forbid(unsafe_code)]

pub mod rules;
pub mod scan;
pub mod schemas;

pub use rules::{check_file, rule_by_name, FileClass, Finding, RuleInfo, RULES};
pub use schemas::{diff_against_lock, parse_lock, render_lock, SurfaceMap};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose library code is in determinism scope: all rules apply.
/// A new crate must be added to one of these lists deliberately —
/// loading a workspace with an unlisted crate is an error, so the
/// decision cannot be made by omission.
pub const DETERMINISM_CRATES: &[&str] = &[
    "core",
    "dynamics",
    "forensics",
    "lint",
    "metrics",
    "netsim",
    "obs",
    "race",
    "sweep",
    "topology",
    "transport",
    "workload",
];

/// Crates outside determinism scope (the vendored ecosystem stand-ins
/// and the bench harness): only the general rules (`unsafe-audit`,
/// `atomic-ordering`) apply.
pub const GENERAL_CRATES: &[&str] = &["bench", "criterion", "proptest", "rand"];

/// Crates whose library code must route concurrency primitives through
/// the `ups_race` shim (`raw-sync` rule): the model checker mirrors
/// exactly the shim surface, so a direct `std::sync`/`std::thread` use
/// here is a primitive the checker silently does not cover.
/// `std::sync::Arc`/`Weak` are exempt (ownership, not synchronization),
/// as are `#[cfg(test)]` regions.
pub const SYNC_SHIM_CRATES: &[&str] = &["obs", "sweep"];

/// Hot-path crates where a stray panic aborts a whole sweep job
/// (`panic-path` rule): `unwrap`/`expect`/`panic!`/computed indexing in
/// their library code must be handled or carry a
/// `lint:allow(panic-path): <why it cannot fire>` annotation.
pub const PANIC_PATH_CRATES: &[&str] = &["core", "netsim"];

/// One source file, loaded and classified.
pub struct SourceFile {
    /// Repo-relative path, `/`-separated (stable across platforms).
    pub path: String,
    /// File contents.
    pub src: String,
    /// Which rule set applies.
    pub class: FileClass,
}

/// The loaded workspace: every `.rs` file under the facade's and each
/// member crate's `src/`, `tests/`, `benches/` and `examples/`
/// directories, in sorted order.
pub struct Workspace {
    /// Workspace root (the directory holding the top-level `Cargo.toml`
    /// and `SCHEMAS.lock`).
    pub root: PathBuf,
    /// Every loaded file, sorted by path.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Load the workspace rooted at `root`.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        load_dir(root, &root.join("src"), FileClass::Determinism, &mut files)?;
        load_dir(root, &root.join("tests"), FileClass::TestOnly, &mut files)?;
        load_dir(
            root,
            &root.join("examples"),
            FileClass::TestOnly,
            &mut files,
        )?;
        let crates_dir = root.join("crates");
        for dir in sorted_subdirs(&crates_dir)? {
            let name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            let class = if DETERMINISM_CRATES.contains(&name.as_str()) {
                FileClass::Determinism
            } else if GENERAL_CRATES.contains(&name.as_str()) {
                FileClass::General
            } else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "crate `{name}` is in neither DETERMINISM_CRATES nor GENERAL_CRATES — \
                         classify it in crates/lint/src/lib.rs"
                    ),
                ));
            };
            load_dir(root, &dir.join("src"), class, &mut files)?;
            for sub in ["tests", "benches", "examples"] {
                load_dir(root, &dir.join(sub), FileClass::TestOnly, &mut files)?;
            }
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// Run the rule engine over every file.
    pub fn check(&self) -> Vec<Finding> {
        let mut findings = Vec::new();
        for f in &self.files {
            findings.extend(check_file(&f.path, &f.src, f.class));
        }
        findings.sort();
        findings
    }

    /// Extract the schema field surfaces from every `lint:schema`
    /// annotation in the workspace.
    pub fn extract_schemas(&self) -> (SurfaceMap, Vec<Finding>) {
        let pairs: Vec<(String, String)> = self
            .files
            .iter()
            .map(|f| (f.path.clone(), f.src.clone()))
            .collect();
        schemas::extract_surfaces(&pairs)
    }

    /// Path of the lockfile this workspace is checked against.
    pub fn lock_path(&self) -> PathBuf {
        self.root.join("SCHEMAS.lock")
    }

    /// Diff the extracted surfaces against `SCHEMAS.lock`.
    pub fn check_schemas(&self) -> Vec<Finding> {
        let (current, mut findings) = self.extract_schemas();
        match fs::read_to_string(self.lock_path()) {
            Ok(text) => match parse_lock(&text) {
                Ok(locked) => findings.extend(diff_against_lock(&current, &locked)),
                Err(e) => findings.push(Finding {
                    path: "SCHEMAS.lock".to_string(),
                    line: 1,
                    rule: "schema-drift",
                    message: format!("unparseable lockfile: {e}"),
                }),
            },
            Err(_) => findings.push(Finding {
                path: "SCHEMAS.lock".to_string(),
                line: 1,
                rule: "schema-drift",
                message:
                    "SCHEMAS.lock missing — run `cargo run -p ups-lint -- --update` and commit it"
                        .to_string(),
            }),
        }
        findings.sort();
        findings
    }
}

/// Recursively collect `.rs` files under `dir` (sorted traversal, so
/// output order never depends on filesystem enumeration order).
fn load_dir(
    root: &Path,
    dir: &Path,
    class: FileClass,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            load_dir(root, &p, class, out)?;
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                path: rel,
                src: fs::read_to_string(&p)?,
                class,
            });
        }
    }
    Ok(())
}

/// Sorted subdirectories of `dir` (empty if `dir` does not exist).
fn sorted_subdirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    if !dir.is_dir() {
        return Ok(Vec::new());
    }
    let mut dirs: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    Ok(dirs)
}

/// Render findings, one per line, deterministically.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.render());
        out.push('\n');
    }
    out
}

/// The `--list` text: every rule, name-aligned, with suppressibility.
pub fn rule_list() -> String {
    let width = RULES.iter().map(|r| r.name.len()).max().unwrap_or(0);
    let mut out = String::new();
    for r in RULES {
        out.push_str(&format!(
            "{:width$}  {}{}\n",
            r.name,
            r.desc,
            if r.suppressible {
                ""
            } else {
                "  (not suppressible)"
            },
        ));
    }
    out
}

/// Walk upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_list_names_every_rule_once() {
        let list = rule_list();
        for r in RULES {
            assert_eq!(
                list.matches(&format!("{} ", r.name)).count()
                    + list.matches(&format!("{}\n", r.name)).count(),
                1,
                "rule {} listed exactly once",
                r.name
            );
        }
    }

    #[test]
    fn every_crate_classification_is_disjoint() {
        for d in DETERMINISM_CRATES {
            assert!(!GENERAL_CRATES.contains(d), "{d} in both lists");
        }
        let mut sorted = DETERMINISM_CRATES.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, DETERMINISM_CRATES, "list kept sorted");
    }

    #[test]
    fn render_is_one_line_per_finding() {
        let f = vec![
            Finding {
                path: "a.rs".into(),
                line: 1,
                rule: "wall-clock",
                message: "m".into(),
            },
            Finding {
                path: "b.rs".into(),
                line: 2,
                rule: "unsafe-audit",
                message: "n".into(),
            },
        ];
        assert_eq!(
            render(&f),
            "a.rs:1: [wall-clock] m\nb.rs:2: [unsafe-audit] n\n"
        );
    }
}
