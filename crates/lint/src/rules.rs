//! The rule registry and per-file rule engine.
//!
//! Rules encode this repo's determinism contract (DESIGN.md §3) as
//! mechanical checks over blanked code (see [`crate::scan`]):
//!
//! * `wall-clock` — `Instant`/`SystemTime` in determinism scope. Replay
//!   experiments must be pure functions of the seed; wall time belongs in
//!   the obs/bench layers (or behind an annotation explaining why the
//!   reading never reaches a record).
//! * `hash-container` — `HashMap`/`HashSet` in determinism scope. Their
//!   iteration order is randomized per process; one `for` loop over one
//!   of these in a path that feeds a trace, record or summary makes two
//!   identical runs disagree. `BTreeMap`/`BTreeSet`, or annotate why
//!   order never escapes (lookup-only, or sorted before exposure).
//! * `atomic-ordering` — non-`Relaxed` atomic orderings. The workspace's
//!   cross-thread protocols are mutex-based; its atomics are all
//!   monotonic counters and flags where `Relaxed` suffices. A stronger
//!   ordering signals an undocumented protocol.
//! * `ps-narrowing` — `as_ps() as <narrower>`: u64 picosecond counts
//!   overflow i64 after ~106 days of simulated time and lose precision
//!   in f64 after ~2.5 simulated hours. Widen to u128/i128, or annotate
//!   the bound that makes the cast exact.
//! * `unsafe-audit` — `unsafe` without a `// SAFETY:` comment directly
//!   above it.
//! * `bad-suppression` / `unused-suppression` — the suppression grammar
//!   policing itself.
//!
//! Suppression grammar: `// lint:allow(rule[, rule]): reason` on the
//! same line as the finding or the line(s) directly above it. The reason
//! is mandatory — an unexplained exception is itself a finding — and an
//! allow that suppresses nothing is reported so stale annotations cannot
//! accumulate.

use crate::scan::{find_word, line_of, line_starts, scan, test_regions, ScannedFile};

/// One rule: its `lint:allow` name and a one-line description
/// (`ups-lint --list`).
pub struct RuleInfo {
    /// Name as used in findings and `lint:allow(...)`.
    pub name: &'static str,
    /// One-line description.
    pub desc: &'static str,
    /// May a `lint:allow` suppress it?
    pub suppressible: bool,
}

/// Every rule, in the order `--list` prints them.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "wall-clock",
        desc:
            "Instant/SystemTime in determinism scope — replay must be a pure function of the seed",
        suppressible: true,
    },
    RuleInfo {
        name: "hash-container",
        desc: "HashMap/HashSet in determinism scope — iteration order can leak into traces/records",
        suppressible: true,
    },
    RuleInfo {
        name: "atomic-ordering",
        desc:
            "non-Relaxed atomic ordering — the workspace's atomics are counters/flags, Relaxed-only",
        suppressible: true,
    },
    RuleInfo {
        name: "ps-narrowing",
        desc: "`as_ps() as <narrow>` — u64 picoseconds overflow i64/f64; widen to i128/u128",
        suppressible: true,
    },
    RuleInfo {
        name: "unsafe-audit",
        desc: "`unsafe` without a `// SAFETY:` comment directly above it",
        suppressible: true,
    },
    RuleInfo {
        name: "raw-sync",
        desc:
            "std::sync/std::thread outside the ups_race shim in the pool/obs crates — the model-checked surface must not grow stale",
        suppressible: true,
    },
    RuleInfo {
        name: "panic-path",
        desc:
            "unwrap/expect/panic!/computed index in hot-path crates — handle it, or annotate why it cannot fire",
        suppressible: true,
    },
    RuleInfo {
        name: "bad-suppression",
        desc: "malformed lint:allow — unknown rule, missing `: reason`, or unknown lint: directive",
        suppressible: false,
    },
    RuleInfo {
        name: "unused-suppression",
        desc: "lint:allow that suppressed nothing — stale annotations must not accumulate",
        suppressible: false,
    },
    RuleInfo {
        name: "schema-drift",
        desc: "serialized field surface changed without a schema-tag version bump (--schemas)",
        suppressible: false,
    },
];

/// Look a rule up by name.
pub fn rule_by_name(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// How a file participates in the rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code of a determinism-scoped crate: all rules, with
    /// `#[cfg(test)]` regions exempt from the determinism rules.
    Determinism,
    /// Library code outside determinism scope (vendored stand-ins, the
    /// bench harness): general rules only (unsafe-audit, atomic-ordering).
    General,
    /// Tests/benches/examples: general rules only.
    TestOnly,
}

/// One finding. Ordered by `(path, line, rule)` for deterministic output.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Rule name.
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl Finding {
    /// Render as `path:line: [rule] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Integer types (plus floats) that cannot represent every u64
/// picosecond count.
const NARROW_TYPES: &[&str] = &[
    "u8", "u16", "u32", "usize", "i8", "i16", "i32", "i64", "isize", "f32", "f64",
];

/// A parsed `lint:allow` annotation.
struct Allow {
    rules: Vec<String>,
    /// Lines it covers: the comment's own lines plus the next code line.
    lines: Vec<usize>,
    comment_line: usize,
    used: bool,
}

/// Run every applicable rule over one file.
pub fn check_file(path: &str, src: &str, class: FileClass) -> Vec<Finding> {
    let scanned = scan(src);
    let starts = line_starts(&scanned.code);
    let tests = test_regions(&scanned.code);
    let in_test = |line: usize| tests.iter().any(|&(a, b)| line >= a && line <= b);
    let code_lines: Vec<&str> = scanned.code.lines().collect();
    let line_text = |line: usize| code_lines.get(line - 1).copied().unwrap_or("");
    let is_use_line = |line: usize| {
        let t = line_text(line).trim_start();
        t.starts_with("use ") || t.starts_with("pub use ")
    };

    let mut findings = Vec::new();
    let mut f = |line: usize, rule: &'static str, message: String| {
        findings.push(Finding {
            path: path.to_string(),
            line,
            rule,
            message,
        });
    };

    // --- General rules: every class. ---
    for word in ["SeqCst", "Acquire", "Release", "AcqRel"] {
        for at in find_word(&scanned.code, word) {
            let line = line_of(&starts, at);
            f(
                line,
                "atomic-ordering",
                format!(
                    "Ordering::{word}: this workspace's atomics are Relaxed-only counters/flags"
                ),
            );
        }
    }
    for at in find_word(&scanned.code, "unsafe") {
        let line = line_of(&starts, at);
        let has_safety = scanned
            .comments
            .iter()
            .any(|c| c.text.contains("SAFETY:") && c.end_line <= line && c.end_line + 3 >= line);
        if !has_safety {
            f(
                line,
                "unsafe-audit",
                "`unsafe` without a `// SAFETY:` comment directly above it".to_string(),
            );
        }
    }

    // --- Determinism rules: library code of determinism-scoped crates,
    // outside #[cfg(test)] regions, `use` lines exempt (the import is
    // not the hazard; the annotated/converted use site is). ---
    if class == FileClass::Determinism {
        for word in ["Instant", "SystemTime"] {
            for at in find_word(&scanned.code, word) {
                let line = line_of(&starts, at);
                if in_test(line) || is_use_line(line) {
                    continue;
                }
                f(
                    line,
                    "wall-clock",
                    format!("{word} in determinism scope: wall time must not influence simulation state"),
                );
            }
        }
        for word in ["HashMap", "HashSet"] {
            for at in find_word(&scanned.code, word) {
                let line = line_of(&starts, at);
                if in_test(line) || is_use_line(line) {
                    continue;
                }
                f(
                    line,
                    "hash-container",
                    format!("{word} in determinism scope: use BTreeMap/BTreeSet or annotate why iteration order never escapes"),
                );
            }
        }
        for at in find_word(&scanned.code, "as_ps") {
            let line = line_of(&starts, at);
            if in_test(line) {
                continue;
            }
            if let Some(ty) = narrowing_cast_after(&scanned.code, at + "as_ps".len()) {
                f(
                    line,
                    "ps-narrowing",
                    format!("as_ps() as {ty}: u64 picoseconds do not fit {ty}; widen to i128/u128 or annotate the bound"),
                );
            }
        }
    }

    // --- raw-sync: library code of shim-routed crates. The import is
    // the hazard here (unlike wall-clock), so `use` lines are NOT
    // exempt; `#[cfg(test)]` regions are (tests may sleep/spawn freely
    // — the model checker covers library behavior, not test harness).
    let in_shim_scope = crate::SYNC_SHIM_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")));
    if in_shim_scope {
        for needle in ["std::sync", "std::thread"] {
            for (at, _) in scanned.code.match_indices(needle) {
                if scanned.code[..at]
                    .chars()
                    .next_back()
                    .is_some_and(crate::scan::is_ident_char)
                {
                    continue;
                }
                let line = line_of(&starts, at);
                if in_test(line) {
                    continue;
                }
                let after = &scanned.code[at + needle.len()..];
                if needle == "std::sync" {
                    let seg: String = after
                        .strip_prefix("::")
                        .map(|r| {
                            r.chars()
                                .take_while(|&ch| crate::scan::is_ident_char(ch))
                                .collect()
                        })
                        .unwrap_or_default();
                    if seg == "Arc" || seg == "Weak" {
                        continue; // ownership, not synchronization
                    }
                }
                f(
                    line,
                    "raw-sync",
                    format!(
                        "{needle} outside the ups_race shim: route through ups_race::{} so the model checker covers it",
                        if needle == "std::sync" { "sync" } else { "thread" }
                    ),
                );
            }
        }
    }

    // --- panic-path: hot-path crates where a stray panic kills a
    // whole sweep job. `#[cfg(test)]` regions exempt. ---
    let in_panic_scope = crate::PANIC_PATH_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")));
    if in_panic_scope {
        for needle in [".unwrap()", ".expect(", "panic!("] {
            for (at, _) in scanned.code.match_indices(needle) {
                // `panic!` must be its own token — `sweep_panic!(...)`
                // or a method named `..._expect(` is not this macro.
                if needle == "panic!("
                    && scanned.code[..at]
                        .chars()
                        .next_back()
                        .is_some_and(crate::scan::is_ident_char)
                {
                    continue;
                }
                let line = line_of(&starts, at);
                if in_test(line) {
                    continue;
                }
                let what = needle.trim_start_matches('.').trim_end_matches('(');
                f(
                    line,
                    "panic-path",
                    format!(
                        "{what} in a hot-path crate: handle the failure, or annotate why it cannot fire"
                    ),
                );
            }
        }
        for at in computed_index_sites(&scanned.code) {
            let line = line_of(&starts, at);
            if in_test(line) {
                continue;
            }
            f(
                line,
                "panic-path",
                "computed index in a hot-path crate: out-of-bounds panics here kill the sweep job — use get()/iterators, or annotate the bound".to_string(),
            );
        }
    }

    // --- Suppressions. ---
    let (mut allows, mut bad) = parse_allows(path, &scanned, &code_lines);
    findings.retain(|fi| {
        let rule = rule_by_name(fi.rule).expect("engine emits known rules");
        if !rule.suppressible {
            return true;
        }
        // When several allows cover the line (a trailing allow on the
        // previous line also reaches this one), credit the nearest —
        // otherwise its own annotation reads as unused.
        let best = allows
            .iter_mut()
            .filter(|a| a.rules.iter().any(|r| r == fi.rule) && a.lines.contains(&fi.line))
            .max_by_key(|a| a.comment_line);
        match best {
            Some(a) => {
                a.used = true;
                false
            }
            None => true,
        }
    });
    for a in &allows {
        if !a.used {
            bad.push(Finding {
                path: path.to_string(),
                line: a.comment_line,
                rule: "unused-suppression",
                message: format!(
                    "lint:allow({}) suppressed nothing — remove the stale annotation",
                    a.rules.join(", ")
                ),
            });
        }
    }
    findings.append(&mut bad);
    findings.sort();
    findings
}

/// After the `as_ps` token at `end`: does `() as <narrow-type>` follow?
fn narrowing_cast_after(code: &str, end: usize) -> Option<&'static str> {
    let bytes = code.as_bytes();
    let mut i = end;
    let mut eat = |expect: u8| -> bool {
        while i < bytes.len() && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == expect {
            i += 1;
            true
        } else {
            false
        }
    };
    if !eat(b'(') || !eat(b')') {
        return None;
    }
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    if !code[i..].starts_with("as") {
        return None;
    }
    i += 2;
    if i >= bytes.len() || !(bytes[i] as char).is_whitespace() {
        return None; // `aside`, etc.
    }
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    let rest = &code[i..];
    NARROW_TYPES
        .iter()
        .find(|t| {
            rest.starts_with(**t)
                && !rest[t.len()..]
                    .chars()
                    .next()
                    .is_some_and(crate::scan::is_ident_char)
        })
        .copied()
}

/// Byte offsets of `[` brackets that index with a *computed* expression.
///
/// An index site is a `[` whose directly-preceding byte (no whitespace
/// allowed — `let [a, b] = …` patterns and slice literals sit after
/// whitespace or punctuation) is an identifier character, `)` or `]`,
/// and whose bracketed content contains arithmetic (`+ - * / %`) or a
/// call (`(`). Plain `x[i]` lookups are left alone: the hazard the rule
/// targets is an index *derived* at the use site, where an off-by-one
/// panics mid-sweep.
fn computed_index_sites(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1] as char;
        if !(crate::scan::is_ident_char(prev) || prev == ')' || prev == ']') {
            continue;
        }
        // Attribute `#[...]` never reaches here (preceded by `#`), and a
        // type like `Vec<[u8; 4]>` is preceded by `<`.
        let mut depth = 0usize;
        let mut close = None;
        for (j, &bj) in bytes.iter().enumerate().skip(i) {
            match bj {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(close) = close else { continue };
        let content = &code[i + 1..close];
        if content.contains(['+', '-', '*', '/', '%', '(']) {
            out.push(i);
        }
    }
    out
}

/// Parse every `lint:` directive in the file's comments into allows and
/// `bad-suppression` findings. `lint:schema(...)` is legal here and
/// handled by the schema extractor.
fn parse_allows(
    path: &str,
    scanned: &ScannedFile,
    code_lines: &[&str],
) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    let next_code_line = |after: usize| -> Option<usize> {
        ((after + 1)..=code_lines.len()).find(|&l| !code_lines[l - 1].trim().is_empty())
    };
    for c in &scanned.comments {
        for (off, directive) in lint_directives(&c.text) {
            let at_line = c.start_line + c.text[..off].matches('\n').count();
            let mut err = |msg: String| {
                bad.push(Finding {
                    path: path.to_string(),
                    line: at_line,
                    rule: "bad-suppression",
                    message: msg,
                });
            };
            match directive {
                Directive::Schema { .. } => {} // extracted by crate::schemas
                Directive::Unknown(word) => {
                    err(format!(
                        "unknown lint directive `lint:{word}` — expected lint:allow(...) or lint:schema(...)"
                    ));
                }
                Directive::Allow { args, reason } => {
                    let mut rules = Vec::new();
                    let mut ok = true;
                    for name in args.split(',').map(str::trim) {
                        match rule_by_name(name) {
                            Some(r) if r.suppressible => rules.push(name.to_string()),
                            Some(_) => {
                                err(format!("rule `{name}` cannot be suppressed"));
                                ok = false;
                            }
                            None => {
                                err(format!(
                                    "unknown rule `{name}` in lint:allow (see ups-lint --list)"
                                ));
                                ok = false;
                            }
                        }
                    }
                    if reason.trim().is_empty() {
                        err(
                            "lint:allow without a reason — write `lint:allow(rule): why it is safe`"
                                .to_string(),
                        );
                        ok = false;
                    }
                    if ok && !rules.is_empty() {
                        let mut lines: Vec<usize> = (c.start_line..=c.end_line).collect();
                        if let Some(next) = next_code_line(c.end_line) {
                            lines.push(next);
                        }
                        allows.push(Allow {
                            rules,
                            lines,
                            comment_line: at_line,
                            used: false,
                        });
                    }
                }
            }
        }
    }
    (allows, bad)
}

pub(crate) enum Directive {
    Allow { args: String, reason: String },
    Schema { tag: String },
    Unknown(String),
}

/// The `lint:` directive a comment carries, if any, with its byte
/// offset. A directive must be **start-anchored**: only comment
/// delimiters (`/`, `*`, `!`) and whitespace may precede `lint:`, so
/// prose *describing* the grammar (like this crate's own docs) never
/// parses as an annotation.
pub(crate) fn lint_directives(text: &str) -> Vec<(usize, Directive)> {
    let Some(at) = text.find("lint:") else {
        return Vec::new();
    };
    if !text[..at]
        .chars()
        .all(|c| c == '/' || c == '*' || c == '!' || c.is_whitespace())
    {
        return Vec::new();
    }
    let rest = &text[at + "lint:".len()..];
    let word: String = rest.chars().take_while(|c| c.is_alphabetic()).collect();
    let after_word = &rest[word.len()..];
    let directive = match word.as_str() {
        "schema" if after_word.starts_with('(') => match after_word.find(')') {
            Some(close) => Directive::Schema {
                tag: after_word[1..close].trim().to_string(),
            },
            None => Directive::Unknown("schema".into()),
        },
        "allow" if after_word.starts_with('(') => match after_word.find(')') {
            Some(close) => {
                let args = after_word[1..close].to_string();
                let reason = after_word[close + 1..]
                    .strip_prefix(':')
                    .map(|r| r.lines().next().unwrap_or("").to_string())
                    .unwrap_or_default();
                Directive::Allow { args, reason }
            }
            None => Directive::Unknown("allow".into()),
        },
        "allow" | "schema" => Directive::Unknown(word),
        // `lint:verb(...)` with an unknown verb is a typo'd directive,
        // not prose — surfacing it beats silently ignoring it.
        _ if !word.is_empty() && after_word.starts_with('(') => Directive::Unknown(word),
        _ => return Vec::new(), // prose ("lint: pass") — not a directive
    };
    vec![(at, directive)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(src: &str) -> Vec<Finding> {
        check_file("x.rs", src, FileClass::Determinism)
    }

    #[test]
    fn wall_clock_flags_instant_and_systemtime() {
        let f = det("fn f() { let t = Instant::now(); let s = SystemTime::now(); }\n");
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.rule == "wall-clock"));
    }

    #[test]
    fn use_lines_and_tests_are_exempt() {
        let src =
            "use std::time::Instant;\n#[cfg(test)]\nmod tests {\n fn t() { Instant::now(); }\n}\n";
        assert!(det(src).is_empty());
    }

    #[test]
    fn hash_container_flags_types_not_prose_or_strings() {
        let src = "// a HashMap in prose\nfn f() { let s = \"HashMap\"; let m: HashMap<u8, u8> = HashMap::new(); }\n";
        let f = det(src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "hash-container" && x.line == 2));
    }

    #[test]
    fn atomic_ordering_applies_to_all_classes() {
        let src = "fn f() { X.store(1, Ordering::SeqCst); }\n";
        assert_eq!(check_file("x.rs", src, FileClass::TestOnly).len(), 1);
        assert_eq!(check_file("x.rs", src, FileClass::General).len(), 1);
    }

    #[test]
    fn ps_narrowing_catches_narrow_not_wide() {
        let f = det("fn f(t: SimTime) { let a = t.as_ps() as f64; let b = t.as_ps() as i128; }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "ps-narrowing");
        assert!(f[0].message.contains("f64"));
    }

    #[test]
    fn ps_narrowing_spans_line_breaks() {
        let f = det("fn f(t: SimTime) { let a = t.as_ps()\n    as u32; }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bare = "fn f() { unsafe { g(); } }\n";
        let f = check_file("x.rs", bare, FileClass::General);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unsafe-audit");
        let ok = "// SAFETY: g has no preconditions\nfn f() { unsafe { g(); } }\n";
        assert!(check_file("x.rs", ok, FileClass::General).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_and_counts_as_used() {
        let src = "// lint:allow(wall-clock): timing excluded from the record surface\nfn f() { let t = Instant::now(); }\n";
        assert!(det(src).is_empty());
    }

    #[test]
    fn trailing_allow_suppresses_its_own_line() {
        let src =
            "fn f() { let t = Instant::now(); } // lint:allow(wall-clock): progress display only\n";
        assert!(det(src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_finding_and_does_not_suppress() {
        let src = "// lint:allow(wall-clock)\nfn f() { let t = Instant::now(); }\n";
        let f = det(src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.rule == "bad-suppression"));
        assert!(f.iter().any(|x| x.rule == "wall-clock"));
    }

    #[test]
    fn allow_for_unknown_rule_is_a_finding() {
        let src = "// lint:allow(wallclock): typo\nfn f() {}\n";
        let f = det(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "bad-suppression");
        assert!(f[0].message.contains("wallclock"));
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "// lint:allow(wall-clock): nothing here uses a clock\nfn f() {}\n";
        let f = det(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unused-suppression");
    }

    #[test]
    fn multi_rule_allow_suppresses_both() {
        let src = "// lint:allow(wall-clock, hash-container): both intentional here\nfn f() { let t = (Instant::now(), HashMap::<u8, u8>::new()); }\n";
        assert!(det(src).is_empty());
    }

    #[test]
    fn prose_mentioning_lint_colon_is_not_a_directive() {
        let src = "// ups-lint: a lint: pass over the workspace\nfn f() {}\n";
        assert!(det(src).is_empty());
    }

    #[test]
    fn mid_comment_allow_is_prose_not_annotation() {
        // Docs *describing* the grammar must not register (or count as
        // unused) — only start-anchored directives are annotations.
        let src = "// write `lint:allow(wall-clock): why` above the line\nfn f() {}\n";
        assert!(det(src).is_empty());
    }

    fn shim(src: &str) -> Vec<Finding> {
        check_file("crates/sweep/src/pool.rs", src, FileClass::Determinism)
    }

    fn hot(src: &str) -> Vec<Finding> {
        check_file("crates/netsim/src/sim.rs", src, FileClass::Determinism)
    }

    #[test]
    fn raw_sync_flags_std_sync_and_thread_in_shim_crates() {
        let src = "use std::sync::Mutex;\nfn f() { std::thread::spawn(|| {}); }\n";
        let f = shim(src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "raw-sync"));
    }

    #[test]
    fn raw_sync_is_path_scoped() {
        let src = "use std::sync::Mutex;\n";
        assert!(det(src).is_empty(), "x.rs is not a shim crate");
        assert!(
            check_file("crates/netsim/src/sim.rs", src, FileClass::Determinism).is_empty(),
            "netsim is not a shim crate"
        );
        assert!(
            check_file("crates/sweep/tests/pool.rs", src, FileClass::TestOnly).is_empty(),
            "tests/ is outside src/"
        );
    }

    #[test]
    fn raw_sync_exempts_arc_weak_and_test_regions() {
        let src = "use std::sync::Arc;\nuse std::sync::Weak;\n#[cfg(test)]\nmod tests {\n use std::sync::Mutex;\n fn t() { std::thread::sleep(d); }\n}\n";
        assert!(shim(src).is_empty(), "{:?}", shim(src));
    }

    #[test]
    fn raw_sync_flags_arc_atomics_and_suppression_works() {
        let f = shim("use std::sync::atomic::AtomicU64;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "raw-sync");
        let ok = "// lint:allow(raw-sync): registry handle only, never under model check\nuse std::sync::mpsc;\n";
        assert!(shim(ok).is_empty());
    }

    #[test]
    fn panic_path_flags_unwrap_expect_panic() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"boom\"); }\n";
        let f = hot(src);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "panic-path"));
    }

    #[test]
    fn panic_path_skips_lookalikes_and_tests() {
        let src = "fn f() { x.unwrap_or(0); y.expect_err(\"m\"); sweep_panic!(1); }\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); panic!(\"ok in tests\"); }\n}\n";
        assert!(hot(src).is_empty(), "{:?}", hot(src));
    }

    #[test]
    fn panic_path_flags_computed_index_not_plain_lookup() {
        let src = "fn f() { let a = xs[i]; let b = xs[i + 1]; let c = xs[idx(k)]; }\n";
        let f = hot(src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.message.contains("computed index")));
    }

    #[test]
    fn panic_path_ignores_patterns_literals_and_attributes() {
        let src =
            "#[derive(Clone)]\nfn f(v: [u64; 4]) { let [a, b] = split(v); let w = [x + 1, 2]; }\n";
        assert!(hot(src).is_empty(), "{:?}", hot(src));
    }

    #[test]
    fn panic_path_suppression_covers_the_next_code_line() {
        let src = "// lint:allow(panic-path): ring index is masked to capacity above\nfn f() { let x = ring[head % cap]; }\n";
        assert!(hot(src).is_empty());
    }

    #[test]
    fn findings_are_sorted_and_deterministic() {
        let src =
            "fn f() { let a = HashMap::<u8,u8>::new(); }\nfn g() { let t = Instant::now(); }\n";
        let a = det(src);
        let b = det(src);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }
}
