// Fixture: the wall-clock rule. Expected findings are pinned in
// tests/fixtures.rs — keep line numbers stable when editing.
use std::time::Instant; // exempt: use line

fn bad_now() {
    let t = Instant::now(); // finding: line 6
    let s = std::time::SystemTime::now(); // finding: line 7
    let _ = (t, s);
}

fn allowed_now() {
    // lint:allow(wall-clock): fixture exception with a written reason
    let _ = Instant::now();
}

fn prose_and_strings_do_not_fire() {
    // Instant::now() in a comment is fine.
    let _ = "Instant::now() in a string is fine";
}

#[cfg(test)]
mod tests {
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
