// Fixture: the panic-path rule. It is path-scoped, so tests/fixtures.rs
// checks this file under the synthetic path crates/netsim/src/panic_path.rs
// (and once under its bare name, expecting silence). Keep line numbers
// stable when editing.

fn bad_unwrap(x: Option<u8>) -> u8 {
    x.unwrap() // finding: line 7
}

fn bad_expect(x: Option<u8>) -> u8 {
    x.expect("present") // finding: line 11
}

fn bad_panic(k: u8) {
    panic!("bad kind {k}") // finding: line 15
}

fn bad_computed_index(xs: &[u8], i: usize) -> u8 {
    xs[i + 1] // finding: line 19 (computed index)
}

fn plain_lookup_is_fine(xs: &[u8], i: usize) -> u8 {
    xs[i]
}

fn lookalikes_do_not_fire(x: Option<u8>, r: Result<u8, u8>) {
    let _ = x.unwrap_or(0);
    let _ = r.expect_err("err");
    let v = [1u8, 2]; // array literal after `=`: not an index
    let [a, b] = v; // slice pattern: not an index
    let _ = (a, b);
}

fn allowed(xs: &[u8], head: usize) -> u8 {
    xs[head % xs.len()] // lint:allow(panic-path): fixture exception — masked to length
}

#[cfg(test)]
mod tests {
    fn tests_may_panic_freely() {
        Some(1u8).unwrap();
        panic!("fine in tests");
    }
}
