// Fixture: the raw-sync rule. It is path-scoped, so tests/fixtures.rs
// checks this file under the synthetic path crates/sweep/src/raw_sync.rs
// (and once under its bare name, expecting silence). Keep line numbers
// stable when editing.
use std::sync::Mutex; // finding: line 5 (the import IS the hazard)
use std::sync::Arc; // exempt: ownership, not synchronization
use std::sync::Weak; // exempt: ownership, not synchronization

fn bad_spawn() {
    let _ = std::thread::spawn(|| {}); // finding: line 10
}

fn bad_atomic() {
    use std::sync::atomic::AtomicU64; // finding: line 14
    let _ = AtomicU64::new(0);
}

fn allowed() {
    // lint:allow(raw-sync): fixture exception with a written reason
    let (_tx, _rx) = std::sync::mpsc::channel::<u8>();
}

fn prose_and_strings_do_not_fire() {
    // std::thread::spawn in a comment is fine.
    let _ = "std::sync::Mutex in a string is fine";
}

#[cfg(test)]
mod tests {
    fn test_code_may_use_std_directly() {
        std::thread::sleep(std::time::Duration::ZERO);
        let _ = std::sync::Mutex::new(0);
    }
}
