// Fixture: an allow on the file's final line (EOF edge: no next code
// line exists for it to cover). It suppresses nothing and must be
// reported as unused, not silently dropped.
fn nothing_to_suppress() {
    let _ = 1;
}
// lint:allow(wall-clock): stale — nothing follows this comment
