// Fixture: the unsafe-audit rule (applies to every file class).
// Expected findings are pinned in tests/fixtures.rs.

fn bare_unsafe() {
    unsafe { std::hint::unreachable_unchecked() } // finding: line 5
}

fn audited_unsafe() {
    // SAFETY: the fixture never calls this; the comment satisfies the rule.
    unsafe { std::hint::unreachable_unchecked() }
}

fn allowed_unsafe() {
    // lint:allow(unsafe-audit): fixture exception with a written reason
    unsafe { std::hint::unreachable_unchecked() }
}
