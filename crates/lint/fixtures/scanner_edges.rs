// Fixture: scanner edge cases. None of the trigger words below live in
// code position, so the expected finding list for this file is EMPTY —
// any finding here is a scanner bug. Pinned in tests/fixtures.rs.

fn raw_strings() {
    let _ = r"Instant::now() in a raw string";
    let _ = r#"HashMap with "quotes" inside"#;
    let _ = r##"SystemTime and a "# inside"##;
    let _ = br#"unsafe bytes"#;
}

fn nested_block_comments() {
    /* Instant::now()
       /* nested: HashMap::new() */
       still inside the outer comment: Ordering::SeqCst */
    let after = 1;
    let _ = after;
}

fn chars_and_lifetimes<'a>(x: &'a str) -> &'a str {
    let quote = '\'';
    let newline = '\n';
    let letter = 'I'; // not the start of an Instant token
    let _ = (quote, newline, letter);
    x
}

fn raw_identifier() {
    let r#type = "HashMap in a normal string";
    let _ = r#type;
}

fn string_with_apostrophe() {
    let _ = "it's not a char literal; SystemTime stays quoted";
}
