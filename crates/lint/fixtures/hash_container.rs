// Fixture: the hash-container rule. Expected findings are pinned in
// tests/fixtures.rs — keep line numbers stable when editing.
use std::collections::{HashMap, HashSet}; // exempt: use line

struct Bad {
    map: HashMap<u64, u64>,   // finding: line 6
    set: HashSet<u64>,        // finding: line 7
}

struct Allowed {
    // lint:allow(hash-container): lookup-only in this fixture
    map: HashMap<u64, u64>,
}

fn fine() {
    // A HashMap mentioned in prose does not fire.
    let _ = "HashMap in a string does not fire";
    let _ = std::collections::BTreeMap::<u64, u64>::new();
}

#[cfg(test)]
mod tests {
    fn hashing_in_tests_is_fine() {
        let _ = std::collections::HashMap::<u64, u64>::new();
    }
}
