// Fixture: the atomic-ordering rule (applies to every file class).
// Expected findings are pinned in tests/fixtures.rs.
use std::sync::atomic::{AtomicU64, Ordering};

static X: AtomicU64 = AtomicU64::new(0);

fn bad_orderings() {
    X.store(1, Ordering::SeqCst); // finding: line 8
    let _ = X.load(Ordering::Acquire); // finding: line 9
    X.fetch_add(1, Ordering::Release); // finding: line 10
    let _ = X.swap(2, Ordering::AcqRel); // finding: line 11
}

fn relaxed_is_fine() {
    X.store(1, Ordering::Relaxed);
    let _ = X.load(Ordering::Relaxed);
}

fn allowed_ordering() {
    // lint:allow(atomic-ordering): fixture protocol with a written reason
    X.store(3, Ordering::SeqCst);
}
