// Fixture: the ps-narrowing rule. Expected findings are pinned in
// tests/fixtures.rs — keep line numbers stable when editing.

fn bad_casts(t: SimTime) {
    let _ = t.as_ps() as f64; // finding: line 5
    let _ = t.as_ps() as u32; // finding: line 6
    let _ = t.as_ps() // finding: line 7 (cast spans lines)
        as i64;
}

fn widening_is_fine(t: SimTime) {
    let _ = t.as_ps() as u128;
    let _ = t.as_ps() as i128;
    let _ = t.as_ps(); // no cast at all
}

fn allowed_cast(t: SimTime) {
    // lint:allow(ps-narrowing): fixture bound with a written reason
    let _ = t.as_ps() as f64;
}
