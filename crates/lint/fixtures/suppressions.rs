// Fixture: the suppression grammar policing itself. Expected findings
// are pinned in tests/fixtures.rs — keep line numbers stable.

fn missing_reason() {
    // lint:allow(wall-clock) -- finding: bad-suppression (no `: reason`), line 5
    let _ = Instant::now(); // finding: wall-clock line 6 (not suppressed)
}

fn unknown_rule() {
    // lint:allow(wallclock): typo'd rule name -- finding: bad-suppression line 10
    let _ = 1;
}

fn unknown_directive() {
    // lint:expect(wall-clock): wrong verb -- finding: bad-suppression line 15
    let _ = 1;
}

fn stale_allow() {
    // lint:allow(hash-container): nothing here hashes -- finding: unused-suppression line 20
    let _ = 1;
}

fn unsuppressible_rule() {
    // lint:allow(bad-suppression): cannot be allowed -- finding: bad-suppression line 25
    let _ = 1;
}

fn good_multi_allow() {
    // lint:allow(wall-clock, hash-container): both intentional in this fixture
    let _ = (Instant::now(), HashMap::<u8, u8>::new());
}

// --- Appended edge cases (append-only: pins above must stay stable) ---

fn blank_line_between_allow_and_code() {
    // lint:allow(wall-clock): a blank line below still reaches the next code line

    let _ = Instant::now();
}

fn consecutive_allows_each_cover_the_same_line() {
    // lint:allow(wall-clock): first of two stacked allows
    // lint:allow(hash-container): second of two stacked allows
    let _ = (Instant::now(), HashMap::<u8, u8>::new());
}
