// Fixture: the suppression grammar policing itself. Expected findings
// are pinned in tests/fixtures.rs — keep line numbers stable.

fn missing_reason() {
    // lint:allow(wall-clock) -- finding: bad-suppression (no `: reason`), line 5
    let _ = Instant::now(); // finding: wall-clock line 6 (not suppressed)
}

fn unknown_rule() {
    // lint:allow(wallclock): typo'd rule name -- finding: bad-suppression line 10
    let _ = 1;
}

fn unknown_directive() {
    // lint:expect(wall-clock): wrong verb -- finding: bad-suppression line 15
    let _ = 1;
}

fn stale_allow() {
    // lint:allow(hash-container): nothing here hashes -- finding: unused-suppression line 20
    let _ = 1;
}

fn unsuppressible_rule() {
    // lint:allow(bad-suppression): cannot be allowed -- finding: bad-suppression line 25
    let _ = 1;
}

fn good_multi_allow() {
    // lint:allow(wall-clock, hash-container): both intentional in this fixture
    let _ = (Instant::now(), HashMap::<u8, u8>::new());
}
