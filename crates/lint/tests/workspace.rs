//! Workspace-level gates: the real repo is lint-clean, the output is
//! byte-identical across runs, the committed `SCHEMAS.lock` matches the
//! annotated emitters, and a seeded violation in a synthetic workspace
//! actually turns the gate red (so CI's failure path is itself tested).

use std::fs;
use std::path::{Path, PathBuf};

use ups_lint::{render, Workspace};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn the_workspace_is_lint_clean() {
    let ws = Workspace::load(&repo_root()).expect("load workspace");
    assert!(
        ws.files.len() > 100,
        "walker saw only {} files — directory layout changed?",
        ws.files.len()
    );
    let findings = ws.check();
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        render(&findings)
    );
}

#[test]
fn schemas_lock_matches_the_annotated_emitters() {
    let ws = Workspace::load(&repo_root()).expect("load workspace");
    let findings = ws.check_schemas();
    assert!(
        findings.is_empty(),
        "SCHEMAS.lock disagrees with the emitters:\n{}\n\
         (cargo run -p ups-lint -- --update regenerates it)",
        render(&findings)
    );
}

#[test]
fn lint_output_is_byte_identical_across_runs() {
    let root = repo_root();
    let runs: Vec<String> = (0..2)
        .map(|_| {
            let ws = Workspace::load(&root).expect("load workspace");
            let mut findings = ws.check();
            findings.extend(ws.check_schemas());
            findings.sort();
            format!("{}files={}", render(&findings), ws.files.len())
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
}

/// Build a minimal synthetic workspace under the target tmpdir.
fn synthetic_workspace(name: &str, core_src: &str) -> PathBuf {
    let dir = repo_root()
        .join("target")
        .join("lint-test-workspaces")
        .join(format!("{name}-{}", std::process::id()));
    let src_dir = dir.join("crates/core/src");
    fs::create_dir_all(&src_dir).expect("mkdir");
    fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("manifest");
    fs::write(src_dir.join("lib.rs"), core_src).expect("seed source");
    dir
}

#[test]
fn a_seeded_violation_turns_the_gate_red() {
    let dir = synthetic_workspace(
        "seeded",
        "pub fn t() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let ws = Workspace::load(&dir).expect("load synthetic workspace");
    let findings = ws.check();
    assert_eq!(findings.len(), 2, "{}", render(&findings));
    assert!(findings.iter().all(|f| f.rule == "wall-clock"));
    assert_eq!(findings[0].path, "crates/core/src/lib.rs");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn schema_drift_in_a_synthetic_workspace_is_caught() {
    let dir = synthetic_workspace(
        "drift",
        r##"// lint:schema(demo/v1)
pub fn to_json() -> String {
    r#"{"schema":"demo/v1","alpha":1}"#.to_string()
}
"##,
    );
    // Lock the current surface, then grow the emitter without a bump.
    let ws = Workspace::load(&dir).expect("load synthetic workspace");
    let (surfaces, findings) = ws.extract_schemas();
    assert!(findings.is_empty(), "{}", render(&findings));
    fs::write(ws.lock_path(), ups_lint::render_lock(&surfaces)).expect("write lock");
    assert!(ws.check_schemas().is_empty(), "fresh lock must be clean");

    fs::write(
        dir.join("crates/core/src/lib.rs"),
        r##"// lint:schema(demo/v1)
pub fn to_json() -> String {
    r#"{"schema":"demo/v1","alpha":1,"beta":2}"#.to_string()
}
"##,
    )
    .expect("grow emitter");
    let ws = Workspace::load(&dir).expect("reload");
    let findings = ws.check_schemas();
    assert_eq!(findings.len(), 1, "{}", render(&findings));
    assert!(findings[0].message.contains("without a version-tag bump"));
    assert!(findings[0].message.contains("added: [beta]"));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn unclassified_crate_is_a_load_error() {
    let dir = synthetic_workspace("unclassified", "pub fn f() {}\n");
    let stray = dir.join("crates/mystery/src");
    fs::create_dir_all(&stray).expect("mkdir");
    fs::write(stray.join("lib.rs"), "pub fn g() {}\n").expect("seed");
    let err = match Workspace::load(&dir) {
        Err(e) => e,
        Ok(_) => panic!("unclassified crate must refuse to load"),
    };
    assert!(err.to_string().contains("mystery"));
    fs::remove_dir_all(&dir).ok();
}
