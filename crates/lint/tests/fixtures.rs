//! Fixture corpus: each file under `fixtures/` carries deliberate
//! violations; this test pins the exact `(line, rule)` set the engine
//! must produce for each. A new rule (or a scanner change) that shifts
//! any fixture's findings must update the pins here — which is the
//! point: rule behaviour changes are reviewed, never accidental.

use std::path::Path;

use ups_lint::{check_file, FileClass, Finding};

fn fixture(name: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
    check_file(name, &src, FileClass::Determinism)
}

fn pins(findings: &[Finding]) -> Vec<(usize, &'static str)> {
    findings.iter().map(|f| (f.line, f.rule)).collect()
}

#[test]
fn wall_clock_fixture() {
    assert_eq!(
        pins(&fixture("wall_clock.rs")),
        vec![(6, "wall-clock"), (7, "wall-clock")]
    );
}

#[test]
fn hash_container_fixture() {
    assert_eq!(
        pins(&fixture("hash_container.rs")),
        vec![(6, "hash-container"), (7, "hash-container")]
    );
}

#[test]
fn atomic_ordering_fixture() {
    assert_eq!(
        pins(&fixture("atomic_ordering.rs")),
        vec![
            (8, "atomic-ordering"),
            (9, "atomic-ordering"),
            (10, "atomic-ordering"),
            (11, "atomic-ordering"),
        ]
    );
}

#[test]
fn atomic_ordering_fires_for_every_file_class() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/atomic_ordering.rs");
    let src = std::fs::read_to_string(path).expect("fixture");
    for class in [
        FileClass::Determinism,
        FileClass::General,
        FileClass::TestOnly,
    ] {
        assert_eq!(
            check_file("atomic_ordering.rs", &src, class).len(),
            4,
            "{class:?}"
        );
    }
}

#[test]
fn ps_narrowing_fixture() {
    assert_eq!(
        pins(&fixture("ps_narrowing.rs")),
        vec![
            (5, "ps-narrowing"),
            (6, "ps-narrowing"),
            (7, "ps-narrowing")
        ]
    );
}

#[test]
fn unsafe_audit_fixture() {
    assert_eq!(pins(&fixture("unsafe_audit.rs")), vec![(5, "unsafe-audit")]);
}

#[test]
fn suppressions_fixture() {
    assert_eq!(
        pins(&fixture("suppressions.rs")),
        vec![
            (5, "bad-suppression"),
            (6, "wall-clock"),
            (10, "bad-suppression"),
            (15, "bad-suppression"),
            (20, "unused-suppression"),
            (25, "bad-suppression"),
        ]
    );
}

#[test]
fn suppressions_eof_fixture() {
    assert_eq!(
        pins(&fixture("suppressions_eof.rs")),
        vec![(7, "unused-suppression")]
    );
}

/// Check a fixture under a synthetic in-repo path so the path-scoped
/// rules (raw-sync, panic-path) see it as crate library code.
fn fixture_at(name: &str, synthetic_path: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
    check_file(synthetic_path, &src, FileClass::Determinism)
}

#[test]
fn raw_sync_fixture() {
    assert_eq!(
        pins(&fixture_at("raw_sync.rs", "crates/sweep/src/raw_sync.rs")),
        vec![(5, "raw-sync"), (10, "raw-sync"), (14, "raw-sync")]
    );
}

#[test]
fn raw_sync_fixture_is_silent_outside_the_shim_crates() {
    // The rule itself stays quiet — which in turn makes the fixture's
    // one allow annotation stale, and that IS reported.
    assert_eq!(
        pins(&fixture("raw_sync.rs")),
        vec![(19, "unused-suppression")]
    );
}

#[test]
fn panic_path_fixture() {
    assert_eq!(
        pins(&fixture_at(
            "panic_path.rs",
            "crates/netsim/src/panic_path.rs"
        )),
        vec![
            (7, "panic-path"),
            (11, "panic-path"),
            (15, "panic-path"),
            (19, "panic-path"),
        ]
    );
}

#[test]
fn panic_path_fixture_is_silent_outside_the_hot_path_crates() {
    // The rule itself stays quiet — which in turn makes the fixture's
    // one allow annotation stale, and that IS reported.
    assert_eq!(
        pins(&fixture("panic_path.rs")),
        vec![(35, "unused-suppression")]
    );
}

#[test]
fn scanner_edges_fixture_is_clean() {
    assert_eq!(pins(&fixture("scanner_edges.rs")), vec![]);
}

#[test]
fn fixture_findings_are_deterministic() {
    for name in [
        "wall_clock.rs",
        "hash_container.rs",
        "atomic_ordering.rs",
        "ps_narrowing.rs",
        "unsafe_audit.rs",
        "suppressions.rs",
        "suppressions_eof.rs",
        "raw_sync.rs",
        "panic_path.rs",
        "scanner_edges.rs",
    ] {
        assert_eq!(fixture(name), fixture(name), "{name}");
    }
}
