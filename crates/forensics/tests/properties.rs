//! Property tests for the attribution invariants DESIGN.md §15 promises:
//!
//! 1. **Conservation**: for any workload, seed and replay flavor, the
//!    five cause counts and the five inversion counts each sum exactly
//!    to the `ReplayReport`'s mismatch count — every divergent packet is
//!    classified once on each axis, none invented, none lost.
//! 2. **Layout independence**: the collector is a pure function of the
//!    record *stream*, so a spill-backed streaming trace (64-record
//!    chunks, forced to disk) must produce a bit-identical
//!    `DivergenceSummary` and report to the resident layout.

use proptest::prelude::*;
use ups_core::{compare_with_sink, lstf_replay_stream, run_schedule, ReplayReport};
use ups_forensics::{BlameCollector, ReplayFlavor};
use ups_metrics::DivergenceSummary;
use ups_netsim::prelude::{
    Dur, FlowId, MapperKind, Packet, PacketBuilder, PacketId, RecordMode, SchedulerKind, SimTime,
};
use ups_topology::{
    build_simulator, topology_by_name, BuildOptions, Routing, SchedulerAssignment, Topology,
};

/// A dense many-pair workload: every host sends a short train to the
/// host three places ahead, staggered so trains overlap in the core.
fn workload(topo: &Topology, per_pair: u64, gap_us: u64) -> Vec<Packet> {
    let mut routing = Routing::new(topo);
    let hosts = topo.hosts();
    let mut packets = Vec::new();
    let mut id = 0u64;
    for (fi, &src) in hosts.iter().enumerate() {
        let dst = hosts[(fi + 3) % hosts.len()];
        let path = routing.path(src, dst);
        for k in 0..per_pair {
            packets.push(
                PacketBuilder::new(
                    PacketId(id),
                    FlowId(fi as u64),
                    1500,
                    path.clone(),
                    SimTime::from_us(k * gap_us + fi as u64),
                )
                .build(),
            );
            id += 1;
        }
    }
    packets
}

/// Original Random schedule + LSTF replay (exact or quantized) under
/// `record`, attributed by a fresh collector.
fn attributed_replay(
    topo: &Topology,
    packets: &[Packet],
    k: Option<u32>,
    seed: u64,
    record: RecordMode,
    caps: Option<(usize, usize)>,
) -> (ReplayReport, BlameCollector) {
    let opts = BuildOptions {
        record,
        seed,
        trace_spill_caps: caps,
        ..BuildOptions::default()
    };
    let assign = SchedulerAssignment::uniform(SchedulerKind::Random);
    let original = run_schedule(topo, &assign, packets.iter().cloned(), &opts);
    let (flavor, sched) = match k {
        Some(k) => (
            ReplayFlavor::Quantized { k },
            SchedulerKind::quantized_lstf(k, MapperKind::SpPifo),
        ),
        None => (
            ReplayFlavor::Exact,
            SchedulerKind::Lstf { preemptive: false },
        ),
    };
    let mut sim = build_simulator(topo, &SchedulerAssignment::uniform(sched), &opts);
    // Streamed replay injection: works identically for resident and
    // spill-backed originals (no random access into the trace).
    sim.run_with_injections(lstf_replay_stream(topo, &original));
    let replay = sim.into_trace();
    let threshold = topo.bottleneck_bandwidth().tx_time(1500);
    let mut forensics = BlameCollector::new(flavor);
    let report = compare_with_sink(&original, &replay, threshold, Dur::ZERO, &mut forensics);
    (report, forensics)
}

fn check_conserved(
    report: &ReplayReport,
    summary: &DivergenceSummary,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        summary.cause_total(),
        report.overdue as u64,
        "cause counts must sum to the report's mismatches"
    );
    prop_assert_eq!(
        summary.inversion_total(),
        report.overdue as u64,
        "inversion counts must sum to the report's mismatches"
    );
    prop_assert_eq!(summary.mismatches, report.overdue as u64);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Conservation holds for any seed, density and replay flavor, with
    /// per-hop records (the full hop-walk classifier) as well as
    /// end-to-end records (the exit-only degradation).
    #[test]
    fn attribution_is_conserved(
        seed in 0u64..1 << 32,
        per_pair in 8u64..24,
        gap_us in 5u64..20,
        k in prop_oneof![Just(None), (1u32..9).prop_map(Some)],
        record in proptest::sample::select(&[RecordMode::PerHop, RecordMode::EndToEnd]),
    ) {
        let topo = topology_by_name("FatTree(k=4)").unwrap();
        let packets = workload(&topo, per_pair, gap_us);
        let (report, forensics) = attributed_replay(&topo, &packets, k, seed, record, None);
        check_conserved(&report, &forensics.summary())?;
        // End-to-end records carry no hop timelines: every timing
        // inversion must degrade to exit-only, never be invented.
        if record == RecordMode::EndToEnd {
            let s = forensics.summary();
            prop_assert_eq!(s.rank_tie_break, 0);
            prop_assert_eq!(s.bucket_collision, 0);
        }
    }

    /// The collector reads the record stream, not the storage layout:
    /// a spill-backed streaming trace yields a bit-identical report and
    /// summary to the resident end-to-end layout.
    #[test]
    fn streaming_and_resident_attribution_are_bit_identical(
        seed in 0u64..1 << 32,
        per_pair in 8u64..24,
        k in prop_oneof![Just(None), Just(Some(1u32)), Just(Some(4u32))],
    ) {
        let topo = topology_by_name("FatTree(k=4)").unwrap();
        let packets = workload(&topo, per_pair, 9);
        let (resident_report, resident) =
            attributed_replay(&topo, &packets, k, seed, RecordMode::EndToEnd, None);
        // 64-record chunks, 2 resident: every case spills most of its
        // trace through the codec before the comparison reads it back.
        let (streaming_report, streaming) =
            attributed_replay(&topo, &packets, k, seed, RecordMode::Streaming, Some((64, 2)));
        prop_assert_eq!(&resident_report, &streaming_report);
        prop_assert_eq!(resident.summary(), streaming.summary());
        check_conserved(&resident_report, &resident.summary())?;
    }
}
