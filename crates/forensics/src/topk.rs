//! Deterministic bounded heavy-hitter counter (Misra–Gries).
//!
//! Tracks at most `cap` distinct keys; any key whose true frequency
//! exceeds `total / (cap + 1)` is guaranteed to survive. Counts are
//! lower bounds (decrement rounds shave at most `total / (cap + 1)` off
//! each). A `BTreeMap` keeps iteration — and therefore the decrement
//! rounds and the final ranking — fully deterministic.

use std::collections::BTreeMap;

/// Misra–Gries heavy-hitter summary over `u64` keys.
#[derive(Debug, Clone)]
pub struct TopK {
    cap: usize,
    counts: BTreeMap<u64, u64>,
}

impl TopK {
    /// A summary tracking at most `cap` distinct keys (`cap ≥ 1`).
    pub fn new(cap: usize) -> TopK {
        assert!(cap >= 1, "TopK needs a positive capacity");
        TopK {
            cap,
            counts: BTreeMap::new(),
        }
    }

    /// Observe one occurrence of `key`.
    pub fn insert(&mut self, key: u64) {
        if let Some(c) = self.counts.get_mut(&key) {
            *c += 1;
        } else if self.counts.len() < self.cap {
            self.counts.insert(key, 1);
        } else {
            // Decrement round: every tracked count drops by one; emptied
            // slots free capacity for later keys.
            self.counts.retain(|_, c| {
                *c -= 1;
                *c > 0
            });
        }
    }

    /// The heaviest `n` keys with their (lower-bound) counts, ordered by
    /// count descending, key ascending on ties.
    pub fn top(&self, n: usize) -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        all.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Distinct keys currently tracked.
    pub fn tracked(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_hitter_survives_noise() {
        let mut t = TopK::new(4);
        for i in 0..100u64 {
            t.insert(1_000); // the heavy key, every round
            t.insert(i); // one-off noise
        }
        let top = t.top(1);
        assert_eq!(top[0].0, 1_000);
        assert!(top[0].1 >= 100 / 5, "count is a lower bound, not zero");
        assert!(t.tracked() <= 4);
    }

    #[test]
    fn ranking_is_deterministic_on_ties() {
        let mut t = TopK::new(8);
        for k in [5u64, 3, 9, 3, 5, 9] {
            t.insert(k);
        }
        assert_eq!(t.top(3), vec![(3, 2), (5, 2), (9, 2)]);
    }
}
