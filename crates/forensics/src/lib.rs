//! # ups-forensics — replay-divergence attribution
//!
//! The paper's headline numbers (Table 1, and this workspace's committed
//! degradation curves: 0.9997 exact → 0.447 at K=1 → 0.566 at 50% link
//! failure) say *how often* black-box LSTF replay misses its targets.
//! This crate answers *why*: it rides the streaming comparison's
//! [`DivergenceSink`](ups_core::DivergenceSink) seam and turns every
//! mismatched packet into an attribution —
//!
//! 1. **Taxonomy** (from `ups-core`): which of the five
//!    [`DivergenceCause`](ups_core::DivergenceCause)s the packet fell
//!    under. The per-cause counts are conserved against the aggregate
//!    [`ReplayReport`](ups_core::ReplayReport) (Σ causes ≡ `overdue`),
//!    property-tested in `tests/`.
//! 2. **Per-hop blame**: a lockstep merge of the original and replay
//!    `hop_tx_starts` timelines finds the *first divergent hop* — the
//!    first switch where the replay started serializing the packet later
//!    than the original did — and classifies the inversion there
//!    ([`InversionKind`]): a rank tie the original won, a quantization
//!    bucket collision, a path change, or a queue overflow.
//! 3. **Bounded aggregates** ([`BlameCollector`]): per-node and per-link
//!    blame tables, a [`QuantileSketch`](ups_metrics::QuantileSketch) of
//!    per-hop lateness, a Misra–Gries top-k of divergent flows and a
//!    capped worst-case list — all `O(nodes + k)` memory, so the
//!    collector rides the 5M-packet streaming compare path unchanged.
//!
//! The collector distills into a
//! [`DivergenceSummary`](ups_metrics::DivergenceSummary) (schema
//! `ups-forensics/v1`) that sweep records carry, and renders
//! human-readable blame tables for `sweep explain`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod blame;
mod topk;

pub use blame::{BlameCollector, HopBlame, NodeBlame, WorstCase};
pub use topk::TopK;

/// Which replay produced the divergences a collector is attributing —
/// decides how a timing inversion at the first divergent hop is read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayFlavor {
    /// Exact LSTF replay (unbounded slack precision).
    Exact,
    /// Quantized LSTF replay over `k` strict-priority queues — timing
    /// inversions are bucket collisions, not rank ties.
    Quantized {
        /// Number of priority queues the replay quantized slack into.
        k: u32,
    },
    /// Churn replay: delivered packets re-run along their as-executed
    /// paths on the intact topology after a failure run.
    Churn,
}

impl ReplayFlavor {
    /// Stable listing name.
    pub fn name(self) -> &'static str {
        match self {
            ReplayFlavor::Exact => "exact",
            ReplayFlavor::Quantized { .. } => "quantized",
            ReplayFlavor::Churn => "churn",
        }
    }
}

impl std::fmt::Display for ReplayFlavor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayFlavor::Quantized { k } => write!(f, "quantized K={k}"),
            other => f.write_str(other.name()),
        }
    }
}

/// What went wrong at the first divergent hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum InversionKind {
    /// The replay scheduler served a competitor first at a hop where the
    /// original won the tie — slack/rank resolution differed.
    RankTieBreak,
    /// Quantized replay only: the packet shared a priority bucket with a
    /// competitor whose exact slack was larger, and lost the FIFO order
    /// inside the bucket.
    BucketCollision,
    /// The replay moved the packet along a different path (reroute, or a
    /// dead-link diversion that the original did not take).
    Reroute,
    /// The replay dropped the packet from a full queue.
    QueueOverflow,
    /// No hop-level signal: the divergence is observable only at the
    /// exit (end-to-end records, or the replay never saw the packet).
    ExitOnly,
}

impl InversionKind {
    /// Every kind, in serialization order.
    pub const ALL: [InversionKind; 5] = [
        InversionKind::RankTieBreak,
        InversionKind::BucketCollision,
        InversionKind::Reroute,
        InversionKind::QueueOverflow,
        InversionKind::ExitOnly,
    ];

    /// Stable snake_case name (table rows, JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            InversionKind::RankTieBreak => "rank_tie_break",
            InversionKind::BucketCollision => "bucket_collision",
            InversionKind::Reroute => "reroute",
            InversionKind::QueueOverflow => "queue_overflow",
            InversionKind::ExitOnly => "exit_only",
        }
    }
}

impl std::fmt::Display for InversionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
