//! The blame collector: first-divergent-hop attribution and bounded
//! per-node/per-link/per-flow aggregates.

use std::collections::BTreeMap;

use crate::topk::TopK;
use crate::{InversionKind, ReplayFlavor};
use ups_core::{Divergence, DivergenceCause, DivergenceSink};
use ups_metrics::{frac, DivergenceSummary, QuantileSketch, Table};
use ups_netsim::prelude::{DropCause, Dur, NodeId, PacketRecord};

/// How many worst-lateness examples the collector retains (the
/// `sweep explain` Perfetto markers and the worst-packets table).
pub const WORST_CASES: usize = 32;

/// How many distinct flows the Misra–Gries counter tracks.
const FLOW_SLOTS: usize = 64;

/// How many switches the distilled summary's `top_nodes` keeps.
const SUMMARY_NODES: usize = 8;

/// Where one divergent packet first went wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopBlame {
    /// The switch at fault (the first divergent hop; the diversion point
    /// for reroutes; the destination when only the exit is observable).
    pub node: NodeId,
    /// The outgoing link at that switch, when the path identifies one.
    pub link: Option<(NodeId, NodeId)>,
    /// What went wrong there.
    pub kind: InversionKind,
    /// `tx′_start − tx_start` at the first divergent hop — the local
    /// lateness injected right there; `None` without hop timelines.
    pub hop_lateness: Option<Dur>,
}

/// Find the first divergent hop for one divergence and classify it.
///
/// The original and replay hop timelines (`hop_tx_starts`, recorded in
/// `PerHop` mode) are walked in lockstep; the first hop where the replay
/// started serializing strictly later than the original is the blame
/// point. Drops and path changes are classified before timing: a buffer
/// drop is a [`InversionKind::QueueOverflow`] at the last switch that
/// handled the packet, and a path mismatch is a
/// [`InversionKind::Reroute`] at the diversion point. End-to-end records
/// (no hop detail) degrade to [`InversionKind::ExitOnly`] blame at the
/// destination.
pub fn first_divergent_hop(d: &Divergence<'_>, flavor: ReplayFlavor) -> HopBlame {
    let orig = d.original;
    let dest = *orig.path.last().unwrap_or(&NodeId(0));
    let exit_only = HopBlame {
        node: dest,
        link: None,
        kind: InversionKind::ExitOnly,
        hop_lateness: None,
    };
    let Some(rep) = d.replay else {
        // The replay never saw the packet: nothing to walk.
        return exit_only;
    };
    match rep.drop_cause {
        Some(DropCause::Buffer) => {
            let node = last_handled(rep);
            return HopBlame {
                node,
                link: next_link(&rep.path, node),
                kind: InversionKind::QueueOverflow,
                hop_lateness: None,
            };
        }
        Some(DropCause::DeadLink) => {
            let node = last_handled(rep);
            return HopBlame {
                node,
                link: next_link(&rep.path, node),
                kind: InversionKind::Reroute,
                hop_lateness: None,
            };
        }
        None => {}
    }
    if rep.path != orig.path {
        // Reroute: blame the switch where the paths fork.
        let fork = orig
            .path
            .iter()
            .zip(rep.path.iter())
            .take_while(|(a, b)| a == b)
            .count();
        let node = if fork == 0 {
            *rep.path.first().unwrap_or(&dest)
        } else {
            orig.path[fork - 1]
        };
        return HopBlame {
            node,
            link: rep.path.get(fork).map(|&next| (node, next)),
            kind: InversionKind::Reroute,
            hop_lateness: None,
        };
    }
    // Same path, both delivered (or replay still in flight): lockstep walk
    // of the hop timelines for the first strictly-later transmission start.
    for (oh, rh) in orig.hops.iter().zip(rep.hops.iter()) {
        if rh.node == oh.node && rh.tx_start > oh.tx_start {
            let kind = match flavor {
                ReplayFlavor::Quantized { .. } => InversionKind::BucketCollision,
                ReplayFlavor::Exact | ReplayFlavor::Churn => InversionKind::RankTieBreak,
            };
            return HopBlame {
                node: oh.node,
                link: next_link(&orig.path, oh.node),
                kind,
                hop_lateness: Some(rh.tx_start.saturating_since(oh.tx_start)),
            };
        }
    }
    // No hop detail, or every recorded hop kept pace and the lateness
    // appeared on the final serialization: only the exit is observable.
    exit_only
}

/// The last switch whose output port served the packet in the replay, or
/// the path head when the packet never reached a recorded hop.
fn last_handled(rep: &PacketRecord) -> NodeId {
    rep.hops
        .last()
        .map(|h| h.node)
        .or_else(|| rep.path.first().copied())
        .unwrap_or(NodeId(0))
}

/// The outgoing link at `node` along `path`, if `node` is on the path
/// and not its terminus.
fn next_link(path: &[NodeId], node: NodeId) -> Option<(NodeId, NodeId)> {
    let pos = path.iter().position(|&n| n == node)?;
    path.get(pos + 1).map(|&next| (node, next))
}

/// One switch's share of the blame.
#[derive(Debug, Clone)]
pub struct NodeBlame {
    /// Divergent packets whose first divergent hop is at this switch.
    pub mismatches: u64,
    /// Summed end-to-end lateness of those packets (the switch's overdue
    /// mass), in picoseconds. Missing/dropped packets contribute zero
    /// (their lateness is unbounded, not measurable).
    pub overdue_mass_ps: u128,
    /// Per-hop lateness injected at this switch (seconds), for the
    /// divergences that carried hop timelines.
    pub hop_lateness: QuantileSketch,
}

/// One of the worst divergences seen, kept for markers and examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorstCase {
    /// Packet id (raw).
    pub id: u64,
    /// Flow id (raw).
    pub flow: u64,
    /// Blamed switch.
    pub node: NodeId,
    /// Taxonomy class.
    pub cause: DivergenceCause,
    /// Inversion class at the first divergent hop.
    pub kind: InversionKind,
    /// End-to-end lateness (zero for missing/dropped).
    pub lateness: Dur,
    /// The original run's exit time `o(p)`, picoseconds — where on the
    /// trace timeline a marker for this divergence belongs.
    pub exited_ps: u64,
}

/// A [`DivergenceSink`] that attributes every mismatch and aggregates
/// blame in bounded memory: per-node and per-link tables are keyed by
/// topology (not packet count), flows ride a Misra–Gries summary, and
/// lateness distributions live in fixed-size quantile sketches.
#[derive(Debug, Clone)]
pub struct BlameCollector {
    flavor: ReplayFlavor,
    mismatches: u64,
    causes: [u64; 5],
    inversions: [u64; 5],
    nodes: BTreeMap<u32, NodeBlame>,
    links: BTreeMap<(u32, u32), u64>,
    flows: TopK,
    hop_lateness: QuantileSketch,
    worst: Vec<WorstCase>,
}

impl BlameCollector {
    /// A fresh collector for one comparison under `flavor`.
    pub fn new(flavor: ReplayFlavor) -> BlameCollector {
        BlameCollector {
            flavor,
            mismatches: 0,
            causes: [0; 5],
            inversions: [0; 5],
            nodes: BTreeMap::new(),
            links: BTreeMap::new(),
            flows: TopK::new(FLOW_SLOTS),
            hop_lateness: QuantileSketch::new(),
            worst: Vec::with_capacity(WORST_CASES + 1),
        }
    }

    /// The flavor this collector classifies under.
    pub fn flavor(&self) -> ReplayFlavor {
        self.flavor
    }

    /// Total mismatches observed (≡ `ReplayReport::overdue` of the
    /// comparison this collector rode).
    pub fn mismatches(&self) -> u64 {
        self.mismatches
    }

    /// Count for one taxonomy class.
    pub fn cause_count(&self, c: DivergenceCause) -> u64 {
        self.causes[cause_idx(c)]
    }

    /// Count for one inversion class.
    pub fn inversion_count(&self, k: InversionKind) -> u64 {
        self.inversions[inversion_idx(k)]
    }

    /// Per-switch blame, keyed by raw node index.
    pub fn nodes(&self) -> &BTreeMap<u32, NodeBlame> {
        &self.nodes
    }

    /// Per-link blame (first divergent hop's outgoing link), keyed by
    /// raw `(from, to)` node indexes.
    pub fn links(&self) -> &BTreeMap<(u32, u32), u64> {
        &self.links
    }

    /// The heaviest divergent flows: `(raw flow id, lower-bound count)`.
    pub fn top_flows(&self, n: usize) -> Vec<(u64, u64)> {
        self.flows.top(n)
    }

    /// Switches ranked by overdue mass (descending; node index breaks
    /// ties), with their blame entries.
    pub fn top_nodes(&self, n: usize) -> Vec<(u32, &NodeBlame)> {
        let mut all: Vec<(u32, &NodeBlame)> = self.nodes.iter().map(|(&k, v)| (k, v)).collect();
        all.sort_by(|a, b| {
            (b.1.overdue_mass_ps, b.1.mismatches, a.0).cmp(&(
                a.1.overdue_mass_ps,
                a.1.mismatches,
                b.0,
            ))
        });
        all.truncate(n);
        all
    }

    /// The retained worst divergences, lateness-descending.
    pub fn worst_cases(&self) -> &[WorstCase] {
        &self.worst
    }

    /// Distill into the serializable summary block
    /// (`ups-forensics/v1`) sweep records carry.
    pub fn summary(&self) -> DivergenceSummary {
        let quant = |q: f64| (!self.hop_lateness.is_empty()).then(|| self.hop_lateness.quantile(q));
        DivergenceSummary {
            mismatches: self.mismatches,
            overdue_within_t: self.cause_count(DivergenceCause::OverdueWithinT),
            overdue_beyond_t: self.cause_count(DivergenceCause::OverdueBeyondT),
            missing_in_replay: self.cause_count(DivergenceCause::MissingInReplay),
            dead_link_drop: self.cause_count(DivergenceCause::DeadLinkDrop),
            buffer_drop: self.cause_count(DivergenceCause::BufferDrop),
            rank_tie_break: self.inversion_count(InversionKind::RankTieBreak),
            bucket_collision: self.inversion_count(InversionKind::BucketCollision),
            reroute: self.inversion_count(InversionKind::Reroute),
            queue_overflow: self.inversion_count(InversionKind::QueueOverflow),
            exit_only: self.inversion_count(InversionKind::ExitOnly),
            top_nodes: self
                .top_nodes(SUMMARY_NODES)
                .into_iter()
                .map(|(node, b)| (node, b.mismatches))
                .collect(),
            hop_lateness_p50_s: quant(0.5),
            hop_lateness_p99_s: quant(0.99),
        }
    }

    /// Render the blame tables `sweep explain` prints: taxonomy,
    /// inversion classes, top-`k` switches and top-`k` flows.
    pub fn render_tables(&self, k: usize) -> String {
        let mut out = String::new();
        let total = self.mismatches.max(1) as f64;

        let mut taxonomy = Table::new(&["cause", "packets", "share"]);
        for c in DivergenceCause::ALL {
            let n = self.cause_count(c);
            taxonomy.row(&[c.name().into(), n.to_string(), frac(n as f64 / total)]);
        }
        out.push_str("== mismatch taxonomy ==\n");
        out.push_str(&taxonomy.render());

        let mut inversions = Table::new(&["first-divergent-hop inversion", "packets", "share"]);
        for kind in InversionKind::ALL {
            let n = self.inversion_count(kind);
            inversions.row(&[kind.name().into(), n.to_string(), frac(n as f64 / total)]);
        }
        out.push_str("\n== inversion classes ==\n");
        out.push_str(&inversions.render());

        let mut nodes = Table::new(&[
            "switch",
            "mismatches",
            "overdue mass (s)",
            "hop p50 (us)",
            "hop p99 (us)",
        ]);
        for (node, b) in self.top_nodes(k) {
            let (p50, p99) = if b.hop_lateness.is_empty() {
                ("-".to_string(), "-".to_string())
            } else {
                (
                    format!("{:.3}", b.hop_lateness.quantile(0.5) * 1e6),
                    format!("{:.3}", b.hop_lateness.quantile(0.99) * 1e6),
                )
            };
            nodes.row(&[
                format!("NodeId({node})"),
                b.mismatches.to_string(),
                format!("{:.9}", b.overdue_mass_ps as f64 * 1e-12),
                p50,
                p99,
            ]);
        }
        out.push_str("\n== top switches by overdue mass ==\n");
        out.push_str(&nodes.render());

        let mut flows = Table::new(&["flow", "mismatches (>=)"]);
        for (flow, n) in self.top_flows(k) {
            flows.row(&[format!("FlowId({flow})"), n.to_string()]);
        }
        out.push_str("\n== top divergent flows ==\n");
        out.push_str(&flows.render());
        out
    }
}

impl DivergenceSink for BlameCollector {
    fn divergence(&mut self, d: &Divergence<'_>) {
        self.mismatches += 1;
        self.causes[cause_idx(d.cause)] += 1;
        let blame = first_divergent_hop(d, self.flavor);
        self.inversions[inversion_idx(blame.kind)] += 1;

        let entry = self.nodes.entry(blame.node.0).or_insert_with(|| NodeBlame {
            mismatches: 0,
            overdue_mass_ps: 0,
            hop_lateness: QuantileSketch::new(),
        });
        entry.mismatches += 1;
        entry.overdue_mass_ps += d.lateness.as_ps() as u128;
        if let Some(h) = blame.hop_lateness {
            entry.hop_lateness.insert(h.as_secs_f64());
            self.hop_lateness.insert(h.as_secs_f64());
        }
        if let Some((a, b)) = blame.link {
            *self.links.entry((a.0, b.0)).or_insert(0) += 1;
        }
        self.flows.insert(d.original.flow.0);

        let case = WorstCase {
            id: d.id.0,
            flow: d.original.flow.0,
            node: blame.node,
            cause: d.cause,
            kind: blame.kind,
            lateness: d.lateness,
            exited_ps: d.original.exited.map(|t| t.as_ps()).unwrap_or(0),
        };
        // Bounded insertion sort: lateness descending, id ascending.
        let pos = self.worst.partition_point(|w| {
            (w.lateness, std::cmp::Reverse(w.id)) >= (case.lateness, std::cmp::Reverse(case.id))
        });
        if pos < WORST_CASES {
            self.worst.insert(pos, case);
            self.worst.truncate(WORST_CASES);
        }
    }
}

fn cause_idx(c: DivergenceCause) -> usize {
    match c {
        DivergenceCause::OverdueWithinT => 0,
        DivergenceCause::OverdueBeyondT => 1,
        DivergenceCause::MissingInReplay => 2,
        DivergenceCause::DeadLinkDrop => 3,
        DivergenceCause::BufferDrop => 4,
    }
}

fn inversion_idx(k: InversionKind) -> usize {
    match k {
        InversionKind::RankTieBreak => 0,
        InversionKind::BucketCollision => 1,
        InversionKind::Reroute => 2,
        InversionKind::QueueOverflow => 3,
        InversionKind::ExitOnly => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ups_netsim::prelude::{FlowId, HopRecord, PacketId, PacketKind, SimTime};

    fn record(path: &[u32], exited: Option<u64>) -> PacketRecord {
        let path: Arc<[NodeId]> = path.iter().map(|&n| NodeId(n)).collect();
        PacketRecord {
            flow: FlowId(1),
            size: 1500,
            kind: PacketKind::Data,
            path,
            injected: SimTime::ZERO,
            exited: exited.map(SimTime::from_ps),
            total_wait: Dur::ZERO,
            dropped: exited.is_none(),
            drop_cause: None,
            hops: Vec::new(),
        }
    }

    fn hop(node: u32, tx_ps: u64) -> HopRecord {
        HopRecord {
            node: NodeId(node),
            arrived: SimTime::from_ps(tx_ps.saturating_sub(10)),
            tx_start: SimTime::from_ps(tx_ps),
            waited: Dur::ZERO,
        }
    }

    fn diverged<'a>(
        orig: &'a PacketRecord,
        rep: &'a PacketRecord,
        cause: DivergenceCause,
        lateness_ps: u64,
    ) -> Divergence<'a> {
        Divergence {
            id: PacketId(7),
            original: orig,
            replay: Some(rep),
            cause,
            lateness: Dur::from_ps(lateness_ps),
        }
    }

    #[test]
    fn timing_inversion_blames_first_late_hop() {
        let mut orig = record(&[0, 2, 3, 1], Some(900));
        orig.hops = vec![hop(2, 100), hop(3, 200)];
        let mut rep = record(&[0, 2, 3, 1], Some(950));
        rep.hops = vec![hop(2, 100), hop(3, 260)];
        let d = diverged(&orig, &rep, DivergenceCause::OverdueWithinT, 50);
        let b = first_divergent_hop(&d, ReplayFlavor::Exact);
        assert_eq!(b.node, NodeId(3));
        assert_eq!(b.kind, InversionKind::RankTieBreak);
        assert_eq!(b.hop_lateness, Some(Dur::from_ps(60)));
        assert_eq!(b.link, Some((NodeId(3), NodeId(1))));
        let q = first_divergent_hop(&d, ReplayFlavor::Quantized { k: 1 });
        assert_eq!(q.kind, InversionKind::BucketCollision);
    }

    #[test]
    fn path_change_is_a_reroute_at_the_fork() {
        let orig = record(&[0, 2, 3, 1], Some(900));
        let rep = record(&[0, 2, 4, 1], Some(990));
        let d = diverged(&orig, &rep, DivergenceCause::OverdueBeyondT, 90);
        let b = first_divergent_hop(&d, ReplayFlavor::Churn);
        assert_eq!(b.kind, InversionKind::Reroute);
        assert_eq!(b.node, NodeId(2));
        assert_eq!(b.link, Some((NodeId(2), NodeId(4))));
    }

    #[test]
    fn buffer_drop_blames_last_handling_switch() {
        let orig = record(&[0, 2, 3, 1], Some(900));
        let mut rep = record(&[0, 2, 3, 1], None);
        rep.drop_cause = Some(DropCause::Buffer);
        rep.hops = vec![hop(2, 100)];
        let d = diverged(&orig, &rep, DivergenceCause::BufferDrop, 0);
        let b = first_divergent_hop(&d, ReplayFlavor::Exact);
        assert_eq!(b.kind, InversionKind::QueueOverflow);
        assert_eq!(b.node, NodeId(2));
        assert_eq!(b.link, Some((NodeId(2), NodeId(3))));
    }

    #[test]
    fn end_to_end_records_degrade_to_exit_blame() {
        let orig = record(&[0, 2, 1], Some(900));
        let rep = record(&[0, 2, 1], Some(1_000));
        let d = diverged(&orig, &rep, DivergenceCause::OverdueWithinT, 100);
        let b = first_divergent_hop(&d, ReplayFlavor::Exact);
        assert_eq!(b.kind, InversionKind::ExitOnly);
        assert_eq!(b.node, NodeId(1), "destination takes the blame");
        let missing = Divergence {
            replay: None,
            ..diverged(&orig, &rep, DivergenceCause::MissingInReplay, 0)
        };
        assert_eq!(
            first_divergent_hop(&missing, ReplayFlavor::Exact).kind,
            InversionKind::ExitOnly
        );
    }

    #[test]
    fn collector_conserves_counts_and_ranks_nodes() {
        let mut c = BlameCollector::new(ReplayFlavor::Exact);
        let orig = record(&[0, 2, 1], Some(900));
        for i in 0..5u64 {
            let rep = record(&[0, 2, 1], Some(900 + 10 * (i + 1)));
            c.divergence(&Divergence {
                id: PacketId(i),
                original: &orig,
                replay: Some(&rep),
                cause: DivergenceCause::OverdueWithinT,
                lateness: Dur::from_ps(10 * (i + 1)),
            });
        }
        let s = c.summary();
        assert_eq!(s.mismatches, 5);
        assert_eq!(s.cause_total(), 5);
        assert_eq!(s.inversion_total(), 5);
        assert_eq!(s.top_nodes, vec![(1, 5)]);
        assert_eq!(c.worst_cases().len(), 5);
        assert_eq!(c.worst_cases()[0].lateness, Dur::from_ps(50), "sorted desc");
        let tables = c.render_tables(4);
        assert!(tables.contains("mismatch taxonomy"));
        assert!(tables.contains("NodeId(1)"));
        assert!(tables.contains("FlowId(1)"));
    }
}
