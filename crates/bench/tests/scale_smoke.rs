//! CI-sized smoke of the scale benchmark's streaming pipeline: a capped
//! fat-tree(k=4) run (~200k packets in release, smaller under debug
//! asserts) pushed through tiny spill caps so the chunk ring overflows to
//! disk, checked for bit-identity against the resident layout and for a
//! tight peak-RSS ceiling via `VmHWM` (the same self-measurement the full
//! bench asserts). Lives in its own test binary because `VmHWM` is a
//! process-lifetime high-water mark — co-tenant tests would pollute it.
//!
//! Knobs: `UPS_SMOKE_PACKETS` (floor; default 200_000 release / 40_000
//! debug), `UPS_SMOKE_RSS_BUDGET_MB` (default 512).

use ups_bench::peak_rss_bytes;
use ups_core::{compare, lstf_replay_stream};
use ups_netsim::prelude::{Dur, RecordMode, SchedulerKind, Trace};
use ups_topology::{
    build_simulator, fattree, BuildOptions, FatTreeParams, Routing, SchedulerAssignment, Topology,
};
use ups_workload::{profile_by_name, udp_packet_stream, FlowSpec, MTU};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn train_packets(flows: &[FlowSpec]) -> u64 {
    flows.iter().map(|f| f.size.div_ceil(MTU as u64)).sum()
}

fn run_pair(
    topo: &Topology,
    flows: &[FlowSpec],
    record: RecordMode,
    spill_caps: Option<(usize, usize)>,
) -> (Trace, Trace) {
    let opts = BuildOptions {
        record,
        trace_spill_caps: spill_caps,
        seed: 42,
        ..BuildOptions::default()
    };
    let mut sim = build_simulator(
        topo,
        &SchedulerAssignment::uniform(SchedulerKind::Fifo),
        &opts,
    );
    sim.run_with_injections(udp_packet_stream(flows, MTU));
    let original = sim.into_trace();
    let mut rep = build_simulator(
        topo,
        &SchedulerAssignment::uniform(SchedulerKind::Lstf { preemptive: false }),
        &opts,
    );
    rep.run_with_injections(lstf_replay_stream(topo, &original));
    (original, rep.into_trace())
}

#[test]
fn capped_streaming_run_is_resident_identical_and_bounded() {
    let default_floor = if cfg!(debug_assertions) {
        40_000
    } else {
        200_000
    };
    let packet_floor = env_u64("UPS_SMOKE_PACKETS", default_floor);
    let rss_budget = env_u64("UPS_SMOKE_RSS_BUDGET_MB", 512) * 1024 * 1024;

    let topo = fattree(FatTreeParams::default());
    let profile = profile_by_name("web-search").expect("registered profile");
    let mut window = Dur::from_ms(4);
    let flows = loop {
        let mut routing = Routing::new(&topo);
        let flows = profile.flows(&topo, &mut routing, 0.7, window, 42);
        if train_packets(&flows) >= packet_floor {
            break flows;
        }
        window = window.times(2);
        assert!(window <= Dur::from_secs(5), "workload never reached floor");
    };
    let packets = train_packets(&flows);

    // Tiny caps: ~packets/1024 sealed chunks, only 2 resident, so almost
    // the whole trace round-trips through the spill codec.
    let (orig_res, rep_res) = run_pair(&topo, &flows, RecordMode::EndToEnd, None);
    let (orig_str, rep_str) = run_pair(&topo, &flows, RecordMode::Streaming, Some((1024, 2)));
    assert!(
        orig_res.stream().eq(orig_str.stream()),
        "streaming original diverged from resident"
    );
    let threshold = topo.bottleneck_bandwidth().tx_time(MTU);
    // Gate on across both comparisons: the merge-join's reorder-window
    // high-water counter is the CI witness that the streaming compare
    // path stays bounded.
    ups_obs::enable();
    ups_obs::reset();
    assert_eq!(
        compare(&orig_res, &rep_res, threshold),
        compare(&orig_str, &rep_str, threshold),
        "streamed replay report diverged"
    );
    let window_high_water = ups_obs::snapshot().counter(ups_obs::Counter::CompareWindow);
    ups_obs::disable();
    assert!(
        window_high_water <= ups_core::REORDER_WINDOW as u64,
        "compare reorder window hit {window_high_water} records \
         (bound {})",
        ups_core::REORDER_WINDOW
    );
    assert_eq!(
        ups_sweep::summarize_trace(&orig_res, &flows, packets, None),
        ups_sweep::summarize_trace(&orig_str, &flows, packets, None),
        "streamed run summary diverged"
    );

    let peak = peak_rss_bytes();
    assert!(
        peak <= rss_budget,
        "peak RSS {:.1} MiB exceeds the {} MiB smoke budget",
        peak as f64 / (1024.0 * 1024.0),
        rss_budget / (1024 * 1024)
    );
}
