//! Experiment scaling.
//!
//! The paper's runs simulate seconds of traffic over 100–800-host
//! topologies; regenerating every table/figure at that scale takes tens
//! of minutes. `cargo bench` therefore defaults to a scaled-down
//! configuration with the *same shape* (identical topologies, same
//! utilization calibration, shorter simulated time), and `UPS_SCALE=full`
//! restores paper-scale durations. EXPERIMENTS.md records which setting
//! produced the committed numbers.

use ups_netsim::prelude::Dur;

/// Resolved scale parameters.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Simulated workload-arrival window for replay experiments.
    pub replay_window: Dur,
    /// Simulated flow-arrival window for the FCT experiment (Fig. 2).
    pub fct_window: Dur,
    /// Wall-clock horizon for the FCT run (lets late flows drain).
    pub fct_horizon: Dur,
    /// Horizon for the fairness experiment (Fig. 4; paper plots 20 ms).
    pub fairness_horizon: Dur,
    /// Number of independent seeds averaged per scenario.
    pub seeds: u64,
    /// Label for reports.
    pub label: &'static str,
}

impl Scale {
    /// Scaled-down default: minutes, not hours.
    pub fn quick() -> Self {
        Scale {
            replay_window: Dur::from_ms(30),
            fct_window: Dur::from_ms(150),
            fct_horizon: Dur::from_secs(8),
            fairness_horizon: Dur::from_ms(25),
            seeds: 1,
            label: "quick",
        }
    }

    /// Paper-scale durations.
    pub fn full() -> Self {
        Scale {
            replay_window: Dur::from_ms(250),
            fct_window: Dur::from_secs(1),
            fct_horizon: Dur::from_secs(30),
            fairness_horizon: Dur::from_ms(25),
            seeds: 3,
            label: "full",
        }
    }

    /// Resolve from the `UPS_SCALE` environment variable
    /// (`quick`/`full`; default quick).
    pub fn from_env() -> Self {
        match std::env::var("UPS_SCALE").as_deref() {
            Ok("full") => Scale::full(),
            Ok("quick") | Err(_) => Scale::quick(),
            Ok(other) => {
                eprintln!("UPS_SCALE={other:?} not recognized; using quick");
                Scale::quick()
            }
        }
    }
}

/// Peak resident-set size of this process in bytes, from `VmHWM` in
/// `/proc/self/status` — the self-measurement the scale benchmark and its
/// CI smoke test assert their memory budget against. Returns `0` on
/// platforms without procfs (the callers' budget asserts then pass
/// vacuously rather than faking a reading).
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_bytes() > 0, "VmHWM must parse on procfs hosts");
        }
    }

    #[test]
    fn quick_is_smaller_than_full() {
        let q = Scale::quick();
        let f = Scale::full();
        assert!(q.replay_window < f.replay_window);
        assert!(q.fct_window < f.fct_window);
        assert!(q.seeds <= f.seeds);
    }
}
