//! The Table 1 scenario matrix, the paper's reference numbers, and the
//! workload/calibration setup shared by the figure and throughput
//! benches (previously copy-pasted per bench target).

use ups_netsim::prelude::{Dur, SchedulerKind};
use ups_topology::{
    fattree, i2_10g_10g, i2_1g_1g, i2_default, rocketfuel_default, FatTreeParams,
    SchedulerAssignment, Topology,
};
use ups_workload::{profile_by_name, CalibratedTrain};

use crate::replay_exp::ReplayScenario;
use crate::scale::Scale;

/// The common preamble of the objective figures (2, 3, 4): the default
/// Internet2, the `UPS_SCALE` knobs, and the fixed workload seed every
/// committed figure uses.
pub struct FigureSetup {
    /// The paper's default evaluation network.
    pub topo: Topology,
    /// Quick vs. paper-scale durations.
    pub scale: Scale,
    /// The evaluation's fixed workload seed.
    pub seed: u64,
}

/// One shared constructor instead of three copy-pasted ones — Figure 2,
/// Figure 3 and any future objective bench start from here.
pub fn figure_setup() -> FigureSetup {
    FigureSetup {
        topo: i2_default(),
        scale: Scale::from_env(),
        seed: 42,
    }
}

/// The reference fat-tree workload of the engine benchmarks: web-search
/// sizes at 70% core utilization, window grown until the UDP train
/// clears `min_packets` (the throughput bench's calibration loop, now
/// shared through `ups_workload::registry`).
pub fn fattree_throughput_workload(
    utilization: f64,
    min_packets: usize,
    seed: u64,
) -> (Topology, CalibratedTrain) {
    let topo = fattree(FatTreeParams::default());
    let train = profile_by_name("web-search")
        .expect("web-search is registered")
        .udp_train_with_floor(&topo, utilization, min_packets, Dur::from_ms(4), seed);
    (topo, train)
}

/// The paper's Table 1 values for side-by-side reporting:
/// (topology, utilization, scheduler, frac overdue, frac overdue > T).
pub const PAPER_TABLE1: [(&str, f64, &str, f64, f64); 13] = [
    ("I2:1Gbps-10Gbps", 0.7, "Random", 0.0021, 0.0002),
    ("I2:1Gbps-10Gbps", 0.1, "Random", 0.0007, 0.0),
    ("I2:1Gbps-10Gbps", 0.3, "Random", 0.0281, 0.0017),
    ("I2:1Gbps-10Gbps", 0.5, "Random", 0.0221, 0.0002),
    ("I2:1Gbps-10Gbps", 0.9, "Random", 0.0008, 0.000004),
    ("I2:1Gbps-1Gbps", 0.7, "Random", 0.0204, 0.000008),
    ("I2:10Gbps-10Gbps", 0.7, "Random", 0.0631, 0.0448),
    ("RocketFuel", 0.7, "Random", 0.0246, 0.0063),
    ("Datacenter", 0.7, "Random", 0.0164, 0.0154),
    ("I2:1Gbps-10Gbps", 0.7, "FIFO", 0.0143, 0.0006),
    ("I2:1Gbps-10Gbps", 0.7, "FQ", 0.0271, 0.0002),
    ("I2:1Gbps-10Gbps", 0.7, "SJF", 0.1833, 0.0019),
    ("I2:1Gbps-10Gbps", 0.7, "LIFO", 0.1477, 0.0067),
];

/// Paper Table 1 also has the FQ/FIFO+ mixed row.
pub const PAPER_FQ_FIFOPLUS: (f64, f64) = (0.0152, 0.0004);

/// Build an original-schedule assignment by scheduler label.
fn assign_for(topo: &Topology, label: &str) -> SchedulerAssignment {
    match label {
        "Random" => SchedulerAssignment::uniform(SchedulerKind::Random),
        "FIFO" => SchedulerAssignment::uniform(SchedulerKind::Fifo),
        "FQ" => SchedulerAssignment::uniform(SchedulerKind::Fq),
        "SJF" => SchedulerAssignment::uniform(SchedulerKind::Sjf),
        "LIFO" => SchedulerAssignment::uniform(SchedulerKind::Lifo),
        "FQ/FIFO+" => SchedulerAssignment::half_half(
            topo,
            SchedulerKind::Fq,
            SchedulerKind::FifoPlus,
            SchedulerKind::Fifo,
        ),
        other => panic!("unknown scheduler label {other:?}"),
    }
}

/// Build a topology by Table 1 label. `fattree_k` sizes the datacenter
/// row (the paper's pFabric fat-tree; k=4 for quick runs, k=8 for full).
fn topo_for(label: &str, fattree_k: usize) -> Topology {
    match label {
        "I2:1Gbps-10Gbps" => i2_default(),
        "I2:1Gbps-1Gbps" => i2_1g_1g(),
        "I2:10Gbps-10Gbps" => i2_10g_10g(),
        "RocketFuel" => rocketfuel_default(),
        "Datacenter" => fattree(FatTreeParams {
            k: fattree_k,
            ..FatTreeParams::default()
        }),
        other => panic!("unknown topology label {other:?}"),
    }
}

/// Materialize the full Table 1 scenario list (13 uniform rows + the
/// FQ/FIFO+ mix).
pub fn table1_scenarios(window: Dur, seed: u64, fattree_k: usize) -> Vec<ReplayScenario> {
    let mut out = Vec::new();
    for &(topo_label, util, sched_label, _, _) in PAPER_TABLE1.iter() {
        let topo = topo_for(topo_label, fattree_k);
        let assign = assign_for(&topo, sched_label);
        out.push(ReplayScenario {
            topology_label: leak_label(topo_label),
            topo,
            utilization: util,
            sched_label: leak_label(sched_label),
            assign,
            window,
            seed,
        });
    }
    // The mixed FQ/FIFO+ row.
    let topo = i2_default();
    let assign = assign_for(&topo, "FQ/FIFO+");
    out.push(ReplayScenario {
        topology_label: "I2:1Gbps-10Gbps",
        topo,
        utilization: 0.7,
        sched_label: "FQ/FIFO+",
        assign,
        window,
        seed,
    });
    out
}

/// The Figure 1 scenario list: the six disciplines on the default
/// topology at 70%.
pub fn fig1_scenarios(window: Dur, seed: u64) -> Vec<ReplayScenario> {
    ["Random", "FIFO", "FQ", "SJF", "LIFO", "FQ/FIFO+"]
        .into_iter()
        .map(|label| {
            let topo = i2_default();
            let assign = assign_for(&topo, label);
            ReplayScenario {
                topology_label: "I2:1Gbps-10Gbps",
                topo,
                utilization: 0.7,
                sched_label: leak_label(label),
                assign,
                window,
                seed,
            }
        })
        .collect()
}

fn leak_label(s: &str) -> &'static str {
    // Labels come from the two const tables above; avoid threading
    // lifetimes through ReplayScenario for what is static data.
    match s {
        "I2:1Gbps-10Gbps" => "I2:1Gbps-10Gbps",
        "I2:1Gbps-1Gbps" => "I2:1Gbps-1Gbps",
        "I2:10Gbps-10Gbps" => "I2:10Gbps-10Gbps",
        "RocketFuel" => "RocketFuel",
        "Datacenter" => "Datacenter",
        "Random" => "Random",
        "FIFO" => "FIFO",
        "FQ" => "FQ",
        "SJF" => "SJF",
        "LIFO" => "LIFO",
        "FQ/FIFO+" => "FQ/FIFO+",
        _ => "unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_fourteen_rows() {
        let scenarios = table1_scenarios(Dur::from_ms(1), 1, 4);
        assert_eq!(scenarios.len(), 14);
        // Utilization sweep present.
        let utils: Vec<f64> = scenarios
            .iter()
            .filter(|s| s.sched_label == "Random" && s.topology_label == "I2:1Gbps-10Gbps")
            .map(|s| s.utilization)
            .collect();
        assert_eq!(utils, vec![0.7, 0.1, 0.3, 0.5, 0.9]);
    }

    #[test]
    fn fig1_covers_six_disciplines() {
        let scenarios = fig1_scenarios(Dur::from_ms(1), 1);
        assert_eq!(scenarios.len(), 6);
        assert!(scenarios.iter().any(|s| s.sched_label == "FQ/FIFO+"));
    }

    #[test]
    #[should_panic(expected = "unknown scheduler")]
    fn unknown_scheduler_rejected() {
        let topo = i2_default();
        let _ = assign_for(&topo, "WFQ2");
    }
}
