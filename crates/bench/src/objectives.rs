//! Runners for the §3 objective experiments (Figures 2, 3, 4).

use ups_metrics::{jain_series, Cdf, FlowSample};
use ups_netsim::prelude::{Dur, FlowId, PacketKind, RecordMode, SchedulerKind, SimTime, Simulator};
use ups_topology::{
    build_simulator, i2_fairness, BuildOptions, Routing, SchedulerAssignment, Topology,
};
use ups_transport::{run_tcp, SlackPolicy, TcpConfig, TcpScenario};
use ups_workload::{udp_packet_train, Empirical, PoissonWorkload, SizeDist};

/// Figure 2 scheme under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FctScheme {
    /// Baseline.
    Fifo,
    /// Near-optimal benchmark [3].
    Srpt,
    /// SJF via static priorities.
    Sjf,
    /// LSTF with `slack = flow_size × D` (§3.1).
    LstfFct,
}

impl FctScheme {
    /// All four Figure 2 curves.
    pub const ALL: [FctScheme; 4] = [
        FctScheme::Fifo,
        FctScheme::Srpt,
        FctScheme::Sjf,
        FctScheme::LstfFct,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            FctScheme::Fifo => "FIFO",
            FctScheme::Srpt => "SRPT",
            FctScheme::Sjf => "SJF",
            FctScheme::LstfFct => "LSTF",
        }
    }

    fn scheduler(self) -> SchedulerKind {
        match self {
            FctScheme::Fifo => SchedulerKind::Fifo,
            FctScheme::Srpt => SchedulerKind::Srpt,
            FctScheme::Sjf => SchedulerKind::Sjf,
            FctScheme::LstfFct => SchedulerKind::Lstf { preemptive: false },
        }
    }

    fn policy(self) -> SlackPolicy {
        match self {
            FctScheme::LstfFct => SlackPolicy::FctSjf,
            _ => SlackPolicy::None,
        }
    }
}

/// Figure 2: TCP flows on the default Internet2 at the given utilization
/// with 5 MB router buffers; returns completed-flow samples. Runs on the
/// shared closed-loop driver (`ups_transport::driver`) — the same code
/// path as a `traffic: closed-loop` sweep job.
pub fn run_fct_experiment(
    topo: &Topology,
    scheme: FctScheme,
    utilization: f64,
    window: Dur,
    horizon: Dur,
    seed: u64,
) -> Vec<FlowSample> {
    let mut routing = Routing::new(topo);
    let flows = PoissonWorkload::at_utilization(utilization, window, seed).generate(
        topo,
        &mut routing,
        &Empirical::web_search() as &dyn SizeDist,
    );
    let scenario = TcpScenario {
        topo,
        assign: &SchedulerAssignment::uniform(scheme.scheduler()),
        opts: BuildOptions {
            record: RecordMode::Off,
            router_buffer_bytes: Some(5_000_000), // §3.1: 5 MB per router
            ..BuildOptions::default()
        },
        flows: &flows,
        config: TcpConfig::default(),
        policy: scheme.policy(),
        horizon,
        max_packets: None,
        goodput_bucket: Dur::from_ms(1),
    };
    let run = run_tcp(&scenario, &mut routing);
    run.stats
        .completions()
        .into_iter()
        .map(|c| FlowSample {
            size: c.bytes,
            fct_secs: c.fct().as_secs_f64(),
        })
        .collect()
}

/// Figure 3 result: the end-to-end delay distribution of data packets.
pub struct TailResult {
    /// Per-packet end-to-end delays in seconds.
    pub delays: Cdf,
}

/// Figure 3: open-loop UDP at 70% on the default topology; FIFO vs LSTF
/// with a constant slack (≡ FIFO+). Identical workload in both runs.
pub fn run_tail_experiment(
    topo: &Topology,
    lstf: bool,
    utilization: f64,
    window: Dur,
    seed: u64,
) -> TailResult {
    let mut routing = Routing::new(topo);
    let flows = PoissonWorkload::at_utilization(utilization, window, seed).generate(
        topo,
        &mut routing,
        &Empirical::web_search() as &dyn SizeDist,
    );
    let mut packets = udp_packet_train(&flows, ups_workload::MTU);
    if lstf {
        for p in &mut packets {
            p.header.slack = ups_core::tail_slack(); // §3.2: uniform slack
        }
    }
    let kind = if lstf {
        SchedulerKind::Lstf { preemptive: false }
    } else {
        SchedulerKind::Fifo
    };
    let mut sim = build_simulator(
        topo,
        &SchedulerAssignment::uniform(kind),
        &BuildOptions {
            record: RecordMode::EndToEnd,
            ..BuildOptions::default()
        },
    );
    for p in packets {
        sim.inject(p);
    }
    sim.run();
    let delays: Vec<f64> = sim
        .trace()
        .delivered()
        .expect("EndToEnd traces are resident")
        .filter(|(_, r)| r.kind == PacketKind::Data)
        .map(|(_, r)| r.delay().expect("delivered").as_secs_f64())
        .collect();
    TailResult {
        delays: Cdf::new(delays),
    }
}

/// Figure 4 scheme under test.
#[derive(Debug, Clone, Copy)]
pub enum FairnessScheme {
    /// Baseline unfairness.
    Fifo,
    /// Fair-queueing reference.
    Fq,
    /// LSTF with the §3.3 slack assignment at the given `r_est` (bits/s).
    Lstf(u64),
}

impl FairnessScheme {
    /// Display label matching Figure 4's legend.
    pub fn label(self) -> String {
        match self {
            FairnessScheme::Fifo => "FIFO".into(),
            FairnessScheme::Fq => "FQ".into(),
            FairnessScheme::Lstf(rest) => {
                format!("LSTF@{}Gbps", rest as f64 / 1e9)
            }
        }
    }

    fn scheduler(self) -> SchedulerKind {
        match self {
            FairnessScheme::Fifo => SchedulerKind::Fifo,
            FairnessScheme::Fq => SchedulerKind::Fq,
            FairnessScheme::Lstf(_) => SchedulerKind::Lstf { preemptive: false },
        }
    }

    fn policy(self) -> SlackPolicy {
        match self {
            FairnessScheme::Lstf(rest) => SlackPolicy::Fairness(rest),
            _ => SlackPolicy::None,
        }
    }
}

/// The Figure 4 flow placement. The paper engineers its 90 long-lived
/// flows so that "the fair share rate of each flow on each link in the
/// core network ... is around 1Gbps"; with our 13 Gbps fairness-variant
/// core we achieve *exactly* equal shares by loading `flows_per_link`
/// flows onto each of five disjoint core links (adjacent city pairs), so
/// the fair share is `13 Gbps / flows_per_link` for every flow and a
/// perfectly fair scheduler drives Jain to 1.0.
pub fn fairness_flow_set(
    topo: &Topology,
    routing: &mut Routing,
    flows_per_link: usize,
    max_jitter: Dur,
    seed: u64,
) -> Vec<ups_workload::FlowSpec> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use ups_topology::NodeRole;

    // Host → its core router (host—edge—core access tree).
    let core_of = |host: ups_netsim::prelude::NodeId| {
        let edge = topo.neighbors(host).next().expect("host has an edge");
        topo.neighbors(edge)
            .find(|&n| topo.role(n) == NodeRole::Core)
            .expect("edge connects to a core")
    };
    let hosts = topo.hosts();
    let mut under: std::collections::HashMap<_, Vec<_>> = std::collections::HashMap::new();
    for &h in &hosts {
        under.entry(core_of(h)).or_default().push(h);
    }
    // Five disjoint adjacent core pairs of the Internet2 backbone.
    let pairs = [(0u32, 1u32), (2, 3), (4, 5), (6, 7), (8, 9)];
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut flows = Vec::new();
    for (a, b) in pairs {
        let (na, nb) = (
            ups_netsim::prelude::NodeId(a),
            ups_netsim::prelude::NodeId(b),
        );
        assert!(
            topo.neighbor_link(na, nb).is_some(),
            "cores {a}–{b} must be adjacent"
        );
        let src_hosts = &under[&na];
        let dst_hosts = &under[&nb];
        for i in 0..flows_per_link {
            let src = src_hosts[i % src_hosts.len()];
            let dst = dst_hosts[(i * 3 + 1) % dst_hosts.len()];
            let jitter = rng.gen_range(0..=max_jitter.as_ps());
            let id = FlowId(flows.len() as u64);
            flows.push(ups_workload::FlowSpec {
                id,
                src,
                dst,
                size: u64::MAX,
                start: SimTime::from_ps(jitter),
                path: routing.path(src, dst),
            });
        }
    }
    flows
}

/// Figure 4: long-lived TCP flows on the fairness variant of Internet2
/// (see [`fairness_flow_set`]); returns the per-millisecond Jain-index
/// series. The paper runs 90 flows with links shared by up to 13; we run
/// `flows_per_link` flows on each of 5 disjoint core links (default 13 ⇒
/// 65 flows, each with an exactly-1 Gbps fair share).
pub fn run_fairness_experiment(
    scheme: FairnessScheme,
    flows_per_link: usize,
    horizon: Dur,
    seed: u64,
) -> Vec<f64> {
    let topo = i2_fairness();
    let mut routing = Routing::new(&topo);
    let flows = fairness_flow_set(&topo, &mut routing, flows_per_link, Dur::from_ms(5), seed);
    let flow_ids: Vec<FlowId> = flows.iter().map(|f| f.id).collect();
    let scenario = TcpScenario {
        topo: &topo,
        assign: &SchedulerAssignment::uniform(scheme.scheduler()),
        opts: BuildOptions {
            record: RecordMode::Off,
            // "the buffer size is kept large so that the fairness is
            // dominated by the scheduling policy" (§3.3).
            router_buffer_bytes: None,
            ..BuildOptions::default()
        },
        flows: &flows,
        config: TcpConfig {
            // Short-RTT variant: the topology shrinks propagation 100x.
            rto_min: Dur::from_ms(2),
            ..TcpConfig::default()
        },
        policy: scheme.policy(),
        horizon,
        max_packets: None,
        goodput_bucket: Dur::from_ms(1),
    };
    let run = run_tcp(&scenario, &mut routing);
    let matrix = run.stats.goodput_matrix(&flow_ids);
    jain_series(&matrix)
}

/// Convenience: which simulator the objective experiments drive (used by
/// examples to introspect run sizes).
pub fn empty_sim_for(topo: &Topology, kind: SchedulerKind) -> Simulator {
    build_simulator(
        topo,
        &SchedulerAssignment::uniform(kind),
        &BuildOptions::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_metrics::{mean_fct_by_bucket, overall_mean_fct, FIG2_BUCKETS};
    use ups_topology::{internet2, Internet2Params};

    fn small_i2() -> Topology {
        internet2(Internet2Params {
            edges_per_core: 2,
            ..Internet2Params::default()
        })
    }

    #[test]
    fn fct_lstf_close_to_sjf_and_better_than_fifo() {
        // Scaled-down Figure 2: the *ordering* FIFO > LSTF ≈ SJF must
        // already show at small scale.
        let topo = small_i2();
        let window = Dur::from_ms(60);
        let horizon = Dur::from_secs(6);
        let fifo = run_fct_experiment(&topo, FctScheme::Fifo, 0.7, window, horizon, 7);
        let sjf = run_fct_experiment(&topo, FctScheme::Sjf, 0.7, window, horizon, 7);
        let lstf = run_fct_experiment(&topo, FctScheme::LstfFct, 0.7, window, horizon, 7);
        assert!(fifo.len() > 20, "need completions, got {}", fifo.len());
        let (mf, ms, ml) = (
            overall_mean_fct(&fifo),
            overall_mean_fct(&sjf),
            overall_mean_fct(&lstf),
        );
        assert!(ms < mf, "SJF {ms} must beat FIFO {mf}");
        assert!(ml < mf, "LSTF {ml} must beat FIFO {mf}");
        let rel = (ml - ms).abs() / ms;
        assert!(rel < 0.35, "LSTF {ml} vs SJF {ms}: rel diff {rel}");
        // Bucketing machinery works on real output (+1: overflow bucket).
        let rows = mean_fct_by_bucket(&lstf, &FIG2_BUCKETS);
        assert_eq!(rows.len(), FIG2_BUCKETS.len() + 1);
    }

    #[test]
    fn tail_lstf_shrinks_the_tail_not_the_mean() {
        let topo = small_i2();
        let window = Dur::from_ms(25);
        let fifo = run_tail_experiment(&topo, false, 0.7, window, 5);
        let lstf = run_tail_experiment(&topo, true, 0.7, window, 5);
        assert!(fifo.delays.len() > 1000);
        assert_eq!(fifo.delays.len(), lstf.delays.len(), "same workload");
        let (f99, l99) = (fifo.delays.quantile(0.999), lstf.delays.quantile(0.999));
        assert!(
            l99 <= f99 * 1.02,
            "LSTF 99.9%ile {l99} must not exceed FIFO {f99}"
        );
        // Means comparable (within 15%).
        let (fm, lm) = (fifo.delays.mean(), lstf.delays.mean());
        assert!((lm - fm).abs() / fm < 0.15, "means {lm} vs {fm}");
    }

    #[test]
    fn fairness_lstf_converges_like_fq() {
        let horizon = Dur::from_ms(20);
        let per_link = 6; // scaled-down: 30 flows, ~2.2 Gbps fair share
        let fq = run_fairness_experiment(FairnessScheme::Fq, per_link, horizon, 9);
        let lstf =
            run_fairness_experiment(FairnessScheme::Lstf(1_000_000_000), per_link, horizon, 9);
        let fifo = run_fairness_experiment(FairnessScheme::Fifo, per_link, horizon, 9);
        let tail = |v: &[f64]| {
            let n = v.len();
            v[n.saturating_sub(5)..].iter().sum::<f64>() / v[n.saturating_sub(5)..].len() as f64
        };
        let (jf, jl, jo) = (tail(&fq), tail(&lstf), tail(&fifo));
        assert!(jf > 0.9, "FQ should be fair, Jain {jf}");
        assert!(jl > 0.85, "LSTF should converge, Jain {jl}");
        assert!(jo < jl, "FIFO {jo} must be less fair than LSTF {jl}");
    }

    #[test]
    fn fairness_flow_set_is_balanced() {
        let topo = i2_fairness();
        let mut routing = Routing::new(&topo);
        let flows = fairness_flow_set(&topo, &mut routing, 13, Dur::from_ms(5), 1);
        assert_eq!(flows.len(), 65);
        // Every flow's path crosses exactly one core-core link.
        for f in &flows {
            let core_hops = f
                .path
                .windows(2)
                .filter(|w| {
                    use ups_topology::NodeRole;
                    topo.role(w[0]) == NodeRole::Core && topo.role(w[1]) == NodeRole::Core
                })
                .count();
            assert_eq!(core_hops, 1, "flow {} crosses {core_hops} core links", f.id);
            assert_eq!(f.size, u64::MAX);
        }
    }
}
