//! # ups-bench — the experiment harness
//!
//! One runner per paper artifact:
//!
//! * [`scenarios`] + [`replay_exp`] — Table 1 and Figure 1 (replay),
//! * [`objectives`] — Figures 2 (FCT), 3 (tail delay), 4 (fairness),
//! * [`scale`] — quick vs. paper-scale knobs (`UPS_SCALE`),
//! * [`baseline`] — the pre-refactor heap-based hot path, kept as the
//!   reference point for `benches/throughput.rs` / `BENCH_throughput.json`.
//!
//! The `benches/` directory contains one `harness = false` target per
//! table/figure that prints paper-style rows, plus Criterion
//! microbenchmarks of the engine (`benches/micro.rs`) and the end-to-end
//! engine throughput benchmark (`benches/throughput.rs`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod objectives;
pub mod replay_exp;
pub mod scale;
pub mod scenarios;

pub use objectives::{
    run_fairness_experiment, run_fct_experiment, run_tail_experiment, FairnessScheme, FctScheme,
    TailResult,
};
pub use replay_exp::{ReplayResult, ReplayScenario};
pub use scale::{peak_rss_bytes, Scale};
pub use scenarios::{
    fattree_throughput_workload, fig1_scenarios, figure_setup, table1_scenarios, FigureSetup,
    PAPER_FQ_FIFOPLUS, PAPER_TABLE1,
};
