//! The seed architecture's hot path, preserved as a benchmark baseline.
//!
//! Before the zero-copy refactor, the simulator moved every `Packet`
//! struct (~200 bytes including its header, plus `Arc` refcount traffic
//! for the path) *by value* through two priority structures: the
//! `BinaryHeap` future-event list and the per-port `BinaryHeap` scheduler
//! queue. This module reimplements exactly that data movement — store-and-
//! forward FIFO forwarding over a topology, packets embedded in heap
//! entries — so `benches/throughput.rs` can measure the speedup of the
//! arena + calendar-queue path against a faithful heap baseline *in the
//! same binary*, and record both numbers in `BENCH_throughput.json`.
//!
//! Functionally it matches the real simulator on FIFO/unbounded-buffer
//! workloads (the throughput scenario): same event ordering contract
//! (`(time, seq)`), same store-and-forward timing, so delivered counts and
//! exit times agree exactly — which the bench asserts as a cross-check.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use ups_netsim::prelude::{Link, NodeId, Packet, SimTime};
use ups_topology::Topology;

enum BEvent {
    Inject(Packet),
    Arrive {
        node: NodeId,
        packet: Packet,
    },
    PortReady {
        node: NodeId,
        port: usize,
        token: u64,
    },
}

struct BEntry {
    time: SimTime,
    seq: u64,
    event: BEvent,
}

impl PartialEq for BEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for BEntry {}
impl PartialOrd for BEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for BEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: reverse for earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A queued packet *by value* — the seed's `QueuedPacket`.
struct BQueued {
    packet: Packet,
    rank: i128,
    arrival_seq: u64,
}

struct BQueueEntry(BQueued);

impl PartialEq for BQueueEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.0.rank, self.0.arrival_seq) == (other.0.rank, other.0.arrival_seq)
    }
}
impl Eq for BQueueEntry {}
impl PartialOrd for BQueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for BQueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (rank, arrival_seq).
        (other.0.rank, other.0.arrival_seq).cmp(&(self.0.rank, self.0.arrival_seq))
    }
}

struct BPort {
    peer: NodeId,
    link: Link,
    q: BinaryHeap<BQueueEntry>,
    arrival_seq: u64,
    inflight: Option<(BQueued, u64)>,
    next_token: u64,
}

struct BNode {
    ports: Vec<BPort>,
    /// Sorted (peer, port index) for lookup, as in the seed.
    port_towards: Vec<(NodeId, usize)>,
}

/// Heap-based reference simulator (FIFO, unbounded buffers, no tracing).
pub struct BaselineSim {
    nodes: Vec<BNode>,
    events: BinaryHeap<BEntry>,
    next_seq: u64,
    now: SimTime,
    /// Packets whose last bit reached their destination.
    pub delivered: u64,
    /// Events processed.
    pub events_processed: u64,
    /// Sum of exit timestamps (ps) — a cheap run fingerprint for the
    /// cross-check against the real simulator.
    pub exit_fingerprint: u128,
}

impl BaselineSim {
    /// Mirror `topo` with FIFO at every port and unbounded buffers.
    pub fn from_topology(topo: &Topology) -> Self {
        let mut nodes: Vec<BNode> = (0..topo.node_count())
            .map(|_| BNode {
                ports: Vec::new(),
                port_towards: Vec::new(),
            })
            .collect();
        for link in topo.links() {
            for (from, to) in [(link.a, link.b), (link.b, link.a)] {
                let n = &mut nodes[from.index()];
                let idx = n.ports.len();
                n.ports.push(BPort {
                    peer: to,
                    link: Link {
                        bandwidth: link.bandwidth,
                        propagation: link.propagation,
                    },
                    q: BinaryHeap::new(),
                    arrival_seq: 0,
                    inflight: None,
                    next_token: 0,
                });
                let pos = n
                    .port_towards
                    .binary_search_by_key(&to, |&(p, _)| p)
                    .unwrap_err();
                n.port_towards.insert(pos, (to, idx));
            }
        }
        BaselineSim {
            nodes,
            events: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            delivered: 0,
            events_processed: 0,
            exit_fingerprint: 0,
        }
    }

    fn push(&mut self, at: SimTime, event: BEvent) {
        debug_assert!(at >= self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(BEntry {
            time: at,
            seq,
            event,
        });
    }

    /// Schedule `packet` to enter the network at its `injected_at`.
    pub fn inject(&mut self, packet: Packet) {
        let at = packet.injected_at;
        self.push(at, BEvent::Inject(packet));
    }

    /// Drain every event.
    pub fn run(&mut self) {
        while let Some(BEntry { time, event, .. }) = self.events.pop() {
            self.now = time;
            self.events_processed += 1;
            match event {
                BEvent::Inject(packet) => self.route(packet, time),
                BEvent::Arrive { node, packet } => {
                    if packet.at_destination() {
                        self.delivered += 1;
                        self.exit_fingerprint += time.as_ps() as u128;
                        let _ = node;
                    } else {
                        self.route(packet, time);
                    }
                }
                BEvent::PortReady { node, port, token } => {
                    self.on_ready(node, port, token, time);
                }
            }
        }
    }

    fn route(&mut self, packet: Packet, now: SimTime) {
        let here = packet.current_node();
        let next = packet.next_node().expect("not at destination");
        let node = &mut self.nodes[here.index()];
        let pidx = node
            .port_towards
            .binary_search_by_key(&next, |&(p, _)| p)
            .map(|i| node.port_towards[i].1)
            .expect("link exists");
        let port = &mut node.ports[pidx];
        let seq = port.arrival_seq;
        port.arrival_seq += 1;
        port.q.push(BQueueEntry(BQueued {
            packet,
            rank: 0,
            arrival_seq: seq,
        }));
        if port.inflight.is_none() {
            self.start_next(here, pidx, now);
        }
    }

    fn start_next(&mut self, node: NodeId, pidx: usize, now: SimTime) {
        let port = &mut self.nodes[node.index()].ports[pidx];
        debug_assert!(port.inflight.is_none());
        let Some(BQueueEntry(qp)) = port.q.pop() else {
            return;
        };
        let tx = port.link.bandwidth.tx_time(qp.packet.size);
        let token = port.next_token;
        port.next_token += 1;
        port.inflight = Some((qp, token));
        self.push(
            now + tx,
            BEvent::PortReady {
                node,
                port: pidx,
                token,
            },
        );
    }

    fn on_ready(&mut self, node: NodeId, pidx: usize, token: u64, now: SimTime) {
        let port = &mut self.nodes[node.index()].ports[pidx];
        match &port.inflight {
            Some((_, t)) if *t == token => {}
            _ => return,
        }
        let (qp, _) = port.inflight.take().expect("checked above");
        let mut packet = qp.packet;
        packet.hop += 1;
        let peer = port.peer;
        let prop = port.link.propagation;
        self.push(now + prop, BEvent::Arrive { node: peer, packet });
        self.start_next(node, pidx, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use ups_netsim::prelude::*;
    use ups_topology::line;

    #[test]
    fn baseline_matches_seed_timing() {
        // One packet over host-router-router-host at 1 Gbps / 10 us:
        // 3 links × (12us + 10us) = 66us, as in the build.rs test.
        let topo = line(2, Bandwidth::from_gbps(1), Dur::from_us(10));
        let mut routing = ups_topology::Routing::new(&topo);
        let hosts = topo.hosts();
        let path = routing.path(hosts[0], hosts[1]);
        let mut sim = BaselineSim::from_topology(&topo);
        sim.inject(PacketBuilder::new(PacketId(0), FlowId(0), 1500, path, SimTime::ZERO).build());
        sim.run();
        assert_eq!(sim.delivered, 1);
        assert_eq!(sim.exit_fingerprint, SimTime::from_us(66).as_ps() as u128);
    }

    #[test]
    fn baseline_agrees_with_real_simulator() {
        // Same injected set through both engines: identical delivered
        // count and exit-time fingerprint.
        let topo = line(3, Bandwidth::from_gbps(1), Dur::from_us(5));
        let mut routing = ups_topology::Routing::new(&topo);
        let hosts = topo.hosts();
        let packets: Vec<Packet> = (0..200u64)
            .map(|i| {
                let (s, d) = if i % 2 == 0 { (0, 1) } else { (1, 0) };
                PacketBuilder::new(
                    PacketId(i),
                    FlowId(i % 7),
                    1500,
                    routing.path(hosts[s], hosts[d]),
                    SimTime::from_ns(i * 800),
                )
                .build()
            })
            .collect();

        let mut base = BaselineSim::from_topology(&topo);
        for p in packets.clone() {
            base.inject(p);
        }
        base.run();

        let mut real = ups_topology::build_simulator(
            &topo,
            &ups_topology::SchedulerAssignment::uniform(SchedulerKind::Fifo),
            &ups_topology::BuildOptions::default(),
        );
        for p in packets {
            real.inject(p);
        }
        real.run();

        assert_eq!(base.delivered, real.stats().delivered);
        let real_fp: u128 = real
            .trace()
            .delivered()
            .expect("resident trace")
            .map(|(_, r)| r.exited.expect("delivered").as_ps() as u128)
            .sum();
        assert_eq!(base.exit_fingerprint, real_fp, "exit times must agree");
    }
}
