//! Shared runner for the §2.3 replay experiments (Table 1, Figure 1 and
//! the §2.3(5)/(7) ablations).

use ups_core::{HeaderInit, ReplayExperiment, ReplayReport};
use ups_netsim::prelude::{Dur, RecordMode};
use ups_topology::{Routing, SchedulerAssignment, Topology};
use ups_workload::{Empirical, PoissonWorkload, SizeDist};

/// One replay scenario: a topology + workload + original discipline.
pub struct ReplayScenario {
    /// Row label (Table 1's "Topology" column).
    pub topology_label: &'static str,
    /// The network.
    pub topo: Topology,
    /// Target mean core-link utilization.
    pub utilization: f64,
    /// Original-schedule discipline label ("Random", "FIFO", ...).
    pub sched_label: &'static str,
    /// Original-schedule per-node assignment.
    pub assign: SchedulerAssignment,
    /// Flow-arrival window.
    pub window: Dur,
    /// Workload seed.
    pub seed: u64,
}

/// Result of one replay run, with workload size for context.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Replay comparison.
    pub report: ReplayReport,
    /// Packets driven through the network.
    pub packets: usize,
    /// Flows generated.
    pub flows: usize,
}

impl ReplayScenario {
    /// Generate the workload, run original + replay under `init`, return
    /// the comparison. `preemptive` selects the §2.3(5) LSTF variant.
    pub fn run(&self, init: HeaderInit, preemptive: bool) -> ReplayResult {
        let mut routing = Routing::new(&self.topo);
        let sizes = Empirical::web_search();
        let flows = PoissonWorkload::at_utilization(self.utilization, self.window, self.seed)
            .generate(&self.topo, &mut routing, &sizes as &dyn SizeDist);
        let packets = ups_workload::udp_packet_train(&flows, ups_workload::MTU);
        let exp = ReplayExperiment {
            topo: &self.topo,
            original_assign: self.assign.clone(),
            init,
            preemptive,
            record: RecordMode::EndToEnd,
            seed: self.seed,
        };
        let out = exp.run(&packets, Dur::ZERO);
        ReplayResult {
            report: out.report,
            packets: packets.len(),
            flows: flows.len(),
        }
    }

    /// Like [`Self::run`] but returning the queueing-delay ratios too
    /// (Figure 1 wants the full distribution, which `ReplayReport`
    /// already carries).
    pub fn run_lstf(&self) -> ReplayResult {
        self.run(HeaderInit::LstfSlack, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_netsim::prelude::SchedulerKind;
    use ups_topology::{internet2, Internet2Params};

    fn tiny_scenario(kind: SchedulerKind, label: &'static str) -> ReplayScenario {
        let topo = internet2(Internet2Params {
            edges_per_core: 2,
            ..Internet2Params::default()
        });
        ReplayScenario {
            topology_label: "I2-small",
            topo,
            utilization: 0.7,
            sched_label: label,
            assign: SchedulerAssignment::uniform(kind),
            window: Dur::from_ms(4),
            seed: 7,
        }
    }

    #[test]
    fn lstf_replays_random_schedule_mostly() {
        let res = tiny_scenario(SchedulerKind::Random, "Random").run_lstf();
        assert!(res.packets > 500, "workload too small: {}", res.packets);
        assert_eq!(res.report.total, res.packets);
        // The headline claim at small scale: the overwhelming majority of
        // packets meet their targets, and almost none miss by > T.
        assert!(
            res.report.frac_overdue() < 0.15,
            "frac overdue {}",
            res.report.frac_overdue()
        );
        assert!(
            res.report.frac_overdue_gt_t() < 0.05,
            "frac > T {}",
            res.report.frac_overdue_gt_t()
        );
        assert!(res.report.frac_overdue_gt_t() <= res.report.frac_overdue());
    }

    #[test]
    fn priority_replay_is_much_worse_than_lstf() {
        // §2.3(7)'s contrast needs real multi-hop congestion (with ≤ 1
        // congestion point per packet, priorities replay fine — that's
        // Theorem 1); use the full default topology.
        let scen = ReplayScenario {
            topology_label: "I2:1Gbps-10Gbps",
            topo: ups_topology::i2_default(),
            utilization: 0.7,
            sched_label: "Random",
            assign: SchedulerAssignment::uniform(SchedulerKind::Random),
            window: Dur::from_ms(20),
            seed: 7,
        };
        let lstf = scen.run(HeaderInit::LstfSlack, false);
        let prio = scen.run(HeaderInit::PriorityOutputTime, false);
        println!(
            "priorities {} (> T {}) vs LSTF {} (> T {})",
            prio.report.frac_overdue(),
            prio.report.frac_overdue_gt_t(),
            lstf.report.frac_overdue(),
            lstf.report.frac_overdue_gt_t()
        );
        assert!(
            prio.report.frac_overdue() > 3.0 * lstf.report.frac_overdue(),
            "priorities {} vs LSTF {}",
            prio.report.frac_overdue(),
            lstf.report.frac_overdue()
        );
        assert!(
            prio.report.frac_overdue_gt_t() > lstf.report.frac_overdue_gt_t(),
            "priorities >T {} vs LSTF >T {}",
            prio.report.frac_overdue_gt_t(),
            lstf.report.frac_overdue_gt_t()
        );
    }

    #[test]
    fn preemption_helps_sjf_replay() {
        let scen = tiny_scenario(SchedulerKind::Sjf, "SJF");
        let nonp = scen.run(HeaderInit::LstfSlack, false);
        let pre = scen.run(HeaderInit::LstfSlack, true);
        assert!(
            pre.report.frac_overdue() <= nonp.report.frac_overdue(),
            "preemptive {} vs non-preemptive {}",
            pre.report.frac_overdue(),
            nonp.report.frac_overdue()
        );
    }

    #[test]
    fn fig1_ratios_mostly_at_or_below_one() {
        // "most of the packets actually have a smaller queuing delay in
        // the LSTF replay than in the original schedule" (§2.3(6)).
        let res = tiny_scenario(SchedulerKind::Random, "Random").run_lstf();
        let ratios = &res.report.queueing_ratios;
        assert!(!ratios.is_empty());
        // `fraction_le(1.0)` is exact: 1.0 is a sketch bucket edge.
        let le_one = ratios.fraction_le(1.0);
        assert!(le_one > 0.5, "only {le_one} of ratios ≤ 1");
    }
}
