//! Regenerates **Table 1** — LSTF replayability across scenarios.
//!
//! Run with `cargo bench -p ups-bench --bench table1`; set
//! `UPS_SCALE=full` for paper-scale durations. Each row runs the original
//! schedule, the LSTF replay, and reports the fraction of packets overdue
//! and overdue by more than `T` (one bottleneck transmission time),
//! alongside the paper's numbers.

use ups_bench::{table1_scenarios, Scale, PAPER_FQ_FIFOPLUS, PAPER_TABLE1};
use ups_core::HeaderInit;
use ups_metrics::{frac, Table};

fn main() {
    let scale = Scale::from_env();
    let fattree_k = if scale.seeds > 1 { 8 } else { 4 };
    println!(
        "# Table 1: LSTF replayability (scale={}, window={}, seeds={})",
        scale.label, scale.replay_window, scale.seeds
    );
    let mut table = Table::new(&[
        "Topology",
        "Util",
        "Sched",
        "overdue",
        "overdue>T",
        "paper",
        "paper>T",
        "packets",
    ]);
    let paper: Vec<(f64, f64)> = PAPER_TABLE1
        .iter()
        .map(|&(_, _, _, o, t)| (o, t))
        .chain(std::iter::once(PAPER_FQ_FIFOPLUS))
        .collect();
    for (row, scenario) in table1_scenarios(scale.replay_window, 42, fattree_k)
        .into_iter()
        .enumerate()
    {
        let mut overdue = 0.0;
        let mut gt_t = 0.0;
        let mut packets = 0usize;
        for seed in 0..scale.seeds {
            let scen = ups_bench::ReplayScenario {
                seed: 42 + seed,
                ..scenario_clone(&scenario)
            };
            let res = scen.run(HeaderInit::LstfSlack, false);
            overdue += res.report.frac_overdue();
            gt_t += res.report.frac_overdue_gt_t();
            packets += res.packets;
        }
        overdue /= scale.seeds as f64;
        gt_t /= scale.seeds as f64;
        let (po, pt) = paper[row];
        table.row(&[
            scenario.topology_label.to_string(),
            format!("{:.0}%", scenario.utilization * 100.0),
            scenario.sched_label.to_string(),
            frac(overdue),
            frac(gt_t),
            frac(po),
            frac(pt),
            packets.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("T = one bottleneck-link transmission time (12us at 1Gbps for 1500B).");
}

/// ReplayScenario isn't Clone (Topology is big); rebuild cheaply by
/// borrowing fields.
fn scenario_clone(s: &ups_bench::ReplayScenario) -> ups_bench::ReplayScenario {
    ups_bench::ReplayScenario {
        topology_label: s.topology_label,
        topo: s.topo.clone(),
        utilization: s.utilization,
        sched_label: s.sched_label,
        assign: s.assign.clone(),
        window: s.window,
        seed: s.seed,
    }
}
