//! The streaming-pipeline scale benchmark: a multi-million-packet
//! fat-tree(k=8) run — original schedule, LSTF replay, and full metrics —
//! executed end to end through the bounded-memory path (lazy workload
//! stream → `RecordMode::Streaming` spill-backed trace → streamed replay
//! set → merge-join comparison → accumulator summary) under a peak-RSS
//! budget the bench measures on itself via `/proc/self/status` (`VmHWM`).
//!
//! Before timing anything it runs the **differential gate** on the
//! engine-benchmark workload (fat-tree k=4, web-search, ≥100k packets):
//! the streaming and resident trace layouts must produce bit-identical
//! record streams, bit-identical `ReplayReport`s and bit-identical
//! `RunSummary`s, or the bench aborts without writing an artifact.
//!
//! Results go to stdout and `BENCH_scale.json` (schema
//! `ups-bench-scale/v1`). Scale knobs:
//! `UPS_SCALE_PACKETS` (default 5_000_000 — the packet floor),
//! `UPS_SCALE_MIN_FLOWS` (default 10_000),
//! `UPS_SCALE_FLOW_BYTES` (default 150_000 — fixed flow size),
//! `UPS_SCALE_RSS_BUDGET_MB` (default 512),
//! `UPS_SCALE_DIFF_PACKETS` (default 120_000 — differential-gate floor).

use std::time::Instant;

use ups_bench::peak_rss_bytes;
use ups_core::{compare, lstf_replay_stream};
use ups_netsim::prelude::{Dur, RecordMode, SchedulerKind, Trace};
use ups_topology::{
    build_simulator, fattree, BuildOptions, FatTreeParams, Routing, SchedulerAssignment, Topology,
};
use ups_workload::{profile_by_name, udp_packet_stream, Fixed, FlowSpec, PoissonWorkload, MTU};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Packets a flow list packetizes into at MTU granularity.
fn train_packets(flows: &[FlowSpec]) -> u64 {
    flows.iter().map(|f| f.size.div_ceil(MTU as u64)).sum()
}

/// Run the full streaming pipeline over `flows`: original schedule under
/// `sched` with a `Streaming` trace, LSTF replay streamed straight from
/// the spilled original, merge-join comparison. Returns
/// `(original, replay, original_wall_s)`.
fn streaming_run(
    topo: &Topology,
    flows: &[FlowSpec],
    sched: SchedulerKind,
    record: RecordMode,
    spill_caps: Option<(usize, usize)>,
    seed: u64,
) -> (Trace, Trace, f64) {
    let opts = BuildOptions {
        record,
        trace_spill_caps: spill_caps,
        seed,
        ..BuildOptions::default()
    };
    let mut sim = build_simulator(topo, &SchedulerAssignment::uniform(sched), &opts);
    let t0 = Instant::now();
    sim.run_with_injections(udp_packet_stream(flows, MTU));
    let wall = t0.elapsed().as_secs_f64();
    let original = sim.into_trace();

    let replay_opts = BuildOptions {
        record,
        trace_spill_caps: spill_caps,
        seed,
        ..BuildOptions::default()
    };
    let mut rep_sim = build_simulator(
        topo,
        &SchedulerAssignment::uniform(SchedulerKind::Lstf { preemptive: false }),
        &replay_opts,
    );
    rep_sim.run_with_injections(lstf_replay_stream(topo, &original));
    (original, rep_sim.into_trace(), wall)
}

/// The differential gate: on the engine-benchmark workload, the resident
/// and streaming layouts must agree bit for bit on records, report and
/// summary. Returns the three booleans for the artifact.
fn differential_gate(diff_packets: u64) -> (bool, bool, bool) {
    let topo = fattree(FatTreeParams::default());
    let profile = profile_by_name("web-search").expect("registered profile");
    let mut window = Dur::from_ms(4);
    let flows = loop {
        let mut routing = Routing::new(&topo);
        let flows = profile.flows(&topo, &mut routing, 0.7, window, 42);
        if train_packets(&flows) >= diff_packets {
            break flows;
        }
        window = window.times(2);
        assert!(
            window <= Dur::from_secs(5),
            "differential workload never reached {diff_packets} packets"
        );
    };
    let n = train_packets(&flows);
    println!(
        "# differential gate: {n} packets / {} flows on {}",
        flows.len(),
        topo.name
    );

    let (orig_res, rep_res, _) = streaming_run(
        &topo,
        &flows,
        SchedulerKind::Fifo,
        RecordMode::EndToEnd,
        None,
        42,
    );
    // Tiny spill caps so the streaming arm spills heavily: ~n/4096 chunks
    // on disk, exercising the codec and the k-way merge at full depth.
    let (orig_str, rep_str, _) = streaming_run(
        &topo,
        &flows,
        SchedulerKind::Fifo,
        RecordMode::Streaming,
        Some((4096, 2)),
        42,
    );

    let records_identical = orig_res.stream().eq(orig_str.stream());
    let threshold = topo.bottleneck_bandwidth().tx_time(MTU);
    let report_res = compare(&orig_res, &rep_res, threshold);
    let report_str = compare(&orig_str, &rep_str, threshold);
    let reports_identical = report_res == report_str;
    let sum_res = ups_sweep::summarize_trace(&orig_res, &flows, n, None);
    let sum_str = ups_sweep::summarize_trace(&orig_str, &flows, n, None);
    let summaries_identical = sum_res == sum_str;

    assert!(records_identical, "streaming trace diverged from resident");
    assert!(reports_identical, "streamed replay report diverged");
    assert!(summaries_identical, "streamed run summary diverged");
    println!("# differential gate: records, reports and summaries bit-identical");
    (records_identical, reports_identical, summaries_identical)
}

// lint:schema(ups-bench-scale/v1)
fn main() {
    let packet_floor = env_u64("UPS_SCALE_PACKETS", 5_000_000);
    let min_flows = env_u64("UPS_SCALE_MIN_FLOWS", 10_000);
    let flow_bytes = env_u64("UPS_SCALE_FLOW_BYTES", 150_000);
    let rss_budget = env_u64("UPS_SCALE_RSS_BUDGET_MB", 512) * 1024 * 1024;
    let diff_packets = env_u64("UPS_SCALE_DIFF_PACKETS", 120_000);

    let (records_ok, reports_ok, summaries_ok) = differential_gate(diff_packets);

    // The scale scenario: fat-tree k=8 (128 hosts), fixed ~100-packet
    // flows so the packet floor forces a five-digit flow count, window
    // grown until the train clears the floor.
    let topo = fattree(FatTreeParams {
        k: 8,
        ..FatTreeParams::default()
    });
    let mut window = Dur::from_ms(4);
    let flows = loop {
        let mut routing = Routing::new(&topo);
        let flows = PoissonWorkload::at_utilization(0.7, window, 42).generate(
            &topo,
            &mut routing,
            &Fixed(flow_bytes),
        );
        if train_packets(&flows) >= packet_floor {
            break flows;
        }
        window = window.times(2);
        assert!(
            window <= Dur::from_secs(60),
            "scale workload never reached {packet_floor} packets"
        );
    };
    let packets = train_packets(&flows);
    assert!(
        flows.len() as u64 >= min_flows,
        "only {} flows at the {packet_floor}-packet floor (need {min_flows})",
        flows.len()
    );
    println!(
        "# scale: {packets} packets / {} flows on {} (fixed {flow_bytes}-byte flows, 70% util)",
        flows.len(),
        topo.name
    );

    let (original, replay, wall) = streaming_run(
        &topo,
        &flows,
        SchedulerKind::Fifo,
        RecordMode::Streaming,
        None,
        42,
    );
    let pps = packets as f64 / wall;
    let threshold = topo.bottleneck_bandwidth().tx_time(MTU);
    // Gate on for the comparison only: the merge-join's reorder window
    // must stay bounded at full scale, and the high-water counter is the
    // direct witness (the compare also asserts it inline, but that check
    // fires per-step; this one pins the whole-run maximum).
    ups_obs::enable();
    ups_obs::reset();
    let report = compare(&original, &replay, threshold);
    let window_high_water = ups_obs::snapshot().counter(ups_obs::Counter::CompareWindow);
    ups_obs::disable();
    assert!(
        window_high_water <= ups_core::REORDER_WINDOW as u64,
        "compare reorder window hit {window_high_water} records \
         (bound {})",
        ups_core::REORDER_WINDOW
    );
    println!("# compare reorder-window high-water: {window_high_water} records");
    let match_rate = report.match_rate().expect("scale run delivers packets");
    let summary = ups_sweep::summarize_trace(&original, &flows, packets, None);
    assert_eq!(summary.delivered + summary.dropped, packets);

    let peak = peak_rss_bytes();
    println!(
        "original run     {pps:>12.0} pkts/s  ({wall:.2}s wall)\n\
         replay match     {match_rate:>12.4}\n\
         peak RSS         {:>9.1} MiB  (budget {} MiB)",
        peak as f64 / (1024.0 * 1024.0),
        rss_budget / (1024 * 1024)
    );
    assert!(
        peak <= rss_budget,
        "peak RSS {peak} exceeds the {rss_budget}-byte budget"
    );

    let json = format!(
        r#"{{
  "schema": "ups-bench-scale/v1",
  "scenario": {{
    "topology": "{}",
    "scheduler": "FIFO",
    "utilization": 0.7,
    "flow_bytes": {flow_bytes},
    "window_ms": {},
    "seed": 42
  }},
  "packets": {packets},
  "flows": {},
  "delivered": {},
  "dropped": {},
  "peak_rss_bytes": {peak},
  "rss_budget_bytes": {rss_budget},
  "packets_per_sec": {pps:.0},
  "replay_match_rate": {match_rate:.6},
  "replay_frac_gt_t": {:.6},
  "differential": {{
    "workload_packets": {diff_packets},
    "records_identical": {records_ok},
    "reports_identical": {reports_ok},
    "summaries_identical": {summaries_ok}
  }}
}}
"#,
        topo.name,
        window.as_secs_f64() * 1e3,
        flows.len(),
        summary.delivered,
        summary.dropped,
        report.frac_gt_t_rate().expect("non-empty comparison"),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(out, json).expect("write BENCH_scale.json");
    println!("wrote {out}");
}
