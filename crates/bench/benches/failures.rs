//! Replay robustness under link churn: how does the black-box LSTF
//! match rate degrade as failure intensity rises?
//!
//! The scenario is the engine benchmarks' fat-tree workload under a
//! **Random** original schedule ("completely arbitrary schedules",
//! §2.3), run through the `ups-dynamics` churn runner at increasing
//! `random-links` failure rates with the reroute in-flight policy. Per
//! intensity, the delivered packets are replayed at their observed
//! `i(p)` along their observed as-executed paths through non-preemptive
//! LSTF on the intact topology and scored against the original `o(p)`.
//!
//! The `rate = 0` row is asserted **bit-identical** to the plain
//! static-routing `run_schedule` trace before any number is reported —
//! the churn machinery must cost exactly nothing when nothing fails.
//!
//! Results go to stdout and `BENCH_failures.json` at the repository
//! root (schema `ups-bench-failures/v1`, checked by `sweep --validate`).
//! Scale knob: `UPS_FAIL_MIN_PACKETS` (default 20000).

use ups_bench::fattree_throughput_workload;
use ups_core::{run_schedule, ReplayReport};
use ups_dynamics::{churn_replay, run_schedule_with_failures, FailureProfile, FailureSchedule};
use ups_netsim::prelude::*;
use ups_topology::{BuildOptions, SchedulerAssignment};

const UTILIZATION: f64 = 0.7;
const SEED: u64 = 42;
/// Swept failure intensities. Capped at 0.5: beyond that the k=4
/// fat-tree starts partitioning, packets die at dead links instead of
/// rerouting, and the *survivors* replay better — a survivorship
/// artifact that masks the congestion story this curve is about (the
/// delivered count column still shows it).
const RATES: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Row {
    rate: f64,
    links_failed: u64,
    rerouted: u64,
    dropped_dead_link: u64,
    delivered: u64,
    report: ReplayReport,
}

// lint:schema(ups-bench-failures/v1)
fn json_row(r: &Row, bit_identical: bool) -> String {
    let tail = if r.rate == 0.0 {
        format!(", \"bit_identical_to_static_routing\": {bit_identical}")
    } else {
        String::new()
    };
    format!(
        concat!(
            r#"    {{"rate": {}, "links_failed": {}, "rerouted": {}, "#,
            r#""dropped_at_dead_link": {}, "delivered": {}, "#,
            r#""match_rate": {:.6}, "frac_gt_t": {:.6}, "max_lateness_us": {:.3}{}}}"#
        ),
        r.rate,
        r.links_failed,
        r.rerouted,
        r.dropped_dead_link,
        r.delivered,
        r.report.match_rate().expect("non-empty comparison"),
        r.report.frac_overdue_gt_t(),
        r.report.max_lateness.as_secs_f64() * 1e6,
        tail
    )
}

// lint:schema(ups-bench-failures/v1)
fn main() {
    let min_packets = env_u64("UPS_FAIL_MIN_PACKETS", 20_000) as usize;
    let (topo, train) = fattree_throughput_workload(UTILIZATION, min_packets, SEED);
    let packets = train.packets;
    println!(
        "# failures: {} packets / {} flows on {} at {:.0}% util, Random original, \
         random-links churn, reroute in-flight policy",
        packets.len(),
        train.flows,
        topo.name,
        UTILIZATION * 100.0,
    );

    let opts = BuildOptions {
        record: RecordMode::EndToEnd,
        seed: SEED,
        ..BuildOptions::default()
    };
    let assign = SchedulerAssignment::uniform(SchedulerKind::Random);

    // The zero-failure gate: the churn runner with an empty schedule must
    // reproduce the static-routing run bit for bit.
    let plain = run_schedule(&topo, &assign, packets.iter().cloned(), &opts);
    let zero = run_schedule_with_failures(
        &topo,
        &assign,
        packets.iter().cloned(),
        &FailureSchedule::none(),
        DeadLinkPolicy::Reroute,
        &opts,
    );
    assert_eq!(
        zero.trace, plain,
        "zero-failure churn run must be bit-identical to the static-routing run"
    );
    assert_eq!(zero.stats.rerouted, 0);
    assert_eq!(zero.stats.link_events, 0);

    let rows: Vec<Row> = RATES
        .iter()
        .map(|&rate| {
            let schedule = FailureSchedule::generate(
                &topo,
                FailureProfile::RandomLinks,
                rate,
                train.window,
                SEED,
            );
            let churn = if rate == 0.0 {
                // The gate's run *is* the rate-0 row — no churn events
                // exist, so re-simulating would reproduce it bit for bit.
                assert!(schedule.is_empty(), "rate 0 must generate no events");
                &zero
            } else {
                &run_schedule_with_failures(
                    &topo,
                    &assign,
                    packets.iter().cloned(),
                    &schedule,
                    DeadLinkPolicy::Reroute,
                    &opts,
                )
            };
            let report = churn_replay(&topo, &churn.trace, SEED);
            Row {
                rate,
                links_failed: schedule.links_failed(),
                rerouted: churn.stats.rerouted,
                dropped_dead_link: churn.stats.dropped_dead_link,
                delivered: churn.stats.delivered,
                report,
            }
        })
        .collect();

    println!(
        "{:>6} {:>6} {:>9} {:>8} {:>10} {:>11} {:>10}",
        "rate", "links", "rerouted", "dropped", "delivered", "match_rate", "frac>T"
    );
    for r in &rows {
        println!(
            "{:>6.2} {:>6} {:>9} {:>8} {:>10} {:>11.4} {:>10.4}",
            r.rate,
            r.links_failed,
            r.rerouted,
            r.dropped_dead_link,
            r.delivered,
            r.report.match_rate().expect("non-empty"),
            r.report.frac_overdue_gt_t(),
        );
    }
    let base = rows[0].report.match_rate().expect("non-empty");
    let worst = rows
        .iter()
        .filter_map(|r| r.report.match_rate())
        .fold(f64::INFINITY, f64::min);
    println!(
        "# static baseline match {:.4}; worst under churn {:.4} (degradation {:.4})",
        base,
        worst,
        base - worst
    );
    assert!(
        worst < base,
        "churn must degrade the replay somewhere along the curve"
    );
    // Monotone-ish: rising intensity may only improve the match rate by
    // noise (the swept rates stay below the partition/survivorship
    // regime — see RATES).
    for w in rows.windows(2) {
        let (prev, next) = (
            w[0].report.match_rate().expect("non-empty"),
            w[1].report.match_rate().expect("non-empty"),
        );
        assert!(
            next <= prev + 0.02,
            "match rate rose from {prev:.4} to {next:.4} at rate {}",
            w[1].rate
        );
    }

    let body: Vec<String> = rows.iter().map(|r| json_row(r, true)).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"ups-bench-failures/v1\",\n",
            "  \"scenario\": {{\"topology\": \"{}\", \"original\": \"Random\", ",
            "\"profile\": \"random-links\", \"inflight\": \"reroute\", ",
            "\"utilization\": {}, \"seed\": {}, ",
            "\"packets\": {}, \"flows\": {}, \"window_ms\": {:.3}}},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        topo.name,
        UTILIZATION,
        SEED,
        packets.len(),
        train.flows,
        train.window.as_secs_f64() * 1e3,
        body.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_failures.json");
    std::fs::write(out, json).expect("write BENCH_failures.json");
    println!("wrote {out}");
}
