//! Regenerates **Figure 1** — the CDF of per-packet queueing-delay ratios
//! (LSTF replay : original schedule) for six original disciplines on the
//! default Internet2 topology at 70% utilization.
//!
//! Output: tab-separated series `discipline  ratio  P[X ≤ ratio]`, one
//! block per discipline, plus the fraction of packets whose replay
//! queueing is at most their original queueing (the paper's headline:
//! "most of the packets actually have a smaller queuing delay in the
//! LSTF replay").

use ups_bench::{fig1_scenarios, Scale};
use ups_metrics::render_series;

fn main() {
    let scale = Scale::from_env();
    println!(
        "# Figure 1: queueing-delay ratio CDF (scale={}, window={})",
        scale.label, scale.replay_window
    );
    // The paper's x-axis: 0.0 to 2.0.
    let probes: Vec<f64> = (0..=40).map(|i| i as f64 * 0.05).collect();
    for scenario in fig1_scenarios(scale.replay_window, 42) {
        let res = scenario.run_lstf();
        // The report keeps the ratio distribution as a quantile sketch;
        // its CDF reads are exact at the probe grid's bucket edges and at
        // most one log-bucket (≈2.2%) coarse in between.
        let cdf = &res.report.queueing_ratios;
        if cdf.is_empty() {
            println!("{}\t(no queued packets)", scenario.sched_label);
            continue;
        }
        print!(
            "{}",
            render_series(scenario.sched_label, &cdf.series(&probes))
        );
        println!(
            "# {}: {} ratio samples, {:.1}% of packets no worse than original",
            scenario.sched_label,
            cdf.len(),
            cdf.fraction_le(1.0) * 100.0
        );
    }
}
