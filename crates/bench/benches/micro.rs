//! Criterion microbenchmarks of the simulation engine: per-discipline
//! enqueue/dequeue throughput, event-queue operations, and end-to-end
//! simulator event rate. These are engineering benchmarks (not paper
//! artifacts) — they track the cost of the LSTF/EDF machinery against
//! FIFO, the paper's §5 "no more complex than fine-grained priorities"
//! claim in microcosm.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

use ups_netsim::prelude::*;

fn mk_packet(id: u64, slack: i128) -> Packet {
    let path: Arc<[NodeId]> = vec![NodeId(0), NodeId(1)].into();
    PacketBuilder::new(PacketId(id), FlowId(id % 16), 1500, path, SimTime::ZERO)
        .slack(slack)
        .flow_bytes(10_000 + id, 10_000 + id)
        .prio(id as i128 % 97)
        .build()
}

fn bench_schedulers(c: &mut Criterion) {
    let kinds = [
        SchedulerKind::Fifo,
        SchedulerKind::Lifo,
        SchedulerKind::Random,
        SchedulerKind::Priority { preemptive: false },
        SchedulerKind::Sjf,
        SchedulerKind::Srpt,
        SchedulerKind::Fq,
        SchedulerKind::Drr,
        SchedulerKind::FifoPlus,
        SchedulerKind::Lstf { preemptive: false },
    ];
    let ctx = PortCtx {
        bandwidth: Bandwidth::from_gbps(1),
    };
    let mut group = c.benchmark_group("scheduler_enqueue_dequeue_1k");
    for kind in kinds {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter_batched(
                    || {
                        let s = kind.build(7);
                        let mut arena = PacketArena::new();
                        let refs: Vec<PacketRef> = (0..1000)
                            .map(|i| arena.alloc(mk_packet(i, (i as i128 * 37) % 5000)))
                            .collect();
                        (s, arena, refs)
                    },
                    |(mut s, mut arena, refs)| {
                        let mut t = SimTime::ZERO;
                        for (i, r) in refs.into_iter().enumerate() {
                            s.enqueue(r, &arena, t, i as u64, ctx);
                            t += Dur::from_ns(100);
                        }
                        while let Some(qp) = s.dequeue(&mut arena, t, ctx) {
                            black_box(arena.get(qp.pkt).id);
                        }
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = ups_netsim::event::EventQueue::new();
            for i in 0..10_000u64 {
                q.push(
                    SimTime::from_ns((i * 7919) % 1_000_000),
                    ups_netsim::event::Event::Timer {
                        agent: AgentId(0),
                        key: i,
                    },
                );
            }
            let mut n = 0u64;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    // A small line network pushing 2k packets: measures whole-engine
    // events/second for FIFO vs LSTF ports.
    for kind in [
        SchedulerKind::Fifo,
        SchedulerKind::Lstf { preemptive: false },
    ] {
        c.bench_function(&format!("line_sim_2k_packets_{}", kind.name()), |b| {
            b.iter(|| {
                let topo = ups_topology::line(3, Bandwidth::from_gbps(10), Dur::from_us(5));
                let mut routing = ups_topology::Routing::new(&topo);
                let hosts = topo.hosts();
                let mut sim = ups_topology::build_simulator(
                    &topo,
                    &ups_topology::SchedulerAssignment::uniform(kind),
                    &ups_topology::BuildOptions::default(),
                );
                let path = routing.path(hosts[0], hosts[1]);
                for i in 0..2000u64 {
                    sim.inject(
                        PacketBuilder::new(
                            PacketId(i),
                            FlowId(i % 8),
                            1500,
                            path.clone(),
                            SimTime::from_ns(i * 300),
                        )
                        .slack((i as i128 * 131) % 100_000)
                        .build(),
                    );
                }
                sim.run();
                black_box(sim.stats().events)
            })
        });
    }
}

criterion_group! {
    name = benches;
    // Short measurement windows: these are coarse engineering trackers,
    // not statistical studies, and the experiment benches dominate the
    // run budget.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_schedulers, bench_event_queue, bench_end_to_end
}
criterion_main!(benches);
