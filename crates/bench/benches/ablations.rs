//! Regenerates the §2.3 ablations:
//!
//! * **§2.3(7)** — simple-priorities replay (`prio = o(p)`) vs LSTF on the
//!   default Random scenario (paper: 21% vs 0.21% overdue).
//! * **§2.3(5)** — preemption: replaying SJF and LIFO originals with
//!   non-preemptive vs preemptive LSTF (paper: SJF 18.33% → 0.24%, LIFO
//!   14.77% → 0.25%).

use ups_bench::{ReplayScenario, Scale};
use ups_core::HeaderInit;
use ups_metrics::{frac, Table};
use ups_netsim::prelude::SchedulerKind;
use ups_topology::{i2_default, SchedulerAssignment};

fn scenario(
    kind: SchedulerKind,
    label: &'static str,
    window: ups_netsim::prelude::Dur,
) -> ReplayScenario {
    ReplayScenario {
        topology_label: "I2:1Gbps-10Gbps",
        topo: i2_default(),
        utilization: 0.7,
        sched_label: label,
        assign: SchedulerAssignment::uniform(kind),
        window,
        seed: 42,
    }
}

fn main() {
    let scale = Scale::from_env();
    println!(
        "# Ablations (scale={}, window={})",
        scale.label, scale.replay_window
    );

    println!("\n## §2.3(7): LSTF vs simple priorities (prio = o(p)), Random original");
    println!("# paper: priorities 21% overdue (20.69% > T) vs LSTF 0.21% (0.02% > T)");
    let scen = scenario(SchedulerKind::Random, "Random", scale.replay_window);
    let mut t = Table::new(&["replay", "overdue", "overdue>T", "max lateness"]);
    for (label, init) in [
        ("LSTF", HeaderInit::LstfSlack),
        ("Priorities", HeaderInit::PriorityOutputTime),
    ] {
        let res = scen.run(init, false);
        t.row(&[
            label.to_string(),
            frac(res.report.frac_overdue()),
            frac(res.report.frac_overdue_gt_t()),
            format!("{}", res.report.max_lateness),
        ]);
    }
    println!("{}", t.render());

    println!("\n## §2.3(5): effect of preemption on hard originals");
    println!("# paper: SJF 18.33% → 0.24%; LIFO 14.77% → 0.25% overdue");
    let mut t = Table::new(&[
        "original",
        "LSTF overdue",
        "LSTF-P overdue",
        "LSTF >T",
        "LSTF-P >T",
    ]);
    for (kind, label) in [(SchedulerKind::Sjf, "SJF"), (SchedulerKind::Lifo, "LIFO")] {
        let scen = scenario(kind, label, scale.replay_window);
        let nonp = scen.run(HeaderInit::LstfSlack, false);
        let pre = scen.run(HeaderInit::LstfSlack, true);
        t.row(&[
            label.to_string(),
            frac(nonp.report.frac_overdue()),
            frac(pre.report.frac_overdue()),
            frac(nonp.report.frac_overdue_gt_t()),
            frac(pre.report.frac_overdue_gt_t()),
        ]);
    }
    println!("{}", t.render());
}
