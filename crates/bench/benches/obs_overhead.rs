//! The zero-cost-when-off contract, measured: packets/second through the
//! fat-tree throughput scenario in three instrumentation modes —
//!
//! * `uninstrumented` — the hook-free `run_uninstrumented()` event loop
//!   (the `const OBS = false` monomorphization; no gate loads at all),
//! * `probe_off` — the normal `run()` loop with every `ups-obs` hook
//!   compiled in but the global gate disabled (the shipping default), and
//! * `probe_on` — gate enabled plus a [`TimeSeriesProbe`] sampling every
//!   100 µs of virtual time.
//!
//! All three modes consume the identical injected packet set and the
//! bench asserts their delivered counts and exit-time fingerprints agree
//! before trusting the timings — instrumentation must never change the
//! schedule. It then asserts `probe_off` throughput within
//! `UPS_OBS_TOLERANCE` (default 10%) of `uninstrumented`, on **both**
//! sides: probe-off running suspiciously *faster* than the hook-free
//! loop means the baseline is broken (or the machine too noisy for the
//! comparison to mean anything), not that the contract holds. The
//! signed overhead goes into `BENCH_obs.json` either way.
//!
//! Results go to stdout (including the `ups-obs` plain-text report for
//! the probe-on run) and to `BENCH_obs.json` (schema `ups-bench-obs/v1`,
//! validated by `sweep --validate`); the probe-on sampled series is also
//! exported as `BENCH_obs_trace.json`, a chrome://tracing document that
//! opens directly in Perfetto. Scale knobs: `UPS_OBS_MIN_PACKETS`
//! (default 120000), `UPS_OBS_RUNS` (default 5).

use std::time::Instant;

use ups_bench::fattree_throughput_workload;
use ups_netsim::prelude::*;
use ups_obs::TimeSeries;
use ups_topology::{build_simulator, BuildOptions, SchedulerAssignment, Topology};

const UTILIZATION: f64 = 0.7;
const SEED: u64 = 42;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Uninstrumented,
    ProbeOff,
    ProbeOn,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Uninstrumented => "uninstrumented",
            Mode::ProbeOff => "probe_off",
            Mode::ProbeOn => "probe_on",
        }
    }
}

struct RunOutput {
    wall_s: f64,
    delivered: u64,
    fingerprint: Option<u128>,
    series: Option<TimeSeries>,
}

fn run_once(topo: &Topology, packets: &[Packet], mode: Mode, record: RecordMode) -> RunOutput {
    let mut sim = build_simulator(
        topo,
        &SchedulerAssignment::uniform(SchedulerKind::Fifo),
        &BuildOptions {
            record,
            ..BuildOptions::default()
        },
    );
    let probe = (mode == Mode::ProbeOn).then(|| {
        let p = SharedProbe::new(TimeSeriesProbe::DEFAULT_INTERVAL_PS);
        sim.set_probe(p.attachment());
        ups_obs::enable();
        p
    });
    for p in packets.iter().cloned() {
        sim.inject(p);
    }
    let t0 = Instant::now();
    match mode {
        Mode::Uninstrumented => sim.run_uninstrumented(),
        Mode::ProbeOff | Mode::ProbeOn => sim.run(),
    }
    let wall_s = t0.elapsed().as_secs_f64();
    if mode == Mode::ProbeOn {
        ups_obs::disable();
    }
    let fingerprint = matches!(record, RecordMode::EndToEnd).then(|| {
        sim.trace()
            .delivered()
            .expect("resident trace")
            .map(|(_, r)| r.exited.expect("delivered").as_ps() as u128)
            .sum()
    });
    RunOutput {
        wall_s,
        delivered: sim.stats().delivered,
        fingerprint,
        series: probe.map(|p| p.take_series()),
    }
}

struct Measurement {
    mode: Mode,
    best_s: f64,
    packets_per_sec: f64,
    delivered: u64,
    fingerprint: u128,
    series: Option<TimeSeries>,
}

fn measure(topo: &Topology, packets: &[Packet], mode: Mode, runs: u64) -> Measurement {
    // Untimed verification pass with full end-to-end tracing: the timed
    // runs below are trace-free, so fingerprint the schedule once here.
    let verify = run_once(topo, packets, mode, RecordMode::EndToEnd);
    let fingerprint = verify.fingerprint.expect("traced run");
    let mut best = f64::MAX;
    let mut series = None;
    for _ in 0..runs {
        ups_obs::reset();
        let r = run_once(topo, packets, mode, RecordMode::Off);
        assert_eq!(
            r.delivered,
            verify.delivered,
            "{}: trace-off run diverged",
            mode.name()
        );
        best = best.min(r.wall_s);
        series = r.series;
    }
    Measurement {
        mode,
        best_s: best,
        packets_per_sec: packets.len() as f64 / best,
        delivered: verify.delivered,
        fingerprint,
        series,
    }
}

// lint:schema(ups-bench-obs/v1)
fn json_mode(m: &Measurement) -> String {
    // The per-mode key ("uninstrumented"/"probe_off"/"probe_on") is
    // written literally by the envelope so the schema surface stays
    // statically extractable; this renders only the value object.
    let samples = match &m.series {
        Some(s) => format!(", \"samples\": {}", s.rows.len()),
        None => String::new(),
    };
    format!(
        "{{\"packets_per_sec\": {:.0}, \"best_s\": {:.6}{samples}}}",
        m.packets_per_sec, m.best_s
    )
}

// lint:schema(ups-bench-obs/v1)
fn main() {
    let min_packets = env_u64("UPS_OBS_MIN_PACKETS", 120_000) as usize;
    let runs = env_u64("UPS_OBS_RUNS", 5).max(1);
    let tolerance = env_f64("UPS_OBS_TOLERANCE", 0.10);
    assert!(tolerance > 0.0, "UPS_OBS_TOLERANCE must be positive");

    let (topo, train) = fattree_throughput_workload(UTILIZATION, min_packets, SEED);
    let (packets, flows) = (train.packets, train.flows);
    println!(
        "# obs_overhead: {} packets / {} flows on {} at {:.0}% util (seed {}, best of {runs})",
        packets.len(),
        flows,
        topo.name,
        UTILIZATION * 100.0,
        SEED
    );

    let unin = measure(&topo, &packets, Mode::Uninstrumented, runs);
    let off = measure(&topo, &packets, Mode::ProbeOff, runs);
    let on = measure(&topo, &packets, Mode::ProbeOn, runs);
    // The gate counters still hold the final probe-on run (reset happens
    // before each timed run, never after).
    let gate = ups_obs::snapshot();

    // Instrumentation must observe the schedule, not steer it.
    for m in [&off, &on] {
        assert_eq!(
            unin.delivered,
            m.delivered,
            "{} delivered diverged",
            m.mode.name()
        );
        assert_eq!(
            unin.fingerprint,
            m.fingerprint,
            "{} exit times diverged",
            m.mode.name()
        );
    }
    let series = on.series.as_ref().expect("probe-on series");
    assert!(!series.rows.is_empty(), "probe-on run never sampled");

    let off_overhead = 1.0 - off.packets_per_sec / unin.packets_per_sec;
    let on_overhead = 1.0 - on.packets_per_sec / unin.packets_per_sec;
    for m in [&unin, &off, &on] {
        println!(
            "{:<16} {:>12.0} pkts/s  (best of {runs}: {:.3}s)",
            m.mode.name(),
            m.packets_per_sec,
            m.best_s
        );
    }
    println!(
        "probe_off        {:>+11.2}% vs uninstrumented",
        off_overhead * 100.0
    );
    println!(
        "probe_on         {:>+11.2}% vs uninstrumented",
        on_overhead * 100.0
    );
    assert!(
        off_overhead.abs() <= tolerance,
        "probe-off delta {:+.2}% outside the ±{:.0}% tolerance \
         (negative: probe_off beat the hook-free loop — suspect baseline or machine noise)",
        off_overhead * 100.0,
        tolerance * 100.0
    );

    println!("\n{}", ups_obs::report::render_report(&gate, Some(series)));

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"ups-bench-obs/v1\",\n",
            "  \"scenario\": {{\"topology\": \"{}\", \"scheduler\": \"FIFO\", ",
            "\"utilization\": {}, \"seed\": {}}},\n",
            "  \"packets\": {},\n",
            "  \"flows\": {},\n",
            "  \"runs\": {},\n",
            "  \"tolerance\": {},\n",
            "  \"uninstrumented\": {},\n",
            "  \"probe_off\": {},\n",
            "  \"probe_on\": {},\n",
            "  \"probe_off_overhead\": {:.6},\n",
            "  \"probe_on_overhead\": {:.6},\n",
            "  \"fingerprints_identical\": true\n",
            "}}\n"
        ),
        topo.name,
        UTILIZATION,
        SEED,
        packets.len(),
        flows,
        runs,
        tolerance,
        json_mode(&unin),
        json_mode(&off),
        json_mode(&on),
        off_overhead,
        on_overhead,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(out, json).expect("write BENCH_obs.json");
    println!("wrote {out}");

    let trace = ups_obs::trace_event::trace_event_json(series);
    let trace_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs_trace.json");
    std::fs::write(trace_out, trace).expect("write BENCH_obs_trace.json");
    println!("wrote {trace_out} (open in Perfetto / chrome://tracing)");
}
